//! Intradomain emulation bridged to the interdomain world — the §3
//! "controlling intradomain topology and routing" capability, across the
//! emulation, bgp, and topology crates.

use peering::bgp::{BgpMessage, Output, PeerConfig, PeerId, Speaker, SpeakerConfig};
use peering::emulation::{build_from_pops, place_containers};
use peering::prelude::*;
use peering::topology::{hurricane_electric, small_ring};
use std::net::Ipv4Addr;

/// Drive the external session between a PopEmulation and a speaker until
/// quiescent.
fn bridge(
    pe: &mut peering::emulation::PopEmulation,
    h: peering::emulation::ExternalHandle,
    ext: &mut Speaker,
) {
    for _ in 0..128 {
        let outbound = pe.emu.drain_external(h);
        if outbound.is_empty() {
            break;
        }
        let now = pe.emu.now();
        let mut replies: Vec<BgpMessage> = Vec::new();
        for m in outbound {
            for o in ext.on_message(PeerId(0), m, now) {
                if let Output::Send(_, msg) = o {
                    replies.push(msg);
                }
            }
        }
        for m in replies {
            pe.emu.inject_external(h, m);
        }
        pe.emu.run_until_quiet(usize::MAX);
    }
}

#[test]
fn he_backbone_bridges_to_an_external_peer() {
    let topo = hurricane_electric();
    let ams = topo.pop_by_city("Amsterdam").unwrap();
    let mut pe = build_from_pops(&topo, 64600, 77);
    let h = pe.external_at(ams, Asn::PEERING);
    // A normal speaker: the external AS prepends its ASN like any eBGP
    // neighbor would (the transparent mux sits *between* real peers and
    // clients; the far end of this session is a real AS).
    let mut ext = Speaker::new(SpeakerConfig::new(
        Asn::PEERING,
        Ipv4Addr::new(80, 249, 208, 1),
    ));
    ext.add_peer(PeerConfig::new(PeerId(0), pe.asns[ams]).passive());
    ext.start_peer(PeerId(0), peering::netsim::SimTime::ZERO);
    pe.converge(usize::MAX);
    bridge(&mut pe, h, &mut ext);
    assert!(ext.peer_established(PeerId(0)));
    // All 24 PoP prefixes flow out to the external peer...
    assert_eq!(ext.loc_rib().len(), 24);
    // ...and external routes flow all the way across the backbone.
    let external = Prefix::v4(203, 0, 113, 0, 24);
    let now = pe.emu.now();
    let outs = ext.originate(external, now);
    for o in outs {
        if let Output::Send(_, m) = o {
            pe.emu.inject_external(h, m);
        }
    }
    pe.emu.run_until_quiet(usize::MAX);
    bridge(&mut pe, h, &mut ext);
    let hongkong = topo.pop_by_city("Hong Kong").unwrap();
    let d = pe.emu.daemon(pe.routers[hongkong]).unwrap();
    let r = d.loc_rib().get(&external).expect("HK learned the route");
    // The path crosses the emulated backbone: it ends at PEERING's ASN.
    assert_eq!(r.attrs.as_path.origin_as(), Some(Asn::PEERING));
    assert!(r.attrs.as_path.hop_count() >= 3, "{}", r.attrs.as_path);
}

#[test]
fn link_failure_inside_the_emulation_reroutes() {
    let topo = small_ring(6);
    let mut pe = build_from_pops(&topo, 64512, 5);
    pe.converge(usize::MAX);
    assert!(pe.reaches(0, 3));
    let d = pe.emu.daemon(pe.routers[0]).unwrap();
    let before = d
        .loc_rib()
        .get(&pe.prefixes[3])
        .unwrap()
        .attrs
        .as_path
        .hop_count();
    assert_eq!(before, 3, "shortest way round the ring");
    // Cut the 0-1 link and stop the session at both ends (the admin
    // interface; hold timers would do the same, slower). The withdraw
    // cascade toward the rest of the ring must flow through the
    // emulation for everyone to reconverge.
    pe.emu.set_link_up(pe.routers[0], pe.routers[1], false);
    pe.emu.stop_peer(pe.routers[0], PeerId(1));
    pe.emu.stop_peer(pe.routers[1], PeerId(0));
    pe.emu.run_until_quiet(usize::MAX);
    // 0 still reaches 3 the long way round.
    let d = pe.emu.daemon(pe.routers[0]).unwrap();
    let after = d
        .loc_rib()
        .get(&pe.prefixes[3])
        .expect("rerouted")
        .attrs
        .as_path
        .hop_count();
    assert_eq!(after, 3, "ring of 6: both ways to node 3 are 3 hops");
    // But a neighbor of the cut link definitely lengthens: 0 -> 1.
    let r01 = d.loc_rib().get(&pe.prefixes[1]).expect("rerouted");
    assert_eq!(r01.attrs.as_path.hop_count(), 5, "long way round");
}

#[test]
fn placement_splits_big_emulations() {
    let topo = hurricane_electric();
    let mut pe = build_from_pops(&topo, 64600, 9);
    pe.converge(usize::MAX);
    let demands: Vec<usize> = pe
        .emu
        .memory_by_container()
        .into_iter()
        .map(|(_, m)| m)
        .collect();
    // Everything fits on one 8 GB host...
    let one = place_containers(&demands, 8 << 30).unwrap();
    assert_eq!(one.hosts, 1);
    // ...but force tiny hosts and it spreads.
    let max_one = *demands.iter().max().unwrap();
    let tight = place_containers(&demands, max_one + max_one / 2).unwrap();
    assert!(tight.hosts > 1);
    assert_eq!(tight.assignments.len(), 24);
}
