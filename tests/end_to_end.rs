//! End-to-end integration: the full testbed lifecycle across crates.

use peering::prelude::*;
use peering::topology::routing::TraceOutcome;

#[test]
fn full_researcher_workflow() {
    let mut tb = Testbed::build(TestbedConfig::small(100));
    // Provision.
    let id = tb.new_experiment("workflow", "inst", &[0, 1]).unwrap();
    let client = tb.clients[&id].clone();
    assert_eq!(client.tunnels.len(), 2);
    // Announce, verify global visibility.
    let reach = tb.announce(id, client.announce_everywhere()).unwrap();
    assert_eq!(reach, tb.graph().len() - 1);
    // Data plane works from an arbitrary vantage.
    let vantage = peering::topology::AsIdx(33);
    let rtt1 = tb.ping(vantage, &client.prefix).expect("reachable");
    assert!(rtt1 > SimDuration::ZERO);
    // Traffic engineering: prepend and confirm paths lengthen somewhere.
    tb.advance(SimDuration::from_secs(7200));
    tb.announce(id, client.announce_everywhere().prepended(4))
        .unwrap();
    let path = match tb.traceroute(vantage, &client.prefix) {
        TraceOutcome::Delivered(p) => p,
        other => panic!("{other:?}"),
    };
    assert_eq!(*path.last().unwrap(), tb.node);
    // Teardown returns the prefix to the pool.
    let before = tb.allocator.available();
    tb.end_experiment(id).unwrap();
    assert_eq!(tb.allocator.available(), before + 1);
    assert!(tb.routes_for(&client.prefix).is_none());
}

#[test]
fn simultaneous_experiments_do_not_interfere() {
    let mut tb = Testbed::build(TestbedConfig::small(101));
    let a = tb.new_experiment("a", "x", &[0]).unwrap();
    let b = tb.new_experiment("b", "y", &[1]).unwrap();
    let ca = tb.clients[&a].clone();
    let cb = tb.clients[&b].clone();
    assert!(!ca.prefix.overlaps(&cb.prefix));
    tb.announce(a, ca.announce_everywhere()).unwrap();
    tb.announce(b, cb.announce_everywhere()).unwrap();
    // Both prefixes routed independently.
    assert!(tb.routes_for(&ca.prefix).is_some());
    assert!(tb.routes_for(&cb.prefix).is_some());
    // Withdrawing one leaves the other intact.
    tb.withdraw(a, ca.prefix).unwrap();
    assert!(tb.routes_for(&ca.prefix).is_none());
    assert!(tb.routes_for(&cb.prefix).is_some());
    // a cannot touch b's prefix.
    assert!(matches!(
        tb.announce(a, AnnouncementSpec::everywhere(cb.prefix, vec![0])),
        Err(TestbedError::Safety(_))
    ));
}

#[test]
fn scheduler_executes_a_calendar() {
    let mut tb = Testbed::build(TestbedConfig::small(102));
    let id = tb.new_experiment("sched", "x", &[0]).unwrap();
    let client = tb.clients[&id].clone();
    let t0 = tb.now();
    tb.schedule.at(
        t0 + SimDuration::from_secs(600),
        id,
        ScheduledAction::Announce(client.announce_from(0, PeerSelector::All)),
    );
    tb.schedule.at(
        t0 + SimDuration::from_secs(7200),
        id,
        ScheduledAction::Withdraw(client.prefix),
    );
    assert_eq!(tb.schedule.pending(), 2);
    tb.run_schedule(t0 + SimDuration::from_secs(3600));
    assert!(tb.routes_for(&client.prefix).is_some(), "announce fired");
    tb.run_schedule(t0 + SimDuration::from_secs(8000));
    assert!(tb.routes_for(&client.prefix).is_none(), "withdraw fired");
    assert_eq!(tb.schedule.pending(), 0);
}

#[test]
fn capability_row_derives_from_deployment() {
    let tb = Testbed::build(TestbedConfig::small(103));
    let features = tb.features();
    assert!(features.announcement_control);
    assert!(features.traffic_exchange);
    assert!(features.concurrent_experiment_slots >= 32);
    let row = peering::core::peering_row(&features);
    // A small deployment has limited connectivity but everything else.
    assert_eq!(row.0[0], peering::core::Support::Yes);
    assert_eq!(row.0[2], peering::core::Support::Yes);
}

#[test]
fn monitor_collects_control_and_data_plane() {
    let mut tb = Testbed::build(TestbedConfig::small(104));
    let id = tb.new_experiment("mon", "x", &[0, 1]).unwrap();
    let client = tb.clients[&id].clone();
    tb.announce(id, client.announce_everywhere()).unwrap();
    for i in 0..5 {
        tb.ping(peering::topology::AsIdx(20 + i), &client.prefix);
    }
    assert_eq!(tb.monitor.updates().count(), 1);
    assert_eq!(tb.monitor.probes().count(), 5);
    assert!(tb.monitor.loss_rate(client.prefix).unwrap() < 1.0);
    assert!(tb.monitor.median_rtt(client.prefix).is_some());
}

#[test]
fn catchments_and_selective_export_interact() {
    let mut tb = Testbed::build(TestbedConfig::small(105));
    let id = tb.new_experiment("catch", "x", &[0, 1]).unwrap();
    let client = tb.clients[&id].clone();
    tb.announce(id, client.announce_everywhere()).unwrap();
    let both = tb.catchments(&client.prefix).unwrap();
    assert_eq!(both.len(), 2);
    let total: usize = both.iter().map(|(_, n)| n).sum();
    assert_eq!(total, tb.graph().len());
    // Restrict to a single transit neighbor and the catchment collapses.
    tb.advance(SimDuration::from_secs(7200));
    let one_transit = tb.servers[1].transits[0];
    tb.announce(
        id,
        AnnouncementSpec::everywhere(client.prefix, vec![1])
            .select(PeerSelector::Specific(vec![one_transit])),
    )
    .unwrap();
    let narrow = tb.catchments(&client.prefix).unwrap();
    let narrow_total: usize = narrow.iter().map(|(_, n)| n).sum();
    assert!(narrow_total <= total);
    // Everyone still reaching us comes through that transit.
    if let TraceOutcome::Delivered(path) =
        tb.traceroute(peering::topology::AsIdx(50), &client.prefix)
    {
        assert_eq!(path[path.len() - 2], one_transit);
    }
}
