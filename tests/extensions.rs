//! The paper's future-work features, implemented and exercised: remote
//! peering, multiple public ASNs, the web portal, and the packet
//! processing API at a server.

use peering::core::{Backend, PacketProcessor, PktAction, PktMatch, PktVerdict, SiteSpec};
use peering::netsim::{IpPacket, Payload};
use peering::prelude::*;
use peering::topology::{InternetConfig, IxpSpec};

/// A testbed config with a third, remotely peered IXP.
fn config_with_remote(seed: u64) -> TestbedConfig {
    let mut internet = InternetConfig::small(seed);
    internet.ixps.push(IxpSpec {
        name: "REMOTE-IX".into(),
        country: *b"DE",
        target_members: 16,
        rs_members: 12,
        open: 2,
        closed: 0,
        case_by_case: 1,
    });
    let mut cfg = TestbedConfig::small(seed);
    cfg.internet = internet;
    cfg.sites
        .push(SiteSpec::remote_ixp("decix-remote01", 1, 0, 8, *b"DE"));
    cfg
}

#[test]
fn remote_peering_extends_reach_without_hardware() {
    let base = Testbed::build(TestbedConfig::small(500));
    let with_remote = Testbed::build(config_with_remote(500));
    assert_eq!(with_remote.servers.len(), 3);
    let remote = &with_remote.servers[2];
    assert_eq!(
        remote.remote_via,
        Some(0),
        "circuit lands on the AMS server"
    );
    assert!(!remote.rs_peers.is_empty(), "remote RS peering works");
    // At least as many distinct peers as the physical-only deployment —
    // in a ~120-AS test Internet the remote IXP's membership can overlap
    // the home IXP's heavily; at realistic scale it adds hundreds.
    assert!(with_remote.all_peers().len() >= base.all_peers().len());
    // And the remote site contributes sessions of its own.
    assert!(with_remote.servers[2].session_count() > 0);
    // Announcements can be steered to the remote site alone.
    let mut tb = with_remote;
    let id = tb.new_experiment("remote", "usc", &[2]).unwrap();
    let client = tb.clients[&id].clone();
    let reach = tb
        .announce(id, client.announce_from(2, PeerSelector::All))
        .unwrap();
    assert!(reach > 0);
}

#[test]
fn first_ixp_census_survives_extra_ixps() {
    // The hardened population: adding REMOTE-IX must not corrupt
    // TEST-IX's exact §4.1-style census.
    let tb = Testbed::build(config_with_remote(501));
    let census = tb.ixps[0].directory.policy_census();
    assert_eq!(census.route_server, 22);
    assert_eq!(census.open, 4);
    assert_eq!(census.closed, 1);
    assert_eq!(census.case_by_case, 2);
    assert_eq!(census.unlisted, 1);
}

#[test]
fn secondary_asn_for_multi_origin_experiments() {
    let mut tb = Testbed::build(TestbedConfig::small(502));
    // A two-ASN allocator, as the paper plans.
    tb.allocator = peering::core::PrefixAllocator::new(
        "184.164.224.0/19".parse().unwrap(),
        vec![peering::netsim::Asn::PEERING, peering::netsim::Asn(61574)],
    );
    tb.safety.cfg.pools = tb.allocator.pools().to_vec();
    let a = tb.new_experiment("origin-a", "x", &[0]).unwrap();
    let b = tb.new_experiment("origin-b", "y", &[0]).unwrap();
    let asn_a = tb.assign_secondary_asn(a).unwrap();
    let asn_b = tb.assign_secondary_asn(b).unwrap();
    assert_ne!(asn_a, asn_b, "round-robin gives distinct origins");
    // Idempotent per experiment.
    assert_eq!(tb.assign_secondary_asn(a).unwrap(), asn_a);
    // Announcements under the assigned origin pass safety.
    let ca = tb.clients[&a].clone();
    assert!(tb.announce(a, ca.announce_everywhere()).is_ok());
    let cb = tb.clients[&b].clone();
    assert!(tb.announce(b, cb.announce_everywhere()).is_ok());
}

#[test]
fn portal_to_live_experiment() {
    let mut tb = Testbed::build(TestbedConfig::small(503));
    let mut portal = Portal::new();
    let req = portal.submit(
        Proposal {
            email: "grace@usc.edu".into(),
            institution: "USC".into(),
            title: "bgp convergence study".into(),
            abstract_text: "We will make scheduled announcements and withdrawals of our \
                            allocated /24 to measure convergence behavior at vantage points."
                .into(),
            sites: vec![0, 1],
            needs_spoofing: false,
        },
        tb.now(),
    );
    let exp = portal
        .provision(ProvisionRequest::new(req), &mut tb)
        .expect("auto-provisioned");
    // The provisioned experiment is immediately usable.
    let client = tb.clients[&exp].clone();
    let reach = tb.announce(exp, client.announce_everywhere()).unwrap();
    assert!(reach > 0);
    assert!(portal
        .notifications
        .iter()
        .any(|n| n.message.contains("client config attached")));
}

#[test]
fn packet_processing_at_the_server_edge() {
    // A server-side pipeline: count experiment traffic, rate-limit it
    // ("we only support low traffic volumes"), drop spoofed sources.
    let tb = Testbed::build(TestbedConfig::small(504));
    let pool: peering::netsim::Ipv4Net = "184.164.224.0/19".parse().unwrap();
    let mut pp = PacketProcessor::new(Backend::Lightweight)
        .rule(
            PktMatch::Not(Box::new(PktMatch::SrcIn(pool))),
            vec![PktAction::Drop],
        )
        .rule(
            PktMatch::Any,
            vec![
                PktAction::Count,
                PktAction::RateLimit {
                    bytes_per_sec: 1_000_000,
                    burst: 100_000,
                },
                PktAction::Pass,
            ],
        );
    let legit = IpPacket::new(
        "184.164.224.9".parse().unwrap(),
        "8.8.8.8".parse().unwrap(),
        Payload::Udp {
            sport: 1,
            dport: 53,
            data: vec![0; 64],
        },
    );
    let spoofed = IpPacket::new(
        "9.9.9.9".parse().unwrap(),
        "8.8.8.8".parse().unwrap(),
        Payload::Udp {
            sport: 1,
            dport: 53,
            data: vec![0; 64],
        },
    );
    assert!(matches!(
        pp.process(legit, SimTime::ZERO),
        PktVerdict::Deliver(_)
    ));
    assert_eq!(pp.process(spoofed, SimTime::ZERO), PktVerdict::Dropped);
    assert_eq!(pp.counted, 1, "only experiment traffic is counted");
    let _ = tb;
}
