//! All research scenarios, end to end on one testbed build each.

use peering::prelude::*;
use peering::topology::{Internet, InternetConfig};
use peering::workloads::scenarios;

#[test]
fn lifeguard_end_to_end() {
    let mut tb = Testbed::build(TestbedConfig::small(201));
    let r = scenarios::lifeguard::run(&mut tb).unwrap();
    assert!(r.detected && r.recovered);
}

#[test]
fn poiroot_end_to_end() {
    let mut tb = Testbed::build(TestbedConfig::small(202));
    let r = scenarios::poiroot::run(&mut tb).unwrap();
    assert!(r.changed > 0);
    assert!(r.accuracy() > 0.5, "accuracy {}", r.accuracy());
}

#[test]
fn arrow_end_to_end() {
    let mut tb = Testbed::build(TestbedConfig::small(203));
    let r = scenarios::arrow::run(&mut tb).unwrap();
    assert!(r.direct_broken && r.detour_works);
}

#[test]
fn pecan_end_to_end() {
    let mut tb = Testbed::build(TestbedConfig::small(204));
    // Measure from the IXP site — PECAN's setting: rich peering
    // exposes many alternate paths.
    let r = scenarios::pecan::run(&mut tb, 0, 10).unwrap();
    assert!(!r.measurements.is_empty());
    assert!(r.improved > 0);
}

#[test]
fn hijack_end_to_end() {
    let mut tb = Testbed::build(TestbedConfig::small(205));
    let r = scenarios::hijack::run(&mut tb, 0, 1).unwrap();
    assert!(r.diverted > 0 && r.diverted < r.total);
    assert!(r.forwarded_ok);
}

#[test]
fn sbgp_end_to_end() {
    let net = Internet::build(InternetConfig::small(206));
    let n = net.graph.len();
    let r = scenarios::sbgp::run(&net.graph, 1, &[0, n / 4, n]);
    assert!(r.points[0].attacker_success > r.points[2].attacker_success);
}

#[test]
fn anycast_end_to_end() {
    let mut tb = Testbed::build(TestbedConfig::small(207));
    let r = scenarios::anycast::run(&mut tb).unwrap();
    assert!(r.failover_complete());
}

#[test]
fn decoy_end_to_end() {
    let r = scenarios::decoy::run();
    assert!(r.observer_saw_overt && r.covert_delivered && r.innocent_unaffected);
}

#[test]
fn scenarios_are_deterministic() {
    let run_once = |seed: u64| {
        let mut tb = Testbed::build(TestbedConfig::small(seed));
        let r = scenarios::hijack::run(&mut tb, 0, 1).unwrap();
        (r.baseline_victim_catchment, r.diverted, r.total)
    };
    assert_eq!(run_once(301), run_once(301));
    assert_ne!(run_once(301), run_once(302));
}
