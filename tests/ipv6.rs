//! IPv6 end to end — the paper's planned extension, implemented: v6
//! experiment prefixes from the testbed's /32, dual-stack announcements,
//! v6 safety, and v6 NLRI across the wire codec.

use peering::bgp::wire::{decode_message, encode_message, WireConfig};
use peering::bgp::{AsPath, BgpMessage, Nlri, PathAttributes, UpdateMessage};
use peering::core::Violation;
use peering::prelude::*;
use std::sync::Arc;

#[test]
fn v6_experiment_lifecycle() {
    let mut tb = Testbed::build(TestbedConfig::small(300));
    let id = tb.new_experiment("v6", "usc", &[0, 1]).unwrap();
    // Enable IPv6: a /48 from the testbed's /32.
    let v6 = tb.enable_ipv6(id).unwrap();
    assert!(tb.allocator.in_v6_pool(&v6));
    assert_eq!(v6.len(), 48);
    // Idempotent.
    assert_eq!(tb.enable_ipv6(id).unwrap(), v6);
    // Announce from both sites to all dual-stack neighbors.
    let reach = tb.announce_v6(id, &[0, 1], &PeerSelector::All).unwrap();
    assert!(reach > 0, "someone must hear the v6 route");
    // Only dual-stack ASes can hold it.
    assert!(reach <= tb.dual_stack_count());
    let result = tb.routes_for_prefix(&Prefix::V6(v6)).expect("announced");
    for (idx, _) in result.iter() {
        if idx != tb.node {
            assert!(
                !tb.graph().info(idx).v6_prefixes.is_empty(),
                "v4-only AS {idx} must not hold a v6 route"
            );
        }
    }
    // Withdraw and release via teardown.
    tb.withdraw_v6(id).unwrap();
    assert!(tb.routes_for_prefix(&Prefix::V6(v6)).is_none());
    let avail = tb.allocator.available_v6();
    tb.end_experiment(id).unwrap();
    assert_eq!(tb.allocator.available_v6(), avail + 1);
}

#[test]
fn v6_reach_is_smaller_than_v4_reach() {
    let mut tb = Testbed::build(TestbedConfig::small(301));
    let id = tb.new_experiment("dualstack", "usc", &[0, 1]).unwrap();
    let client = tb.clients[&id].clone();
    let v4_reach = tb.announce(id, client.announce_everywhere()).unwrap();
    tb.enable_ipv6(id).unwrap();
    let v6_reach = tb.announce_v6(id, &[0, 1], &PeerSelector::All).unwrap();
    assert!(
        v6_reach < v4_reach,
        "partial v6 deployment: {v6_reach} v6 vs {v4_reach} v4"
    );
    assert!(v6_reach > 0);
}

#[test]
fn v6_hijack_is_blocked() {
    let mut tb = Testbed::build(TestbedConfig::small(302));
    let a = tb.new_experiment("a", "x", &[0]).unwrap();
    let b = tb.new_experiment("b", "y", &[0]).unwrap();
    let pa = tb.enable_ipv6(a).unwrap();
    let pb = tb.enable_ipv6(b).unwrap();
    assert!(!pa.overlaps(&pb));
    // Check the filter directly with b's prefix under a's ownership.
    let verdict = tb
        .safety
        .check_announcement_v6(a.0, &pa, &pb, Asn::PEERING, 0, 0, tb.now());
    assert!(matches!(
        verdict,
        peering::core::SafetyVerdict::Blocked(Violation::NotYourV6Prefix(_))
    ));
    // And fully foreign v6 space.
    let foreign = "2001:db8:dead::/48".parse().unwrap();
    let verdict = tb
        .safety
        .check_announcement_v6(a.0, &pa, &foreign, Asn::PEERING, 0, 0, tb.now());
    assert!(matches!(
        verdict,
        peering::core::SafetyVerdict::Blocked(Violation::HijackV6(_))
    ));
}

#[test]
fn v6_without_enabling_errors() {
    let mut tb = Testbed::build(TestbedConfig::small(303));
    let id = tb.new_experiment("no-v6", "x", &[0]).unwrap();
    assert!(matches!(
        tb.announce_v6(id, &[0], &PeerSelector::All),
        Err(TestbedError::V6NotAvailable)
    ));
    assert!(matches!(
        tb.withdraw_v6(id),
        Err(TestbedError::V6NotAvailable)
    ));
}

#[test]
fn v6_nlri_crosses_the_wire() {
    // A v6 route carried in MP_REACH, byte-encoded and decoded.
    let attrs = Arc::new(PathAttributes {
        as_path: AsPath::from_asns(&[Asn::PEERING]),
        next_hop: "80.249.208.1".parse().unwrap(),
        ..Default::default()
    });
    let v6: Prefix = "2804:269c:17::/48".parse().unwrap();
    let msg = BgpMessage::Update(UpdateMessage::announce(attrs, vec![Nlri::plain(v6)]));
    let bytes = encode_message(&msg, WireConfig::default()).unwrap();
    let (decoded, _) = decode_message(&bytes, WireConfig::default()).unwrap();
    assert_eq!(decoded, msg);
}
