//! BGP speakers talking through the *byte-level* codec over a lossy
//! simulated transport — proving the pieces interoperate exactly the way
//! separate router processes would.

use peering::bgp::wire::{decode_message, encode_message, WireConfig};
use peering::bgp::{Output, PeerConfig, PeerId, Speaker, SpeakerConfig};
use peering::netsim::{LinkParams, MsgNet, NodeId, SimRng};
use peering::prelude::*;
use std::net::Ipv4Addr;

/// Two speakers exchanging *encoded* messages over a MsgNet link.
struct ByteHarness {
    a: Speaker,
    b: Speaker,
    net: MsgNet<Vec<u8>>,
}

impl ByteHarness {
    fn new(loss: f64, seed: u64) -> Self {
        let mut a = Speaker::new(SpeakerConfig::new(Asn(100), Ipv4Addr::new(10, 0, 0, 1)));
        a.add_peer(PeerConfig::new(PeerId(0), Asn(200)));
        let mut b = Speaker::new(SpeakerConfig::new(Asn(200), Ipv4Addr::new(10, 0, 0, 2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(100)).passive());
        let mut net = MsgNet::new(SimRng::new(seed));
        net.add_link(
            NodeId(0),
            NodeId(1),
            LinkParams::with_delay(SimDuration::from_millis(20)).loss(loss),
        );
        ByteHarness { a, b, net }
    }

    fn dispatch(&mut self, from: usize, outs: Vec<Output>) {
        for o in outs {
            if let Output::Send(_, msg) = o {
                let bytes = encode_message(&msg, WireConfig::default()).expect("encode");
                let (na, nb) = (NodeId(from as u32), NodeId(1 - from as u32));
                self.net.send(na, nb, bytes.len(), bytes);
            }
        }
    }

    /// Run the event loop, decoding bytes at each delivery.
    fn run(&mut self, limit: usize) {
        for _ in 0..limit {
            let Some((now, delivery)) = self.net.next() else {
                break;
            };
            let (msg, used) = decode_message(&delivery.msg, WireConfig::default()).expect("decode");
            assert_eq!(used, delivery.msg.len());
            let to = delivery.to.0 as usize;
            let outs = if to == 0 {
                self.a.on_message(PeerId(0), msg, now)
            } else {
                self.b.on_message(PeerId(0), msg, now)
            };
            self.dispatch(to, outs);
        }
    }
}

#[test]
fn session_establishes_over_encoded_bytes() {
    let mut h = ByteHarness::new(0.0, 1);
    let outs = h.a.start_peer(PeerId(0), h.net.now());
    h.dispatch(0, outs);
    let outs = h.b.start_peer(PeerId(0), h.net.now());
    h.dispatch(1, outs);
    h.run(100);
    assert!(h.a.peer_established(PeerId(0)));
    assert!(h.b.peer_established(PeerId(0)));
}

#[test]
fn routes_survive_the_byte_roundtrip() {
    let mut h = ByteHarness::new(0.0, 2);
    let outs = h.a.start_peer(PeerId(0), h.net.now());
    h.dispatch(0, outs);
    let outs = h.b.start_peer(PeerId(0), h.net.now());
    h.dispatch(1, outs);
    h.run(100);
    // Announce 50 prefixes from a.
    for i in 0..50u32 {
        let p = Prefix::v4(10, 50, i as u8, 0, 24);
        let outs = h.a.originate(p, h.net.now());
        h.dispatch(0, outs);
    }
    h.run(1000);
    assert_eq!(h.b.loc_rib().len(), 50);
    let p = Prefix::v4(10, 50, 7, 0, 24);
    let r = h.b.loc_rib().get(&p).expect("learned");
    assert_eq!(r.attrs.as_path.to_string(), "100");
    assert_eq!(r.attrs.next_hop, Ipv4Addr::new(10, 0, 0, 1));
}

#[test]
fn lossy_link_delays_but_timers_recover_the_session() {
    // With 30% loss the handshake may need retries; the FSM plus a
    // retry loop at the application layer must still converge.
    let mut h = ByteHarness::new(0.3, 3);
    for attempt in 0..50 {
        let outs = h.a.start_peer(PeerId(0), h.net.now());
        h.dispatch(0, outs);
        let outs = h.b.start_peer(PeerId(0), h.net.now());
        h.dispatch(1, outs);
        h.run(200);
        if h.a.peer_established(PeerId(0)) && h.b.peer_established(PeerId(0)) {
            return; // converged despite loss
        }
        // Reset both ends and try again (BGP's connect-retry analog).
        let now = h.net.now();
        let outs = h.a.stop_peer(PeerId(0), now);
        h.dispatch(0, outs);
        let outs = h.b.stop_peer(PeerId(0), now);
        h.dispatch(1, outs);
        h.run(100);
        let _ = attempt;
    }
    panic!("session never established despite retries");
}

#[test]
fn hold_timer_fires_when_the_link_dies() {
    let mut h = ByteHarness::new(0.0, 4);
    let outs = h.a.start_peer(PeerId(0), h.net.now());
    h.dispatch(0, outs);
    let outs = h.b.start_peer(PeerId(0), h.net.now());
    h.dispatch(1, outs);
    h.run(100);
    assert!(h.a.peer_established(PeerId(0)));
    // Kill the link; drive time far past the hold deadline via timers.
    h.net.set_link_up(NodeId(0), NodeId(1), false);
    h.net
        .set_timer(NodeId(0), SimDuration::from_secs(300), Vec::new());
    let (now, _) = h.net.next().expect("timer");
    let outs = h.a.tick(now);
    assert!(outs
        .iter()
        .any(|o| matches!(o, Output::Event(peering::bgp::SpeakerEvent::PeerDown(_, _)))));
    assert!(!h.a.peer_established(PeerId(0)));
}
