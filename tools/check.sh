#!/usr/bin/env bash
# The full repo gate: formatting, lints, tests, and the static safety
# verifier. CI and pre-merge checks run exactly this; a clean exit
# means the tree is mergeable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> chaos smoke (session resilience under faults)"
cargo test -q -p peering-workloads chaos_smoke

echo "==> telemetry smoke (snapshot validity + determinism)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release -q -p peering-bench --bin telemetry_smoke -- "$tmpdir/run1.json" 42
cargo run --release -q -p peering-bench --bin telemetry_smoke -- "$tmpdir/run2.json" 42
cmp "$tmpdir/run1.json" "$tmpdir/run2.json" \
  || { echo "telemetry snapshot differs between same-seed runs"; exit 1; }
mkdir -p results
cp "$tmpdir/run1.json" results/BENCH_telemetry.json

echo "==> collector smoke (MRT archive byte-determinism)"
cargo run --release -q -p peering-bench --bin collector_smoke -- \
  "$tmpdir/collector1.json" "$tmpdir/collector1.mrt" 42
cargo run --release -q -p peering-bench --bin collector_smoke -- \
  "$tmpdir/collector2.json" "$tmpdir/collector2.mrt" 42
cmp "$tmpdir/collector1.mrt" "$tmpdir/collector2.mrt" \
  || { echo "collector MRT archive differs between same-seed runs"; exit 1; }
cmp "$tmpdir/collector1.json" "$tmpdir/collector2.json" \
  || { echo "collector summary differs between same-seed runs"; exit 1; }
cp "$tmpdir/collector1.json" results/BENCH_collector.json

echo "==> abuse smoke (containment + bystander-isolation determinism)"
cargo run --release -q -p peering-bench --bin abuse_smoke -- "$tmpdir/abuse1.json" 42
cargo run --release -q -p peering-bench --bin abuse_smoke -- "$tmpdir/abuse2.json" 42
cmp "$tmpdir/abuse1.json" "$tmpdir/abuse2.json" \
  || { echo "abuse containment report differs between same-seed runs"; exit 1; }
cp "$tmpdir/abuse1.json" results/BENCH_abuse.json

echo "==> differential engine matrix (sequential vs sharded digests)"
cargo test -q -p peering-workloads --test scale_differential

echo "==> scale bench (full-scale fast path; wall-clock keys stripped)"
cargo run --release -q -p peering-bench --example scale_bench -- "$tmpdir/scale1.json" 42 full 6
cargo run --release -q -p peering-bench --example scale_bench -- "$tmpdir/scale2.json" 42 full 6
grep -v '"timing_' "$tmpdir/scale1.json" > "$tmpdir/scale1.stable"
grep -v '"timing_' "$tmpdir/scale2.json" > "$tmpdir/scale2.stable"
cmp "$tmpdir/scale1.stable" "$tmpdir/scale2.stable" \
  || { echo "scale report differs between same-seed runs (beyond timing)"; exit 1; }
cp "$tmpdir/scale1.json" results/BENCH_scale.json

echo "==> peering-lint (static safety verification)"
cargo run --release -q -p peering-verify --bin peering-lint

echo "==> peering-analyze (determinism & concurrency contract)"
cargo run --release -q -p peering-analysis --bin peering-analyze -- \
  --root . --json "$tmpdir/analysis1.json"
cargo run --release -q -p peering-analysis --bin peering-analyze -- \
  --root . --json "$tmpdir/analysis2.json" --quiet
cmp "$tmpdir/analysis1.json" "$tmpdir/analysis2.json" \
  || { echo "analysis report differs between runs (nondeterministic analyzer)"; exit 1; }
cp "$tmpdir/analysis1.json" results/BENCH_analysis.json

echo "==> loom model tests (shared event queue interleavings)"
cargo test -q -p peering-netsim --features loom --test loom_queue

echo "==> miri (wire codec + RIB unit tests under the interpreter)"
if cargo miri --version >/dev/null 2>&1; then
  MIRIFLAGS="-Zmiri-deterministic-concurrency" \
    cargo miri test -q -p peering-bgp -- wire:: rib::
else
  echo "    cargo-miri not installed; skipping (gate still enforced where available)"
fi

echo "==> all checks passed"
