//! §4.2 end to end: emulate Hurricane Electric's 24-PoP backbone, bridge
//! the Amsterdam PoP to a simulated AMS-IX, and verify routes propagate
//! both ways — on one machine's memory budget.
//!
//! ```text
//! cargo run --release --example he_backbone_emulation
//! ```

use peering::topology::hurricane_electric;

fn main() {
    println!("== MinineXt-style emulation of the Hurricane Electric backbone ==\n");
    let topo = hurricane_electric();
    println!(
        "topology: {} PoPs, {} links; cities include {}, {}, {}, ...",
        topo.pops.len(),
        topo.links.len(),
        topo.pops[0].city,
        topo.pops[17].city,
        topo.pops[18].city
    );
    // The bench-harness runner does the full bring-up + bridging.
    let r = peering_bench::emu42::run(7, 300);
    println!("\nconvergence:");
    println!("  messages delivered          : {}", r.convergence_steps);
    println!(
        "  PoP-pair reachability       : {:.0}%",
        100.0 * r.reachability
    );
    println!("\nAMS-IX bridge (via the Amsterdam PoP's external session):");
    println!(
        "  routes injected from AMS-IX : {} -> {} reached the farthest PoP",
        r.external_routes_in, r.external_routes_at_farthest_pop
    );
    println!(
        "  PoP prefixes exported out   : {} / {}",
        r.pop_routes_exported, r.pops
    );
    println!("\nresources:");
    println!(
        "  total emulation memory      : {:.1} MiB (paper budget: 8 GiB desktop)",
        r.memory_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("  physical hosts needed       : {}", r.hosts_at_8gb);
}
