//! A tour of the paper's §3 "going forward" plans, implemented: the web
//! portal with advisory-board vetting, IPv6 experiment prefixes,
//! secondary origin ASNs, remote peering, scheduled beacons, and the
//! lightweight packet-processing API.
//!
//! ```text
//! cargo run --release --example future_work_tour
//! ```

use peering::core::SiteSpec;
use peering::prelude::*;
use peering::topology::{InternetConfig, IxpSpec};
use peering::workloads::scenarios::beacon::{self, BeaconConfig};

fn main() {
    println!("== future-work tour ==\n");

    // --- Remote peering: a third IXP with no new hardware -------------
    let mut internet = InternetConfig::small(7);
    internet.ixps.push(IxpSpec {
        name: "REMOTE-IX".into(),
        country: *b"DE",
        target_members: 16,
        rs_members: 12,
        open: 2,
        closed: 0,
        case_by_case: 1,
    });
    let mut cfg = TestbedConfig::small(7);
    cfg.internet = internet;
    cfg.sites
        .push(SiteSpec::remote_ixp("decix-remote01", 1, 0, 8, *b"DE"));
    let mut tb = Testbed::build(cfg);
    let remote = &tb.servers[2];
    println!(
        "remote peering: site '{}' reached via site {} adds {} peers (total {})",
        remote.site.name,
        remote.remote_via.expect("remote"),
        remote.peers().len(),
        tb.all_peers().len()
    );

    // --- The portal: proposal -> vetting -> provisioning ---------------
    let mut portal = Portal::new();
    let req = portal.submit(
        Proposal {
            email: "researcher@usc.edu".into(),
            institution: "USC".into(),
            title: "ipv6 anycast".into(),
            abstract_text: "We will announce an IPv6 /48 from every site to compare v6 \
                            catchments against v4, using scheduled beacon cycles."
                .into(),
            sites: vec![0, 1, 2],
            needs_spoofing: false,
        },
        tb.now(),
    );
    let exp = portal
        .provision(ProvisionRequest::new(req), &mut tb)
        .expect("auto-provisioned");
    println!("\nportal: {req} approved and provisioned as {exp}");
    for n in &portal.notifications {
        println!("  notify {}: {}", n.email, n.message);
    }

    // --- Multiple ASNs + IPv6 ------------------------------------------
    let origin = tb.assign_secondary_asn(exp).expect("asn");
    let v6 = tb.enable_ipv6(exp).expect("v6 prefix");
    println!("\nassigned origin {origin}; IPv6 prefix {v6}");
    let v4_reach = {
        let client = tb.clients[&exp].clone();
        tb.announce(exp, client.announce_everywhere()).expect("v4")
    };
    let v6_reach = tb
        .announce_v6(exp, &[0, 1, 2], &PeerSelector::All)
        .expect("v6");
    println!(
        "dual-stack announcement: v4 reaches {v4_reach} ASes, v6 reaches {v6_reach} \
         (of {} dual-stacked)",
        tb.dual_stack_count()
    );

    // --- Beacons ---------------------------------------------------------
    let report = beacon::run(
        &mut tb,
        BeaconConfig {
            cycles: 3,
            ..Default::default()
        },
    )
    .expect("beacon");
    println!("\nbeacon transitions:");
    for e in &report.events {
        println!(
            "  [{}] {} -> {} ASes",
            e.time,
            if e.up { "ANNOUNCE" } else { "WITHDRAW" },
            e.reach
        );
    }

    // --- Lightweight packet processing ---------------------------------
    let r = peering_bench::pktproc9::run(20_000);
    println!(
        "\npacket processing: identical pipeline, VM {} us vs lightweight {} us ({:.0}x)",
        r.vm.busy_us,
        r.lightweight.busy_us,
        r.speedup()
    );
    println!("\ndone.");
}
