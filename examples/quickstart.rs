//! Quickstart: deploy the testbed, get a prefix, announce it, measure.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the paper's basic researcher workflow: request an
//! experiment (vetting + /24 allocation), connect tunnels to two sites,
//! announce with per-peer control, and watch the control and data plane
//! react.

use peering::prelude::*;
use peering::topology::routing::TraceOutcome;

fn main() {
    println!("== PEERING quickstart ==\n");
    // A small simulated Internet: one IXP site, one university site.
    let mut tb = Testbed::build(TestbedConfig::small(42));
    println!(
        "testbed deployed: {} ASes in the Internet, {} sites, {} peers, {} transit providers",
        tb.graph().len(),
        tb.servers.len(),
        tb.all_peers().len(),
        tb.all_transits().len()
    );

    // Provision an experiment: this allocates a /24 from the /19 pool.
    let id = tb
        .new_experiment("quickstart", "you@example.edu", &[0, 1])
        .expect("provision experiment");
    let client = tb.clients[&id].clone();
    println!(
        "experiment {id} provisioned with prefix {} and {} tunnels",
        client.prefix,
        client.tunnels.len()
    );

    // Announce everywhere (both sites, all neighbors).
    let reach = tb
        .announce(id, client.announce_everywhere())
        .expect("announce");
    println!(
        "\nannounced {} everywhere: {} ASes installed a route",
        client.prefix, reach
    );

    // Inspect the control plane from a vantage point.
    let vantage = peering::topology::AsIdx(40);
    match tb.traceroute(vantage, &client.prefix) {
        TraceOutcome::Delivered(path) => {
            let asns: Vec<String> = path
                .iter()
                .map(|&i| tb.graph().info(i).asn.to_string())
                .collect();
            println!("AS-level path from {vantage}: {}", asns.join(" -> "));
        }
        other => println!("vantage {vantage}: {other:?}"),
    }
    if let Some(rtt) = tb.ping(vantage, &client.prefix) {
        println!("ping from {vantage}: rtt {rtt}");
    }

    // Fine-grained control: withdraw, then announce to IXP peers only.
    tb.withdraw(id, client.prefix).expect("withdraw");
    tb.advance(SimDuration::from_secs(2 * 3600));
    let narrow = tb
        .announce(id, client.announce_from(0, PeerSelector::PeersOnly))
        .expect("peers-only announce");
    println!("\npeers-only announcement from site 0 reaches {narrow} ASes (vs {reach} everywhere)");

    // Safety in action: try to hijack someone else's prefix.
    let foreign = "16.0.9.0/24".parse().expect("prefix");
    let spec = peering::core::AnnouncementSpec::everywhere(foreign, vec![0]);
    match tb.announce(id, spec) {
        Err(e) => println!("hijack attempt correctly rejected: {e}"),
        Ok(_) => unreachable!("safety must block this"),
    }

    // The monitor kept the update log.
    println!("\nupdate log:");
    for u in tb.monitor.updates() {
        println!(
            "  [{}] {:?} {} (reach {:?})",
            u.time, u.kind, u.prefix, u.reach
        );
    }
    println!("\ndone.");
}
