//! Secure-BGP partial deployment (§2's proposed study): how many of the
//! biggest ASes need to validate origins before prefix hijacks stop
//! paying off?
//!
//! ```text
//! cargo run --release --example secure_bgp_adoption
//! ```

use peering::topology::{Internet, InternetConfig};
use peering::workloads::scenarios::sbgp;

fn main() {
    println!("== secure BGP in partial deployment ==\n");
    let net = Internet::build(InternetConfig::small(17));
    let n = net.graph.len();
    let levels: Vec<usize> = vec![0, 2, 5, 10, 20, 40, 80, n];
    let report = sbgp::run(&net.graph, 1, &levels);
    println!(
        "victim: {}   attacker: {}\n",
        net.graph.info(report.victim).asn,
        net.graph.info(report.attacker).asn
    );
    println!("{:>10}  {:>16}  chart", "adopters", "attacker success");
    for p in &report.points {
        let width = (p.attacker_success * 40.0).round() as usize;
        println!(
            "{:>10}  {:>15.1}%  {}",
            p.adopters,
            p.attacker_success * 100.0,
            "#".repeat(width)
        );
    }
    println!(
        "\nAdoption by the largest ASes (by customer cone) collapses the\n\
         attacker's catchment — the partial-deployment effect the paper's\n\
         proposed PEERING study would measure with real announcements."
    );
}
