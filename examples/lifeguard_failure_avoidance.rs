//! LIFEGUARD (SIGCOMM'12) on the testbed: detect a silent failure on the
//! path toward your prefix and route around it with AS-path poisoning.
//!
//! ```text
//! cargo run --release --example lifeguard_failure_avoidance
//! ```

use peering::prelude::*;
use peering::workloads::scenarios::lifeguard;

fn main() {
    println!("== LIFEGUARD: practical repair of persistent route failures ==\n");
    let mut tb = Testbed::build(TestbedConfig::small(3));
    let report = lifeguard::run(&mut tb).expect("scenario");
    if !report.recovered {
        println!("no repairable failure found in this topology (try another seed)");
        return;
    }
    let failed_asn = tb.graph().info(report.failed_as).asn;
    println!(
        "vantage point      : {}",
        tb.graph().info(report.vantage).asn
    );
    println!("failed AS          : {failed_asn}");
    println!("outage detected    : {}", report.detected);
    let fmt = |p: &[peering::netsim::Asn]| {
        p.iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    };
    println!("path before failure: {}", fmt(&report.path_before));
    println!("path after poison  : {}", fmt(&report.path_after));
    println!(
        "\nThe re-announcement poisoned {failed_asn}; its loop detection discarded\n\
         the route, so the Internet converged onto a path that avoids it.\n\
         recovered: {}",
        report.recovered
    );
}
