//! Deploy a real (simulated) anycast service: announce one prefix from
//! every PEERING site, map catchments, then lose a site and watch
//! failover — "anycasting a prefix from all PEERING providers and peers"
//! (§3).
//!
//! ```text
//! cargo run --release --example anycast_service
//! ```

use peering::prelude::*;
use peering::workloads::scenarios::anycast;

fn bar(n: usize, total: usize) -> String {
    let width = 40usize;
    let filled = (n * width).checked_div(total).unwrap_or(0);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

fn main() {
    println!("== anycast catchments and failover ==\n");
    let mut tb = Testbed::build(TestbedConfig::small(23));
    let site_names: Vec<String> = tb.servers.iter().map(|s| s.site.name.clone()).collect();
    let report = anycast::run(&mut tb).expect("scenario");

    println!(
        "baseline catchments ({} ASes total):",
        report.reachable_before
    );
    for (site, n) in &report.baseline {
        println!(
            "  {:<10} {:>5} ASes  {}",
            site_names[*site],
            n,
            bar(*n, report.reachable_before)
        );
    }
    println!(
        "\nfailing the largest site: {}\n",
        site_names[report.failed_site]
    );
    println!(
        "catchments after failover ({} ASes total):",
        report.reachable_after
    );
    for (site, n) in &report.after_failover {
        println!(
            "  {:<10} {:>5} ASes  {}",
            site_names[*site],
            n,
            bar(*n, report.reachable_after)
        );
    }
    println!(
        "\nfailover complete (nobody stranded): {}",
        report.failover_complete()
    );
}
