//! Man-in-the-middle hijack emulation (§2's example research): divert a
//! share of the Internet to an "attacker" site, inspect, and forward the
//! traffic onward so the victim never notices an outage.
//!
//! Both roles are sites of one experiment announcing the experiment's own
//! prefix, so the study is safe by construction.
//!
//! ```text
//! cargo run --release --example mitm_interception
//! ```

use peering::prelude::*;
use peering::workloads::scenarios::hijack;

fn main() {
    println!("== MITM interception study ==\n");
    let mut tb = Testbed::build(TestbedConfig::small(11));
    let report = hijack::run(&mut tb, 0, 1).expect("scenario");
    println!(
        "baseline: victim site alone attracts {} ASes",
        report.baseline_victim_catchment
    );
    println!(
        "attack  : attacker site diverts {} of {} ASes ({:.1}%)",
        report.diverted,
        report.total,
        100.0 * report.diverted_fraction()
    );
    println!(
        "forwarding intercepted traffic to the victim via the intradomain tunnel: {}",
        if report.forwarded_ok {
            "delivered"
        } else {
            "FAILED"
        }
    );
    println!(
        "interception added ~{} one-way latency",
        report.interception_overhead
    );
    println!(
        "\nThe attack is invisible as an outage — exactly the property the\n\
         Pilosov/Kapela-style interception relies on, and what a researcher\n\
         needs rich interdomain + intradomain control to study."
    );
}
