//! Corpus tests over `tests/fixtures/`: every known-bad snippet must
//! fail the gate with the expected lint, every known-clean / allowed /
//! audit snippet must pass, and every Deny lint in the catalog must
//! have both a bad and a clean fixture — so a new lint cannot land
//! without corpus coverage.

use peering_analysis::analyze_str;
use peering_analysis::lints::{lint_by_id, Severity, CATALOG};
use peering_analysis::report::AnalysisReport;
use std::path::{Path, PathBuf};

fn fixture_dir(sub: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(sub)
}

/// `(file_stem, contents)` for every `.rs` fixture in a subdirectory.
fn fixtures(sub: &str) -> Vec<(String, String)> {
    let dir = fixture_dir(sub);
    let entries =
        std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()));
    let mut out: Vec<(String, String)> = entries
        .map(|e| e.expect("directory entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .map(|p| {
            let stem = p
                .file_stem()
                .expect("fixture has a stem")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&p).expect("read fixture");
            (stem, text)
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no fixtures under {}", dir.display());
    out
}

fn analyze(sub: &str, stem: &str, text: &str) -> AnalysisReport {
    analyze_str(&format!("fixtures/{sub}/{stem}.rs"), text)
}

#[test]
fn every_bad_fixture_fails_the_gate() {
    for (stem, text) in fixtures("bad") {
        let r = analyze("bad", &stem, &text);
        assert!(!r.ok, "bad fixture {stem} unexpectedly passed: {r:?}");
    }
}

#[test]
fn bad_fixtures_trigger_exactly_their_lint() {
    for (stem, text) in fixtures("bad") {
        let expected = stem.replace('_', "-");
        if lint_by_id(&expected).is_none() {
            // Annotation-machinery fixtures (stale_allow, short_reason,
            // unknown_lint) are asserted individually below.
            continue;
        }
        let r = analyze("bad", &stem, &text);
        assert!(
            r.lints[&expected].findings > 0,
            "{stem}: expected at least one {expected} finding: {r:?}"
        );
        assert!(
            r.unallowlisted.iter().all(|f| f.lint == expected),
            "{stem}: stray findings beyond {expected}: {r:?}"
        );
    }
}

#[test]
fn clean_and_allowed_fixtures_pass() {
    for sub in ["clean", "allowed"] {
        for (stem, text) in fixtures(sub) {
            let r = analyze(sub, &stem, &text);
            assert!(r.ok, "{sub}/{stem} failed the gate: {r:?}");
            assert!(r.unallowlisted.is_empty(), "{sub}/{stem}: {r:?}");
            assert!(r.allowlist_problems.is_empty(), "{sub}/{stem}: {r:?}");
        }
    }
}

#[test]
fn allowed_fixture_records_a_checked_entry() {
    let all = fixtures("allowed");
    let (stem, text) = &all[0];
    let r = analyze("allowed", stem, text);
    assert_eq!(r.allowlist_size, 1);
    assert_eq!(r.lints["nd-hash-iter"].findings, 1);
    assert_eq!(r.lints["nd-hash-iter"].allowed, 1);
}

#[test]
fn audit_fixtures_inventory_without_failing() {
    for (stem, text) in fixtures("audit") {
        let r = analyze("audit", &stem, &text);
        assert!(r.ok, "audit/{stem} must not fail the gate: {r:?}");
        assert!(!r.shared_state.is_empty(), "audit/{stem}: empty inventory");
    }
}

#[test]
fn audit_fixture_covers_the_shared_state_kinds() {
    let text = std::fs::read_to_string(fixture_dir("audit").join("cc_shared.rs"))
        .expect("read cc_shared fixture");
    let r = analyze("audit", "cc_shared", &text);
    let kinds: Vec<&str> = r.shared_state.iter().map(|f| f.detail.as_str()).collect();
    for kind in ["ref-cell", "rc", "cell", "raw-pointer"] {
        assert!(kinds.contains(&kind), "missing {kind} in {kinds:?}");
    }
}

#[test]
fn stale_allow_fixture_demands_deletion() {
    let text = std::fs::read_to_string(fixture_dir("bad").join("stale_allow.rs"))
        .expect("read stale_allow fixture");
    let r = analyze("bad", "stale_allow", &text);
    assert!(!r.ok);
    assert!(
        r.allowlist_problems
            .iter()
            .any(|p| p.message.contains("stale")),
        "{r:?}"
    );
}

#[test]
fn short_reason_fixture_is_rejected_and_stays_unallowlisted() {
    let text = std::fs::read_to_string(fixture_dir("bad").join("short_reason.rs"))
        .expect("read short_reason fixture");
    let r = analyze("bad", "short_reason", &text);
    assert!(!r.ok);
    assert!(
        r.allowlist_problems
            .iter()
            .any(|p| p.message.contains("too short")),
        "{r:?}"
    );
    assert_eq!(r.unallowlisted.len(), 1, "finding must remain uncovered");
}

#[test]
fn unknown_lint_fixture_is_rejected() {
    let text = std::fs::read_to_string(fixture_dir("bad").join("unknown_lint.rs"))
        .expect("read unknown_lint fixture");
    let r = analyze("bad", "unknown_lint", &text);
    assert!(!r.ok);
    assert!(
        r.allowlist_problems
            .iter()
            .any(|p| p.message.contains("unknown lint id")),
        "{r:?}"
    );
}

#[test]
fn every_deny_lint_has_bad_and_clean_coverage() {
    let bad: Vec<String> = fixtures("bad").into_iter().map(|(s, _)| s).collect();
    let clean: Vec<String> = fixtures("clean").into_iter().map(|(s, _)| s).collect();
    for lint in CATALOG.iter().filter(|l| l.severity == Severity::Deny) {
        let stem = lint.id.replace('-', "_");
        assert!(bad.contains(&stem), "no bad fixture for {}", lint.id);
        assert!(clean.contains(&stem), "no clean fixture for {}", lint.id);
    }
}
