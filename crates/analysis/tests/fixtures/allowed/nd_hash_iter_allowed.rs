//! Known-clean via annotation: a genuine hash-container iteration whose
//! result is order-insensitive, carrying a reviewed allow entry. The
//! gate must accept it and record one allowlist entry.

use std::collections::HashMap;

pub struct Interner {
    buckets: HashMap<u64, Vec<u32>>,
}

impl Interner {
    pub fn len(&self) -> usize {
        // peering-analysis: allow(nd-hash-iter, reason = "order-insensitive integer sum over buckets")
        self.buckets.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
