//! Audit-only fixture: shared-state constructs the concurrency audit
//! must inventory without failing the gate (`cc-shared` is Severity::Audit).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

pub struct Scratch {
    pub cache: RefCell<Vec<u32>>,
    pub shared: Rc<Vec<u8>>,
    pub hits: Cell<u64>,
}

pub fn tail(ptr: *const u8, len: usize) -> usize {
    let _ = ptr;
    len
}
