//! Known-bad: ambient randomness. Must trigger `nd-rand`.

pub fn jitter_ms() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..1000)
}

pub fn reseed() -> u64 {
    let rng = SmallRng::from_entropy();
    rng.next_u64()
}
