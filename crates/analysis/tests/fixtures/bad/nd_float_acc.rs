//! Known-bad: order-sensitive float reduction. Must trigger
//! `nd-float-acc` — the sum depends on reduction order, which a sharded
//! engine would not preserve.

pub fn mean_latency(samples: &[f64]) -> f64 {
    let total = samples.iter().sum::<f64>();
    total / samples.len().max(1) as f64
}

pub fn folded(samples: &[f32]) -> f32 {
    samples.iter().fold(0.0, |acc, s| acc + s)
}
