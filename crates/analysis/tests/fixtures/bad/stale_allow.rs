//! Known-bad: a stale allowlist entry. The annotated line no longer
//! triggers `nd-time`, so the gate must demand the entry's deletion —
//! this is what makes the allowlist shrink-only.

pub fn stable() -> u32 {
    // peering-analysis: allow(nd-time, reason = "this line used to read the wall clock")
    42
}
