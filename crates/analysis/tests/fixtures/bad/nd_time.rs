//! Known-bad: reads the wall clock. Must trigger `nd-time`.

pub fn stamp() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}

pub fn elapsed_ms(start: std::time::Instant) -> u128 {
    start.elapsed().as_millis()
}
