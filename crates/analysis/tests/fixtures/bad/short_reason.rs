//! Known-bad: the annotation's reason is below the minimum length, so
//! the annotation is rejected and the finding stays unallowlisted.

use std::collections::HashMap;

pub fn count(m: &HashMap<u32, u32>) -> usize {
    // peering-analysis: allow(nd-hash-iter, reason = "short")
    m.keys().count()
}
