//! Known-bad: hash container inside a `Serialize` derive. Must trigger
//! `nd-hash-serde` — serialization walks the map in hash order, so the
//! emitted bytes differ across processes.

use std::collections::HashMap;

#[derive(Debug, Serialize)]
pub struct Snapshot {
    pub seed: u64,
    pub counts: HashMap<u32, u64>,
}
