//! Known-bad: the annotation names a lint id that is not in the
//! catalog; the gate must reject it instead of silently ignoring it.

pub fn g() -> u32 {
    // peering-analysis: allow(nd-nonexistent, reason = "there is no such lint in the catalog")
    7
}
