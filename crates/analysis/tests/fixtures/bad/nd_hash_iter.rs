//! Known-bad: iterates a hash-ordered container. Must trigger
//! `nd-hash-iter` (twice: a for-in and a chained method call).

use std::collections::HashMap;

pub fn route_lines(tbl: &HashMap<u32, u32>) -> Vec<String> {
    let mut out = Vec::new();
    for (k, v) in tbl.iter() {
        out.push(format!("{k}={v}"));
    }
    out
}

pub struct Rib {
    best: HashMap<u32, u64>,
}

impl Rib {
    pub fn digest_input(&self) -> Vec<u64> {
        self.best.values().copied().collect()
    }
}
