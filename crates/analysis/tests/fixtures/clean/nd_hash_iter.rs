//! Known-clean counterpart of `bad/nd_hash_iter.rs`: the ordered
//! container iterates in key order, so downstream digests are stable.

use std::collections::BTreeMap;

pub fn route_lines(tbl: &BTreeMap<u32, u32>) -> Vec<String> {
    tbl.iter().map(|(k, v)| format!("{k}={v}")).collect()
}

pub struct Rib {
    best: BTreeMap<u32, u64>,
}

impl Rib {
    pub fn digest_input(&self) -> Vec<u64> {
        self.best.values().copied().collect()
    }
}
