//! Known-clean counterpart of `bad/nd_time.rs`: time flows in from the
//! simulation clock instead of the host's wall clock.

pub fn stamp(sim_now_nanos: u64) -> u64 {
    sim_now_nanos
}

pub fn elapsed_ms(start_ms: u64, now_ms: u64) -> u64 {
    now_ms.saturating_sub(start_ms)
}
