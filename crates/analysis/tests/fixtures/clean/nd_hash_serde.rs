//! Known-clean counterpart of `bad/nd_hash_serde.rs`: ordered map in
//! the snapshot keeps serialized bytes identical across runs.

use std::collections::BTreeMap;

#[derive(Debug, Serialize)]
pub struct Snapshot {
    pub seed: u64,
    pub counts: BTreeMap<u32, u64>,
}
