//! Known-clean counterpart of `bad/nd_rand.rs`: all randomness is
//! derived from an explicit seed, so every run reproduces.

use rand::{rngs::SmallRng, Rng, SeedableRng};

pub fn jitter_ms(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen_range(0..1000)
}
