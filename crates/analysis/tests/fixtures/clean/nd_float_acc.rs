//! Known-clean counterpart of `bad/nd_float_acc.rs`: measurements are
//! kept in integer units (nanoseconds), where addition is associative
//! and any reduction order yields identical bits.

pub fn mean_latency_nanos(samples: &[u64]) -> u64 {
    let total = samples.iter().sum::<u64>();
    total / samples.len().max(1) as u64
}
