//! The analyzer run as a test: scanning the workspace this crate lives
//! in must uphold the determinism contract. This is the same check
//! `tools/check.sh` performs via the `peering-analyze` binary, kept as
//! a test so `cargo test --workspace` alone enforces the contract.

use peering_analysis::analyze_workspace;
use peering_analysis::annotations::MIN_REASON_LEN;
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/analysis -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root exists")
}

#[test]
fn workspace_upholds_the_determinism_contract() {
    let report = analyze_workspace(workspace_root()).expect("scan workspace");
    assert!(report.files_scanned > 50, "suspiciously small scan");
    assert!(
        report.ok,
        "determinism contract violated:\nunallowlisted: {:#?}\nproblems: {:#?}",
        report.unallowlisted, report.allowlist_problems
    );
}

#[test]
fn workspace_allowlist_entries_are_justified_and_live() {
    let report = analyze_workspace(workspace_root()).expect("scan workspace");
    // `ok` already implies no stale entries; restate the per-entry
    // properties so a regression names the offending entry directly.
    assert!(
        report.allowlist_problems.is_empty(),
        "{:#?}",
        report.allowlist_problems
    );
    for entry in &report.allowlist {
        assert!(
            entry.reason.trim().len() >= MIN_REASON_LEN,
            "{}: reason too short: {:?}",
            entry.file,
            entry.reason
        );
    }
}

#[test]
fn workspace_report_is_deterministic() {
    let a = analyze_workspace(workspace_root())
        .expect("scan 1")
        .to_json();
    let b = analyze_workspace(workspace_root())
        .expect("scan 2")
        .to_json();
    assert_eq!(a, b, "same tree must produce byte-identical reports");
}
