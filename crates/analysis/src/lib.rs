//! `peering-analysis`: determinism & concurrency static analysis.
//!
//! Every invariant this reproduction pins — bitwise-identical Loc-RIB
//! digests across chaos/abuse campaigns, byte-deterministic MRT
//! archives, same-seed telemetry snapshots — rests on a determinism
//! contract: *no wall-clock time, no ambient randomness, no
//! hash-order-dependent data flow in shipped code*. `peering-verify`
//! proves experiment *configs* safe; this crate proves the *codebase*
//! deterministic, and inventories the shared state that the upcoming
//! sharded parallel event engine (ROADMAP item 1) must not cross
//! shard boundaries.
//!
//! The driver scans every workspace crate's `src/` tree (vendored
//! stand-ins and `#[cfg(test)]` items excluded), applies the lint
//! catalog in [`lints::CATALOG`], resolves inline
//! `// peering-analysis: allow(<lint>, reason = "...")` annotations,
//! and emits a deterministic JSON report. Deny findings without an
//! annotation, malformed annotations, and *stale* annotations (ones
//! whose target line no longer triggers the lint) all fail the gate —
//! so the allowlist can only shrink.

pub mod annotations;
pub mod lints;
pub mod report;
pub mod source;

use annotations::{parse_annotations, AllowEntry, AnnotationError};
use lints::{check_file, lint_by_id, Finding, Severity, CATALOG};
use report::{AnalysisReport, LintCounts, ReportAllow, ReportFinding, ReportProblem};
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Everything the scan produced, before report assembly.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// All findings, across all files.
    pub findings: Vec<Finding>,
    /// All parsed allow entries.
    pub allows: Vec<AllowEntry>,
    /// Malformed annotations.
    pub annotation_errors: Vec<AnnotationError>,
    /// Files scanned.
    pub files: usize,
    /// Lines scanned.
    pub lines: usize,
}

/// Scan a workspace rooted at `root` and assemble the report.
pub fn analyze_workspace(root: &Path) -> std::io::Result<AnalysisReport> {
    let mut files = collect_files(root)?;
    files.sort();
    let mut outcome = ScanOutcome::default();
    for path in &files {
        let text = std::fs::read_to_string(root.join(path))?;
        let sf = SourceFile::parse(path, &text);
        outcome.files += 1;
        outcome.lines += sf.line_count();
        outcome.findings.extend(check_file(&sf));
        let (allows, errors) = parse_annotations(&sf);
        outcome.allows.extend(allows);
        outcome.annotation_errors.extend(errors);
    }
    Ok(assemble(outcome))
}

/// Workspace-relative `.rs` files under the scan roots, `/`-separated.
fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    // Umbrella crate sources.
    walk(&root.join("src"), root, &mut out)?;
    // Member crates: crates/<name>/src only.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let src = entry.path().join("src");
            walk(&src, root, &mut out)?;
        }
    }
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Match findings against the allowlist and build the report.
pub fn assemble(outcome: ScanOutcome) -> AnalysisReport {
    let ScanOutcome {
        mut findings,
        mut allows,
        annotation_errors,
        files,
        lines,
    } = outcome;
    findings.sort();
    allows.sort();

    let mut problems: Vec<ReportProblem> = annotation_errors
        .into_iter()
        .map(|e| ReportProblem {
            file: e.file,
            line: e.line,
            message: e.message,
        })
        .collect();

    let mut lint_counts: BTreeMap<String, LintCounts> = CATALOG
        .iter()
        .map(|l| (l.id.to_string(), LintCounts::default()))
        .collect();
    let mut unallowlisted = Vec::new();
    let mut shared_state = Vec::new();
    let mut allow_used = vec![false; allows.len()];

    for f in &findings {
        let info = lint_by_id(f.lint).expect("finding carries a cataloged lint");
        let counts = lint_counts.entry(f.lint.to_string()).or_default();
        counts.findings += 1;
        let covered = allows.iter().enumerate().any(|(i, a)| {
            let hit = a.file == f.file && a.target_line == f.line && a.lint == f.lint;
            if hit {
                allow_used[i] = true;
            }
            hit
        });
        if covered {
            counts.allowed += 1;
        }
        match info.severity {
            Severity::Audit => shared_state.push(ReportFinding {
                file: f.file.clone(),
                line: f.line,
                lint: f.lint.to_string(),
                detail: f.detail.clone(),
            }),
            Severity::Deny => {
                if !covered {
                    unallowlisted.push(ReportFinding {
                        file: f.file.clone(),
                        line: f.line,
                        lint: f.lint.to_string(),
                        detail: f.detail.clone(),
                    });
                }
            }
        }
    }

    for (i, a) in allows.iter().enumerate() {
        if lint_by_id(&a.lint).is_none() {
            problems.push(ReportProblem {
                file: a.file.clone(),
                line: a.line,
                message: format!("unknown lint id {:?} in allow annotation", a.lint),
            });
        } else if !allow_used[i] {
            problems.push(ReportProblem {
                file: a.file.clone(),
                line: a.line,
                message: format!(
                    "stale allowlist entry: line {} no longer triggers `{}` — delete it",
                    a.target_line, a.lint
                ),
            });
        }
    }
    problems.sort();
    unallowlisted.sort();
    shared_state.sort();

    let allowlist: Vec<ReportAllow> = allows
        .iter()
        .map(|a| ReportAllow {
            file: a.file.clone(),
            line: a.target_line,
            lint: a.lint.clone(),
            reason: a.reason.clone(),
        })
        .collect();
    let ok = unallowlisted.is_empty() && problems.is_empty();
    AnalysisReport {
        schema: "peering-analysis/v1",
        files_scanned: files,
        lines_scanned: lines,
        lints: lint_counts,
        unallowlisted,
        allowlist_size: allowlist.len(),
        allowlist,
        allowlist_problems: problems,
        shared_state,
        ok,
    }
}

/// Analyze a single source string (fixtures and unit tests).
pub fn analyze_str(rel_path: &str, text: &str) -> AnalysisReport {
    let sf = SourceFile::parse(rel_path, text);
    let (allows, errors) = parse_annotations(&sf);
    assemble(ScanOutcome {
        findings: check_file(&sf),
        allows,
        annotation_errors: errors,
        files: 1,
        lines: sf.line_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlisted_finding_passes() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> usize {\n\
                   // peering-analysis: allow(nd-hash-iter, reason = \"order-insensitive count of values\")\n\
                   s.m.values().count()\n\
                   }\n";
        let r = analyze_str("x.rs", src);
        assert!(r.ok, "{:?}", r);
        assert_eq!(r.allowlist_size, 1);
        assert_eq!(r.lints["nd-hash-iter"].allowed, 1);
    }

    #[test]
    fn unallowlisted_finding_fails() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> usize { s.m.values().count() }\n";
        let r = analyze_str("x.rs", src);
        assert!(!r.ok);
        assert_eq!(r.unallowlisted.len(), 1);
    }

    #[test]
    fn stale_allow_fails() {
        let src =
            "// peering-analysis: allow(nd-time, reason = \"no longer applies to this line\")\n\
                   let x = 1;\n";
        let r = analyze_str("x.rs", src);
        assert!(!r.ok);
        assert_eq!(r.allowlist_problems.len(), 1);
        assert!(r.allowlist_problems[0].message.contains("stale"));
    }

    #[test]
    fn unknown_lint_id_fails() {
        let src = "// peering-analysis: allow(nd-bogus, reason = \"this lint does not exist\")\n\
                   let x = 1;\n";
        let r = analyze_str("x.rs", src);
        assert!(!r.ok);
        assert!(r.allowlist_problems[0].message.contains("unknown lint id"));
    }

    #[test]
    fn audit_findings_do_not_fail() {
        let src = "struct S { c: RefCell<u32> }\n";
        let r = analyze_str("x.rs", src);
        assert!(r.ok);
        assert_eq!(r.shared_state.len(), 1);
    }

    #[test]
    fn report_json_is_deterministic() {
        let src = "struct S { m: HashMap<u32, u32>, c: RefCell<u8> }\n";
        let a = analyze_str("x.rs", src).to_json();
        let b = analyze_str("x.rs", src).to_json();
        assert_eq!(a, b);
    }
}
