//! The allowlist: inline `peering-analysis: allow(...)` annotations.
//!
//! Syntax (inside any comment):
//!
//! ```text
//! // peering-analysis: allow(nd-hash-iter, reason = "order feeds an order-insensitive sum")
//! ```
//!
//! An annotation covers exactly one code line: the line it trails, or —
//! when it stands on a comment-only line — the next line that carries
//! code. Every annotation is machine-checked: the lint id must exist,
//! the reason must be substantive (at least [`MIN_REASON_LEN`] chars),
//! and the covered line must actually trigger the named lint — a stale
//! entry is an error, so the allowlist can only shrink as sites are
//! fixed.

use crate::source::SourceFile;

/// Minimum length of a trimmed `reason` string.
pub const MIN_REASON_LEN: usize = 10;

/// One parsed allow annotation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowEntry {
    /// File the annotation lives in (workspace-relative).
    pub file: String,
    /// Line the annotation text appears on (1-indexed).
    pub line: usize,
    /// Code line the annotation covers (1-indexed).
    pub target_line: usize,
    /// Lint id being allowed.
    pub lint: String,
    /// Human justification (machine-checked to be non-trivial).
    pub reason: String,
}

/// A malformed annotation (always an error).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AnnotationError {
    /// File containing the malformed annotation.
    pub file: String,
    /// Line of the annotation.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

const MARKER: &str = "peering-analysis:";

/// Extract every annotation in a file and resolve its target line.
pub fn parse_annotations(file: &SourceFile) -> (Vec<AllowEntry>, Vec<AnnotationError>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, comment) in file.comment_lines.iter().enumerate() {
        let Some(pos) = comment.find(MARKER) else {
            continue;
        };
        // Only a plain `// peering-analysis: ...` comment is an
        // annotation: anything before the marker (doc-comment `!`/`/`
        // sigils, quoted examples in prose) disarms it.
        if !comment[..pos].trim().is_empty() {
            continue;
        }
        let line = idx + 1;
        let rest = comment[pos + MARKER.len()..].trim_start();
        match parse_allow(rest) {
            Ok((lint, reason)) => {
                if reason.trim().len() < MIN_REASON_LEN {
                    errors.push(AnnotationError {
                        file: file.rel_path.clone(),
                        line,
                        message: format!(
                            "reason too short (< {MIN_REASON_LEN} chars): {:?}",
                            reason.trim()
                        ),
                    });
                    continue;
                }
                let target_line = resolve_target(file, idx);
                entries.push(AllowEntry {
                    file: file.rel_path.clone(),
                    line,
                    target_line,
                    lint,
                    reason: reason.trim().to_string(),
                });
            }
            Err(msg) => errors.push(AnnotationError {
                file: file.rel_path.clone(),
                line,
                message: msg,
            }),
        }
    }
    (entries, errors)
}

/// The code line an annotation on comment-line `idx` covers: the same
/// line when it carries code, else the next line with code on it.
fn resolve_target(file: &SourceFile, idx: usize) -> usize {
    if !file.code_lines[idx].trim().is_empty() {
        return idx + 1;
    }
    for (j, code) in file.code_lines.iter().enumerate().skip(idx + 1) {
        if !code.trim().is_empty() {
            return j + 1;
        }
    }
    idx + 1
}

/// Parse `allow(<lint>, reason = "<text>")`.
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let rest = rest
        .strip_prefix("allow(")
        .ok_or_else(|| format!("expected `allow(...)`, found {:?}", clip(rest)))?;
    let comma = rest
        .find(',')
        .ok_or_else(|| "missing `, reason = \"...\"`".to_string())?;
    let lint = rest[..comma].trim().to_string();
    if lint.is_empty() || !lint.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(format!("bad lint id {:?}", lint));
    }
    let after = rest[comma + 1..].trim_start();
    let after = after
        .strip_prefix("reason")
        .ok_or_else(|| "missing `reason = \"...\"`".to_string())?
        .trim_start();
    let after = after
        .strip_prefix('=')
        .ok_or_else(|| "missing `=` after `reason`".to_string())?
        .trim_start();
    let after = after
        .strip_prefix('"')
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    let end = after
        .find('"')
        .ok_or_else(|| "unterminated reason string".to_string())?;
    let reason = after[..end].to_string();
    let tail = after[end + 1..].trim_start();
    if !tail.starts_with(')') {
        return Err("expected `)` closing the annotation".to_string());
    }
    Ok((lint, reason))
}

fn clip(s: &str) -> String {
    s.chars().take(40).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("t.rs", src)
    }

    #[test]
    fn trailing_annotation_targets_its_own_line() {
        let f = file(
            "let m = std_map(); // peering-analysis: allow(nd-hash-iter, reason = \"membership only, never iterated\")\n",
        );
        let (entries, errors) = parse_annotations(&f);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].target_line, 1);
        assert_eq!(entries[0].lint, "nd-hash-iter");
    }

    #[test]
    fn standalone_annotation_targets_next_code_line() {
        let f = file(
            "// peering-analysis: allow(nd-time, reason = \"wall clock used for operator logs only\")\n// more prose\nlet t = 1;\n",
        );
        let (entries, errors) = parse_annotations(&f);
        assert!(errors.is_empty());
        assert_eq!(entries[0].target_line, 3);
    }

    #[test]
    fn short_reason_is_rejected() {
        let f = file("// peering-analysis: allow(nd-time, reason = \"ok\")\nlet t = 1;\n");
        let (entries, errors) = parse_annotations(&f);
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("too short"));
    }

    #[test]
    fn malformed_annotation_is_rejected() {
        let f = file("// peering-analysis: allow(nd-time)\nlet t = 1;\n");
        let (entries, errors) = parse_annotations(&f);
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 1);
    }
}
