//! Lexical source model for the analyzer.
//!
//! The driver deliberately avoids a full Rust parser (the workspace
//! builds offline, with no `syn` available): lints operate on a
//! *code view* of each file in which comments and string/char literal
//! contents are blanked out, so textual patterns cannot be fooled by
//! doc prose or log messages. Comments are collected separately —
//! that is where `peering-analysis: allow(...)` annotations live.
//!
//! The model also tracks `#[cfg(test)]` item spans so in-crate unit
//! tests (which assert *with* hash containers rather than ship them)
//! are excluded from the shipped-code lints.

/// One scanned file: per-line code view, comments, and test spans.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Code view, one entry per source line (1-indexed via `line - 1`).
    /// Comments and literal contents are replaced by spaces.
    pub code_lines: Vec<String>,
    /// Comment text per line (concatenated when a line holds several).
    pub comment_lines: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

impl SourceFile {
    /// Build the lexical model for one file.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let bytes: Vec<char> = text.chars().collect();
        let mut code = String::with_capacity(text.len());
        let mut comment = String::with_capacity(64);
        let mut code_lines = Vec::new();
        let mut comment_lines = Vec::new();
        let mut mode = Mode::Code;
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            if c == '\n' {
                // A newline ends line comments; block comments and raw
                // strings continue across lines.
                if mode == Mode::LineComment {
                    mode = Mode::Code;
                }
                code_lines.push(std::mem::take(&mut code));
                comment_lines.push(std::mem::take(&mut comment));
                i += 1;
                continue;
            }
            match mode {
                Mode::Code => {
                    let next = bytes.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        mode = Mode::LineComment;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        mode = Mode::Str;
                        code.push('"');
                        i += 1;
                        continue;
                    }
                    if c == 'r' && matches!(next, Some('"') | Some('#')) {
                        // Possible raw string: r"..." or r#"..."# etc.
                        let mut hashes = 0u32;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            mode = Mode::RawStr(hashes);
                            for _ in i..=j {
                                code.push(' ');
                            }
                            i = j + 1;
                            continue;
                        }
                    }
                    if c == '\'' {
                        // Char literal vs lifetime: a literal closes with
                        // a quote within a few chars; a lifetime does not.
                        let close = if bytes.get(i + 1) == Some(&'\\') {
                            // escaped char: 'x' forms like '\n', '\u{..}'
                            (i + 2..(i + 12).min(bytes.len())).find(|&j| bytes[j] == '\'')
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            Some(i + 2)
                        } else {
                            None
                        };
                        if let Some(end) = close {
                            for _ in i..=end {
                                code.push(' ');
                            }
                            i = end + 1;
                            continue;
                        }
                        // Lifetime tick: keep as-is.
                        code.push('\'');
                        i += 1;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                }
                Mode::LineComment => {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
                Mode::BlockComment(depth) => {
                    let next = bytes.get(i + 1).copied();
                    if c == '*' && next == Some('/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::BlockComment(depth - 1)
                        };
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        mode = Mode::BlockComment(depth + 1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
                Mode::Str => {
                    if c == '\\' {
                        code.push(' ');
                        if bytes.get(i + 1).is_some() && bytes[i + 1] != '\n' {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                        continue;
                    }
                    if c == '"' {
                        mode = Mode::Code;
                        code.push('"');
                        i += 1;
                        continue;
                    }
                    code.push(' ');
                    i += 1;
                }
                Mode::RawStr(hashes) => {
                    if c == '"' {
                        // Check for closing "### with the right count.
                        let mut ok = true;
                        for k in 0..hashes {
                            if bytes.get(i + 1 + k as usize) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..=hashes {
                                code.push(' ');
                            }
                            i += 1 + hashes as usize;
                            mode = Mode::Code;
                            continue;
                        }
                    }
                    code.push(' ');
                    i += 1;
                }
            }
        }
        if !code.is_empty() || !comment.is_empty() {
            code_lines.push(code);
            comment_lines.push(comment);
        }
        let in_test = mark_test_spans(&code_lines);
        SourceFile {
            rel_path: rel_path.to_string(),
            code_lines,
            comment_lines,
            in_test,
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.code_lines.len()
    }
}

/// Mark every line belonging to a `#[cfg(test)]` item (attribute line
/// through the close of the item's brace block).
fn mark_test_spans(code_lines: &[String]) -> Vec<bool> {
    let mut marks = vec![false; code_lines.len()];
    let mut idx = 0usize;
    while idx < code_lines.len() {
        if !code_lines[idx].contains("#[cfg(test)]") {
            idx += 1;
            continue;
        }
        // Consume from the attribute to the end of the following braced
        // item (depth returns to zero after the first `{`).
        let mut depth: i64 = 0;
        let mut seen_open = false;
        let mut j = idx;
        while j < code_lines.len() {
            marks[j] = true;
            for ch in code_lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if seen_open && depth <= 0 {
                break;
            }
            j += 1;
        }
        idx = j + 1;
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"HashMap inside string\"; // HashMap in comment\nlet y = 1;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.code_lines[0].contains("HashMap"));
        assert!(f.comment_lines[0].contains("HashMap in comment"));
        assert!(f.code_lines[1].contains("let y"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let x = r#\"Instant::now()\"#;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.code_lines[0].contains("Instant"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let src = "let c = '\"'; let m: HashMap<u8, u8> = HashMap::new();\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.code_lines[0].contains("HashMap"));
    }

    #[test]
    fn lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.code_lines[0].contains("'a"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let z = 3;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.code_lines[0].contains("let z"));
        assert!(!f.code_lines[0].contains("outer"));
    }

    #[test]
    fn cfg_test_spans_marked() {
        let src =
            "fn shipped() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn also_shipped() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.in_test, vec![false, true, true, true, true, false]);
    }
}
