//! The lint catalog and the textual matchers behind each lint.
//!
//! Matchers run over the blanked code view from [`crate::source`], so
//! comments and string literals can never trigger them. They are
//! deliberately conservative heuristics — false negatives are accepted
//! (clippy's `disallowed-types`/`disallowed-methods` backstops the
//! cheap cases with real name resolution), while every positive is
//! either fixed or carries a reviewed `allow` annotation.

use crate::source::SourceFile;

/// How a lint's findings are treated by the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Must be fixed or explicitly allowlisted; otherwise the run fails.
    Deny,
    /// Inventory only: counted and reported, never fatal. Used for the
    /// concurrency-readiness audit ahead of the parallel event engine.
    Audit,
}

/// Static description of one lint.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Stable kebab-case id (used in annotations and the JSON report).
    pub id: &'static str,
    /// One-line description for reports and docs.
    pub summary: &'static str,
    /// Deny or audit.
    pub severity: Severity,
}

/// The full catalog, in report order.
pub const CATALOG: &[LintInfo] = &[
    LintInfo {
        id: "nd-time",
        summary: "wall-clock time source (std::time::Instant / SystemTime); \
                  simulation code must use SimTime",
        severity: Severity::Deny,
    },
    LintInfo {
        id: "nd-rand",
        summary: "ambient randomness (thread_rng / from_entropy / OsRng / rand::random); \
                  all randomness must come from an explicit seed",
        severity: Severity::Deny,
    },
    LintInfo {
        id: "nd-hash-iter",
        summary: "iteration over a HashMap/HashSet binding; iteration order is \
                  nondeterministic across processes — use BTreeMap/BTreeSet or sort",
        severity: Severity::Deny,
    },
    LintInfo {
        id: "nd-hash-serde",
        summary: "HashMap/HashSet field in a #[derive(Serialize)] container; \
                  serialization iterates in hash order and breaks byte-stable snapshots",
        severity: Severity::Deny,
    },
    LintInfo {
        id: "nd-float-acc",
        summary: "float accumulation (.sum/.product/fold over f32/f64); \
                  result depends on reduction order — unsafe for digests and \
                  for the sharded parallel engine",
        severity: Severity::Deny,
    },
    LintInfo {
        id: "cc-shared",
        summary: "shared-state inventory for the parallel-engine readiness audit: \
                  static mut, RefCell, Rc, Cell, thread_local!, raw pointers \
                  (non-Send/Sync state that cannot cross shard boundaries)",
        severity: Severity::Audit,
    },
];

/// Look up a lint by id.
pub fn lint_by_id(id: &str) -> Option<&'static LintInfo> {
    CATALOG.iter().find(|l| l.id == id)
}

/// One raw finding, before allowlist matching.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// File (workspace-relative).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Lint id.
    pub lint: &'static str,
    /// For `cc-shared`: which construct was inventoried.
    pub detail: String,
}

/// Run every lint over one file.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let hash_names = collect_hash_bindings(file);
    let serde_fields = serde_hash_fields(file);
    for (idx, code) in file.code_lines.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let line = idx + 1;
        let mut push = |lint: &'static str, detail: &str| {
            findings.push(Finding {
                file: file.rel_path.clone(),
                line,
                lint,
                detail: detail.to_string(),
            });
        };

        // nd-time
        if code.contains("std::time::") || has_word(code, "SystemTime") || has_word(code, "Instant")
        {
            push("nd-time", "wall-clock reference");
        }

        // nd-rand
        if has_word(code, "thread_rng")
            || has_word(code, "from_entropy")
            || has_word(code, "OsRng")
            || code.contains("rand::random")
        {
            push("nd-rand", "ambient randomness");
        }

        // nd-hash-iter. Method chains may break across lines
        // (`self.sessions\n    .iter()`), so the receiver's line is
        // matched against itself joined with its successor.
        let next_code = file
            .code_lines
            .get(idx + 1)
            .map(|s| s.as_str())
            .unwrap_or("");
        for name in &hash_names {
            if let Some(kind) = iteration_site(code, next_code, name) {
                push("nd-hash-iter", &format!("{name}.{kind}"));
                break; // one finding per line is enough
            }
        }

        // nd-hash-serde
        if serde_fields.contains(&line) {
            push("nd-hash-serde", "hash container in Serialize derive");
        }

        // nd-float-acc
        for pat in [
            ".sum::<f32>",
            ".sum::<f64>",
            ".product::<f32>",
            ".product::<f64>",
            "fold(0.0",
            "fold(0f32",
            "fold(0f64",
        ] {
            if code.contains(pat) {
                push("nd-float-acc", pat);
                break;
            }
        }

        // cc-shared inventory
        for (pat, kind, word) in [
            ("static mut ", "static-mut", false),
            ("RefCell", "ref-cell", true),
            ("Rc", "rc", true),
            ("Cell", "cell", true),
            ("thread_local!", "thread-local", false),
            ("*const ", "raw-pointer", false),
            ("*mut ", "raw-pointer", false),
        ] {
            let hit = if word {
                // Type position only: `Rc<` / `Rc::`.
                word_followed_by(code, pat, &["<", "::"])
            } else {
                code.contains(pat)
            };
            if hit {
                push("cc-shared", kind);
            }
        }
    }
    findings
}

/// True if `word` occurs with non-identifier chars (or edges) around it.
fn has_word(line: &str, word: &str) -> bool {
    find_words(line, word).next().is_some()
}

/// True if `word` occurs (word-boundary) immediately followed by one of
/// `suffixes`.
fn word_followed_by(line: &str, word: &str, suffixes: &[&str]) -> bool {
    find_words(line, word).any(|pos| {
        let rest = &line[pos + word.len()..];
        suffixes.iter().any(|s| rest.starts_with(s))
    })
}

/// Word-boundary occurrences of `word` in `line`.
fn find_words<'a>(line: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = line.as_bytes();
    let wlen = word.len();
    line.match_indices(word).filter_map(move |(pos, _)| {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after_ok = pos + wlen >= bytes.len() || !is_ident_byte(bytes[pos + wlen]);
        (before_ok && after_ok).then_some(pos)
    })
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Pass A of `nd-hash-iter`: names bound to HashMap/HashSet in this file
/// (struct fields, typed lets/params, and `= HashMap::new()` forms).
fn collect_hash_bindings(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for (idx, code) in file.code_lines.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            for pos in find_words(code, ty) {
                let rest = &code[pos + ty.len()..];
                if let Some(name) = if rest.starts_with('<') {
                    // `name: [&[mut]] [std::collections::]HashMap<...>`
                    ident_before_colon(&code[..pos])
                } else if rest.starts_with("::new")
                    || rest.starts_with("::with_capacity")
                    || rest.starts_with("::default")
                    || rest.starts_with("::from")
                {
                    // `let [mut] name = HashMap::new()`
                    ident_before_assign(&code[..pos])
                } else {
                    None
                } {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

/// From text ending just before a hash type, extract `name` in
/// `... name : [&][mut ][std::collections::]`.
fn ident_before_colon(prefix: &str) -> Option<String> {
    let mut s = prefix.trim_end();
    for strip in ["std::collections::", "collections::", "std::"] {
        s = s.strip_suffix(strip).unwrap_or(s).trim_end();
    }
    s = s.strip_suffix("mut").unwrap_or(s).trim_end();
    s = s.strip_suffix('&').unwrap_or(s).trim_end();
    let s = s.strip_suffix(':')?.trim_end();
    take_trailing_ident(s)
}

/// From text ending just before `HashMap::new`-style constructors,
/// extract `name` in `let [mut] name [: _] = `.
fn ident_before_assign(prefix: &str) -> Option<String> {
    let s = prefix.trim_end();
    let s = s.strip_suffix('=')?.trim_end();
    // Skip an optional inferred-type ascription like `: _`.
    let s = s.strip_suffix(": _").unwrap_or(s).trim_end();
    take_trailing_ident(s)
}

fn take_trailing_ident(s: &str) -> Option<String> {
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_ascii_alphanumeric() || *c == '_')
        .map(|(i, _)| i)
        .last()?;
    let ident = &s[start..end];
    let first = ident.chars().next()?;
    if first.is_ascii_digit() {
        return None;
    }
    // Keywords / self are not bindings we can track.
    if matches!(ident, "self" | "pub" | "let" | "mut" | "fn" | "impl") {
        return None;
    }
    Some(ident.to_string())
}

const ITER_METHODS: &[&str] = &[
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "into_iter()",
    "into_keys()",
    "into_values()",
    "drain(",
    "retain(",
];

/// Pass B of `nd-hash-iter`: does `line` iterate the binding `name`?
/// `next_line` extends the view so a chained method on the following
/// line is still attributed to the receiver's line. Returns the matched
/// method (or `for-in`) for the finding detail.
fn iteration_site(line: &str, next_line: &str, name: &str) -> Option<&'static str> {
    let joined = format!("{} {}", line, next_line.trim_start());
    for pos in find_words(line, name) {
        let rest = &joined[pos + name.len()..];
        if let Some(stripped) = rest.strip_prefix('.') {
            for m in ITER_METHODS {
                if stripped.starts_with(m) {
                    return Some(m);
                }
            }
        }
        // `name\n    .iter()` — receiver alone at end of line.
        if rest.starts_with(' ') {
            let cont = rest.trim_start();
            if let Some(stripped) = cont.strip_prefix('.') {
                if line[pos + name.len()..].trim().is_empty() {
                    for m in ITER_METHODS {
                        if stripped.starts_with(m) {
                            return Some(m);
                        }
                    }
                }
            }
        }
        // `for x in [&[mut ]]name` (including `in name {`).
        let before = line[..pos].trim_end();
        let before = before.strip_suffix('&').unwrap_or(before).trim_end();
        let before = before.strip_suffix("&mut").unwrap_or(before).trim_end();
        if before.ends_with(" in") || before.ends_with("(in") {
            // Only a real iteration when the loop body / adapter follows,
            // not an index expression like `name[key]`.
            if rest.trim_start().starts_with('{') || rest.trim_start().is_empty() {
                return Some("for-in");
            }
        }
    }
    None
}

/// Lines holding HashMap/HashSet fields inside `#[derive(.. Serialize ..)]`
/// containers.
fn serde_hash_fields(file: &SourceFile) -> Vec<usize> {
    let mut out = Vec::new();
    let n = file.code_lines.len();
    let mut idx = 0usize;
    while idx < n {
        if file.in_test[idx] {
            idx += 1;
            continue;
        }
        let code = &file.code_lines[idx];
        if !(code.contains("#[derive(") || code.contains("#[derive (")) {
            idx += 1;
            continue;
        }
        // Collect the (possibly multi-line) derive list.
        let mut derive_text = String::new();
        let mut j = idx;
        loop {
            derive_text.push_str(&file.code_lines[j]);
            if file.code_lines[j].contains(")]") || j + 1 >= n {
                break;
            }
            j += 1;
        }
        if !has_word(&derive_text, "Serialize") {
            idx = j + 1;
            continue;
        }
        // Find the container item (skipping further attributes / docs).
        let mut k = j + 1;
        while k < n {
            let l = &file.code_lines[k];
            if has_word(l, "struct") || has_word(l, "enum") {
                break;
            }
            if !l.trim().is_empty() && !l.trim_start().starts_with("#[") {
                break; // not a container after all
            }
            k += 1;
        }
        if k >= n
            || !(has_word(&file.code_lines[k], "struct") || has_word(&file.code_lines[k], "enum"))
        {
            idx = j + 1;
            continue;
        }
        // Walk the container body to its closing brace.
        let mut depth: i64 = 0;
        let mut seen_open = false;
        let mut m = k;
        while m < n {
            let l = &file.code_lines[m];
            if seen_open && (has_word(l, "HashMap") || has_word(l, "HashSet")) && l.contains(':') {
                out.push(m + 1);
            }
            for ch in l.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => depth -= 1,
                    ';' if !seen_open => depth = -1, // tuple/unit struct
                    _ => {}
                }
            }
            if seen_open && depth <= 0 {
                break;
            }
            if depth < 0 {
                break;
            }
            m += 1;
        }
        idx = m + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        check_file(&SourceFile::parse("t.rs", src))
    }

    fn ids(src: &str) -> Vec<&'static str> {
        findings(src).into_iter().map(|f| f.lint).collect()
    }

    #[test]
    fn time_and_rand_hazards() {
        assert_eq!(ids("let t = std::time::Instant::now();"), vec!["nd-time"]);
        assert_eq!(ids("let r = thread_rng();"), vec!["nd-rand"]);
        assert!(ids("let t = SimTime::ZERO;").is_empty());
    }

    #[test]
    fn hash_iteration_is_flagged_lookup_is_not() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) { for v in s.m.values() { let _ = v; } }\n\
                   fn g(s: &S) -> Option<&u32> { s.m.get(&1) }\n";
        let f = findings(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "nd-hash-iter");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn let_binding_iteration_is_flagged() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2);\n\
                   for (k, v) in &m { let _ = (k, v); } }\n";
        let f = findings(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn serde_hash_field_is_flagged() {
        let src = "#[derive(Debug, Serialize)]\n\
                   struct S {\n    m: HashMap<u32, u32>,\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "nd-hash-serde");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn non_serde_hash_field_is_not_serde_flagged() {
        let src = "#[derive(Debug, Clone)]\nstruct S {\n    m: HashMap<u32, u32>,\n}\n";
        assert!(ids(src).is_empty());
    }

    #[test]
    fn float_accumulation() {
        assert_eq!(
            ids("let s: f64 = xs.iter().sum::<f64>();"),
            vec!["nd-float-acc"]
        );
    }

    #[test]
    fn shared_state_inventory() {
        let f = findings("struct S { c: RefCell<u32>, r: Rc<String> }");
        let kinds: Vec<&str> = f.iter().map(|x| x.detail.as_str()).collect();
        assert!(kinds.contains(&"ref-cell"));
        assert!(kinds.contains(&"rc"));
        assert!(f.iter().all(|x| x.lint == "cc-shared"));
    }

    #[test]
    fn arc_is_not_rc() {
        assert!(ids("let a: Arc<u32> = Arc::new(1);").is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { let t = std::time::Instant::now(); }\n}\n";
        assert!(ids(src).is_empty());
    }
}
