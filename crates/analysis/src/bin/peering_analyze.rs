//! `peering-analyze`: run the determinism & concurrency static
//! analysis over the workspace and emit the machine-readable report.
//!
//! ```text
//! cargo run -p peering-analysis --bin peering-analyze -- [--root DIR] [--json OUT] [--quiet]
//! ```
//!
//! Exits non-zero when the tree violates the determinism contract:
//! any deny-severity finding without a reviewed `allow` annotation,
//! any malformed annotation, or any stale allowlist entry.

use peering_analysis::analyze_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--quiet" => quiet = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("peering-analyze: scanning {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("peering-analyze: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if !quiet {
        println!(
            "peering-analyze: {} files / {} lines scanned",
            report.files_scanned, report.lines_scanned
        );
        for (id, counts) in &report.lints {
            println!(
                "  {id:<14} findings={:<4} allowed={}",
                counts.findings, counts.allowed
            );
        }
        println!(
            "  allowlist: {} entries; shared-state inventory: {} sites",
            report.allowlist_size,
            report.shared_state.len()
        );
    }
    for f in &report.unallowlisted {
        eprintln!(
            "error[{}]: {}:{} ({}) — fix it or add \
             `// peering-analysis: allow({}, reason = \"...\")`",
            f.lint, f.file, f.line, f.detail, f.lint
        );
    }
    for p in &report.allowlist_problems {
        eprintln!("error[allowlist]: {}:{} {}", p.file, p.line, p.message);
    }
    if report.ok {
        if !quiet {
            println!("peering-analyze: determinism contract holds");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "peering-analyze: contract violated ({} unallowlisted, {} allowlist problems)",
            report.unallowlisted.len(),
            report.allowlist_problems.len()
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("peering-analyze: {msg}");
    eprintln!("usage: peering-analyze [--root DIR] [--json OUT] [--quiet]");
    ExitCode::FAILURE
}
