//! The machine-readable analysis report (`results/BENCH_analysis.json`).
//!
//! Everything is ordered: maps are `BTreeMap`, lists are sorted before
//! serialization, and no wall-clock data is recorded — two runs over
//! the same tree must produce byte-identical JSON (the gate `cmp`s
//! them to pin the analyzer's own determinism).

use serde::Serialize;
use std::collections::BTreeMap;

/// Per-lint tallies.
#[derive(Debug, Clone, Default, Serialize, PartialEq, Eq)]
pub struct LintCounts {
    /// Total findings (allowlisted + not).
    pub findings: usize,
    /// Findings covered by an `allow` annotation.
    pub allowed: usize,
}

/// One finding in the report.
#[derive(Debug, Clone, Serialize, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReportFinding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Lint id.
    pub lint: String,
    /// Matcher detail (method name, inventory kind, ...).
    pub detail: String,
}

/// One allowlist entry in the report.
#[derive(Debug, Clone, Serialize, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReportAllow {
    /// Workspace-relative path.
    pub file: String,
    /// Line of the code the entry covers.
    pub line: usize,
    /// Lint id allowed there.
    pub lint: String,
    /// The reviewed justification.
    pub reason: String,
}

/// A problem with the allowlist itself.
#[derive(Debug, Clone, Serialize, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReportProblem {
    /// Workspace-relative path.
    pub file: String,
    /// Line of the annotation.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

/// The full analysis report.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Report format version.
    pub schema: &'static str,
    /// Files scanned.
    pub files_scanned: usize,
    /// Source lines scanned.
    pub lines_scanned: usize,
    /// Per-lint counts, keyed by lint id.
    pub lints: BTreeMap<String, LintCounts>,
    /// Deny-severity findings with no allowlist cover (gate failures).
    pub unallowlisted: Vec<ReportFinding>,
    /// Every active allowlist entry. The gate tracks `allowlist_size`
    /// so this list can only shrink (stale entries are errors).
    pub allowlist: Vec<ReportAllow>,
    /// Number of active allowlist entries.
    pub allowlist_size: usize,
    /// Annotations that no longer match a finding, or are malformed.
    pub allowlist_problems: Vec<ReportProblem>,
    /// The concurrency-readiness inventory (audit lints).
    pub shared_state: Vec<ReportFinding>,
    /// True when the tree satisfies the determinism contract.
    pub ok: bool,
}

impl AnalysisReport {
    /// Render as stable pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| {
            // Serialization of plain structs cannot fail; keep the
            // binary total anyway.
            format!("{{\"error\":\"{e}\"}}")
        })
    }
}
