//! LIFEGUARD: locate a persistent failure and route around it with
//! AS-path poisoning.
//!
//! The original system (Katz-Bassett et al., SIGCOMM 2012) detects a
//! long-lasting black hole on the path toward its prefix and re-announces
//! the prefix with the broken AS *poisoned* into the path, so that AS's
//! loop detection discards the route and traffic shifts to paths avoiding
//! it. The paper cites LIFEGUARD as an early PEERING-style use of route
//! injection.

use crate::scenarios::pick_vantages;
use peering_core::{AnnouncementSpec, Testbed, TestbedError};
use peering_netsim::Asn;
use peering_topology::routing::TraceOutcome;
use peering_topology::AsIdx;
use serde::{Deserialize, Serialize};

/// Outcome of one LIFEGUARD run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LifeguardReport {
    /// The vantage point whose traffic we repaired.
    pub vantage: AsIdx,
    /// The AS that failed (black-holed).
    pub failed_as: AsIdx,
    /// Did probing detect the outage?
    pub detected: bool,
    /// Did the poisoned re-announcement restore connectivity?
    pub recovered: bool,
    /// AS path before the failure.
    pub path_before: Vec<Asn>,
    /// AS path after the poisoned announcement (empty if unrecovered).
    pub path_after: Vec<Asn>,
}

/// Run LIFEGUARD on a testbed. Tries vantage/failure pairs until it finds
/// one where an alternate policy-compliant path exists, then demonstrates
/// detection and repair.
pub fn run(tb: &mut Testbed) -> Result<LifeguardReport, TestbedError> {
    let sites: Vec<usize> = (0..tb.servers.len()).collect();
    let id = tb.new_experiment("lifeguard", "repro", &sites)?;
    let client = tb.clients[&id].clone();
    tb.announce(id, client.announce_everywhere())?;

    let vantages = pick_vantages(tb, 40);
    for vantage in vantages {
        // Baseline path.
        let path = match tb.traceroute(vantage, &client.prefix) {
            TraceOutcome::Delivered(p) => p,
            _ => continue,
        };
        if path.len() < 4 {
            continue; // need an interior AS to fail
        }
        let path_before: Vec<Asn> = path.iter().map(|&i| tb.graph().info(i).asn).collect();
        // Fail each interior AS in turn until poisoning can repair one.
        for &failed in &path[1..path.len() - 1] {
            if failed == tb.node {
                continue;
            }
            tb.set_blackhole(failed, true);
            let detected = tb.ping(vantage, &client.prefix).is_none();
            if !detected {
                tb.set_blackhole(failed, false);
                continue;
            }
            // Re-announce with the failed AS poisoned. LIFEGUARD paces
            // its control-plane actions; spacing them out also keeps the
            // testbed's flap damping from suppressing the prefix.
            tb.advance(peering_netsim::SimDuration::from_secs(2 * 3600));
            let poisoned = AnnouncementSpec::everywhere(client.prefix, sites.clone())
                .poisoned(vec![tb.graph().info(failed).asn]);
            tb.announce(id, poisoned)?;
            let outcome = tb.traceroute(vantage, &client.prefix);
            if let TraceOutcome::Delivered(new_path) = outcome {
                let path_after: Vec<Asn> =
                    new_path.iter().map(|&i| tb.graph().info(i).asn).collect();
                assert!(!new_path.contains(&failed));
                tb.set_blackhole(failed, false);
                return Ok(LifeguardReport {
                    vantage,
                    failed_as: failed,
                    detected,
                    recovered: true,
                    path_before,
                    path_after,
                });
            }
            // Revert and try the next candidate.
            tb.set_blackhole(failed, false);
            tb.advance(peering_netsim::SimDuration::from_secs(2 * 3600));
            tb.announce(id, client.announce_everywhere())?;
        }
    }
    // No repairable pair found (tiny topologies): report honestly.
    Ok(LifeguardReport {
        vantage: AsIdx(0),
        failed_as: AsIdx(0),
        detected: false,
        recovered: false,
        path_before: Vec::new(),
        path_after: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_core::TestbedConfig;

    #[test]
    fn lifeguard_detects_and_recovers() {
        let mut tb = Testbed::build(TestbedConfig::small(3));
        let report = run(&mut tb).expect("scenario runs");
        assert!(report.detected, "outage must be detected");
        assert!(report.recovered, "poisoning must restore connectivity");
        assert!(!report.path_before.is_empty());
        assert!(!report.path_after.is_empty());
        let failed_asn = tb.graph().info(report.failed_as).asn;
        assert!(report.path_before.contains(&failed_asn));
        assert!(!report.path_after.contains(&failed_asn));
    }

    #[test]
    fn report_serializes() {
        let mut tb = Testbed::build(TestbedConfig::small(4));
        let report = run(&mut tb).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("recovered"));
    }
}
