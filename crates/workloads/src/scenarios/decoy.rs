//! Decoy routing at an IXP: rewrite covert traffic inside the exchange.
//!
//! §3: "A decoy routing service could take traffic at an IXP, rewrite
//! packets, and send the modified packet back to the IXP fabric towards
//! its new destination." A censored client addresses innocuous-looking
//! packets to an overt destination; the decoy router — a VM on the
//! PEERING server at the IXP — recognizes the covert tag, rewrites the
//! destination, and forwards to the covert (blocked) destination. An
//! on-path observer *before* the IXP only ever sees the overt address.

use peering_netsim::{IpPacket, Payload};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The decoy service running on a server VM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecoyRouter {
    /// The overt destination the service shadows.
    pub overt: Ipv4Addr,
    /// The covert tag clients embed (first bytes of the payload).
    pub tag: Vec<u8>,
    /// Packets rewritten so far.
    pub rewritten: u64,
    /// Packets passed through untouched.
    pub passed: u64,
}

impl DecoyRouter {
    /// A service shadowing `overt` with the given covert tag.
    pub fn new(overt: Ipv4Addr, tag: &[u8]) -> Self {
        DecoyRouter {
            overt,
            tag: tag.to_vec(),
            rewritten: 0,
            passed: 0,
        }
    }

    /// Process a packet crossing the IXP. Tagged packets addressed to the
    /// overt destination are rewritten toward the covert destination
    /// carried inside the tag payload; everything else passes untouched.
    pub fn process(&mut self, mut pkt: IpPacket) -> IpPacket {
        if pkt.dst == self.overt {
            if let Payload::Udp { data, .. } = &pkt.payload {
                if data.len() >= self.tag.len() + 4 && data.starts_with(&self.tag) {
                    let o = self.tag.len();
                    let covert = Ipv4Addr::new(data[o], data[o + 1], data[o + 2], data[o + 3]);
                    pkt.dst = covert;
                    self.rewritten += 1;
                    return pkt;
                }
            }
        }
        self.passed += 1;
        pkt
    }
}

/// Build a tagged covert packet: looks like traffic to `overt`, carries
/// the covert destination after the tag.
pub fn covert_packet(src: Ipv4Addr, overt: Ipv4Addr, covert: Ipv4Addr, tag: &[u8]) -> IpPacket {
    let mut data = tag.to_vec();
    data.extend_from_slice(&covert.octets());
    data.extend_from_slice(b"payload");
    IpPacket::new(
        src,
        overt,
        Payload::Udp {
            sport: 443,
            dport: 443,
            data,
        },
    )
}

/// Outcome of the end-to-end check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecoyReport {
    /// The censor only saw the overt destination pre-IXP.
    pub observer_saw_overt: bool,
    /// The packet reached the covert destination post-rewrite.
    pub covert_delivered: bool,
    /// Untagged traffic passed unmodified.
    pub innocent_unaffected: bool,
}

/// Run the end-to-end decoy flow.
pub fn run() -> DecoyReport {
    let overt: Ipv4Addr = "203.0.113.80".parse().expect("addr");
    let covert: Ipv4Addr = "198.51.100.99".parse().expect("addr");
    let client: Ipv4Addr = "192.0.2.33".parse().expect("addr");
    let mut decoy = DecoyRouter::new(overt, b"DECOY1");

    // Covert flow.
    let pkt = covert_packet(client, overt, covert, b"DECOY1");
    let observer_saw_overt = pkt.dst == overt; // pre-IXP view
    let out = decoy.process(pkt);
    let covert_delivered = out.dst == covert;

    // Innocent flow to the same overt address.
    let innocent = IpPacket::new(
        client,
        overt,
        Payload::Udp {
            sport: 1234,
            dport: 80,
            data: b"GET / HTTP/1.1".to_vec(),
        },
    );
    let innocent_out = decoy.process(innocent.clone());
    let innocent_unaffected = innocent_out == innocent;

    DecoyReport {
        observer_saw_overt,
        covert_delivered,
        innocent_unaffected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covert_flow_is_rewritten_and_innocent_flow_is_not() {
        let report = run();
        assert!(report.observer_saw_overt);
        assert!(report.covert_delivered);
        assert!(report.innocent_unaffected);
    }

    #[test]
    fn counters_track_decisions() {
        let overt: Ipv4Addr = "203.0.113.80".parse().unwrap();
        let mut decoy = DecoyRouter::new(overt, b"TAG");
        let covert: Ipv4Addr = "198.51.100.1".parse().unwrap();
        let src: Ipv4Addr = "192.0.2.1".parse().unwrap();
        decoy.process(covert_packet(src, overt, covert, b"TAG"));
        decoy.process(IpPacket::new(src, overt, Payload::Raw(vec![1, 2, 3])));
        // Tagged but to a different destination: passes.
        decoy.process(covert_packet(
            src,
            "203.0.113.81".parse().unwrap(),
            covert,
            b"TAG",
        ));
        assert_eq!(decoy.rewritten, 1);
        assert_eq!(decoy.passed, 2);
    }

    #[test]
    fn short_or_wrong_tag_is_not_rewritten() {
        let overt: Ipv4Addr = "203.0.113.80".parse().unwrap();
        let mut decoy = DecoyRouter::new(overt, b"TAG");
        let src: Ipv4Addr = "192.0.2.1".parse().unwrap();
        // Wrong tag.
        let wrong = covert_packet(src, overt, "198.51.100.1".parse().unwrap(), b"BAD");
        assert_eq!(decoy.process(wrong.clone()).dst, overt);
        // Too short to carry an address.
        let short = IpPacket::new(
            src,
            overt,
            Payload::Udp {
                sport: 1,
                dport: 1,
                data: b"TAG".to_vec(),
            },
        );
        assert_eq!(decoy.process(short).dst, overt);
    }
}
