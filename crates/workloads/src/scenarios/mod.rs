//! Reproductions of the studies PEERING enabled or would enable (§2).
//!
//! Each scenario drives a [`peering_core::Testbed`] (or, for the
//! pure routing-policy studies, the topology directly) end to end and
//! returns a typed report. They serve triple duty: integration tests,
//! example binaries, and the workloads behind several benchmark rows.
//!
//! | module | study | paper hook |
//! |---|---|---|
//! | [`lifeguard`] | route around persistent failures via poisoning | "LIFEGUARD used route injection to route around failures" |
//! | [`poiroot`] | root-cause analysis of path changes | "PoiRoot made announcements to expose ASes' routing preferences" |
//! | [`arrow`] | tunnel through the testbed past black holes | "ARROW demonstrated an incrementally deployable solution to black holes" |
//! | [`pecan`] | joint content/network routing measurement | "PECAN used PEERING announcements to uncover alternate paths" |
//! | [`hijack`] | man-in-the-middle interception emulation | "a researcher is using PEERING to study man-in-the-middle hijacks" |
//! | [`sbgp`] | secure-BGP partial deployment | "a researcher recently submitted a proposal to use PEERING announcements to assess adoption" |
//! | [`anycast`] | anycast catchments and failover | "anycasting a prefix from all PEERING providers and peers" |
//! | [`decoy`] | decoy-routing service at an IXP | "a decoy routing service could take traffic at an IXP, rewrite packets..." |
//! | [`sdx`] | application-specific peering at a software-defined IXP | "SDX... used PEERING to route traffic to and from the actual Internet" |
//! | [`beacon`] | scheduled announce/withdraw beacons | BGP Beacons (Mao et al.), the testbed's automated-measurement mode |
//! | [`phas`] | prefix-hijack detection with ground truth | "PHAS: A Prefix Hijack Alert System" \[32\], testable because PEERING controls both victim and attacker |
//! | [`convergence`] | delayed BGP convergence / path exploration | "BGP... can experience slow convergence \[30\]" — the Labovitz study PEERING-style injection enables |

pub mod anycast;
pub mod arrow;
pub mod beacon;
pub mod convergence;
pub mod decoy;
pub mod hijack;
pub mod lifeguard;
pub mod pecan;
pub mod phas;
pub mod poiroot;
pub mod sbgp;
pub mod sdx;

use peering_core::Testbed;
use peering_topology::{AsIdx, AsKind};

/// Pick deterministic vantage-point ASes: stubs/access networks spread
/// through the graph, excluding the testbed itself and its neighbors.
pub fn pick_vantages(tb: &Testbed, count: usize) -> Vec<AsIdx> {
    let g = tb.graph();
    let neighbors: std::collections::HashSet<AsIdx> = g.neighbors(tb.node).collect();
    g.infos()
        .filter(|(idx, info)| {
            *idx != tb.node
                && !neighbors.contains(idx)
                && matches!(
                    info.kind,
                    AsKind::Stub | AsKind::Access | AsKind::Enterprise
                )
        })
        .map(|(idx, _)| idx)
        .step_by(3)
        .take(count)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_core::TestbedConfig;

    #[test]
    fn vantages_avoid_testbed_and_neighbors() {
        let tb = Testbed::build(TestbedConfig::small(1));
        let v = pick_vantages(&tb, 10);
        assert!(!v.is_empty());
        let neighbors: std::collections::HashSet<AsIdx> = tb.graph().neighbors(tb.node).collect();
        for a in &v {
            assert_ne!(*a, tb.node);
            assert!(!neighbors.contains(a));
        }
    }
}
