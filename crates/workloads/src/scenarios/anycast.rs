//! Anycast: announce one prefix from every site, map catchments, and
//! fail over.
//!
//! §3: researchers "can advertise services on real IP addresses and
//! potentially attract traffic to them, e.g., by anycasting a prefix from
//! all PEERING providers and peers."

use peering_core::{AnnouncementSpec, Testbed, TestbedError};
use serde::{Deserialize, Serialize};

/// Catchment snapshot per site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnycastReport {
    /// `(site, ASes landing there)` with every site announcing.
    pub baseline: Vec<(usize, usize)>,
    /// The site that was withdrawn for the failover test.
    pub failed_site: usize,
    /// Catchments after the failover.
    pub after_failover: Vec<(usize, usize)>,
    /// ASes that still have a route after failover.
    pub reachable_after: usize,
    /// Total ASes that had a route at baseline.
    pub reachable_before: usize,
}

impl AnycastReport {
    /// No AS may be stranded by losing one site.
    pub fn failover_complete(&self) -> bool {
        self.reachable_after == self.reachable_before
    }
}

/// Announce from all sites, then withdraw the largest-catchment site and
/// re-measure.
pub fn run(tb: &mut Testbed) -> Result<AnycastReport, TestbedError> {
    let sites: Vec<usize> = (0..tb.servers.len()).collect();
    let id = tb.new_experiment("anycast", "repro", &sites)?;
    let client = tb.clients[&id].clone();
    tb.announce(id, client.announce_everywhere())?;
    let baseline = tb.catchments(&client.prefix).expect("announced");
    let reachable_before: usize = baseline.iter().map(|(_, n)| n).sum();

    // Fail the biggest site.
    let (&(failed_site, _), _) = baseline
        .iter()
        .enumerate()
        .max_by_key(|(_, (_, n))| *n)
        .map(|(i, s)| (s, i))
        .expect("non-empty");
    let remaining: Vec<usize> = sites
        .iter()
        .copied()
        .filter(|&s| s != failed_site)
        .collect();
    let spec = AnnouncementSpec::everywhere(client.prefix, remaining);
    tb.announce(id, spec)?;
    let after_failover = tb.catchments(&client.prefix).expect("announced");
    let reachable_after: usize = after_failover.iter().map(|(_, n)| n).sum();

    Ok(AnycastReport {
        baseline,
        failed_site,
        after_failover,
        reachable_after,
        reachable_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_core::TestbedConfig;

    #[test]
    fn catchments_shift_but_nobody_is_stranded() {
        let mut tb = Testbed::build(TestbedConfig::small(23));
        let report = run(&mut tb).expect("scenario runs");
        assert_eq!(report.baseline.len(), 2);
        assert!(report.baseline.iter().all(|(_, n)| *n > 0));
        // After failing one site the other absorbs everyone.
        assert!(report.failover_complete(), "{report:?}");
        let surviving: usize = report
            .after_failover
            .iter()
            .filter(|(s, _)| *s != report.failed_site)
            .map(|(_, n)| n)
            .sum();
        assert_eq!(surviving, report.reachable_after);
    }
}
