//! Secure BGP in partial deployment: how much adoption stops hijacks?
//!
//! §2: "The ultimate benefit of secure BGP depends on which ASes adopt it
//! and what policies they use; our understanding of partial deployment
//! relies on theoretical analysis and simulations. A researcher recently
//! submitted a proposal to use PEERING announcements to assess adoption."
//!
//! The study: an attacker AS origin-hijacks a victim prefix. ASes that
//! deploy origin validation reject the forged route (modeled as the
//! attacker's announcement being poisoned against validators). Sweeping
//! the adopter set from none to the whole top-N shows how the attacker's
//! capture fraction collapses — the Lychev/Goldberg/Schapira question.

use peering_netsim::{Prefix, SimRng};
use peering_topology::routing::{propagate, Announcement};
use peering_topology::{as_rank, AsGraph, AsIdx, AsKind};
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdoptionPoint {
    /// Number of top-ranked ASes validating.
    pub adopters: usize,
    /// Fraction of route-holding ASes that believed the attacker.
    pub attacker_success: f64,
}

/// Sweep results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SbgpReport {
    /// The victim AS.
    pub victim: AsIdx,
    /// The attacker AS.
    pub attacker: AsIdx,
    /// Success rate per adoption level.
    pub points: Vec<AdoptionPoint>,
}

/// Run the sweep: adopters are the top-`k` ASes by customer cone for each
/// `k` in `levels`.
pub fn run(g: &AsGraph, seed: u64, levels: &[usize]) -> SbgpReport {
    let mut rng = SimRng::new(seed).fork("sbgp");
    let stubs: Vec<AsIdx> = g
        .infos()
        .filter(|(_, i)| matches!(i.kind, AsKind::Stub | AsKind::Access) && !i.prefixes.is_empty())
        .map(|(i, _)| i)
        .collect();
    assert!(stubs.len() >= 2, "need victim and attacker");
    let victim = stubs[rng.index(stubs.len())];
    let attacker = loop {
        let a = stubs[rng.index(stubs.len())];
        if a != victim {
            break a;
        }
    };
    let prefix = g.info(victim).prefixes[0];
    let Prefix::V4(_) = prefix else {
        unreachable!()
    };
    let rank = as_rank(g);

    let mut points = Vec::new();
    for &k in levels {
        let validators: Vec<peering_netsim::Asn> =
            rank.iter().take(k).map(|&idx| g.info(idx).asn).collect();
        let legit = Announcement::simple(victim, prefix);
        let forged = Announcement::simple(attacker, prefix).poisoned(validators);
        let result = propagate(g, &[legit, forged]);
        let total = result.reach_count();
        let fooled = result.won_by(1);
        points.push(AdoptionPoint {
            adopters: k,
            attacker_success: if total == 0 {
                0.0
            } else {
                fooled as f64 / total as f64
            },
        });
    }
    SbgpReport {
        victim,
        attacker,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_topology::{Internet, InternetConfig};

    #[test]
    fn adoption_reduces_attacker_success() {
        let net = Internet::build(InternetConfig::small(17));
        let n = net.graph.len();
        let report = run(&net.graph, 1, &[0, 5, 20, n]);
        assert_eq!(report.points.len(), 4);
        let first = report.points.first().unwrap();
        let last = report.points.last().unwrap();
        assert!(
            first.attacker_success > 0.0,
            "with zero adoption the attacker fools someone"
        );
        assert!(
            last.attacker_success < first.attacker_success,
            "full adoption must shrink the attack: {} -> {}",
            first.attacker_success,
            last.attacker_success
        );
        // Success is weakly decreasing along the sweep.
        for w in report.points.windows(2) {
            assert!(
                w[1].attacker_success <= w[0].attacker_success + 1e-9,
                "{:?}",
                report.points
            );
        }
    }

    #[test]
    fn full_adoption_leaves_only_the_attacker() {
        let net = Internet::build(InternetConfig::small(19));
        let n = net.graph.len();
        let report = run(&net.graph, 2, &[n]);
        let p = report.points[0];
        // Everyone validates; only the attacker itself (not in the rank
        // cut? it is — then even it refuses... its own announcement is
        // poisoned against itself only if its ASN is in the list, which
        // it is at full adoption. Success collapses to ~0.
        assert!(p.attacker_success < 0.05, "{}", p.attacker_success);
    }

    #[test]
    fn deterministic_given_seed() {
        let net = Internet::build(InternetConfig::small(21));
        let a = run(&net.graph, 3, &[0, 10]);
        let b = run(&net.graph, 3, &[0, 10]);
        assert_eq!(a.victim, b.victim);
        assert_eq!(a.attacker, b.attacker);
        assert_eq!(a.points.len(), b.points.len());
    }
}
