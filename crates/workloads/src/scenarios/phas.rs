//! PHAS-style prefix-hijack detection, driven by the testbed's own
//! monitoring.
//!
//! The paper's opening complaint: BGP "lacks mechanisms to prevent...
//! prefix hijacks \[24, 32, 58\]" — PHAS (Lad et al., USENIX Security
//! 2006) is reference \[32\], a system that alerts prefix owners when the
//! observed origin of their prefix changes at route collectors. PEERING
//! makes such systems *testable*: the researcher controls both the
//! victim prefix and a ground-truth hijack, so detector precision is
//! measurable. Here the detector watches per-vantage origins before and
//! during a simulated hijack of the experiment's own prefix.

use peering_netsim::Prefix;
use peering_topology::routing::{propagate, Announcement};
use peering_topology::{AsGraph, AsIdx};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A hijack alert raised by the detector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HijackAlert {
    /// Vantage that observed the origin change.
    pub vantage: AsIdx,
    /// Origin seen before.
    pub old_origin: AsIdx,
    /// Origin seen now.
    pub new_origin: AsIdx,
}

/// Detection study outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhasReport {
    /// The legitimate origin.
    pub victim: AsIdx,
    /// The hijacker.
    pub attacker: AsIdx,
    /// Vantages monitored.
    pub vantages: usize,
    /// Alerts raised during the hijack (true positives).
    pub alerts: Vec<HijackAlert>,
    /// Alerts raised during a benign re-announcement (false positives).
    pub false_positives: usize,
    /// Vantages whose routes were captured by the attacker.
    pub captured: usize,
}

impl PhasReport {
    /// Did detection fire iff the hijack was visible?
    pub fn detection_sound(&self) -> bool {
        !self.alerts.is_empty() && self.false_positives == 0 && self.alerts.len() == self.captured
    }
}

/// Snapshot the observed origin of `prefix`'s route at each vantage.
fn origins_at(
    g: &AsGraph,
    result: &peering_topology::PropagationResult,
    vantages: &[AsIdx],
) -> HashMap<AsIdx, AsIdx> {
    let _ = g;
    vantages
        .iter()
        .filter_map(|&v| result.route(v).map(|e| (v, *e.path.last().expect("path"))))
        .collect()
}

/// Run the detector over a ground-truth hijack on a raw topology.
pub fn run(g: &AsGraph, victim: AsIdx, attacker: AsIdx, n_vantages: usize) -> PhasReport {
    let prefix = Prefix::v4(184, 164, 228, 0, 24);
    // Vantages: everything that isn't victim/attacker; the caller's graph
    // typically comes from a testbed, so reuse its spread.
    let vantages: Vec<AsIdx> = g
        .indices()
        .filter(|&v| v != victim && v != attacker)
        .step_by((g.len() / n_vantages).max(1))
        .take(n_vantages)
        .collect();

    // Phase 1: baseline — victim announces alone.
    let baseline = propagate(g, &[Announcement::simple(victim, prefix)]);
    let before = origins_at(g, &baseline, &vantages);

    // Phase 2: benign change — victim re-announces with prepending (a
    // routine TE action; the detector must stay quiet).
    let benign = propagate(g, &[Announcement::simple(victim, prefix).prepended(2)]);
    let during_benign = origins_at(g, &benign, &vantages);
    let false_positives = during_benign
        .iter()
        .filter(|(v, origin)| before.get(v).map(|o| o != *origin).unwrap_or(false))
        .count();

    // Phase 3: the hijack — attacker announces the same prefix.
    let hijacked = propagate(
        g,
        &[
            Announcement::simple(victim, prefix),
            Announcement::simple(attacker, prefix),
        ],
    );
    let during = origins_at(g, &hijacked, &vantages);
    let mut alerts = Vec::new();
    let mut captured = 0;
    for (&v, &origin) in &during {
        let Some(&old) = before.get(&v) else { continue };
        if origin != old {
            alerts.push(HijackAlert {
                vantage: v,
                old_origin: old,
                new_origin: origin,
            });
        }
        if origin == attacker {
            captured += 1;
        }
    }
    alerts.sort_by_key(|a| a.vantage);
    PhasReport {
        victim,
        attacker,
        vantages: vantages.len(),
        alerts,
        false_positives,
        captured,
    }
}

/// Convenience: run on a testbed's Internet with its experiment prefix
/// semantics (victim = the PEERING node, attacker = a chosen AS).
pub fn run_on_testbed(
    tb: &peering_core::Testbed,
    attacker: AsIdx,
    n_vantages: usize,
) -> PhasReport {
    run(tb.graph(), tb.node, attacker, n_vantages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::pick_vantages;
    use peering_core::{Testbed, TestbedConfig};

    #[test]
    fn detector_fires_on_hijack_and_stays_quiet_on_te() {
        let tb = Testbed::build(TestbedConfig::small(33));
        let attacker = pick_vantages(&tb, 5)[0];
        let report = run_on_testbed(&tb, attacker, 30);
        assert!(report.vantages >= 20);
        assert!(
            !report.alerts.is_empty(),
            "a visible hijack must raise alerts: {report:?}"
        );
        assert_eq!(report.false_positives, 0, "prepending is not a hijack");
        assert!(report.detection_sound(), "{report:?}");
        // Every alert names the attacker as the new origin.
        for a in &report.alerts {
            assert_eq!(a.new_origin, report.attacker);
            assert_eq!(a.old_origin, report.victim);
        }
    }

    #[test]
    fn capture_is_partial() {
        let tb = Testbed::build(TestbedConfig::small(35));
        let attacker = pick_vantages(&tb, 5)[1];
        let report = run_on_testbed(&tb, attacker, 40);
        assert!(report.captured > 0);
        assert!(
            report.captured < report.vantages,
            "the victim keeps part of the Internet: {report:?}"
        );
    }
}
