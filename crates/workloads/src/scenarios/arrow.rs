//! ARROW: "one tunnel is (often) enough" — detour around black holes by
//! tunneling through the testbed.
//!
//! ARROW (Peter et al., SIGCOMM 2014) lets an end network buy a tunnel to
//! a well-connected provider to bypass broken transit; its prototype ran
//! on an early PEERING. Here a vantage AS loses its direct path to a
//! destination (a transit AS black-holes), tunnels to the experiment's
//! anycast prefix instead, and PEERING forwards out one of its own peer
//! paths that avoids the failure.

use crate::scenarios::pick_vantages;
use peering_core::{Testbed, TestbedError};
use peering_netsim::{Ipv4Net, Prefix, SimDuration};
use peering_topology::routing::{propagate, Announcement, TraceOutcome};
use peering_topology::AsIdx;
use serde::{Deserialize, Serialize};

/// Outcome of one ARROW run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrowReport {
    /// The network whose connectivity broke.
    pub vantage: AsIdx,
    /// The destination it needed.
    pub destination: AsIdx,
    /// The transit AS that black-holed.
    pub failed_as: AsIdx,
    /// Was the direct path broken (precondition)?
    pub direct_broken: bool,
    /// Did the tunnel detour deliver?
    pub detour_works: bool,
    /// Latency of the original direct path.
    pub direct_latency: SimDuration,
    /// Latency of the detour (vantage -> PEERING -> destination).
    pub detour_latency: SimDuration,
}

/// Try vantage/destination pairs until a demonstrative failure exists,
/// then detour through the testbed.
pub fn run(tb: &mut Testbed) -> Result<ArrowReport, TestbedError> {
    let sites: Vec<usize> = (0..tb.servers.len()).collect();
    let id = tb.new_experiment("arrow", "repro", &sites)?;
    let client = tb.clients[&id].clone();
    tb.announce(id, client.announce_everywhere())?;

    // Destination: a content AS with prefixes.
    let destination = tb
        .graph()
        .infos()
        .find(|(_, i)| i.kind == peering_topology::AsKind::Content && !i.prefixes.is_empty())
        .map(|(idx, _)| idx)
        .expect("content AS exists");
    let dst_prefix = match tb.graph().info(destination).prefixes[0] {
        Prefix::V4(p) => p,
        Prefix::V6(_) => unreachable!("generator emits v4"),
    };
    let dst_routes = propagate(
        tb.graph(),
        &[Announcement::simple(destination, Prefix::V4(dst_prefix))],
    );

    for vantage in pick_vantages(tb, 60) {
        let Some(entry) = dst_routes.route(vantage) else {
            continue;
        };
        let direct_path = entry.path.clone();
        if direct_path.len() < 4 {
            continue;
        }
        let direct_latency = tb.path_latency(&direct_path);
        // Fail an interior transit on the direct path.
        for &failed in &direct_path[1..direct_path.len() - 1] {
            if failed == tb.node || failed == destination {
                continue;
            }
            tb.set_blackhole(failed, true);
            let direct_broken = matches!(
                dst_routes.trace(vantage, &tb.blackholes),
                TraceOutcome::Dropped { .. }
            );
            if !direct_broken {
                tb.set_blackhole(failed, false);
                continue;
            }
            // Leg 1: vantage -> experiment prefix (tunnel entry).
            let leg1 = match tb.traceroute(vantage, &client.prefix) {
                TraceOutcome::Delivered(p) => p,
                _ => {
                    tb.set_blackhole(failed, false);
                    continue;
                }
            };
            // Leg 2: PEERING -> destination via any site neighbor whose
            // path avoids the failure.
            let mut leg2: Option<(Vec<AsIdx>, SimDuration)> = None;
            for &site in &sites {
                for (_, path, lat) in tb.paths_via_neighbors(site, &dst_prefix)? {
                    if !path.contains(&failed) {
                        leg2 = Some((path, lat));
                        break;
                    }
                }
                if leg2.is_some() {
                    break;
                }
            }
            if let Some((_, leg2_lat)) = leg2 {
                let detour_latency = tb.path_latency(&leg1) + leg2_lat;
                tb.set_blackhole(failed, false);
                return Ok(ArrowReport {
                    vantage,
                    destination,
                    failed_as: failed,
                    direct_broken,
                    detour_works: true,
                    direct_latency,
                    detour_latency,
                });
            }
            tb.set_blackhole(failed, false);
        }
    }
    let _ = client;
    Ok(ArrowReport {
        vantage: AsIdx(0),
        destination,
        failed_as: AsIdx(0),
        direct_broken: false,
        detour_works: false,
        direct_latency: SimDuration::ZERO,
        detour_latency: SimDuration::ZERO,
    })
}

/// Convenience: the experiment prefix for leg-1 lookups (exposed for the
/// example binary).
pub fn tunnel_entry(tb: &Testbed) -> Option<Ipv4Net> {
    tb.experiments.values().next().map(|e| e.prefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_core::TestbedConfig;

    #[test]
    fn arrow_detours_around_blackhole() {
        let mut tb = Testbed::build(TestbedConfig::small(7));
        let report = run(&mut tb).expect("scenario runs");
        assert!(report.direct_broken, "a demonstrative failure must exist");
        assert!(report.detour_works, "the tunnel detour must deliver");
        assert!(report.detour_latency > SimDuration::ZERO);
        // The detour is usually longer — but must be finite and sane.
        assert!(report.detour_latency < SimDuration::from_secs(2));
    }
}
