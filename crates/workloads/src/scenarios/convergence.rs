//! Delayed BGP convergence: path exploration after a withdrawal.
//!
//! The paper's opening list of interdomain pathologies includes "slow
//! convergence \[30\]" (Labovitz et al.: *Delayed Internet Routing
//! Convergence*). The classic result: after a route is withdrawn, BGP
//! explores progressively longer alternative paths before giving up, so
//! both message count and (simulated) convergence time grow superlinearly
//! with the diameter of the topology. PEERING-style controlled
//! announcements are exactly how such studies inject clean events.
//!
//! The scenario builds rings of message-level speakers, originates a
//! prefix, withdraws it, and measures the control-plane storm.

use peering_emulation::{build_from_pops, PopEmulation};
use peering_topology::small_ring;
use serde::{Deserialize, Serialize};

/// Measurements for one topology size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Ring size (routers).
    pub size: usize,
    /// Messages to converge after the initial announcement.
    pub announce_msgs: usize,
    /// Messages to converge after the withdrawal (path exploration).
    pub withdraw_msgs: usize,
    /// Simulated time until the withdrawal converged, in microseconds.
    pub withdraw_time_us: u64,
}

/// The study's sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// One point per ring size.
    pub points: Vec<ConvergencePoint>,
}

impl ConvergenceReport {
    /// Withdrawal convergence (down) costs more than announcement
    /// convergence (up) — Labovitz's headline asymmetry — at the largest
    /// measured size.
    pub fn down_slower_than_up(&self) -> bool {
        self.points
            .last()
            .map(|p| p.withdraw_msgs > p.announce_msgs)
            .unwrap_or(false)
    }
}

fn measure(size: usize, seed: u64) -> ConvergencePoint {
    let topo = small_ring(size);
    let mut pe: PopEmulation = build_from_pops(&topo, 64512, seed);
    pe.emu.start_all();
    pe.emu.run_until_quiet(usize::MAX);
    // Announce a single prefix at router 0 and converge.
    let prefix = peering_netsim::Prefix::v4(10, 200, 0, 0, 16);
    pe.emu.originate(pe.routers[0], prefix);
    let announce_msgs = pe.emu.run_until_quiet(usize::MAX);
    // Withdraw it; the rest of the ring explores ever-longer paths
    // through each other before accepting unreachability.
    let t0 = pe.emu.now();
    pe.emu.withdraw(pe.routers[0], prefix);
    let withdraw_msgs = pe.emu.run_until_quiet(usize::MAX);
    let withdraw_time_us = pe.emu.now().since(t0).as_micros();
    // Everyone ended with no route (convergence is *correct*).
    for &r in &pe.routers {
        assert!(
            pe.emu
                .daemon(r)
                .expect("daemon")
                .loc_rib()
                .get(&prefix)
                .is_none(),
            "ghost route survived at router {r}"
        );
    }
    ConvergencePoint {
        size,
        announce_msgs,
        withdraw_msgs,
        withdraw_time_us,
    }
}

/// Sweep ring sizes.
pub fn run(sizes: &[usize], seed: u64) -> ConvergenceReport {
    ConvergenceReport {
        points: sizes.iter().map(|&s| measure(s, seed)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn withdrawal_is_costlier_than_announcement() {
        let report = run(&[4, 6, 8, 10], 1);
        assert_eq!(report.points.len(), 4);
        assert!(report.down_slower_than_up(), "{report:?}");
        // Message cost grows with topology size in both phases.
        for w in report.points.windows(2) {
            assert!(w[1].announce_msgs >= w[0].announce_msgs);
            assert!(w[1].withdraw_msgs >= w[0].withdraw_msgs);
        }
        // And convergence takes real (simulated) time.
        assert!(report.points.last().unwrap().withdraw_time_us > 0);
    }

    #[test]
    fn no_ghost_routes_after_convergence() {
        // measure() asserts internally; this exercises a larger ring.
        let p = measure(12, 2);
        assert!(p.withdraw_msgs > p.size, "exploration touches everyone");
    }
}
