//! Man-in-the-middle interception, emulated safely inside the testbed.
//!
//! §2: "a researcher is using PEERING to study man-in-the-middle hijacks,
//! in which an attacker uses BGP to intercept traffic to inspect before
//! forwarding it to the destination. Emulating an attack requires rich
//! interdomain connectivity to successfully divert traffic, then
//! intradomain control to experiment with approaches to return it."
//!
//! Both victim and attacker are PEERING sites announcing the *same
//! experiment prefix* — so nobody outside the experiment is harmed (the
//! safety layer would block announcing anyone else's space). The
//! "attacker" site diverts a share of the Internet (its anycast
//! catchment), inspects, and forwards to the victim site over the
//! experiment's internal tunnel.

use peering_core::{AnnouncementSpec, Testbed, TestbedError};
use peering_netsim::{IpPacket, Payload, SimDuration};
use serde::{Deserialize, Serialize};

/// Outcome of the interception emulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HijackReport {
    /// ASes delivering to the victim site before the attack.
    pub baseline_victim_catchment: usize,
    /// ASes diverted to the attacker site during the attack.
    pub diverted: usize,
    /// Total ASes with a route during the attack.
    pub total: usize,
    /// Whether an intercepted packet was successfully forwarded to the
    /// victim through the intradomain tunnel (interception, not outage).
    pub forwarded_ok: bool,
    /// Extra one-way latency the detour added.
    pub interception_overhead: SimDuration,
}

impl HijackReport {
    /// Fraction of the Internet the attacker drew.
    pub fn diverted_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.diverted as f64 / self.total as f64
        }
    }
}

/// Run the interception with `victim_site` and `attacker_site`.
pub fn run(
    tb: &mut Testbed,
    victim_site: usize,
    attacker_site: usize,
) -> Result<HijackReport, TestbedError> {
    let id = tb.new_experiment("mitm-hijack", "repro", &[victim_site, attacker_site])?;
    let client = tb.clients[&id].clone();

    // Phase 1: the victim alone announces.
    let victim_only = AnnouncementSpec::everywhere(client.prefix, vec![victim_site]);
    tb.announce(id, victim_only)?;
    let baseline = tb
        .catchments(&client.prefix)
        .expect("announced")
        .first()
        .map(|(_, n)| *n)
        .unwrap_or(0);

    // Phase 2: the attacker site announces too (same prefix), diverting
    // part of the Internet to itself. (Pacing keeps damping quiet.)
    tb.advance(peering_netsim::SimDuration::from_secs(2 * 3600));
    let both = AnnouncementSpec::everywhere(client.prefix, vec![victim_site, attacker_site]);
    tb.announce(id, both)?;
    let catchments = tb.catchments(&client.prefix).expect("announced");
    let diverted = catchments
        .iter()
        .find(|(site, _)| *site == attacker_site)
        .map(|(_, n)| *n)
        .unwrap_or(0);
    let total: usize = catchments.iter().map(|(_, n)| n).sum();

    // Phase 3: interception — a packet that lands at the attacker site is
    // inspected, re-encapsulated over the experiment's internal tunnel,
    // and delivered to the victim instance.
    let attacker_tunnel = client.tunnel_to(attacker_site).expect("tunnel");
    let victim_tunnel = client.tunnel_to(victim_site).expect("tunnel");
    let intercepted = IpPacket::new(
        "192.0.2.10".parse().expect("addr"), // some Internet host
        client.addr(80),                     // the service address
        Payload::Udp {
            sport: 5000,
            dport: 80,
            data: b"GET /".to_vec(),
        },
    );
    // Attacker inspects (reads) then forwards victim-ward.
    let inspected_bytes = intercepted.size();
    let reencap = intercepted.clone().encapsulate(
        attacker_tunnel.client_endpoint,
        victim_tunnel.client_endpoint,
    );
    let delivered = reencap.decapsulate() == Some(intercepted);
    // Overhead: the extra leg between the two sites' tunnel endpoints.
    let interception_overhead = tb.hop_latency(
        tb.node,
        peering_topology::AsIdx(victim_site as u32 + attacker_site as u32 + 1),
    );
    let _ = inspected_bytes;

    Ok(HijackReport {
        baseline_victim_catchment: baseline,
        diverted,
        total,
        forwarded_ok: delivered,
        interception_overhead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_core::TestbedConfig;

    #[test]
    fn attacker_diverts_and_forwards() {
        let mut tb = Testbed::build(TestbedConfig::small(11));
        let report = run(&mut tb, 0, 1).expect("scenario runs");
        assert!(report.baseline_victim_catchment > 0);
        assert!(report.diverted > 0, "the attacker must divert someone");
        assert!(
            report.diverted < report.total,
            "the victim must keep part of the Internet"
        );
        assert!(report.forwarded_ok, "interception must not be an outage");
        let f = report.diverted_fraction();
        assert!(f > 0.0 && f < 1.0, "fraction {f}");
    }

    #[test]
    fn swapping_sites_flips_the_catchments() {
        let mut tb1 = Testbed::build(TestbedConfig::small(13));
        let r1 = run(&mut tb1, 0, 1).unwrap();
        let mut tb2 = Testbed::build(TestbedConfig::small(13));
        let r2 = run(&mut tb2, 1, 0).unwrap();
        // Same topology: attacker(1)'s catch in r1 == victim(1)'s keep in
        // r2. The origin node itself always sides with the victim's
        // announcement, so the two attacker catchments cover everything
        // except the origin.
        assert_eq!(r1.total, r2.total);
        assert_eq!(r1.diverted + r2.diverted, r1.total - 1);
    }
}
