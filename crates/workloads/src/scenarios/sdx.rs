//! SDX-lite: application-specific peering at a software-defined IXP.
//!
//! SDX (Gupta et al., SIGCOMM 2014) lets an IXP member express policies
//! like "HTTP via peer A, video via peer B" — forwarding decisions finer
//! than BGP's per-prefix best path. "The prototype used PEERING to route
//! traffic to and from the actual Internet" (§2). Here the PEERING
//! server at the IXP runs the packet-processing pipeline as the SDX data
//! plane: per-application rules steer flows onto different next-hop
//! peers, while plain BGP would have sent everything one way.

use peering_core::{
    Backend, PacketProcessor, PktAction, PktMatch, PktVerdict, Testbed, TestbedError,
};
use peering_netsim::{IpPacket, Payload, Prefix};
use peering_topology::AsIdx;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One application class steered by the SDX policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Steering {
    /// Destination UDP port defining the application.
    pub dport: u16,
    /// The peer the policy steers it to.
    pub via_peer: AsIdx,
    /// Flows observed taking that path.
    pub flows: u64,
}

/// Scenario outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SdxReport {
    /// The BGP-best peer everything would otherwise use.
    pub default_peer: AsIdx,
    /// Per-application steering results.
    pub steerings: Vec<Steering>,
    /// Flows that followed the default (no policy matched).
    pub default_flows: u64,
    /// Whether the applications ended up on distinct egress peers.
    pub policies_diverge: bool,
}

/// Run SDX-lite at `site`: pick a destination with multiple usable peer
/// paths, steer DNS (53) and HTTPS (443) onto different peers, and send
/// a mixed workload through the pipeline.
pub fn run(tb: &mut Testbed, site: usize) -> Result<SdxReport, TestbedError> {
    // A content destination reachable via several of our neighbors.
    let (dst_net, paths) = {
        let mut found = None;
        for (_, info) in tb.graph().infos() {
            if info.kind != peering_topology::AsKind::Content || info.prefixes.is_empty() {
                continue;
            }
            let Prefix::V4(net) = info.prefixes[0] else {
                continue;
            };
            let paths = tb.paths_via_neighbors(site, &net)?;
            if paths.len() >= 3 {
                found = Some((net, paths));
                break;
            }
        }
        found.expect("a multi-path destination exists")
    };
    // BGP's choice: the shortest path (fewest hops) — everything defaults
    // through this peer.
    let default_peer = paths
        .iter()
        .min_by_key(|(n, p, _)| (p.len(), n.0))
        .map(|(n, _, _)| *n)
        .expect("non-empty");
    // SDX policy: DNS via the second peer, HTTPS via the third.
    let mut alternates: Vec<AsIdx> = paths
        .iter()
        .map(|(n, _, _)| *n)
        .filter(|n| *n != default_peer)
        .collect();
    alternates.sort();
    let dns_peer = alternates[0];
    let https_peer = alternates[1 % alternates.len()];

    // Encode the steering in the server's packet pipeline: the rewritten
    // source models the egress-port selection on the IXP fabric.
    let egress_addr = |peer: AsIdx| Ipv4Addr::new(100, 127, (peer.0 >> 8) as u8, peer.0 as u8);
    let mut pipeline = PacketProcessor::new(Backend::Lightweight)
        .rule(
            PktMatch::All(vec![PktMatch::DstIn(dst_net), PktMatch::UdpDport(53)]),
            vec![
                PktAction::Count,
                PktAction::RewriteSrc(egress_addr(dns_peer)),
                PktAction::Pass,
            ],
        )
        .rule(
            PktMatch::All(vec![PktMatch::DstIn(dst_net), PktMatch::UdpDport(443)]),
            vec![
                PktAction::Count,
                PktAction::RewriteSrc(egress_addr(https_peer)),
                PktAction::Pass,
            ],
        )
        .rule(
            PktMatch::DstIn(dst_net),
            vec![
                PktAction::RewriteSrc(egress_addr(default_peer)),
                PktAction::Pass,
            ],
        );

    // A mixed workload: DNS, HTTPS, and bulk flows.
    let mut dns_flows = 0;
    let mut https_flows = 0;
    let mut default_flows = 0;
    for i in 0..300u32 {
        let dport = match i % 3 {
            0 => 53,
            1 => 443,
            _ => 8000,
        };
        let pkt = IpPacket::new(
            Ipv4Addr::new(184, 164, 224, (i % 200) as u8 + 1),
            dst_net.addr_at(1),
            Payload::Udp {
                sport: 30000,
                dport,
                data: vec![0; 64],
            },
        );
        match pipeline.process(pkt, tb.now()) {
            PktVerdict::Deliver(out) => {
                if out.src == egress_addr(dns_peer) && dport == 53 {
                    dns_flows += 1;
                } else if out.src == egress_addr(https_peer) && dport == 443 {
                    https_flows += 1;
                } else if out.src == egress_addr(default_peer) {
                    default_flows += 1;
                }
            }
            PktVerdict::Dropped => {}
        }
    }
    Ok(SdxReport {
        default_peer,
        steerings: vec![
            Steering {
                dport: 53,
                via_peer: dns_peer,
                flows: dns_flows,
            },
            Steering {
                dport: 443,
                via_peer: https_peer,
                flows: https_flows,
            },
        ],
        default_flows,
        policies_diverge: dns_peer != default_peer && https_peer != default_peer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_core::TestbedConfig;

    #[test]
    fn applications_take_different_egress_peers() {
        let mut tb = Testbed::build(TestbedConfig::small(27));
        let report = run(&mut tb, 0).expect("scenario runs");
        assert!(report.policies_diverge, "{report:?}");
        assert_eq!(report.steerings.len(), 2);
        for s in &report.steerings {
            assert_eq!(s.flows, 100, "every app flow steered: {report:?}");
            assert_ne!(s.via_peer, report.default_peer);
        }
        assert_eq!(report.default_flows, 100, "bulk follows BGP's default");
        // The two applications landed on distinct peers.
        assert_ne!(report.steerings[0].via_peer, report.steerings[1].via_peer);
    }
}
