//! BGP beacons: scheduled announce/withdraw cycles for convergence
//! measurement.
//!
//! BGP Beacons (Mao, Bush, Griffin, Roughan — IMC 2003) are prefixes
//! announced and withdrawn on a fixed public schedule so researchers can
//! study convergence. Table 1 scores beacons `≈` on interdomain control;
//! PEERING subsumes them: the prototype web service "lets users schedule
//! announcements without setting up a client software router" — this
//! scenario wires a classic 2-hours-up / 2-hours-down beacon into the
//! testbed's scheduler and verifies the control plane follows it.

use peering_core::{ExperimentId, ScheduledAction, Testbed, TestbedError};
use peering_netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Beacon timing.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BeaconConfig {
    /// How long the prefix stays announced per cycle.
    pub up: SimDuration,
    /// How long it stays withdrawn per cycle.
    pub down: SimDuration,
    /// Number of cycles to schedule.
    pub cycles: usize,
}

impl Default for BeaconConfig {
    fn default() -> Self {
        // The classic RIPE/PSG beacon cadence.
        BeaconConfig {
            up: SimDuration::from_secs(2 * 3600),
            down: SimDuration::from_secs(2 * 3600),
            cycles: 6,
        }
    }
}

/// One observed beacon transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeaconEvent {
    /// When the scheduler fired it.
    pub time: SimTime,
    /// True for announce, false for withdraw.
    pub up: bool,
    /// ASes with a route right after the event.
    pub reach: usize,
}

/// Scenario outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BeaconReport {
    /// The experiment driving the beacon.
    pub experiment: ExperimentId,
    /// Transitions in schedule order.
    pub events: Vec<BeaconEvent>,
}

impl BeaconReport {
    /// The beacon alternated perfectly: up/down/up/down...
    pub fn alternates(&self) -> bool {
        self.events.windows(2).all(|w| w[0].up != w[1].up)
    }
}

/// Install and run a beacon, sampling reachability after each scheduled
/// transition.
pub fn run(tb: &mut Testbed, cfg: BeaconConfig) -> Result<BeaconReport, TestbedError> {
    let sites: Vec<usize> = (0..tb.servers.len()).collect();
    let id = tb.new_experiment("beacon", "repro", &sites)?;
    let client = tb.clients[&id].clone();
    // Keep damping out of the way: beacons are *meant* to flap, and the
    // real testbed schedules them as sanctioned, paced events.
    tb.safety.cfg.damping.suppress_threshold = f64::MAX;

    let mut t = tb.now() + SimDuration::from_secs(60);
    let mut boundaries = Vec::new();
    for _ in 0..cfg.cycles {
        tb.schedule.at(
            t,
            id,
            ScheduledAction::Announce(client.announce_everywhere()),
        );
        boundaries.push((t, true));
        t += cfg.up;
        tb.schedule
            .at(t, id, ScheduledAction::Withdraw(client.prefix));
        boundaries.push((t, false));
        t += cfg.down;
    }
    let mut events = Vec::new();
    for (when, up) in boundaries {
        tb.run_schedule(when + SimDuration::from_secs(1));
        let reach = tb
            .routes_for(&client.prefix)
            .map(|r| r.reach_count().saturating_sub(1))
            .unwrap_or(0);
        events.push(BeaconEvent {
            time: when,
            up,
            reach,
        });
    }
    Ok(BeaconReport {
        experiment: id,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_core::TestbedConfig;

    #[test]
    fn beacon_cycles_drive_the_control_plane() {
        let mut tb = Testbed::build(TestbedConfig::small(29));
        let report = run(&mut tb, BeaconConfig::default()).expect("runs");
        assert_eq!(report.events.len(), 12, "6 cycles = 12 transitions");
        assert!(report.alternates());
        for e in &report.events {
            if e.up {
                assert!(e.reach > 0, "announced beacon must be visible");
            } else {
                assert_eq!(e.reach, 0, "withdrawn beacon must vanish");
            }
        }
        // The monitor logged every transition (the public beacon record).
        let updates = tb.monitor.updates_for(report.experiment).count();
        assert_eq!(updates, 12);
    }

    #[test]
    fn short_cadence_beacons() {
        let mut tb = Testbed::build(TestbedConfig::small(31));
        let cfg = BeaconConfig {
            up: SimDuration::from_secs(600),
            down: SimDuration::from_secs(600),
            cycles: 3,
        };
        let report = run(&mut tb, cfg).expect("runs");
        assert_eq!(report.events.len(), 6);
        assert!(report.alternates());
    }
}
