//! PECAN: quantify the benefit of joint content and network routing.
//!
//! PECAN (Valancius et al., SIGMETRICS 2013) "used PEERING announcements
//! to uncover alternate paths in the Internet and traffic to measure
//! their performance." For each content destination, the testbed exposes
//! one path per neighbor (transit or peer); choosing per-destination
//! instead of using the default route cuts latency.

use peering_core::{Testbed, TestbedError};
use peering_netsim::{Prefix, SimDuration};
use peering_topology::{AsIdx, AsKind};
use serde::{Deserialize, Serialize};

/// Per-destination measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PecanMeasurement {
    /// The content destination.
    pub destination: AsIdx,
    /// Paths available (one per usable neighbor).
    pub alternatives: usize,
    /// Latency of the default path (via the first transit provider).
    pub default_latency: SimDuration,
    /// Latency of the best alternative.
    pub best_latency: SimDuration,
}

/// Study results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PecanReport {
    /// Per-destination data.
    pub measurements: Vec<PecanMeasurement>,
    /// Destinations where an alternative beat the default.
    pub improved: usize,
}

impl PecanReport {
    /// Mean latency improvement (default - best) over all destinations.
    pub fn mean_improvement(&self) -> SimDuration {
        if self.measurements.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self
            .measurements
            .iter()
            .map(|m| (m.default_latency - m.best_latency).as_micros())
            .sum();
        SimDuration::from_micros(total / self.measurements.len() as u64)
    }
}

/// Measure alternate paths from `site` toward up to `n_destinations`
/// content ASes.
pub fn run(
    tb: &mut Testbed,
    site: usize,
    n_destinations: usize,
) -> Result<PecanReport, TestbedError> {
    let destinations: Vec<(AsIdx, Prefix)> = tb
        .graph()
        .infos()
        .filter(|(_, i)| i.kind == AsKind::Content && !i.prefixes.is_empty())
        .map(|(idx, i)| (idx, i.prefixes[0]))
        .take(n_destinations)
        .collect();
    let mut measurements = Vec::new();
    let mut improved = 0;
    for (destination, prefix) in destinations {
        let Prefix::V4(dst) = prefix else { continue };
        let paths = tb.paths_via_neighbors(site, &dst)?;
        if paths.is_empty() {
            continue;
        }
        // Default: the path BGP would pick with no engineering — via the
        // first transit provider (providers are default upstreams).
        let transits = &tb.servers[site].transits;
        let default_latency = paths
            .iter()
            .find(|(n, _, _)| transits.contains(n))
            .map(|(_, _, l)| *l)
            .unwrap_or_else(|| paths[0].2);
        let best_latency = paths.iter().map(|(_, _, l)| *l).min().expect("non-empty");
        if best_latency < default_latency {
            improved += 1;
        }
        measurements.push(PecanMeasurement {
            destination,
            alternatives: paths.len(),
            default_latency,
            best_latency,
        });
    }
    Ok(PecanReport {
        measurements,
        improved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_core::TestbedConfig;

    #[test]
    fn alternate_paths_improve_latency() {
        let mut tb = Testbed::build(TestbedConfig::small(9));
        // Measure from the IXP site: rich peering exposes alternates.
        let report = run(&mut tb, 0, 10).expect("scenario runs");
        assert!(!report.measurements.is_empty());
        for m in &report.measurements {
            assert!(m.alternatives >= 1);
            assert!(m.best_latency <= m.default_latency);
        }
        assert!(
            report.improved > 0,
            "some destination must have a better alternate path"
        );
        assert!(report.mean_improvement() > SimDuration::ZERO);
    }

    #[test]
    fn empty_report_mean_is_zero() {
        let r = PecanReport {
            measurements: vec![],
            improved: 0,
        };
        assert_eq!(r.mean_improvement(), SimDuration::ZERO);
    }
}
