//! PoiRoot: root-cause analysis of interdomain path changes, with
//! PEERING-made changes as ground truth.
//!
//! PoiRoot (Javed et al., SIGCOMM 2013) infers which AS caused an
//! observed path change. Its evaluation needed *controlled* path changes
//! — exactly what PEERING provides: "PoiRoot also used PEERING to make
//! controlled path changes, to use as ground truth."
//!
//! The scenario makes a controlled change (withdrawing the announcement
//! from one site, forcing re-homing), observes path changes at vantage
//! points, runs a PoiRoot-style inference (the change root is the AS
//! closest to the origin where old and new paths diverge), and scores it
//! against ground truth.

use crate::scenarios::pick_vantages;
use peering_core::{Testbed, TestbedError};
use peering_topology::routing::TraceOutcome;
use peering_topology::AsIdx;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Results of the inference study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoirootReport {
    /// Vantage points observed.
    pub vantages: usize,
    /// How many saw their path change.
    pub changed: usize,
    /// How many changed vantages were attributed to the true root.
    pub correct: usize,
}

impl PoirootReport {
    /// Attribution accuracy over changed paths.
    pub fn accuracy(&self) -> f64 {
        if self.changed == 0 {
            0.0
        } else {
            self.correct as f64 / self.changed as f64
        }
    }
}

/// Infer the root cause of a path change: walking from the origin end,
/// the first AS whose upstream hop differs. Returns the AS at the
/// divergence point (origin side).
fn infer_root(old: &[AsIdx], new: &[AsIdx]) -> Option<AsIdx> {
    // Compare suffixes (paths end at the origin).
    let mut o = old.iter().rev();
    let mut n = new.iter().rev();
    let mut last_common = None;
    loop {
        match (o.next(), n.next()) {
            (Some(a), Some(b)) if a == b => last_common = Some(*a),
            _ => break,
        }
    }
    last_common
}

/// Run the study: baseline announcement from all sites, then withdraw to
/// a single site as the controlled change.
pub fn run(tb: &mut Testbed) -> Result<PoirootReport, TestbedError> {
    let sites: Vec<usize> = (0..tb.servers.len()).collect();
    let id = tb.new_experiment("poiroot", "repro", &sites)?;
    let client = tb.clients[&id].clone();
    tb.announce(id, client.announce_everywhere())?;

    let vantages = pick_vantages(tb, 60);
    let mut before: BTreeMap<AsIdx, Vec<AsIdx>> = BTreeMap::new();
    for &v in &vantages {
        if let TraceOutcome::Delivered(p) = tb.traceroute(v, &client.prefix) {
            before.insert(v, p);
        }
    }
    // Controlled change: announce now only from the last site. Ground
    // truth root cause: the origin (PEERING) changed its exports.
    let only_last = client.announce_from(
        *sites.last().expect("sites"),
        peering_core::PeerSelector::All,
    );
    tb.announce(id, only_last)?;

    let mut changed = 0;
    let mut correct = 0;
    for (&v, old_path) in &before {
        let new_path = match tb.traceroute(v, &client.prefix) {
            TraceOutcome::Delivered(p) => p,
            _ => continue, // lost the route entirely; not a path change
        };
        if new_path == *old_path {
            continue;
        }
        changed += 1;
        // The true root is the origin (we changed our announcement).
        if let Some(root) = infer_root(old_path, &new_path) {
            if root == tb.node {
                correct += 1;
            }
        }
    }
    Ok(PoirootReport {
        vantages: before.len(),
        changed,
        correct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_core::TestbedConfig;

    #[test]
    fn infer_root_finds_divergence() {
        // old: v -> a -> b -> origin; new: v -> c -> b -> origin
        let (v, a, b, c, o) = (AsIdx(1), AsIdx(2), AsIdx(3), AsIdx(4), AsIdx(5));
        assert_eq!(infer_root(&[v, a, b, o], &[v, c, b, o]), Some(b));
        // Total divergence: only the origin is shared.
        assert_eq!(infer_root(&[v, a, o], &[v, c, o]), Some(o));
        // Identical paths: the whole path is common; root = the vantage.
        assert_eq!(infer_root(&[v, a, o], &[v, a, o]), Some(v));
        // No common suffix at all.
        assert_eq!(infer_root(&[v, a], &[c, b]), None);
    }

    #[test]
    fn controlled_change_is_attributed_to_origin() {
        let mut tb = Testbed::build(TestbedConfig::small(5));
        let report = run(&mut tb).expect("scenario runs");
        assert!(report.vantages > 5);
        assert!(report.changed > 0, "the change must be visible somewhere");
        assert!(
            report.accuracy() > 0.7,
            "accuracy {} too low ({} / {})",
            report.accuracy(),
            report.correct,
            report.changed
        );
    }
}
