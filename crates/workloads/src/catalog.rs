//! A machine-checkable catalog of the shipped scenarios' control-plane
//! footprints.
//!
//! Each scenario in [`crate::scenarios`] drives the testbed through a
//! characteristic set of announcements. The catalog captures that set
//! *declaratively* — a `plan` function from an allocated prefix and a
//! site count to the [`AnnouncementSpec`]s the scenario will make — so
//! static tools (`peering-lint`, the `peering-verify` test corpus) can
//! check every shipped scenario against the safety rules without
//! running it.
//!
//! The plans mirror the scenarios' actual `run()` implementations; a
//! scenario that never touches the testbed control plane (pure packet
//! or emulation studies) has an empty plan.

use peering_core::{AnnouncementSpec, PeerSelector};
use peering_netsim::{Asn, Ipv4Net};

/// A scenario's declarative control-plane footprint.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// The scenario module's name.
    pub name: &'static str,
    /// One-line description of what it announces.
    pub summary: &'static str,
    /// The announcements it makes, given its allocated `/24` and the
    /// number of testbed sites.
    pub plan: fn(Ipv4Net, usize) -> Vec<AnnouncementSpec>,
}

fn all_sites(n_sites: usize) -> Vec<usize> {
    (0..n_sites).collect()
}

fn anycast_plan(prefix: Ipv4Net, n_sites: usize) -> Vec<AnnouncementSpec> {
    // Announce from every site, then re-map the catchments with one
    // site withdrawn.
    let all = all_sites(n_sites);
    let mut fewer = all.clone();
    fewer.pop();
    vec![
        AnnouncementSpec::everywhere(prefix, all),
        AnnouncementSpec::everywhere(prefix, fewer),
    ]
}

fn arrow_plan(prefix: Ipv4Net, n_sites: usize) -> Vec<AnnouncementSpec> {
    vec![AnnouncementSpec::everywhere(prefix, all_sites(n_sites))]
}

fn beacon_plan(prefix: Ipv4Net, n_sites: usize) -> Vec<AnnouncementSpec> {
    // Beacons alternate announce/withdraw; the announcement shape is
    // constant.
    vec![AnnouncementSpec::everywhere(prefix, all_sites(n_sites))]
}

fn empty_plan(_prefix: Ipv4Net, _n_sites: usize) -> Vec<AnnouncementSpec> {
    Vec::new()
}

fn hijack_plan(prefix: Ipv4Net, n_sites: usize) -> Vec<AnnouncementSpec> {
    // Victim announces from its site; the emulated attacker announces
    // the same prefix from a second site.
    let victim = 0;
    let attacker = 1usize.min(n_sites.saturating_sub(1));
    vec![
        AnnouncementSpec::everywhere(prefix, vec![victim]),
        AnnouncementSpec::everywhere(prefix, vec![victim, attacker]),
    ]
}

fn lifeguard_plan(prefix: Ipv4Net, n_sites: usize) -> Vec<AnnouncementSpec> {
    // Baseline everywhere, then re-announce poisoning the failed AS.
    let all = all_sites(n_sites);
    vec![
        AnnouncementSpec::everywhere(prefix, all.clone()),
        AnnouncementSpec::everywhere(prefix, all).poisoned(vec![Asn(3356)]),
    ]
}

fn phas_plan(prefix: Ipv4Net, n_sites: usize) -> Vec<AnnouncementSpec> {
    // Legitimate traffic engineering the detector must not confuse with
    // a hijack: a prepended announcement.
    vec![AnnouncementSpec::everywhere(prefix, all_sites(n_sites)).prepended(2)]
}

fn poiroot_plan(prefix: Ipv4Net, n_sites: usize) -> Vec<AnnouncementSpec> {
    // Everywhere, then isolate the last site to localize the change.
    let all = all_sites(n_sites);
    let last = n_sites.saturating_sub(1);
    vec![
        AnnouncementSpec::everywhere(prefix, all),
        AnnouncementSpec::everywhere(prefix, vec![last]).select(PeerSelector::All),
    ]
}

fn sbgp_plan(prefix: Ipv4Net, n_sites: usize) -> Vec<AnnouncementSpec> {
    // Partial-deployment study: steer around non-validating ASes by
    // poisoning them.
    vec![AnnouncementSpec::everywhere(prefix, all_sites(n_sites))
        .poisoned(vec![Asn(2914), Asn(6453)])]
}

/// Every shipped scenario with its control-plane plan.
pub fn all() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            name: "anycast",
            summary: "anycast catchment mapping: announce everywhere, then shrink",
            plan: anycast_plan,
        },
        ScenarioSpec {
            name: "arrow",
            summary: "ARROW tunneling: steady announcement from every site",
            plan: arrow_plan,
        },
        ScenarioSpec {
            name: "beacon",
            summary: "routing beacon: scheduled announce/withdraw cycles",
            plan: beacon_plan,
        },
        ScenarioSpec {
            name: "convergence",
            summary: "ring convergence study (pure emulation, no testbed announcements)",
            plan: empty_plan,
        },
        ScenarioSpec {
            name: "decoy",
            summary: "decoy routing (packet pipeline only, no testbed announcements)",
            plan: empty_plan,
        },
        ScenarioSpec {
            name: "hijack",
            summary: "MITM hijack emulation: victim site, then victim+attacker",
            plan: hijack_plan,
        },
        ScenarioSpec {
            name: "lifeguard",
            summary: "LIFEGUARD failure avoidance: baseline, then poisoned re-announcement",
            plan: lifeguard_plan,
        },
        ScenarioSpec {
            name: "pecan",
            summary: "PECAN path measurement (reads alternate paths, announces nothing)",
            plan: empty_plan,
        },
        ScenarioSpec {
            name: "phas",
            summary: "PHAS detector calibration: prepended traffic engineering",
            plan: phas_plan,
        },
        ScenarioSpec {
            name: "poiroot",
            summary: "PoiRoot root-cause analysis: everywhere, then single-site",
            plan: poiroot_plan,
        },
        ScenarioSpec {
            name: "sbgp",
            summary: "secure-BGP partial deployment: poison non-validating ASes",
            plan: sbgp_plan,
        },
        ScenarioSpec {
            name: "sdx",
            summary: "SDX-lite steering (packet pipeline only, no testbed announcements)",
            plan: empty_plan,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_scenario_module() {
        // Keep this list in sync with crates/workloads/src/scenarios/.
        let modules = [
            "anycast",
            "arrow",
            "beacon",
            "convergence",
            "decoy",
            "hijack",
            "lifeguard",
            "pecan",
            "phas",
            "poiroot",
            "sbgp",
            "sdx",
        ];
        let catalog = all();
        assert_eq!(catalog.len(), modules.len());
        for m in modules {
            assert!(
                catalog.iter().any(|s| s.name == m),
                "scenario {m} missing from catalog"
            );
        }
    }

    #[test]
    fn plans_stay_inside_the_allocation() {
        let prefix: Ipv4Net = "184.164.225.0/24".parse().expect("net");
        for spec in all() {
            for ann in (spec.plan)(prefix, 4) {
                assert_eq!(
                    ann.prefix, prefix,
                    "{} announces a foreign prefix",
                    spec.name
                );
                assert!(
                    ann.sites.iter().all(|s| *s < 4),
                    "{} uses an out-of-range site",
                    spec.name
                );
            }
        }
    }
}
