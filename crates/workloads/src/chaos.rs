//! Chaos campaign: session resilience under scripted failure.
//!
//! PEERING's value rests on sessions that survive the real Internet —
//! flaky transit, crashing muxes, partitioned sites. This module drives
//! emulated topologies through *seeded* fault schedules (so every run is
//! reproducible bit-for-bit) and checks the one property that matters:
//! after every fault has healed and the clock has run long enough for
//! ConnectRetry, hold-timer and graceful-restart machinery to do their
//! jobs, the converged Loc-RIBs are **identical** to a fault-free run.
//!
//! The digest deliberately excludes `learned_at` timestamps: chaos
//! reshuffles *when* routes arrive, and the decision process is
//! age-independent, so converged content must not depend on timing.

use peering_bgp::{Asn, ConnectRetryConfig, PeerConfig, PeerId, Prefix, Speaker, SpeakerConfig};
use peering_collector::Collector;
use peering_emulation::{Container, Emulation};
use peering_netsim::{FaultAction, FaultPlan, LinkParams, NodeId, SimDuration, SimRng, SimTime};
use peering_telemetry::Telemetry;
use std::net::Ipv4Addr;

/// How long graceful restart retains a crashed neighbor's paths.
const RESTART_TIME: SimDuration = SimDuration::from_secs(120);

/// Simulated horizon for one chaos run: every fault injects before
/// [`INJECT_WINDOW`] and heals within [`HEAL_WINDOW`], leaving several
/// retry-backoff cycles plus a hold-timer expiry of slack.
const HORIZON: SimDuration = SimDuration::from_secs(900);
/// Faults inject in `[10s, 10s + INJECT_WINDOW)`.
const INJECT_WINDOW: u64 = 200;
/// Paired heal actions land at most this many seconds after injection.
const HEAL_WINDOW: u64 = 60;

/// A small emulated topology the chaos campaign can rebuild at will.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosTopology {
    /// `n` routers in a cycle; routes propagate both ways around it.
    Ring(usize),
    /// A hub (node 0) with `n` leaves; the hub relays between leaves.
    Star(usize),
}

impl ChaosTopology {
    /// Human-readable scenario name.
    pub fn name(&self) -> String {
        match self {
            ChaosTopology::Ring(n) => format!("ring-{n}"),
            ChaosTopology::Star(n) => format!("star-{n}"),
        }
    }

    /// Number of emulation nodes.
    pub fn node_count(&self) -> usize {
        match self {
            ChaosTopology::Ring(n) => *n,
            ChaosTopology::Star(n) => *n + 1,
        }
    }

    /// The adjacency list, as node-index pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        match self {
            ChaosTopology::Ring(n) => (0..*n).map(|i| (i, (i + 1) % n)).collect(),
            ChaosTopology::Star(n) => (1..=*n).map(|i| (0, i)).collect(),
        }
    }

    /// Build the emulation: one speaker per node (private ASNs), every
    /// session graceful-restart capable, every speaker armed with a
    /// seeded ConnectRetry stream so nothing stays down for good. Each
    /// node originates one unique prefix. Runs to initial convergence.
    pub fn build(&self, seed: u64) -> Emulation {
        let (mut emu, nodes) = self.assemble(seed);
        Self::launch(&mut emu, &nodes);
        emu
    }

    /// [`build`](Self::build) with a route collector attached before the
    /// first session comes up, so origination and initial convergence
    /// land in the provenance stream too. Collection is observational:
    /// the converged tables are bit-identical to a bare build (a test
    /// below pins this).
    pub fn build_collected(&self, seed: u64, collector: &mut Collector) -> Emulation {
        let (mut emu, nodes) = self.assemble(seed);
        collector.attach(&mut emu);
        Self::launch(&mut emu, &nodes);
        emu
    }

    /// Containers, links, and sessions — nothing started yet.
    fn assemble(&self, seed: u64) -> (Emulation, Vec<usize>) {
        let n = self.node_count();
        assert!((2..=200).contains(&n), "topology size out of range");
        let mut emu = Emulation::new(SimRng::new(seed).fork(&self.name()));
        let nodes: Vec<usize> = (0..n)
            .map(|i| {
                let retry_seed = SimRng::new(seed).fork(&format!("retry/{i}")).seed();
                emu.add_container(Container::router(
                    &format!("r{i}"),
                    Speaker::new(
                        SpeakerConfig::new(
                            Asn(65001 + i as u32),
                            Ipv4Addr::new(10, 0, (i >> 8) as u8, (i & 0xff) as u8),
                        )
                        .with_connect_retry(ConnectRetryConfig::new(retry_seed)),
                    ),
                ))
            })
            .collect();
        let mut next_peer = vec![0u32; n];
        for (a, b) in self.edges() {
            emu.link(nodes[a], nodes[b], LinkParams::default());
            let pa = PeerId(next_peer[a]);
            let pb = PeerId(next_peer[b]);
            next_peer[a] += 1;
            next_peer[b] += 1;
            // Lower index connects, higher index listens; both ends keep
            // the other's paths across restarts.
            emu.connect_bgp(
                nodes[a],
                PeerConfig::new(pa, Asn(65001 + b as u32)).graceful_restart(RESTART_TIME),
                nodes[b],
                PeerConfig::new(pb, Asn(65001 + a as u32))
                    .passive()
                    .graceful_restart(RESTART_TIME),
            );
        }
        (emu, nodes)
    }

    /// Start every session, originate each node's prefix, and run to
    /// initial convergence.
    fn launch(emu: &mut Emulation, nodes: &[usize]) {
        emu.start_all();
        for (i, &node) in nodes.iter().enumerate() {
            emu.originate(node, origin_prefix(i));
        }
        emu.run_until_quiet(usize::MAX);
    }
}

/// The prefix node `i` originates (public so collectors, goldens, and
/// benches can name the routing changes a run produces).
pub fn origin_prefix(i: usize) -> Prefix {
    Prefix::v4(10, 60, i as u8, 0, 24)
}

/// Generate a seeded fault schedule for `topology`. Every destructive
/// action is paired with its heal inside the horizon: links come back
/// up, partitions heal, crashed daemons restart. Same seed, same plan.
pub fn chaos_plan(topology: &ChaosTopology, seed: u64) -> FaultPlan {
    let mut rng = SimRng::new(seed).fork("chaos-plan");
    let edges = topology.edges();
    let n = topology.node_count();
    let n_faults = 3 + rng.index(3);
    let mut plan = FaultPlan::new();
    for _ in 0..n_faults {
        let t = SimTime::from_secs(10 + rng.below(INJECT_WINDOW));
        let heal = t + SimDuration::from_secs(10 + rng.below(HEAL_WINDOW - 10));
        let &(a, b) = rng.pick(&edges).expect("topology has edges");
        let (na, nb) = (NodeId(a as u32), NodeId(b as u32));
        let victim = NodeId(rng.index(n) as u32);
        match rng.index(6) {
            0 => plan = plan.at(t, FaultAction::SessionReset(na, nb)),
            1 => {
                // Random direction: either end may see the garbage.
                let (x, y) = if rng.chance(0.5) { (na, nb) } else { (nb, na) };
                plan = plan.at(t, FaultAction::CorruptMessage(x, y));
            }
            2 => {
                plan = plan
                    .at(t, FaultAction::LinkDown(na, nb))
                    .at(heal, FaultAction::LinkUp(na, nb));
            }
            3 => {
                plan = plan
                    .at(t, FaultAction::PartitionAs(victim))
                    .at(heal, FaultAction::HealAs(victim));
            }
            4 => {
                plan = plan
                    .at(t, FaultAction::MuxCrash(victim))
                    .at(heal, FaultAction::MuxRestart(victim));
            }
            _ => {
                let extra = SimDuration::from_millis(10 + rng.below(190));
                plan = plan.at(t, FaultAction::DelaySpike(na, nb, extra));
            }
        }
    }
    plan
}

/// FNV-1a digest of every container's converged Loc-RIB, independent of
/// arrival timing: routes are canonicalized **without** `learned_at`,
/// sorted per container, then hashed container by container.
pub fn rib_digest(emu: &Emulation) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut mix = |s: &str| {
        for byte in s.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    for idx in 0..emu.container_count() {
        let Some(d) = emu.daemon(idx) else {
            mix(&format!("node {idx}: crashed;"));
            continue;
        };
        let mut lines: Vec<String> = d
            .loc_rib()
            .iter()
            .map(|r| {
                format!(
                    "{:?} peer={:?} path_id={} source={:?} igp={} attrs={:?}",
                    r.prefix, r.peer, r.path_id, r.source, r.igp_cost, r.attrs
                )
            })
            .collect();
        lines.sort();
        mix(&format!("node {idx}:"));
        for line in &lines {
            mix(line);
            mix(";");
        }
    }
    hash
}

/// The outcome of one seeded chaos run against one topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Which topology ran.
    pub scenario: String,
    /// The schedule seed.
    pub seed: u64,
    /// Number of scripted actions applied.
    pub faults: usize,
    /// Loc-RIB digest of the fault-free run.
    pub baseline_digest: u64,
    /// Loc-RIB digest after chaos plus recovery time.
    pub chaos_digest: u64,
}

impl ChaosReport {
    /// True when chaos left no trace: post-recovery tables match the
    /// fault-free run exactly.
    pub fn converged(&self) -> bool {
        self.baseline_digest == self.chaos_digest
    }
}

/// Run one seeded schedule against one topology and compare digests.
pub fn run_one(topology: &ChaosTopology, seed: u64) -> ChaosReport {
    run_one_instrumented(topology, seed, Telemetry::disabled())
}

/// [`run_one`] with a telemetry handle attached to the faulted
/// emulation. Telemetry observes but never perturbs: the digests must
/// match a bare run bit-for-bit (a test below pins this), so chaos
/// campaigns can ship `emulation.*` / `bgp.*` metrics for free.
pub fn run_one_instrumented(
    topology: &ChaosTopology,
    seed: u64,
    telemetry: Telemetry,
) -> ChaosReport {
    let baseline = topology.build(seed);
    let baseline_digest = rib_digest(&baseline);
    let mut emu = topology.build(seed);
    emu.set_telemetry(telemetry);
    let mut plan = chaos_plan(topology, seed);
    let faults = plan.len();
    emu.run_with_faults(
        &mut plan,
        SimTime::ZERO + HORIZON,
        SimDuration::from_secs(1),
        usize::MAX,
    );
    emu.export_net_stats();
    ChaosReport {
        scenario: topology.name(),
        seed,
        faults,
        baseline_digest,
        chaos_digest: rib_digest(&emu),
    }
}

/// [`run_one`] with a route collector archiving the faulted run: every
/// update the vantages hear, every import/export verdict, the whole
/// propagation history. Collection must not perturb — the digests match
/// a bare run bit-for-bit (a test below pins this).
pub fn run_one_collected(
    topology: &ChaosTopology,
    seed: u64,
    collector: &mut Collector,
) -> ChaosReport {
    let baseline = topology.build(seed);
    let baseline_digest = rib_digest(&baseline);
    let mut emu = topology.build_collected(seed, collector);
    let mut plan = chaos_plan(topology, seed);
    let faults = plan.len();
    emu.run_with_faults(
        &mut plan,
        SimTime::ZERO + HORIZON,
        SimDuration::from_secs(1),
        usize::MAX,
    );
    ChaosReport {
        scenario: topology.name(),
        seed,
        faults,
        baseline_digest,
        chaos_digest: rib_digest(&emu),
    }
}

/// The default campaign matrix: every seed against every topology.
pub fn run_campaign(topologies: &[ChaosTopology], seeds: &[u64]) -> Vec<ChaosReport> {
    let mut reports = Vec::with_capacity(topologies.len() * seeds.len());
    for topology in topologies {
        for &seed in seeds {
            reports.push(run_one(topology, seed));
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOPOLOGIES: [ChaosTopology; 2] = [ChaosTopology::Ring(5), ChaosTopology::Star(4)];

    #[test]
    fn chaos_smoke() {
        // The cheap CI gate: one seed per topology, tables must match.
        for report in run_campaign(&TOPOLOGIES, &[1]) {
            assert!(
                report.converged(),
                "{} seed {} diverged: baseline {:#x} vs chaos {:#x} ({} faults)",
                report.scenario,
                report.seed,
                report.baseline_digest,
                report.chaos_digest,
                report.faults,
            );
            assert!(report.faults >= 3, "plan should script several faults");
        }
    }

    #[test]
    fn campaign_eight_seeds_recover_identical_tables() {
        // The full acceptance matrix: 8 seeded schedules over both
        // scenarios, every run ending bitwise identical to fault-free.
        let seeds: Vec<u64> = (1..=8).collect();
        let reports = run_campaign(&TOPOLOGIES, &seeds);
        assert_eq!(reports.len(), 16);
        for report in &reports {
            assert!(
                report.converged(),
                "{} seed {} diverged after {} faults",
                report.scenario,
                report.seed,
                report.faults,
            );
        }
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let topo = ChaosTopology::Ring(5);
        let mut p1 = chaos_plan(&topo, 42);
        let mut p2 = chaos_plan(&topo, 42);
        assert_eq!(p1.len(), p2.len());
        assert_eq!(p1.due(SimTime::MAX), p2.due(SimTime::MAX));
        // A different seed scripts a different schedule.
        let mut p3 = chaos_plan(&topo, 43);
        assert_ne!(
            chaos_plan(&topo, 42).due(SimTime::MAX),
            p3.due(SimTime::MAX)
        );
    }

    #[test]
    fn digest_is_independent_of_retry_seeds() {
        // Different build seeds shuffle ConnectRetry jitter and message
        // interleavings, but converged content must hash identically.
        let topo = ChaosTopology::Ring(4);
        let d1 = rib_digest(&topo.build(7));
        let d2 = rib_digest(&topo.build(8));
        assert_eq!(d1, d2, "converged digest must not depend on timing");
    }

    #[test]
    fn telemetry_observes_without_perturbing() {
        // The core chaos invariant — fault-free and post-recovery
        // Loc-RIB digests identical — must survive a live telemetry
        // handle recording every fault, crash, and session flap.
        let topo = ChaosTopology::Ring(4);
        let bare = run_one(&topo, 11);
        let telemetry = Telemetry::new();
        let instrumented = run_one_instrumented(&topo, 11, telemetry.clone());
        assert_eq!(bare, instrumented, "telemetry must not change outcomes");
        assert!(instrumented.converged());
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter("emulation.faults.applied"),
            instrumented.faults as u64
        );
        assert!(snap.gauge("netsim.transport.delivered").is_some());
    }

    #[test]
    fn collector_observes_without_perturbing() {
        // Same invariant for the route collector: a full provenance
        // stream plus vantage archives must leave the chaos digests
        // bitwise identical to a bare run, and the archives themselves
        // must be byte-deterministic across executions.
        let topo = ChaosTopology::Ring(4);
        let bare = run_one(&topo, 11);
        let run = || {
            let mut collector = Collector::new();
            collector.add_vantage(Asn(65001));
            let report = run_one_collected(&topo, 11, &mut collector);
            let archive = collector
                .update_archive(Asn(65001), peering_bgp::wire::WireConfig::default())
                .expect("archive");
            (report, archive)
        };
        let (collected, archive1) = run();
        let (collected2, archive2) = run();
        assert_eq!(bare, collected, "collection must not change outcomes");
        assert!(collected.converged());
        assert_eq!(collected, collected2);
        assert!(!archive1.is_empty(), "vantage heard updates during chaos");
        assert_eq!(archive1, archive2, "same seed, same archive bytes");
    }

    #[test]
    fn collected_build_reconstructs_origination_dags() {
        // The initial convergence of a collected build yields a
        // propagation DAG for every originated prefix, rooted at its
        // origin AS.
        let topo = ChaosTopology::Ring(4);
        let mut collector = Collector::new();
        let _emu = topo.build_collected(3, &mut collector);
        let records = collector.records();
        for i in 0..4 {
            let traces = peering_collector::traces_for_prefix(&records, origin_prefix(i));
            assert_eq!(traces.len(), 1, "one origination for node {i}");
            let dag = peering_collector::build_dag(&records, traces[0]).expect("dag");
            assert_eq!(dag.origin, Asn(65001 + i as u32));
            assert!(!dag.withdraw);
            // The change reached beyond the origin.
            assert!(dag.hops.iter().any(|h| h.verdict == "accepted"));
        }
    }

    #[test]
    fn digest_sees_route_differences() {
        let topo = ChaosTopology::Ring(4);
        let base = topo.build(7);
        let mut changed = topo.build(7);
        changed.originate(0, Prefix::v4(10, 99, 0, 0, 24));
        changed.run_until_quiet(usize::MAX);
        assert_ne!(rib_digest(&base), rib_digest(&changed));
    }
}
