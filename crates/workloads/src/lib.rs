//! Workloads and research scenarios for the PEERING testbed.
//!
//! Two halves:
//!
//! * **Workloads** — the synthetic stand-ins for the paper's measurement
//!   inputs: an Alexa-Top-500-style content catalog with per-page
//!   resources, FQDNs, CDN-concentrated hosting and a DNS resolver
//!   ([`alexa`]); and traffic generation ([`traffic`]).
//! * **Scenarios** ([`scenarios`]) — runnable reproductions of the
//!   studies the paper cites as enabled by PEERING: LIFEGUARD failure
//!   avoidance, PoiRoot root-cause analysis, ARROW tunneling, PECAN
//!   joint content/network routing, man-in-the-middle hijack emulation,
//!   secure-BGP partial deployment, anycast catchment mapping, and a
//!   decoy-routing service.
//!
//! Plus two adversarial campaigns: [`chaos`] (sessions must survive the
//! network misbehaving) and [`abuse`] (the testbed must contain a
//! *client* misbehaving while bystanders converge untouched), and the
//! [`scale`] differential harness that pins the parallel event engine
//! to the sequential engine's Loc-RIB digests, checkpoint by
//! checkpoint, on topologies up to the full 2014 Internet.

pub mod abuse;
pub mod alexa;
pub mod catalog;
pub mod chaos;
pub mod scale;
pub mod scenarios;
pub mod traffic;

pub use abuse::{AbuseReport, AbuseScenario};
pub use alexa::{CatalogConfig, ContentCatalog, Fqdn, WebSite};
pub use catalog::ScenarioSpec;
pub use chaos::{ChaosReport, ChaosTopology};
pub use scale::{differential, spaced_checkpoints, ScaleMsg, ScaleTopo};
pub use traffic::{Flow, TrafficMatrix};
