//! The Alexa-Top-N content catalog and DNS simulation.
//!
//! §4.1's reachability study: "we performed DNS lookups for the Alexa Top
//! 500 URLs... those 500 pages included 49,776 resources from 4,182
//! distinct FQDNs. We ran DNS lookups... resulting in 2,757 distinct IP
//! addresses. Reflecting the fact that we peer with major CDNs and
//! content providers, we have peer routes to 1,055 of the 2,757
//! addresses."
//!
//! The generator reproduces the *structure* behind those numbers: pages
//! embed many resources; resources concentrate on a Zipf-heavy pool of
//! FQDNs; FQDN hosting concentrates on CDN/content ASes (Sandvine 2014:
//! YouTube + Netflix alone were 47% of North American traffic), which are
//! exactly the ASes that peer openly at IXPs.

use peering_netsim::{Prefix, SimRng};
use peering_topology::{AsGraph, AsIdx, AsKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Catalog generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of ranked sites (the paper uses 500).
    pub n_sites: usize,
    /// Mean embedded resources per page (the paper's 500 pages carried
    /// 49,776 resources ≈ 100/page).
    pub mean_resources: f64,
    /// Size of the shared FQDN pool (paper: 4,182).
    pub fqdn_pool: usize,
    /// Probability a FQDN is hosted on a content/CDN AS.
    pub cdn_hosting_share: f64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            seed: 1,
            n_sites: 500,
            mean_resources: 100.0,
            fqdn_pool: 4182,
            cdn_hosting_share: 0.45,
        }
    }
}

/// A hostname with its hosting AS and resolved addresses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fqdn {
    /// The name ("cdn3.example-17.com").
    pub name: String,
    /// The AS hosting it.
    pub host_as: AsIdx,
    /// Its A records.
    pub addrs: Vec<Ipv4Addr>,
}

/// One ranked site: a front page plus embedded resources.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebSite {
    /// Popularity rank (0 = most popular).
    pub rank: usize,
    /// Index of its front-page FQDN.
    pub main_fqdn: usize,
    /// FQDN index per embedded resource.
    pub resources: Vec<usize>,
}

/// The generated catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentCatalog {
    /// Ranked sites.
    pub sites: Vec<WebSite>,
    /// The FQDN pool (front pages first, then resource hosts).
    pub fqdns: Vec<Fqdn>,
}

impl ContentCatalog {
    /// Generate a catalog over the given Internet.
    pub fn generate(g: &AsGraph, cfg: &CatalogConfig) -> ContentCatalog {
        let mut rng = SimRng::new(cfg.seed).fork("alexa-catalog");
        let contents: Vec<AsIdx> = g
            .infos()
            .filter(|(_, i)| i.kind == AsKind::Content)
            .map(|(idx, _)| idx)
            .collect();
        let other_hosts: Vec<AsIdx> = g
            .infos()
            .filter(|(_, i)| {
                matches!(
                    i.kind,
                    AsKind::Access | AsKind::Enterprise | AsKind::Transit | AsKind::Stub
                )
            })
            .map(|(idx, _)| idx)
            .collect();
        assert!(!contents.is_empty() && !other_hosts.is_empty());

        let pick_host = |rng: &mut SimRng| -> AsIdx {
            if rng.chance(cfg.cdn_hosting_share) {
                // Zipf across CDNs: traffic concentrates on a few.
                contents[rng.zipf(contents.len(), 1.1)]
            } else {
                other_hosts[rng.index(other_hosts.len())]
            }
        };
        let addr_in = |g: &AsGraph, host: AsIdx, rng: &mut SimRng| -> Ipv4Addr {
            let info = g.info(host);
            if info.prefixes.is_empty() {
                return Ipv4Addr::new(198, 18, (host.0 >> 8) as u8, host.0 as u8);
            }
            let p = &info.prefixes[rng.index(info.prefixes.len())];
            match p {
                Prefix::V4(net) => net.addr_at(1 + rng.below(200) as u32),
                Prefix::V6(_) => Ipv4Addr::new(198, 18, 0, 1),
            }
        };

        // FQDN pool: the first n_sites entries are front pages.
        let total_fqdns = cfg.fqdn_pool.max(cfg.n_sites);
        let mut fqdns = Vec::with_capacity(total_fqdns);
        for i in 0..total_fqdns {
            let host = pick_host(&mut rng);
            let n_addrs = 1 + rng.index(3);
            let addrs = (0..n_addrs).map(|_| addr_in(g, host, &mut rng)).collect();
            let name = if i < cfg.n_sites {
                format!("www.site-{i}.example")
            } else {
                format!("res-{i}.cdn.example")
            };
            fqdns.push(Fqdn {
                name,
                host_as: host,
                addrs,
            });
        }

        // Sites embed resources drawn Zipf-style from the pool, so a few
        // shared CDN names dominate (fonts/analytics/cdn libs).
        let mut sites = Vec::with_capacity(cfg.n_sites);
        for rank in 0..cfg.n_sites {
            let n_res = (rng.exp(cfg.mean_resources).round() as usize).clamp(3, 600);
            let resources = (0..n_res).map(|_| rng.zipf(total_fqdns, 0.9)).collect();
            sites.push(WebSite {
                rank,
                main_fqdn: rank,
                resources,
            });
        }
        ContentCatalog { sites, fqdns }
    }

    /// DNS: resolve a FQDN index to its addresses.
    pub fn resolve(&self, fqdn: usize) -> &[Ipv4Addr] {
        &self.fqdns[fqdn].addrs
    }

    /// DNS: resolve by name.
    pub fn resolve_name(&self, name: &str) -> Option<&[Ipv4Addr]> {
        self.fqdns
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.addrs.as_slice())
    }

    /// Total embedded resources across all pages.
    pub fn total_resources(&self) -> usize {
        self.sites.iter().map(|s| s.resources.len()).sum()
    }

    /// Distinct FQDNs actually referenced by any page (front or resource).
    pub fn distinct_fqdns_used(&self) -> usize {
        let mut used: BTreeSet<usize> = BTreeSet::new();
        for s in &self.sites {
            used.insert(s.main_fqdn);
            used.extend(s.resources.iter().copied());
        }
        used.len()
    }

    /// Distinct addresses behind the referenced FQDNs.
    pub fn distinct_addresses(&self) -> BTreeSet<Ipv4Addr> {
        let mut used: BTreeSet<usize> = BTreeSet::new();
        for s in &self.sites {
            used.insert(s.main_fqdn);
            used.extend(s.resources.iter().copied());
        }
        used.iter()
            .flat_map(|&f| self.fqdns[f].addrs.iter().copied())
            .collect()
    }

    /// §4.1 coverage stats against a set of peer-reachable ASes:
    /// `(sites_covered, resources, distinct_fqdns, distinct_ips,
    /// ips_covered)`.
    pub fn coverage(&self, reachable: &BTreeSet<AsIdx>) -> CatalogCoverage {
        let sites_covered = self
            .sites
            .iter()
            .filter(|s| reachable.contains(&self.fqdns[s.main_fqdn].host_as))
            .count();
        let mut used: BTreeSet<usize> = BTreeSet::new();
        for s in &self.sites {
            used.insert(s.main_fqdn);
            used.extend(s.resources.iter().copied());
        }
        let mut ip_host: BTreeMap<Ipv4Addr, AsIdx> = BTreeMap::new();
        for &f in &used {
            for &a in &self.fqdns[f].addrs {
                ip_host.insert(a, self.fqdns[f].host_as);
            }
        }
        let ips_covered = ip_host
            .iter()
            .filter(|(_, host)| reachable.contains(host))
            .count();
        CatalogCoverage {
            sites: self.sites.len(),
            sites_covered,
            resources: self.total_resources(),
            distinct_fqdns: used.len(),
            distinct_ips: ip_host.len(),
            ips_covered,
        }
    }
}

/// The §4.1 reachability numbers for a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogCoverage {
    /// Ranked sites in the catalog.
    pub sites: usize,
    /// Sites whose front page is peer-reachable.
    pub sites_covered: usize,
    /// Total embedded resources.
    pub resources: usize,
    /// Distinct FQDNs referenced.
    pub distinct_fqdns: usize,
    /// Distinct resolved addresses.
    pub distinct_ips: usize,
    /// Addresses hosted in peer-reachable ASes.
    pub ips_covered: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_topology::{Internet, InternetConfig};

    fn catalog() -> (Internet, ContentCatalog) {
        let net = Internet::build(InternetConfig::small(1));
        let cfg = CatalogConfig {
            n_sites: 50,
            fqdn_pool: 400,
            ..Default::default()
        };
        let cat = ContentCatalog::generate(&net.graph, &cfg);
        (net, cat)
    }

    #[test]
    fn shape_matches_config() {
        let (_, cat) = catalog();
        assert_eq!(cat.sites.len(), 50);
        assert_eq!(cat.fqdns.len(), 400);
        let total = cat.total_resources();
        // ~100/page * 50 pages, exponential spread.
        assert!((2000..12000).contains(&total), "total={total}");
        assert!(cat.distinct_fqdns_used() <= 400);
        assert!(cat.distinct_fqdns_used() > 50);
    }

    #[test]
    fn resolution_works() {
        let (_, cat) = catalog();
        assert!(!cat.resolve(0).is_empty());
        let name = cat.fqdns[0].name.clone();
        assert_eq!(cat.resolve_name(&name).unwrap(), cat.resolve(0));
        assert!(cat.resolve_name("nonexistent.example").is_none());
    }

    #[test]
    fn addresses_fall_in_host_prefixes() {
        let (net, cat) = catalog();
        let mut checked = 0;
        for f in &cat.fqdns {
            let info = net.graph.info(f.host_as);
            for a in &f.addrs {
                let inside = info.prefixes.iter().any(|p| match p {
                    Prefix::V4(n) => n.contains(*a),
                    Prefix::V6(_) => false,
                });
                assert!(inside, "{a} not in {}'s prefixes", info.asn);
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn cdn_concentration_is_visible() {
        let (net, cat) = catalog();
        let content_hosted = cat
            .fqdns
            .iter()
            .filter(|f| net.graph.info(f.host_as).kind == AsKind::Content)
            .count();
        let share = content_hosted as f64 / cat.fqdns.len() as f64;
        assert!((0.3..0.6).contains(&share), "share={share}");
    }

    #[test]
    fn coverage_monotone_in_reachable_set() {
        let (net, cat) = catalog();
        let nothing: BTreeSet<AsIdx> = BTreeSet::new();
        let everything: BTreeSet<AsIdx> = net.graph.indices().collect();
        let none = cat.coverage(&nothing);
        let all = cat.coverage(&everything);
        assert_eq!(none.sites_covered, 0);
        assert_eq!(none.ips_covered, 0);
        assert_eq!(all.sites_covered, cat.sites.len());
        assert_eq!(all.ips_covered, all.distinct_ips);
        // Partial set: cover only content ASes.
        let cdns: BTreeSet<AsIdx> = net
            .graph
            .infos()
            .filter(|(_, i)| i.kind == AsKind::Content)
            .map(|(idx, _)| idx)
            .collect();
        let partial = cat.coverage(&cdns);
        assert!(partial.sites_covered > 0);
        assert!(partial.sites_covered < cat.sites.len());
        assert!(partial.ips_covered > 0);
        assert!(partial.ips_covered < partial.distinct_ips);
    }

    #[test]
    fn deterministic_by_seed() {
        let net = Internet::build(InternetConfig::small(1));
        let cfg = CatalogConfig::default();
        let a = ContentCatalog::generate(&net.graph, &cfg);
        let b = ContentCatalog::generate(&net.graph, &cfg);
        assert_eq!(a.total_resources(), b.total_resources());
        assert_eq!(a.fqdns.len(), b.fqdns.len());
        assert_eq!(a.fqdns[7].addrs, b.fqdns[7].addrs);
    }
}
