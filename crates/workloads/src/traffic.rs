//! Traffic generation: flows between experiment prefixes and the
//! simulated Internet.
//!
//! PEERING carries only low-volume experiment traffic (§3), so the model
//! is flow-level: who talks to whom and how much, weighted toward content
//! ASes the way real eyeball traffic is.

use peering_netsim::SimRng;
use peering_topology::{AsGraph, AsIdx, AsKind};
use serde::{Deserialize, Serialize};

/// One flow between an experiment and a remote AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Remote AS.
    pub remote: AsIdx,
    /// Bytes toward the remote.
    pub tx_bytes: u64,
    /// Bytes from the remote.
    pub rx_bytes: u64,
}

/// A set of flows for one measurement interval.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficMatrix {
    /// The flows.
    pub flows: Vec<Flow>,
}

impl TrafficMatrix {
    /// Generate `n` flows with content-heavy remote selection: most bytes
    /// come *from* content ASes (downloads dominate).
    pub fn generate(g: &AsGraph, n: usize, rng: &mut SimRng) -> TrafficMatrix {
        let contents: Vec<AsIdx> = g
            .infos()
            .filter(|(_, i)| i.kind == AsKind::Content)
            .map(|(i, _)| i)
            .collect();
        let everyone: Vec<AsIdx> = g.indices().collect();
        let mut flows = Vec::with_capacity(n);
        for _ in 0..n {
            let remote = if !contents.is_empty() && rng.chance(0.6) {
                contents[rng.zipf(contents.len(), 1.1)]
            } else {
                everyone[rng.index(everyone.len())]
            };
            let rx = rng.pareto(20_000.0, 1.3) as u64;
            let tx = (rx / 10).max(500) + rng.below(2_000);
            flows.push(Flow {
                remote,
                tx_bytes: tx,
                rx_bytes: rx,
            });
        }
        TrafficMatrix { flows }
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.tx_bytes + f.rx_bytes).sum()
    }

    /// Fraction of received bytes coming from content ASes.
    pub fn content_rx_share(&self, g: &AsGraph) -> f64 {
        let total: u64 = self.flows.iter().map(|f| f.rx_bytes).sum();
        if total == 0 {
            return 0.0;
        }
        let content: u64 = self
            .flows
            .iter()
            .filter(|f| g.info(f.remote).kind == AsKind::Content)
            .map(|f| f.rx_bytes)
            .sum();
        content as f64 / total as f64
    }

    /// The remotes ranked by received bytes, heaviest first.
    pub fn top_remotes(&self, k: usize) -> Vec<(AsIdx, u64)> {
        let mut agg: std::collections::BTreeMap<AsIdx, u64> = std::collections::BTreeMap::new();
        for f in &self.flows {
            *agg.entry(f.remote).or_insert(0) += f.rx_bytes;
        }
        let mut v: Vec<(AsIdx, u64)> = agg.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_topology::{Internet, InternetConfig};

    #[test]
    fn traffic_is_content_heavy() {
        let net = Internet::build(InternetConfig::small(1));
        let mut rng = SimRng::new(5);
        let tm = TrafficMatrix::generate(&net.graph, 2000, &mut rng);
        assert_eq!(tm.flows.len(), 2000);
        assert!(tm.total_bytes() > 0);
        let share = tm.content_rx_share(&net.graph);
        // Paper context (Sandvine): about half of traffic from few CDNs.
        assert!((0.4..0.95).contains(&share), "share={share}");
    }

    #[test]
    fn downloads_dominate_uploads() {
        let net = Internet::build(InternetConfig::small(2));
        let mut rng = SimRng::new(6);
        let tm = TrafficMatrix::generate(&net.graph, 500, &mut rng);
        let rx: u64 = tm.flows.iter().map(|f| f.rx_bytes).sum();
        let tx: u64 = tm.flows.iter().map(|f| f.tx_bytes).sum();
        assert!(rx > tx * 2, "rx={rx} tx={tx}");
    }

    #[test]
    fn top_remotes_sorted_and_bounded() {
        let net = Internet::build(InternetConfig::small(3));
        let mut rng = SimRng::new(7);
        let tm = TrafficMatrix::generate(&net.graph, 1000, &mut rng);
        let top = tm.top_remotes(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_matrix() {
        let tm = TrafficMatrix::default();
        assert_eq!(tm.total_bytes(), 0);
        let net = Internet::build(InternetConfig::small(1));
        assert_eq!(tm.content_rx_share(&net.graph), 0.0);
        assert!(tm.top_remotes(3).is_empty());
    }
}
