//! Abuse campaign: runtime containment under seeded abuser scenarios.
//!
//! The chaos campaign (`chaos.rs`) checks that sessions survive the
//! network misbehaving; this campaign checks that the testbed survives a
//! *client* misbehaving. One client on a live mux plays a scripted
//! abuser — an update flood, a prefix-count blowup, a corrupt-attribute
//! storm, a session flap storm — while the other clients run an ordinary
//! workload. The properties asserted:
//!
//! * the abuser is **contained**: the escalation ladder walks it to
//!   quarantine (or, for recoverable corruption, the damage simply never
//!   enters the RIBs);
//! * sessions stay **up** under RFC 7606-recoverable corruption — no
//!   NOTIFICATION teardown for a malformed ORIGIN;
//! * healthy clients are **unaffected**: their converged Loc-RIBs are
//!   bitwise identical to an abuse-free baseline run with the same seed
//!   (same FNV digest technique as the chaos campaign, excluding
//!   `learned_at` so timing shifts cannot alias as damage).

use peering_bgp::MaxPrefixConfig;
use peering_core::containment::TokenBucketConfig;
use peering_core::{
    ContainmentConfig, ContainmentState, MuxDesign, MuxHarness, MuxOptions, Transition,
};
use peering_netsim::{FaultAction, FaultPlan, LinkParams, NodeId, Prefix, SimDuration};
use peering_telemetry::Telemetry;

/// Upstream peers on the mux.
const N_UPSTREAMS: usize = 2;
/// Clients on the mux; client [`ABUSER`] runs the abuse script.
const N_CLIENTS: usize = 3;
/// The client index that misbehaves.
pub const ABUSER: usize = 0;

/// The scripted abuser behaviors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbuseScenario {
    /// Announce/withdraw churn far beyond the update rate limit.
    UpdateFlood,
    /// More pool prefixes than the session's max-prefix limit allows.
    PrefixBlowup,
    /// A storm of UPDATEs whose attributes arrive malformed in an
    /// RFC 7606-recoverable way.
    CorruptStorm,
    /// The client's session resets over and over.
    FlapStorm,
}

impl AbuseScenario {
    /// Human-readable scenario name.
    pub fn name(&self) -> &'static str {
        match self {
            AbuseScenario::UpdateFlood => "update-flood",
            AbuseScenario::PrefixBlowup => "prefix-blowup",
            AbuseScenario::CorruptStorm => "corrupt-storm",
            AbuseScenario::FlapStorm => "flap-storm",
        }
    }

    /// Every scenario, in campaign order.
    pub fn all() -> [AbuseScenario; 4] {
        [
            AbuseScenario::UpdateFlood,
            AbuseScenario::PrefixBlowup,
            AbuseScenario::CorruptStorm,
            AbuseScenario::FlapStorm,
        ]
    }
}

/// The pool prefix the abuser announces (and churns).
pub fn abuser_prefix() -> Prefix {
    Prefix::v4(184, 164, 230, 0, 24)
}

/// The pool prefix healthy client `c` announces.
pub fn healthy_prefix(c: usize) -> Prefix {
    Prefix::v4(184, 164, 224 + c as u8, 0, 24)
}

/// The external prefix upstream `u` announces.
pub fn upstream_prefix(u: usize) -> Prefix {
    Prefix::v4(203, 0, 113 + u as u8, 0, 24)
}

/// A pool prefix from the abuser's blowup / burst range.
fn blowup_prefix(i: usize) -> Prefix {
    Prefix::v4(184, 164, 240 + i as u8, 0, 24)
}

/// FNV-1a digest of one emulation node's Loc-RIB, `learned_at` excluded
/// (same canonicalization as the chaos campaign's digest).
pub fn node_rib_digest(h: &MuxHarness, node: usize) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut mix = |s: &str| {
        for byte in s.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    let Some(d) = h.emulation().daemon(node) else {
        mix("crashed;");
        return hash;
    };
    let mut lines: Vec<String> = d
        .loc_rib()
        .iter()
        .map(|r| {
            format!(
                "{:?} peer={:?} path_id={} source={:?} igp={} attrs={:?}",
                r.prefix, r.peer, r.path_id, r.source, r.igp_cost, r.attrs
            )
        })
        .collect();
    lines.sort();
    for line in &lines {
        mix(line);
        mix(";");
    }
    hash
}

/// Combined digest over every *healthy* client's Loc-RIB.
pub fn healthy_digest(h: &MuxHarness) -> u64 {
    let mut acc: u64 = 0;
    for c in 0..N_CLIENTS {
        if c == ABUSER {
            continue;
        }
        acc = acc
            .rotate_left(17)
            .wrapping_add(node_rib_digest(h, h.client_node(c)));
    }
    acc
}

/// The outcome of one seeded abuse run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbuseReport {
    /// Which scenario ran.
    pub scenario: String,
    /// The run seed.
    pub seed: u64,
    /// Where the abuser ended on the escalation ladder.
    pub final_state: ContainmentState,
    /// Scenario-specific containment property (see [`run_one`]).
    pub contained: bool,
    /// Whether every session was Established at the end of the run.
    pub sessions_established: bool,
    /// Containment ladder transitions recorded for the abuser.
    pub transitions: usize,
    /// Healthy-client digest of the abuse-free baseline run.
    pub baseline_digest: u64,
    /// Healthy-client digest after abuse plus containment.
    pub abused_digest: u64,
    /// `bgp.session.treat_as_withdraw` total from the abused run.
    pub treat_as_withdraw: u64,
    /// `netsim.queue.tail_drops` total from the abused run.
    pub tail_drops: u64,
}

impl AbuseReport {
    /// True when abuse left no trace on the bystanders: healthy clients
    /// converged to the exact tables of the abuse-free run.
    pub fn healthy_unaffected(&self) -> bool {
        self.baseline_digest == self.abused_digest
    }
}

fn options_for(scenario: AbuseScenario) -> MuxOptions {
    match scenario {
        // A rate-limited, queue-bounded client access link so the wire
        // burst tail-drops deterministically instead of queueing forever.
        AbuseScenario::UpdateFlood => MuxOptions {
            client_link: LinkParams::with_delay(SimDuration::from_millis(1))
                .bandwidth(32_000)
                .queue_limit(4),
            ..MuxOptions::default()
        },
        AbuseScenario::PrefixBlowup => MuxOptions {
            client_max_prefix: Some(MaxPrefixConfig::new(4)),
            ..MuxOptions::default()
        },
        _ => MuxOptions::default(),
    }
}

fn containment_for(scenario: AbuseScenario) -> ContainmentConfig {
    match scenario {
        // A small bucket so the flood exhausts its grace quickly.
        AbuseScenario::UpdateFlood => ContainmentConfig {
            bucket: TokenBucketConfig {
                capacity: 4,
                refill_per_sec: 1,
            },
            ..ContainmentConfig::default()
        },
        _ => ContainmentConfig::default(),
    }
}

/// Build the mux, arm containment, and run the ordinary workload every
/// run shares: each upstream and each healthy client announces one
/// prefix.
fn build(scenario: AbuseScenario, seed: u64, telemetry: Telemetry) -> MuxHarness {
    let mut h = MuxHarness::build_with(
        MuxDesign::AddPathMux,
        N_UPSTREAMS,
        N_CLIENTS,
        seed,
        options_for(scenario),
    );
    h.set_telemetry(telemetry);
    h.enable_containment(containment_for(scenario));
    for u in 0..N_UPSTREAMS {
        h.announce_from_upstream(u, upstream_prefix(u));
    }
    for c in 0..N_CLIENTS {
        if c != ABUSER {
            h.announce_from_client(c, healthy_prefix(c));
        }
    }
    h
}

/// Let the clock run `secs` of simulated time, then advance containment.
fn settle(h: &mut MuxHarness, secs: u64) {
    let mut idle = FaultPlan::new();
    let until = h.emulation().now() + SimDuration::from_secs(secs);
    h.run_faults(&mut idle, until);
    h.containment_step();
}

fn drive_abuse(scenario: AbuseScenario, h: &mut MuxHarness) {
    match scenario {
        AbuseScenario::UpdateFlood => {
            // Announce/withdraw churn through the guarded path until the
            // ladder quarantines the client.
            for _ in 0..20 {
                h.guarded_announce_from_client(ABUSER, abuser_prefix());
                h.guarded_withdraw_from_client(ABUSER, abuser_prefix());
            }
            // With the mux deaf to it, the abuser bursts raw announces at
            // the wire; the bounded access-link queue tail-drops the
            // excess instead of buffering without bound.
            let abuser_node = h.client_node(ABUSER);
            let emu = h.emulation_mut();
            for i in 0..10 {
                emu.originate(abuser_node, blowup_prefix(i));
            }
            emu.run_until_quiet(usize::MAX);
            settle(h, 30);
        }
        AbuseScenario::PrefixBlowup => {
            // Six pool prefixes against a limit of four: the mux ceases
            // and flushes the session, serves the idle-hold penalty,
            // re-learns the same blowup on reconnect, and ceases again —
            // at which point the ladder quarantines the client and the
            // reject-all import keeps the re-established session inert.
            for i in 0..6 {
                h.announce_from_client(ABUSER, blowup_prefix(i));
            }
            for _ in 0..6 {
                settle(h, 30);
            }
        }
        AbuseScenario::CorruptStorm => {
            // Every announcement from the abuser arrives with malformed
            // attributes. RFC 7606 treat-as-withdraw: the routes never
            // enter the mux RIB and the session never drops.
            let from = NodeId(h.client_node(ABUSER) as u32);
            let to = NodeId(h.mux_node(0) as u32);
            for _ in 0..6 {
                let now = h.emulation().now();
                let mut plan = FaultPlan::new().at(now, FaultAction::CorruptAttributes(from, to));
                h.run_faults(&mut plan, now + SimDuration::from_secs(1));
                h.guarded_announce_from_client(ABUSER, abuser_prefix());
                h.guarded_withdraw_from_client(ABUSER, abuser_prefix());
            }
            settle(h, 10);
        }
        AbuseScenario::FlapStorm => {
            // The abuser's route is in, then its session resets every
            // 15 s — far enough apart that the ~5 s reconnect backoff
            // re-establishes between resets, so every reset lands on a
            // live session and registers as a flap. Score outruns decay
            // and the ladder quarantines the client, withdrawing its
            // route for good.
            h.announce_from_client(ABUSER, abuser_prefix());
            let a = NodeId(h.client_node(ABUSER) as u32);
            let b = NodeId(h.mux_node(0) as u32);
            for _ in 0..12 {
                let now = h.emulation().now();
                let mut plan = FaultPlan::new().at(
                    now + SimDuration::from_secs(1),
                    FaultAction::SessionReset(a, b),
                );
                h.run_faults(&mut plan, now + SimDuration::from_secs(15));
                h.containment_step();
            }
            settle(h, 20);
        }
    }
}

/// Run one seeded abuse scenario and compare against its abuse-free
/// baseline. "Contained" means, per scenario: the abuser ends
/// Quarantined (flood, blowup, flaps), or — for the corrupt storm —
/// every session is still Established and the malformed routes never
/// reached the mux RIB.
pub fn run_one(scenario: AbuseScenario, seed: u64) -> AbuseReport {
    run_one_instrumented(scenario, seed, Telemetry::new())
}

/// [`run_one`] with a caller-supplied telemetry handle attached to the
/// abused run (the baseline gets its own, discarded handle so both runs
/// execute identical code paths).
pub fn run_one_instrumented(
    scenario: AbuseScenario,
    seed: u64,
    telemetry: Telemetry,
) -> AbuseReport {
    run_one_with_artifacts(scenario, seed, telemetry).report
}

/// Everything a snapshot test wants to pin about one run: the report,
/// the abuser's full escalation transition log, and every client's final
/// Loc-RIB digest (abuser included).
#[derive(Debug, Clone)]
pub struct AbuseArtifacts {
    /// The pass/fail summary.
    pub report: AbuseReport,
    /// The containment engine's transition log, all clients.
    pub transitions: Vec<Transition>,
    /// FNV digest of each client node's Loc-RIB, indexed by client.
    pub client_digests: Vec<u64>,
}

/// [`run_one_instrumented`], keeping the transition log and per-client
/// digests for golden snapshots.
pub fn run_one_with_artifacts(
    scenario: AbuseScenario,
    seed: u64,
    telemetry: Telemetry,
) -> AbuseArtifacts {
    // Baseline: identical build, workload, and horizon — abuser silent.
    let mut base = build(scenario, seed, Telemetry::new());
    match scenario {
        AbuseScenario::UpdateFlood => settle(&mut base, 30),
        AbuseScenario::PrefixBlowup => {
            for _ in 0..6 {
                settle(&mut base, 30);
            }
        }
        AbuseScenario::CorruptStorm => settle(&mut base, 10 + 6),
        AbuseScenario::FlapStorm => settle(&mut base, 80),
    }
    let baseline_digest = healthy_digest(&base);

    let mut h = build(scenario, seed, telemetry.clone());
    drive_abuse(scenario, &mut h);
    h.export_net_stats();
    let snap = telemetry.snapshot();
    let final_state = h
        .containment()
        .map(|e| e.state(ABUSER))
        .unwrap_or(ContainmentState::Healthy);
    let sessions_established = h.fully_established();
    let contained = match scenario {
        AbuseScenario::CorruptStorm => {
            sessions_established
                && !h.mux_has_route(&abuser_prefix())
                && snap.counter("bgp.session.treat_as_withdraw") > 0
        }
        _ => final_state == ContainmentState::Quarantined,
    };
    let report = AbuseReport {
        scenario: scenario.name().to_string(),
        seed,
        final_state,
        contained,
        sessions_established,
        transitions: h
            .containment()
            .map(|e| {
                e.transitions()
                    .iter()
                    .filter(|t| t.client == ABUSER)
                    .count()
            })
            .unwrap_or(0),
        baseline_digest,
        abused_digest: healthy_digest(&h),
        treat_as_withdraw: snap.counter("bgp.session.treat_as_withdraw"),
        tail_drops: snap.counter("netsim.queue.tail_drops"),
    };
    AbuseArtifacts {
        transitions: h
            .containment()
            .map(|e| e.transitions().to_vec())
            .unwrap_or_default(),
        client_digests: (0..N_CLIENTS)
            .map(|c| node_rib_digest(&h, h.client_node(c)))
            .collect(),
        report,
    }
}

/// Every scenario against every seed.
pub fn run_campaign(seeds: &[u64]) -> Vec<AbuseReport> {
    let mut reports = Vec::with_capacity(4 * seeds.len());
    for scenario in AbuseScenario::all() {
        for &seed in seeds {
            reports.push(run_one(scenario, seed));
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abuse_smoke() {
        // The cheap CI gate: every scenario contained, bystanders clean.
        for report in run_campaign(&[1]) {
            assert!(
                report.contained,
                "{} seed {}: abuser not contained (final state {})",
                report.scenario, report.seed, report.final_state,
            );
            assert!(
                report.healthy_unaffected(),
                "{} seed {}: healthy clients diverged: {:#x} vs {:#x}",
                report.scenario,
                report.seed,
                report.baseline_digest,
                report.abused_digest,
            );
        }
    }

    #[test]
    fn update_flood_quarantines_and_tail_drops() {
        let report = run_one(AbuseScenario::UpdateFlood, 1);
        assert_eq!(report.final_state, ContainmentState::Quarantined);
        assert!(report.transitions >= 3, "ladder climbed rung by rung");
        assert!(
            report.tail_drops > 0,
            "the wire burst should overflow the bounded access queue"
        );
        assert!(report.healthy_unaffected());
    }

    #[test]
    fn corrupt_storm_keeps_sessions_up() {
        let report = run_one(AbuseScenario::CorruptStorm, 1);
        assert!(
            report.sessions_established,
            "7606-recoverable corruption must not drop sessions"
        );
        assert!(report.treat_as_withdraw >= 6, "every storm update treated");
        assert_eq!(report.final_state, ContainmentState::Healthy);
        assert!(report.healthy_unaffected());
    }

    #[test]
    fn prefix_blowup_ends_quarantined() {
        let report = run_one(AbuseScenario::PrefixBlowup, 1);
        assert_eq!(report.final_state, ContainmentState::Quarantined);
        assert!(report.transitions >= 2, "two ceases walk two rungs");
        assert!(
            report.healthy_unaffected(),
            "blowup prefixes must never persist in healthy tables"
        );
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        for scenario in [AbuseScenario::UpdateFlood, AbuseScenario::FlapStorm] {
            let a = run_one(scenario, 7);
            let b = run_one(scenario, 7);
            assert_eq!(a, b, "{} must be seed-deterministic", scenario.name());
        }
    }
}
