//! Full-scale differential harness: real [`Speaker`]s driven by the
//! generic event engine, sequential vs. parallel, digest-pinned.
//!
//! This is the acceptance oracle for the parallel engine
//! ([`peering_netsim::run_parallel`]): build the *same* topology of BGP
//! speakers, run it once on the sequential engine and once on the
//! sharded engine, and require the per-checkpoint Loc-RIB digests to be
//! bitwise identical. Nothing about the speakers is mocked — sessions
//! handshake, policies run, MRAI timers fire, the decision process
//! picks best paths — so digest equality means the parallel engine
//! preserved *every* delivery order that matters.
//!
//! Topologies come in two families:
//!
//! * flat rings/stars reusing [`ChaosTopology`] adjacency (every
//!   session accept-all, one beacon prefix per node), and
//! * generated Internets from `peering-topology`, with Gao-Rexford
//!   valley-free policies (customer routes preferred and re-exported
//!   everywhere; peer/provider routes kept off peers and providers) and
//!   a handful of beacon origins, which is how the full 2014-scale
//!   preset (~47k ASes) converges inside the scale bench.

use crate::chaos::{origin_prefix, ChaosTopology};
use peering_bgp::{
    Action, Asn, BgpMessage, Community, Match, Output, PeerConfig, PeerId, Policy, Prefix, Speaker,
    SpeakerConfig,
};
use peering_netsim::{
    run_parallel, run_sequential, EngineNode, EngineRun, NodeId, Outbox, SimDuration, SimTime,
};
use peering_topology::{AsIdx, Internet, Relationship};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Base one-way link delay; also the parallel engine's lookahead. Every
/// link delay is `BASE_DELAY + k * DELAY_STEP` for some `k`, so the
/// conservative-barrier precondition (cross-shard delay ≥ lookahead)
/// holds for any shard assignment.
const BASE_DELAY: SimDuration = SimDuration::from_millis(10);
/// Per-link deterministic delay spread, to exercise event orderings.
const DELAY_STEP: SimDuration = SimDuration::from_micros(250);

/// Communities tagging where a route entered the local AS, for
/// Gao-Rexford export filtering (the classic LOCAL_PREF + community
/// encoding of valley-free routing).
const TAG_CUSTOMER: Community = Community::new(65001, 1);
/// Route learned from a settlement-free peer.
const TAG_PEER: Community = Community::new(65001, 2);
/// Route learned from a transit provider.
const TAG_PROVIDER: Community = Community::new(65001, 3);

/// Messages exchanged by engine-driven speakers.
#[derive(Debug, Clone)]
pub enum ScaleMsg {
    /// A BGP message arriving on the *receiver's* session `PeerId`.
    Bgp(PeerId, BgpMessage),
    /// Self-scheduled timer service (MRAI flushes and friends).
    Tick,
}

/// One speaker's place in a [`ScaleTopo`]: config, sessions, beacons.
#[derive(Debug, Clone)]
struct NodeSpec {
    cfg: SpeakerConfig,
    /// Per local `PeerId` (index = `PeerId.0`): session config, the
    /// neighbor's engine node, the neighbor's `PeerId` for this
    /// session, and the one-way link delay.
    peers: Vec<(PeerConfig, NodeId, PeerId, SimDuration)>,
    /// Prefixes this node originates at start.
    origins: Vec<Prefix>,
}

/// A topology of BGP speakers ready to run under either engine.
#[derive(Debug, Clone)]
pub struct ScaleTopo {
    specs: Vec<NodeSpec>,
    lookahead: SimDuration,
}

/// Deterministic per-link delay: at least [`BASE_DELAY`], spread by a
/// cheap hash of the endpoints so orderings get exercised.
fn link_delay(a: usize, b: usize) -> SimDuration {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let k = (lo.wrapping_mul(7).wrapping_add(hi.wrapping_mul(13))) % 5;
    BASE_DELAY + DELAY_STEP.saturating_mul(k as u64)
}

impl ScaleTopo {
    /// A flat topology from [`ChaosTopology`] adjacency: private ASNs,
    /// accept-all policies, one beacon prefix per node.
    pub fn from_chaos(topology: &ChaosTopology) -> ScaleTopo {
        let n = topology.node_count();
        let mut specs: Vec<NodeSpec> = (0..n)
            .map(|i| NodeSpec {
                cfg: flat_speaker_config(i),
                peers: Vec::new(),
                origins: vec![origin_prefix(i)],
            })
            .collect();
        for (a, b) in topology.edges() {
            let delay = link_delay(a, b);
            let pa = PeerId(specs[a].peers.len() as u32);
            let pb = PeerId(specs[b].peers.len() as u32);
            // Lower index initiates, higher index listens — same
            // convention as the chaos emulation.
            let cfg_a = PeerConfig::new(pa, Asn(65001 + b as u32));
            let cfg_b = PeerConfig::new(pb, Asn(65001 + a as u32)).passive();
            specs[a].peers.push((cfg_a, NodeId(b as u32), pb, delay));
            specs[b].peers.push((cfg_b, NodeId(a as u32), pa, delay));
        }
        ScaleTopo {
            specs,
            lookahead: BASE_DELAY,
        }
    }

    /// A generated Internet under Gao-Rexford policies, with `beacons`
    /// origin ASes (spread deterministically across the graph) each
    /// announcing their first assigned prefix.
    pub fn from_internet(net: &Internet, beacons: usize) -> ScaleTopo {
        let g = &net.graph;
        let mut specs: Vec<NodeSpec> = g
            .indices()
            .map(|u| NodeSpec {
                cfg: internet_speaker_config(g.info(u).asn, u.i()),
                peers: Vec::new(),
                origins: Vec::new(),
            })
            .collect();
        let mut wire = |a: AsIdx, b: AsIdx, rel_a: SessionRole, rel_b: SessionRole| {
            let (ai, bi) = (a.i(), b.i());
            let delay = link_delay(ai, bi);
            let pa = PeerId(specs[ai].peers.len() as u32);
            let pb = PeerId(specs[bi].peers.len() as u32);
            let mut cfg_a = session_config(pa, g.info(b).asn, rel_a);
            let mut cfg_b = session_config(pb, g.info(a).asn, rel_b);
            // Lower graph index initiates the TCP connection.
            if ai < bi {
                cfg_b = cfg_b.passive();
            } else {
                cfg_a = cfg_a.passive();
            }
            specs[ai].peers.push((cfg_a, NodeId(bi as u32), pb, delay));
            specs[bi].peers.push((cfg_b, NodeId(ai as u32), pa, delay));
        };
        for (a, b, rel) in net.sessions() {
            match rel {
                // "a is customer of b": a sees b as provider.
                Relationship::CustomerToProvider => {
                    wire(a, b, SessionRole::Provider, SessionRole::Customer)
                }
                Relationship::PeerToPeer => wire(a, b, SessionRole::Peer, SessionRole::Peer),
            }
        }
        // Beacon origins: a deterministic stride over ASes that own at
        // least one prefix, so beacons land in every tier.
        let owners: Vec<AsIdx> = g
            .indices()
            .filter(|&u| !g.info(u).prefixes.is_empty())
            .collect();
        let count = beacons.min(owners.len());
        if let Some(stride) = owners.len().checked_div(count) {
            let stride = stride.max(1);
            for k in 0..count {
                let u = owners[k * stride % owners.len()];
                let p = g.info(u).prefixes[0];
                specs[u.i()].origins.push(p);
            }
        }
        ScaleTopo {
            specs,
            lookahead: BASE_DELAY,
        }
    }

    /// Enable MRAI-style update packing on every speaker.
    pub fn with_mrai(mut self, interval: SimDuration) -> ScaleTopo {
        for spec in &mut self.specs {
            spec.cfg.mrai = Some(interval);
        }
        self
    }

    /// Disable attribute interning on every speaker (ablation: digests
    /// must not change).
    pub fn without_interning(mut self) -> ScaleTopo {
        for spec in &mut self.specs {
            spec.cfg.intern_attrs = false;
        }
        self
    }

    /// Number of engine nodes.
    pub fn node_count(&self) -> usize {
        self.specs.len()
    }

    /// Number of configured sessions (edges).
    pub fn session_count(&self) -> usize {
        self.specs.iter().map(|s| s.peers.len()).sum::<usize>() / 2
    }

    /// The parallel engine's lookahead for this topology: the minimum
    /// cross-node delay.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Total beacon prefixes originated.
    pub fn beacon_count(&self) -> usize {
        self.specs.iter().map(|s| s.origins.len()).sum()
    }

    fn make_node(&self, id: NodeId) -> BgpNode {
        let spec = &self.specs[id.0 as usize];
        let mut speaker = Speaker::new(spec.cfg.clone());
        let mut links = Vec::with_capacity(spec.peers.len());
        for (cfg, dest, remote, delay) in &spec.peers {
            speaker.add_peer(cfg.clone());
            links.push(Link {
                dest: *dest,
                remote: *remote,
                delay: *delay,
            });
        }
        BgpNode {
            me: id,
            speaker,
            links,
            origins: spec.origins.clone(),
            ticks: BTreeSet::new(),
        }
    }

    /// Run under the sequential reference engine.
    pub fn run_engine_sequential(&self, checkpoints: &[SimTime], max_time: SimTime) -> EngineRun {
        run_sequential(
            self.node_count(),
            |id| self.make_node(id),
            checkpoints,
            max_time,
        )
    }

    /// Run under the sharded parallel engine.
    pub fn run_engine_parallel(
        &self,
        shards: usize,
        checkpoints: &[SimTime],
        max_time: SimTime,
    ) -> EngineRun {
        run_parallel(
            self.node_count(),
            |id| self.make_node(id),
            shards,
            self.lookahead,
            checkpoints,
            max_time,
        )
    }
}

/// Which side of a session the local AS is on, for policy assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionRole {
    /// The neighbor is our customer.
    Customer,
    /// The neighbor is a settlement-free peer.
    Peer,
    /// The neighbor is our transit provider.
    Provider,
}

fn flat_speaker_config(i: usize) -> SpeakerConfig {
    let mut cfg = SpeakerConfig::new(
        Asn(65001 + i as u32),
        Ipv4Addr::new(10, 0, (i >> 8) as u8, (i & 0xff) as u8),
    );
    // Engine runs are event-quiescent: with keepalives disabled the
    // simulation reaches a state with no pending events, which is the
    // engines' convergence criterion.
    cfg.hold_time = SimDuration::ZERO;
    cfg
}

fn internet_speaker_config(asn: Asn, i: usize) -> SpeakerConfig {
    let mut cfg = SpeakerConfig::new(
        asn,
        Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8),
    );
    cfg.hold_time = SimDuration::ZERO;
    cfg
}

/// Gao-Rexford session config for one side of one session.
fn session_config(id: PeerId, neighbor: Asn, role: SessionRole) -> PeerConfig {
    let (local_pref, tag) = match role {
        SessionRole::Customer => (200, TAG_CUSTOMER),
        SessionRole::Peer => (100, TAG_PEER),
        SessionRole::Provider => (50, TAG_PROVIDER),
    };
    let import = Policy::accept_all().rule(
        Match::Any,
        vec![
            Action::SetLocalPref(local_pref),
            Action::AddCommunity(tag),
            Action::Accept,
        ],
    );
    let export = match role {
        // Customers get the full table.
        SessionRole::Customer => Policy::accept_all(),
        // Peers and providers only hear customer routes and our own:
        // anything that entered via a peer or provider stays put.
        SessionRole::Peer | SessionRole::Provider => Policy::accept_all().rule(
            Match::AnyOf(vec![
                Match::HasCommunity(TAG_PEER),
                Match::HasCommunity(TAG_PROVIDER),
            ]),
            vec![Action::Reject],
        ),
    };
    PeerConfig::new(id, neighbor).import(import).export(export)
}

/// One speaker wired into the event engine.
struct Link {
    dest: NodeId,
    remote: PeerId,
    delay: SimDuration,
}

/// A [`Speaker`] adapted to [`EngineNode`]: messages route over links,
/// timer deadlines become self-scheduled [`ScaleMsg::Tick`]s, and the
/// digest is an FNV-1a hash of the canonicalized Loc-RIB (same line
/// format as [`crate::chaos::rib_digest`], minus `learned_at`-free
/// fields it already excludes).
struct BgpNode {
    me: NodeId,
    speaker: Speaker,
    /// Indexed by local `PeerId.0`.
    links: Vec<Link>,
    origins: Vec<Prefix>,
    /// Tick self-messages already in flight, by absolute fire time.
    ticks: BTreeSet<SimTime>,
}

impl BgpNode {
    /// Route speaker outputs onto links, then service any timer
    /// deadline that is already due and schedule a wake-up for the
    /// next future one.
    fn service(&mut self, now: SimTime, mut outputs: Vec<Output>, out: &mut Outbox<ScaleMsg>) {
        loop {
            for o in outputs.drain(..) {
                if let Output::Send(pid, msg) = o {
                    let link = &self.links[pid.0 as usize];
                    out.send(link.dest, link.delay, ScaleMsg::Bgp(link.remote, msg));
                }
            }
            let deadline = self.speaker.next_deadline();
            if deadline <= now {
                outputs = self.speaker.tick(now);
                if outputs.is_empty() && self.speaker.next_deadline() <= now {
                    // A due deadline `tick` cannot clear would spin; the
                    // speaker never does this (every timer fires or
                    // re-arms strictly later). Fail loudly in every build
                    // profile: a silent `break` would stop scheduling
                    // Ticks and freeze this node's timers, and the engine
                    // already contains shard panics cleanly.
                    panic!(
                        "node {:?}: speaker deadline {:?} did not advance past now {now:?}",
                        self.me,
                        self.speaker.next_deadline(),
                    );
                }
            } else {
                if deadline != SimTime::MAX && self.ticks.insert(deadline) {
                    out.send(self.me, deadline - now, ScaleMsg::Tick);
                }
                break;
            }
        }
    }
}

impl EngineNode for BgpNode {
    type Msg = ScaleMsg;

    fn on_start(&mut self, out: &mut Outbox<ScaleMsg>) {
        let now = SimTime::ZERO;
        let mut outputs = Vec::new();
        for p in std::mem::take(&mut self.origins) {
            outputs.extend(self.speaker.originate(p, now));
        }
        let ids: Vec<PeerId> = self.speaker.peer_ids().collect();
        for id in ids {
            outputs.extend(self.speaker.start_peer(id, now));
        }
        self.service(now, outputs, out);
    }

    fn on_event(&mut self, now: SimTime, _from: NodeId, msg: ScaleMsg, out: &mut Outbox<ScaleMsg>) {
        let outputs = match msg {
            ScaleMsg::Bgp(pid, m) => self.speaker.on_message(pid, m, now),
            ScaleMsg::Tick => {
                self.ticks.remove(&now);
                self.speaker.tick(now)
            }
        };
        self.service(now, outputs, out);
    }

    fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |s: &str| {
            for byte in s.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        let mut lines: Vec<String> = self
            .speaker
            .loc_rib()
            .iter()
            .map(|r| {
                format!(
                    "{:?} peer={:?} path_id={} source={:?} igp={} attrs={:?}",
                    r.prefix, r.peer, r.path_id, r.source, r.igp_cost, r.attrs
                )
            })
            .collect();
        lines.sort();
        for line in &lines {
            mix(line);
            mix(";");
        }
        hash
    }
}

/// Convenience: evenly spaced checkpoints across `[0, horizon]`.
pub fn spaced_checkpoints(horizon: SimTime, count: usize) -> Vec<SimTime> {
    let total = horizon.as_micros();
    (1..=count as u64)
        .map(|k| SimTime::from_micros(total * k / count as u64))
        .collect()
}

/// Run the differential oracle: sequential vs. parallel at each shard
/// count, requiring complete [`EngineRun`] equality (event counts, end
/// times, every checkpoint digest, and the final digest).
pub fn differential(
    topo: &ScaleTopo,
    shard_counts: &[usize],
    checkpoints: &[SimTime],
    max_time: SimTime,
) -> (EngineRun, Vec<(usize, bool)>) {
    let reference = topo.run_engine_sequential(checkpoints, max_time);
    let verdicts = shard_counts
        .iter()
        .map(|&s| {
            let run = topo.run_engine_parallel(s, checkpoints, max_time);
            (s, run == reference)
        })
        .collect();
    (reference, verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: SimTime = SimTime::from_secs(600);

    #[test]
    fn ring_converges_and_digests_are_nonzero() {
        let topo = ScaleTopo::from_chaos(&ChaosTopology::Ring(5));
        let run = topo.run_engine_sequential(&spaced_checkpoints(HORIZON, 4), SimTime::MAX);
        assert!(run.events > 0);
        assert!(
            run.end_time < HORIZON,
            "ring must quiesce well inside horizon"
        );
        assert_eq!(run.checkpoints.len(), 4);
    }

    #[test]
    fn parallel_ring_matches_sequential() {
        let topo = ScaleTopo::from_chaos(&ChaosTopology::Ring(6));
        let cks = spaced_checkpoints(HORIZON, 3);
        let (reference, verdicts) = differential(&topo, &[1, 2, 4, 8], &cks, SimTime::MAX);
        assert!(reference.events > 0);
        for (shards, ok) in verdicts {
            assert!(ok, "{shards}-shard run diverged from sequential");
        }
    }

    #[test]
    fn star_with_mrai_matches_sequential() {
        let topo =
            ScaleTopo::from_chaos(&ChaosTopology::Star(5)).with_mrai(SimDuration::from_secs(5));
        let cks = spaced_checkpoints(HORIZON, 3);
        let (reference, verdicts) = differential(&topo, &[2, 3], &cks, SimTime::MAX);
        assert!(reference.events > 0);
        for (shards, ok) in verdicts {
            assert!(ok, "{shards}-shard MRAI run diverged from sequential");
        }
    }

    #[test]
    fn mrai_packing_reaches_the_same_tables() {
        // Packing changes how many UPDATEs carry the deltas, never the
        // converged contents: final digests must match the unpacked run.
        let plain = ScaleTopo::from_chaos(&ChaosTopology::Ring(5));
        let packed = plain.clone().with_mrai(SimDuration::from_secs(10));
        let a = plain.run_engine_sequential(&[], SimTime::MAX);
        let b = packed.run_engine_sequential(&[], SimTime::MAX);
        assert_eq!(a.final_digest, b.final_digest);
    }

    #[test]
    fn interning_ablation_leaves_digests_unchanged() {
        let on = ScaleTopo::from_chaos(&ChaosTopology::Ring(4));
        let off = on.clone().without_interning();
        let a = on.run_engine_sequential(&[], SimTime::MAX);
        let b = off.run_engine_sequential(&[], SimTime::MAX);
        assert_eq!(a.final_digest, b.final_digest);
        assert_eq!(a.events, b.events);
    }
}
