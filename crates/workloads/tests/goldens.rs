//! Golden snapshot tests: the scenario catalog's control-plane plans and
//! the chaos layer's seeded artifacts, pinned against checked-in JSON.
//!
//! Run with `UPDATE_GOLDENS=1 cargo test -p peering-workloads --test
//! goldens` to refresh the snapshots after an intentional change; the
//! diff then shows reviewers exactly what the change does to every
//! shipped scenario.

use peering_collector::{Collector, LookingGlass};
use peering_core::{Testbed, TestbedConfig};
use peering_netsim::Ipv4Net;
use peering_telemetry::Telemetry;
use peering_workloads::abuse::{self, AbuseScenario};
use peering_workloads::catalog;
use peering_workloads::chaos::{chaos_plan, origin_prefix, rib_digest, ChaosTopology};
use peering_workloads::scenarios;
use serde::{Serialize, Value};
use std::fs;
use std::path::{Path, PathBuf};

/// The fixed catalog inputs: the canonical test allocation and site
/// count used across the repo's test suites.
const PREFIX: &str = "184.164.225.0/24";
const N_SITES: usize = 4;
/// The fixed seed for the chaos goldens.
const SEED: u64 = 1;

/// An ordered JSON object from literal pairs (the vendored `Value` keeps
/// insertion order, so renders are byte-stable).
fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Adapter so a raw `Value` tree can go through the serializer.
struct Tree(Value);

impl Serialize for Tree {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn render(v: Value) -> String {
    serde_json::to_string_pretty(&Tree(v)).expect("serialize") + "\n"
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join(name)
}

/// Compare `current` against the checked-in snapshot, or rewrite it when
/// `UPDATE_GOLDENS` is set.
fn check_golden(name: &str, current: Value) {
    check_golden_text(name, render(current));
}

/// [`check_golden`] for content that is already rendered JSON text.
fn check_golden_text(name: &str, rendered: String) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir goldens");
        fs::write(&path, rendered).expect("write golden");
        return;
    }
    let on_disk = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); refresh with UPDATE_GOLDENS=1"));
    assert_eq!(
        on_disk, rendered,
        "{name} drifted from its snapshot; if intentional, refresh with UPDATE_GOLDENS=1"
    );
}

#[test]
fn scenario_catalog_matches_golden() {
    let prefix: Ipv4Net = PREFIX.parse().expect("net");
    let scenarios: Vec<(String, Value)> = catalog::all()
        .into_iter()
        .map(|spec| {
            let plan =
                serde_json::to_value(&(spec.plan)(prefix, N_SITES)).expect("plan serializes");
            (
                spec.name.to_string(),
                obj(vec![
                    ("summary", Value::Str(spec.summary.to_string())),
                    ("plan", plan),
                ]),
            )
        })
        .collect();
    let current = obj(vec![
        ("prefix", Value::Str(PREFIX.to_string())),
        ("sites", Value::U64(N_SITES as u64)),
        ("scenarios", Value::Map(scenarios)),
    ]);
    check_golden("catalog.json", current);
}

#[test]
fn chaos_artifacts_match_golden() {
    let mut runs = Vec::new();
    for topology in [ChaosTopology::Ring(5), ChaosTopology::Star(4)] {
        let plan = chaos_plan(&topology, SEED);
        let schedule = serde_json::to_value(&plan).expect("plan serializes");
        let digest = rib_digest(&topology.build(SEED));
        runs.push(obj(vec![
            ("topology", Value::Str(topology.name())),
            ("seed", Value::U64(SEED)),
            ("schedule", schedule),
            ("converged_digest", Value::Str(format!("{digest:#018x}"))),
        ]));
    }
    check_golden("chaos.json", obj(vec![("runs", Value::Seq(runs))]));
}

#[test]
fn propagation_dag_matches_golden() {
    // The causal story of one routing change on a small topology,
    // pinned hop by hop: every line carries the sim-timestamp, the AS
    // path at that hop, and the import/export verdict. Two same-seed
    // runs must render identically before either is compared to the
    // snapshot.
    let render = || {
        let topo = ChaosTopology::Ring(4);
        let mut collector = Collector::new();
        let emu = topo.build_collected(SEED, &mut collector);
        let lg = LookingGlass::new(&emu, &collector);
        let prefix = origin_prefix(0);
        format!(
            "{}\n{}\n{}",
            lg.trace(prefix),
            lg.convergence(prefix),
            lg.show_route(prefix)
        )
    };
    let first = render();
    assert_eq!(first, render(), "same seed, same DAG text");
    check_golden_text("propagation_dag.txt", first);
}

#[test]
fn abuse_containment_matches_golden() {
    // The update-flood abuser's escalation story, pinned end to end: the
    // exact ladder the containment engine walked (timestamps, rungs,
    // causes) and where every client's Loc-RIB landed once the dust
    // settled. A drift here means containment fired earlier, later, or
    // differently than the reviewed behavior.
    let artifacts =
        abuse::run_one_with_artifacts(AbuseScenario::UpdateFlood, SEED, Telemetry::new());
    assert!(
        artifacts.report.contained,
        "golden run must contain the abuser"
    );
    assert!(
        artifacts.report.healthy_unaffected(),
        "golden run must leave healthy clients untouched"
    );
    let transitions = serde_json::to_value(&artifacts.transitions).expect("transitions serialize");
    let digests = Value::Seq(
        artifacts
            .client_digests
            .iter()
            .map(|d| Value::Str(format!("{d:#018x}")))
            .collect(),
    );
    let current = obj(vec![
        ("scenario", Value::Str(artifacts.report.scenario.clone())),
        ("seed", Value::U64(SEED)),
        (
            "final_state",
            Value::Str(artifacts.report.final_state.to_string()),
        ),
        ("transitions", transitions),
        ("client_rib_digests", digests),
    ]);
    check_golden("abuse.json", current);
}

#[test]
fn telemetry_snapshot_is_deterministic_and_matches_golden() {
    // Two same-seed runs of a catalog scenario must render the exact
    // same telemetry JSON — the registry is keyed on ordered maps and
    // fed only by sim-time-driven events, so there is nothing for wall
    // clocks or hash ordering to perturb.
    let run = |seed: u64| {
        let mut tb = Testbed::build(TestbedConfig::small(seed));
        scenarios::anycast::run(&mut tb).expect("anycast runs");
        tb.telemetry_snapshot().to_json_pretty()
    };
    let first = run(SEED);
    let second = run(SEED);
    assert_eq!(
        first, second,
        "same seed must render byte-identical telemetry"
    );
    check_golden_text("telemetry.json", first);
}
