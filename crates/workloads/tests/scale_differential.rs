//! The parallel-engine acceptance matrix (ISSUE 7): sequential vs.
//! sharded runs over ring, star, and generated-Internet topologies,
//! every shard count, asserting complete [`EngineRun`] equality —
//! event counts, quiescence times, every checkpoint digest, and the
//! final digest, bitwise.
//!
//! Plus the interner leak check: a full converge-then-withdraw-all
//! cycle must return every speaker's attribute arena to empty, and
//! disabling interning entirely must not change any digest.

use peering_bgp::Asn;
use peering_netsim::{SimDuration, SimTime};
use peering_topology::{Internet, InternetConfig};
use peering_workloads::chaos::origin_prefix;
use peering_workloads::{differential, spaced_checkpoints, ChaosTopology, ScaleTopo};

const HORIZON: SimTime = SimTime::from_secs(600);
const SHARDS: [usize; 4] = [1, 2, 4, 8];

fn assert_matrix(name: &str, topo: &ScaleTopo) {
    let cks = spaced_checkpoints(HORIZON, 4);
    let (reference, verdicts) = differential(topo, &SHARDS, &cks, SimTime::MAX);
    assert!(reference.events > 0, "{name}: no events processed");
    assert!(
        reference.end_time < HORIZON,
        "{name}: did not quiesce inside the horizon"
    );
    assert_eq!(reference.checkpoints.len(), cks.len());
    for (shards, ok) in verdicts {
        assert!(
            ok,
            "{name}: {shards}-shard run diverged from the sequential engine"
        );
    }
}

#[test]
fn ring_matrix_matches_sequential() {
    assert_matrix("ring-6", &ScaleTopo::from_chaos(&ChaosTopology::Ring(6)));
}

#[test]
fn star_matrix_matches_sequential() {
    assert_matrix("star-5", &ScaleTopo::from_chaos(&ChaosTopology::Star(5)));
}

#[test]
fn internet_matrix_matches_sequential() {
    // A generated Internet with Gao-Rexford policies; two seeds so the
    // matrix covers different graphs, not just different schedules.
    for seed in [1, 2] {
        let net = Internet::build(InternetConfig::small(seed));
        let topo = ScaleTopo::from_internet(&net, 6);
        assert!(topo.beacon_count() > 0, "seed {seed}: no beacons");
        assert_matrix(&format!("internet-small-{seed}"), &topo);
    }
}

#[test]
fn eval_scale_matrix_matches_sequential() {
    // The ~6k-AS evaluation preset: the scale where the missing
    // end-of-round fence first showed up as divergence. Two beacons
    // keep debug-mode runtime bounded; the full preset runs in release
    // via the scale bench in tools/check.sh.
    let net = Internet::build(InternetConfig::eval(1));
    let topo = ScaleTopo::from_internet(&net, 2);
    assert_matrix("internet-eval-1", &topo);
}

#[test]
fn internet_matrix_with_mrai_matches_sequential() {
    // MRAI packing introduces per-peer batch timers — exactly the kind
    // of node-local deadline that could diverge under sharding if tick
    // scheduling weren't deterministic.
    let net = Internet::build(InternetConfig::small(3));
    let topo = ScaleTopo::from_internet(&net, 6).with_mrai(SimDuration::from_secs(15));
    assert_matrix("internet-small-3-mrai", &topo);
}

#[test]
fn interner_arena_returns_to_baseline_after_withdraw_all() {
    // Converge a ring, note per-speaker arena occupancy, withdraw every
    // origin, re-converge: tables empty out and a GC pass returns every
    // arena to zero live entries — shared attributes don't leak.
    let topo = ChaosTopology::Ring(5);
    let mut emu = topo.build(11);
    let n = emu.container_count();
    let occupied: Vec<usize> = (0..n)
        .map(|i| emu.daemon(i).expect("daemon up").interner_stats().0)
        .collect();
    assert!(
        occupied.iter().any(|&d| d > 0),
        "converged ring should intern at least one attribute set"
    );

    for i in 0..n {
        emu.withdraw(i, origin_prefix(i));
    }
    emu.run_until_quiet(usize::MAX);

    // The emulation's event log intentionally snapshots every
    // `BestChanged` route (attrs `Arc` included) — an external observer,
    // not a speaker leak. Drop those snapshots so the arena check sees
    // only what the speakers themselves still hold.
    emu.events.clear();

    for i in 0..n {
        let daemon = emu.daemon_mut(i).expect("daemon up");
        assert_eq!(
            daemon.loc_rib().iter().count(),
            0,
            "node {i}: Loc-RIB must be empty after withdraw-all"
        );
        daemon.gc();
        let (distinct, hits, misses) = daemon.interner_stats();
        assert_eq!(
            distinct, 0,
            "node {i}: arena still holds {distinct} entries after withdraw-all + gc"
        );
        assert!(hits + misses > 0, "node {i}: interner was never consulted");
    }
}

#[test]
fn interning_ablation_is_digest_invariant_on_internet() {
    // The Fig. 2 ablation at the engine level: sharing attribute
    // allocations must be observationally invisible.
    let net = Internet::build(InternetConfig::small(4));
    let on = ScaleTopo::from_internet(&net, 5);
    let off = on.clone().without_interning();
    let a = on.run_engine_sequential(&[], SimTime::MAX);
    let b = off.run_engine_sequential(&[], SimTime::MAX);
    assert_eq!(a, b, "interning changed an engine-observable outcome");
}

#[test]
fn beacons_propagate_valley_free() {
    // Sanity on the Gao-Rexford wiring itself: with beacons originated
    // and the graph connected through providers, the run does real work
    // (sessions all handshake, updates flow) and quiesces.
    let net = Internet::build(InternetConfig::small(5));
    let topo = ScaleTopo::from_internet(&net, 4);
    let run = topo.run_engine_sequential(&[], SimTime::MAX);
    // Every session handshakes (2 OPENs + 2 KEEPALIVEs minimum), and
    // beacon updates propagate beyond that floor.
    let floor = 4 * topo.session_count() as u64;
    assert!(
        run.events > floor,
        "expected update propagation beyond handshakes: {} <= {floor}",
        run.events
    );
    let _ = Asn(0); // keep the import meaningful if assertions change
}
