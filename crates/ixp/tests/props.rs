//! Property tests for the IXP layer: the workflow's behavior respects
//! each published policy class, and the member census always adds up.

use peering_ixp::workflow::respond;
use peering_ixp::{IxpMember, MemberId, PeeringOutcome, PeeringWorkflow};
use peering_netsim::{Asn, SimDuration, SimRng, SimTime};
use peering_topology::{AsIdx, PeeringPolicy};
use proptest::prelude::*;

fn member(policy: PeeringPolicy, asn: u32) -> IxpMember {
    IxpMember {
        as_idx: AsIdx(0),
        asn: Asn(asn),
        policy,
        on_route_server: false,
        country: *b"NL",
        name: None,
    }
}

proptest! {
    /// Closed members never peer; open members never decline — for any
    /// seed.
    #[test]
    fn policy_classes_bound_outcomes(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let closed = member(PeeringPolicy::Closed, 1);
        let open = member(PeeringPolicy::Open, 2);
        for _ in 0..50 {
            prop_assert!(!respond(&closed, &mut rng).established());
            prop_assert_ne!(respond(&open, &mut rng), PeeringOutcome::Declined);
        }
    }

    /// The workflow's tally always reconciles: every request resolves to
    /// exactly one outcome by the deadline, and the established list
    /// matches the accept counts.
    #[test]
    fn workflow_tally_reconciles(seed in any::<u64>(),
                                 n_open in 0usize..30,
                                 n_cbc in 0usize..30,
                                 n_closed in 0usize..30) {
        let mut wf = PeeringWorkflow::new();
        let mut rng = SimRng::new(seed);
        let mut id = 0u32;
        for _ in 0..n_open {
            wf.send_request(MemberId(id), &member(PeeringPolicy::Open, 100 + id), SimTime::ZERO, &mut rng);
            id += 1;
        }
        for _ in 0..n_cbc {
            wf.send_request(MemberId(id), &member(PeeringPolicy::CaseByCase, 100 + id), SimTime::ZERO, &mut rng);
            id += 1;
        }
        for _ in 0..n_closed {
            wf.send_request(MemberId(id), &member(PeeringPolicy::Closed, 100 + id), SimTime::ZERO, &mut rng);
            id += 1;
        }
        let total = n_open + n_cbc + n_closed;
        prop_assert_eq!(wf.sent(), total);
        let deadline = SimTime::ZERO + wf.give_up_after + SimDuration::from_secs(1);
        prop_assert_eq!(wf.resolved(deadline).count(), total);
        prop_assert_eq!(wf.pending(deadline), 0);
        let tally = wf.tally(deadline);
        prop_assert_eq!(
            tally.accepted + tally.accepted_after_questions + tally.declined + tally.no_response,
            total
        );
        prop_assert_eq!(
            wf.established(deadline).len(),
            tally.accepted + tally.accepted_after_questions
        );
        // Closed members contribute zero accepts.
        if n_open == 0 && n_cbc == 0 {
            prop_assert_eq!(tally.accepted + tally.accepted_after_questions, 0);
        }
    }

    /// Resolution times are never before the request and never after the
    /// give-up deadline.
    #[test]
    fn resolution_times_are_sane(seed in any::<u64>(), n in 1usize..40) {
        let mut wf = PeeringWorkflow::new();
        let mut rng = SimRng::new(seed);
        let t0 = SimTime::from_secs(1000);
        for i in 0..n {
            wf.send_request(
                MemberId(i as u32),
                &member(PeeringPolicy::CaseByCase, 200 + i as u32),
                t0,
                &mut rng,
            );
        }
        let deadline = t0 + wf.give_up_after;
        for r in wf.resolved(SimTime::MAX) {
            prop_assert!(r.resolves_at >= r.sent_at);
            prop_assert!(r.resolves_at <= deadline);
            if r.outcome == PeeringOutcome::NoResponse {
                prop_assert_eq!(r.resolves_at, deadline);
            }
        }
    }
}
