//! The IXP member directory.

use peering_netsim::Asn;
use peering_topology::{AsGraph, AsIdx, PeeringPolicy};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a member within one IXP's directory.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MemberId(pub u32);

impl MemberId {
    /// As a usize for indexing.
    pub fn i(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One IXP member's directory entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IxpMember {
    /// The AS in the global graph.
    pub as_idx: AsIdx,
    /// Its ASN.
    pub asn: Asn,
    /// Published peering policy.
    pub policy: PeeringPolicy,
    /// Connected to the IXP's route servers?
    pub on_route_server: bool,
    /// Country code.
    pub country: [u8; 2],
    /// Display name if notable.
    pub name: Option<String>,
}

/// All members of one IXP.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MemberDirectory {
    members: Vec<IxpMember>,
}

impl MemberDirectory {
    /// Build from the global graph and a member list.
    pub fn from_members(g: &AsGraph, member_ases: &[AsIdx]) -> Self {
        let members = member_ases
            .iter()
            .map(|&idx| {
                let info = g.info(idx);
                IxpMember {
                    as_idx: idx,
                    asn: info.asn,
                    policy: info.policy,
                    on_route_server: info.uses_route_server,
                    country: info.country,
                    name: info.name.clone(),
                }
            })
            .collect();
        MemberDirectory { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member by id.
    pub fn get(&self, id: MemberId) -> Option<&IxpMember> {
        self.members.get(id.i())
    }

    /// Find a member by ASN.
    pub fn by_asn(&self, asn: Asn) -> Option<(MemberId, &IxpMember)> {
        self.members
            .iter()
            .enumerate()
            .find(|(_, m)| m.asn == asn)
            .map(|(i, m)| (MemberId(i as u32), m))
    }

    /// Iterate `(id, member)`.
    pub fn iter(&self) -> impl Iterator<Item = (MemberId, &IxpMember)> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, m)| (MemberId(i as u32), m))
    }

    /// Count members by policy among the non-route-server population.
    pub fn policy_census(&self) -> PolicyCensus {
        let mut census = PolicyCensus::default();
        for m in &self.members {
            if m.on_route_server {
                census.route_server += 1;
            } else {
                match m.policy {
                    PeeringPolicy::Open => census.open += 1,
                    PeeringPolicy::Closed => census.closed += 1,
                    PeeringPolicy::CaseByCase => census.case_by_case += 1,
                    PeeringPolicy::Unlisted => census.unlisted += 1,
                }
            }
        }
        census
    }
}

/// Counts matching Table-free §4.1 prose: RS members plus the policy
/// breakdown of the rest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyCensus {
    /// Members on the route server.
    pub route_server: usize,
    /// Open-policy members (not on RS).
    pub open: usize,
    /// Closed-policy members (not on RS).
    pub closed: usize,
    /// Case-by-case members (not on RS).
    pub case_by_case: usize,
    /// Members with no published policy (not on RS).
    pub unlisted: usize,
}

impl PolicyCensus {
    /// Total membership.
    pub fn total(&self) -> usize {
        self.route_server + self.open + self.closed + self.case_by_case + self.unlisted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_topology::{Internet, InternetConfig};

    fn directory() -> MemberDirectory {
        let net = Internet::build(InternetConfig::small(1));
        MemberDirectory::from_members(&net.graph, &net.ixp_members[0])
    }

    #[test]
    fn directory_reflects_graph() {
        let d = directory();
        assert_eq!(d.len(), 30);
        assert!(!d.is_empty());
        for (id, m) in d.iter() {
            assert_eq!(d.get(id).unwrap().asn, m.asn);
        }
    }

    #[test]
    fn census_matches_spec() {
        let d = directory();
        let c = d.policy_census();
        assert_eq!(c.route_server, 22);
        assert_eq!(c.open, 4);
        assert_eq!(c.closed, 1);
        assert_eq!(c.case_by_case, 2);
        assert_eq!(c.unlisted, 1);
        assert_eq!(c.total(), 30);
    }

    #[test]
    fn lookup_by_asn() {
        let d = directory();
        let (id, m) = d.iter().next().map(|(i, m)| (i, m.asn)).unwrap();
        let (found, fm) = d.by_asn(m).unwrap();
        assert_eq!(found, id);
        assert_eq!(fm.asn, m);
        assert!(d.by_asn(Asn(4_000_000_000)).is_none());
    }

    #[test]
    fn missing_member_id() {
        let d = directory();
        assert!(d.get(MemberId(999)).is_none());
    }
}
