//! Internet exchange point model.
//!
//! §3 of the paper builds PEERING's rich connectivity on three IXP
//! mechanisms, all modeled here:
//!
//! * **Route servers** ([`route_server`]) — one BGP session yields
//!   multilateral peering with hundreds of members at once ("we
//!   immediately obtained peering with them when our router established a
//!   BGP session with the route server").
//! * **Open peering and the request workflow** ([`workflow`]) — most
//!   non-RS members peer bilaterally on request; §4.1: "the vast majority
//!   accepted our request", one asked questions, a handful never replied.
//! * **Remote peering** ([`fabric`]) — Hibernia-style virtualized layer-2
//!   circuits extend one physical deployment to tens of IXPs.
//!
//! [`Ixp`] assembles a member directory from a generated Internet and
//! exposes the operations the testbed performs: connect to the route
//! server, send peering requests, and wire bilateral sessions.

pub mod fabric;
pub mod member;
pub mod route_server;
pub mod workflow;

pub use fabric::{Fabric, PortId, RemotePeeringProvider};
pub use member::{IxpMember, MemberDirectory, MemberId};
pub use route_server::{route_server_speaker, RouteServerConfig};
pub use workflow::{PeeringOutcome, PeeringRequest, PeeringWorkflow};

use peering_topology::{AsGraph, Internet};

/// One IXP instance assembled from a generated Internet.
#[derive(Debug, Clone)]
pub struct Ixp {
    /// Display name ("AMS-IX").
    pub name: String,
    /// Host country code.
    pub country: [u8; 2],
    /// Member directory.
    pub directory: MemberDirectory,
    /// The shared layer-2 fabric.
    pub fabric: Fabric,
}

impl Ixp {
    /// Build IXP number `i` from a generated Internet.
    pub fn from_internet(net: &Internet, i: usize) -> Ixp {
        let spec = &net.specs[i];
        let directory = MemberDirectory::from_members(&net.graph, &net.ixp_members[i]);
        let mut fabric = Fabric::new(&spec.name);
        for m in 0..directory.len() {
            fabric.add_port(MemberId(m as u32));
        }
        Ixp {
            name: spec.name.clone(),
            country: spec.country,
            directory,
            fabric,
        }
    }

    /// Members connected to the route server.
    pub fn rs_member_ids(&self) -> Vec<MemberId> {
        self.directory
            .iter()
            .filter(|(_, m)| m.on_route_server)
            .map(|(id, _)| id)
            .collect()
    }

    /// Members NOT on the route server (bilateral candidates).
    pub fn bilateral_ids(&self) -> Vec<MemberId> {
        self.directory
            .iter()
            .filter(|(_, m)| !m.on_route_server)
            .map(|(id, _)| id)
            .collect()
    }

    /// Summary line for reports.
    pub fn summary(&self, g: &AsGraph) -> String {
        let rs = self.rs_member_ids().len();
        let _ = g;
        format!(
            "{}: {} members, {} on route servers, {} bilateral candidates",
            self.name,
            self.directory.len(),
            rs,
            self.directory.len() - rs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_topology::InternetConfig;

    #[test]
    fn ixp_assembles_from_internet() {
        let net = Internet::build(InternetConfig::small(1));
        let ixp = Ixp::from_internet(&net, 0);
        assert_eq!(ixp.name, "TEST-IX");
        assert_eq!(ixp.directory.len(), 30);
        assert_eq!(ixp.rs_member_ids().len(), 22);
        assert_eq!(ixp.bilateral_ids().len(), 8);
        assert_eq!(ixp.fabric.port_count(), 30);
        let s = ixp.summary(&net.graph);
        assert!(s.contains("30 members"));
        assert!(s.contains("22 on route servers"));
    }
}
