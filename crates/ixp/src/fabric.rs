//! The IXP's shared layer-2 fabric and remote-peering circuits.
//!
//! The fabric gives every member port sub-millisecond reach to every
//! other port — which is why one rack at AMS-IX buys adjacency to
//! hundreds of ASes. A [`RemotePeeringProvider`] (the paper's Hibernia
//! example) stretches that reach: virtual circuits from one server's port
//! to distant IXPs, at the cost of wide-area latency.

use crate::member::MemberId;
use peering_netsim::{LinkParams, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A port on the fabric.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PortId(pub u32);

/// The shared switching fabric of one IXP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fabric {
    /// IXP name, for traces.
    pub name: String,
    ports: BTreeMap<MemberId, PortId>,
    next_port: u32,
    /// One-way latency across the fabric.
    pub latency: SimDuration,
    /// Port bandwidth in bits/s (10GE default).
    pub port_bandwidth: u64,
}

impl Fabric {
    /// A fabric with 0.3 ms port-to-port latency and 10GE ports.
    pub fn new(name: &str) -> Self {
        Fabric {
            name: name.to_string(),
            ports: BTreeMap::new(),
            next_port: 0,
            latency: SimDuration::from_micros(300),
            port_bandwidth: 10_000_000_000,
        }
    }

    /// Allocate a port for a member (idempotent).
    pub fn add_port(&mut self, member: MemberId) -> PortId {
        if let Some(&p) = self.ports.get(&member) {
            return p;
        }
        let p = PortId(self.next_port);
        self.next_port += 1;
        self.ports.insert(member, p);
        p
    }

    /// The port of a member, if connected.
    pub fn port_of(&self, member: MemberId) -> Option<PortId> {
        self.ports.get(&member).copied()
    }

    /// Number of allocated ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Link parameters for a session crossing the fabric between two
    /// member ports.
    pub fn link_params(&self) -> LinkParams {
        LinkParams::with_delay(self.latency).bandwidth(self.port_bandwidth)
    }
}

/// A remote-peering provider: virtual L2 circuits from a local port to
/// faraway IXPs ("Hibernia Networks offered us virtualized layer 2
/// connectivity from our AMS-IX server to tens of IXPs around the
/// world").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemotePeeringProvider {
    /// Provider name.
    pub name: String,
    /// `(remote IXP name, one-way circuit latency)`.
    pub circuits: Vec<(String, SimDuration)>,
}

impl RemotePeeringProvider {
    /// A provider with no circuits yet.
    pub fn new(name: &str) -> Self {
        RemotePeeringProvider {
            name: name.to_string(),
            circuits: Vec::new(),
        }
    }

    /// Provision a circuit to a remote IXP.
    pub fn add_circuit(&mut self, remote_ixp: &str, latency: SimDuration) {
        self.circuits.push((remote_ixp.to_string(), latency));
    }

    /// Link parameters for the circuit to `remote_ixp`, if provisioned:
    /// circuit latency plus the remote fabric's own latency.
    pub fn link_params(&self, remote_ixp: &str, remote_fabric: &Fabric) -> Option<LinkParams> {
        self.circuits
            .iter()
            .find(|(n, _)| n == remote_ixp)
            .map(|(_, lat)| {
                LinkParams::with_delay(*lat + remote_fabric.latency).bandwidth(1_000_000_000)
                // virtual circuits are thinner
            })
    }

    /// Number of reachable remote IXPs.
    pub fn reach(&self) -> usize {
        self.circuits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_are_stable_and_idempotent() {
        let mut f = Fabric::new("AMS-IX");
        let p1 = f.add_port(MemberId(1));
        let p2 = f.add_port(MemberId(2));
        assert_ne!(p1, p2);
        assert_eq!(f.add_port(MemberId(1)), p1);
        assert_eq!(f.port_count(), 2);
        assert_eq!(f.port_of(MemberId(2)), Some(p2));
        assert_eq!(f.port_of(MemberId(9)), None);
    }

    #[test]
    fn fabric_links_are_fast() {
        let f = Fabric::new("AMS-IX");
        let lp = f.link_params();
        assert!(lp.delay < SimDuration::from_millis(1));
        assert_eq!(lp.bandwidth_bps, Some(10_000_000_000));
        assert_eq!(lp.loss, 0.0);
    }

    #[test]
    fn remote_peering_adds_latency() {
        let mut provider = RemotePeeringProvider::new("Hibernia");
        provider.add_circuit("DE-CIX", SimDuration::from_millis(8));
        provider.add_circuit("LINX", SimDuration::from_millis(6));
        assert_eq!(provider.reach(), 2);
        let remote = Fabric::new("DE-CIX");
        let lp = provider.link_params("DE-CIX", &remote).unwrap();
        assert!(lp.delay >= SimDuration::from_millis(8));
        assert!(provider.link_params("NYIIX", &remote).is_none());
    }
}
