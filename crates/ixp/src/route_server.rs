//! The multilateral route server.
//!
//! "Many IXPs now offer route servers, which offer a central point for
//! multilateral peering, sidestepping the need to establish bilateral
//! agreements" (§3). The route server is a [`Speaker`] in RFC 7947 mode:
//! it does not insert its own ASN, does not touch the next hop, and runs
//! per-member export control driven by the conventional RS communities —
//! tagging an announcement with `0:<peer>` withholds it from that peer,
//! `0:0` withholds it from everyone not explicitly allowed.

use crate::member::{IxpMember, MemberId};
use peering_bgp::policy::{Action, Match, Policy};
use peering_bgp::{Community, PeerConfig, PeerId, Speaker, SpeakerConfig};
use peering_netsim::Asn;
use std::net::Ipv4Addr;

/// Route-server parameters.
#[derive(Debug, Clone)]
pub struct RouteServerConfig {
    /// The RS's own ASN (transparent, so rarely visible).
    pub asn: Asn,
    /// Router id on the fabric.
    pub router_id: Ipv4Addr,
}

impl Default for RouteServerConfig {
    fn default() -> Self {
        // AMS-IX's route servers use AS6777.
        RouteServerConfig {
            asn: Asn(6777),
            router_id: Ipv4Addr::new(80, 249, 208, 255),
        }
    }
}

/// The low 16 bits of an ASN, as used in RS control communities.
fn as16(asn: Asn) -> u16 {
    (asn.0 & 0xFFFF) as u16
}

/// The "do not announce to `member`" community.
pub fn block_community(member_asn: Asn) -> Community {
    Community::new(0, as16(member_asn))
}

/// The "announce only to `member`" (allow) community.
pub fn allow_community(rs_asn: Asn, member_asn: Asn) -> Community {
    let _ = rs_asn;
    Community::new(as16(Asn(0xFFFF_0000)), as16(member_asn))
}

/// Export policy the RS applies toward one member: honor block
/// communities, then strip the control communities before export.
fn member_export_policy(member_asn: Asn) -> Policy {
    Policy::accept_all()
        .rule(
            Match::HasCommunity(block_community(member_asn)),
            vec![Action::Reject],
        )
        .rule(
            Match::HasCommunity(Community::new(0, 0)),
            vec![Action::Reject],
        )
        .rule(Match::Any, vec![Action::RemoveCommunitiesWithAsn(0)])
}

/// Build a route-server speaker with every RS member configured as a
/// passive peer. Peer ids equal member ids, so the caller can wire
/// messages by member.
pub fn route_server_speaker(
    cfg: &RouteServerConfig,
    members: impl IntoIterator<Item = (MemberId, IxpMember)>,
) -> Speaker {
    let mut rs = Speaker::new(SpeakerConfig::new(cfg.asn, cfg.router_id).route_server());
    for (id, m) in members {
        rs.add_peer(
            PeerConfig::new(PeerId(id.0), m.asn)
                .passive()
                .export(member_export_policy(m.asn)),
        );
    }
    rs
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::{BgpMessage, Output, Prefix};
    use peering_netsim::SimTime;
    use peering_topology::{AsIdx, PeeringPolicy};

    fn member(id: u32, asn: u32) -> (MemberId, IxpMember) {
        (
            MemberId(id),
            IxpMember {
                as_idx: AsIdx(id),
                asn: Asn(asn),
                policy: PeeringPolicy::Open,
                on_route_server: true,
                country: *b"NL",
                name: None,
            },
        )
    }

    fn client(asn: u32, rs_asn: Asn) -> Speaker {
        let mut s = Speaker::new(SpeakerConfig::new(
            Asn(asn),
            Ipv4Addr::new(80, 249, 208, asn as u8),
        ));
        s.add_peer(PeerConfig::new(PeerId(0), rs_asn));
        s
    }

    /// Bring one member's session with the RS up.
    fn establish(rs: &mut Speaker, member: &mut Speaker, member_id: MemberId) {
        let mut to_rs: Vec<BgpMessage> = Vec::new();
        let mut to_m: Vec<BgpMessage> = Vec::new();
        for o in member.start_peer(PeerId(0), SimTime::ZERO) {
            if let Output::Send(_, m) = o {
                to_rs.push(m);
            }
        }
        for o in rs.start_peer(PeerId(member_id.0), SimTime::ZERO) {
            if let Output::Send(_, m) = o {
                to_m.push(m);
            }
        }
        for _ in 0..16 {
            if to_rs.is_empty() && to_m.is_empty() {
                break;
            }
            let mut nm = Vec::new();
            let mut nrs = Vec::new();
            for m in to_rs.drain(..) {
                for o in rs.on_message(PeerId(member_id.0), m, SimTime::ZERO) {
                    if let Output::Send(p, msg) = o {
                        if p == PeerId(member_id.0) {
                            nm.push(msg);
                        }
                    }
                }
            }
            for m in to_m.drain(..) {
                for o in member.on_message(PeerId(0), m, SimTime::ZERO) {
                    if let Output::Send(_, msg) = o {
                        nrs.push(msg);
                    }
                }
            }
            to_rs = nrs;
            to_m = nm;
        }
        assert!(rs.peer_established(PeerId(member_id.0)));
    }

    #[test]
    fn one_session_brings_multilateral_peering() {
        let cfg = RouteServerConfig::default();
        let n = 20usize;
        let mut rs = route_server_speaker(&cfg, (0..n as u32).map(|i| member(i, 64600 + i)));
        let mut clients: Vec<Speaker> = (0..n as u32).map(|i| client(64600 + i, cfg.asn)).collect();
        for (i, c) in clients.iter_mut().enumerate() {
            establish(&mut rs, c, MemberId(i as u32));
        }
        // Member 0 announces one prefix; the RS fans it to all others.
        let p = Prefix::v4(185, 0, 0, 0, 24);
        let mut fanout = 0;
        for o in clients[0].originate(p, SimTime::from_secs(1)) {
            if let Output::Send(_, m) = o {
                for o2 in rs.on_message(PeerId(0), m, SimTime::from_secs(1)) {
                    if let Output::Send(to, msg) = o2 {
                        assert_ne!(to, PeerId(0), "split horizon");
                        fanout += 1;
                        let idx = to.0 as usize;
                        clients[idx].on_message(PeerId(0), msg, SimTime::from_secs(1));
                    }
                }
            }
        }
        assert_eq!(fanout, n - 1, "announcement reaches all other members");
        for (i, c) in clients.iter().enumerate().skip(1) {
            let r = c.loc_rib().get(&p).unwrap_or_else(|| panic!("client {i}"));
            // Transparent: path is just the announcer.
            assert_eq!(r.attrs.as_path.to_string(), "64600");
        }
    }

    #[test]
    fn block_community_withholds_from_one_member() {
        let cfg = RouteServerConfig::default();
        let mut rs = route_server_speaker(
            &cfg,
            vec![member(0, 64600), member(1, 64601), member(2, 64602)],
        );
        let mut c0 = client(64600, cfg.asn);
        let mut c1 = client(64601, cfg.asn);
        let mut c2 = client(64602, cfg.asn);
        establish(&mut rs, &mut c0, MemberId(0));
        establish(&mut rs, &mut c1, MemberId(1));
        establish(&mut rs, &mut c2, MemberId(2));
        // c0 announces tagged "do not send to 64601".
        let p = Prefix::v4(185, 1, 0, 0, 24);
        let outs = c0.originate_with(p, vec![block_community(Asn(64601))], SimTime::from_secs(1));
        let mut went_to = Vec::new();
        for o in outs {
            if let Output::Send(_, m) = o {
                for o2 in rs.on_message(PeerId(0), m, SimTime::from_secs(1)) {
                    if let Output::Send(to, msg) = o2 {
                        went_to.push(to);
                        if to == PeerId(2) {
                            c2.on_message(PeerId(0), msg, SimTime::from_secs(1));
                        }
                    }
                }
            }
        }
        assert_eq!(went_to, vec![PeerId(2)], "member 1 must be skipped");
        // And the control community was stripped on the way out.
        let r = c2.loc_rib().get(&p).expect("c2 got the route");
        assert!(!r.attrs.has_community(block_community(Asn(64601))));
    }

    #[test]
    fn block_all_community_withholds_from_everyone() {
        let cfg = RouteServerConfig::default();
        let mut rs = route_server_speaker(&cfg, vec![member(0, 64600), member(1, 64601)]);
        let mut c0 = client(64600, cfg.asn);
        let mut c1 = client(64601, cfg.asn);
        establish(&mut rs, &mut c0, MemberId(0));
        establish(&mut rs, &mut c1, MemberId(1));
        let p = Prefix::v4(185, 2, 0, 0, 24);
        for o in c0.originate_with(p, vec![Community::new(0, 0)], SimTime::from_secs(1)) {
            if let Output::Send(_, m) = o {
                let outs = rs.on_message(PeerId(0), m, SimTime::from_secs(1));
                assert!(
                    !outs.iter().any(|o| matches!(o, Output::Send(_, _))),
                    "0:0 must suppress all exports"
                );
            }
        }
        assert!(c1.loc_rib().get(&p).is_none());
    }
}
