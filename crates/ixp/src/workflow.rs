//! The bilateral peering-request workflow.
//!
//! §4.1: "Of these, 48 have open peering... Establishing peering just
//! requires a simple configuration update. We have sent requests to a few
//! dozen ASes, and the vast majority accepted our request... One AS
//! replied with questions about why we wanted to peer given the lack of
//! traffic, and a handful of ASes have not responded."
//!
//! The behavior model turns a member's published policy into a response
//! distribution; requests resolve after a simulated delay of days.

use crate::member::{IxpMember, MemberId};
use peering_netsim::{SimDuration, SimRng, SimTime};
use peering_topology::PeeringPolicy;
use serde::{Deserialize, Serialize};

/// How a member answered (or didn't).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeeringOutcome {
    /// Session configured.
    Accepted,
    /// Accepted, but only after asking why we want to peer.
    AcceptedAfterQuestions,
    /// Refused.
    Declined,
    /// Never replied.
    NoResponse,
}

impl PeeringOutcome {
    /// Did a session come out of it?
    pub fn established(self) -> bool {
        matches!(
            self,
            PeeringOutcome::Accepted | PeeringOutcome::AcceptedAfterQuestions
        )
    }
}

/// A pending or resolved request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeeringRequest {
    /// Who we asked.
    pub target: MemberId,
    /// When we asked.
    pub sent_at: SimTime,
    /// When the outcome is known (no-response resolves at the give-up
    /// deadline).
    pub resolves_at: SimTime,
    /// The eventual outcome.
    pub outcome: PeeringOutcome,
}

/// Draw an outcome for a request against `member`.
///
/// The distributions encode the paper's observations: open-policy members
/// nearly always configure the session even for a no-traffic research AS;
/// the occasional member asks questions; a handful never reply.
pub fn respond(member: &IxpMember, rng: &mut SimRng) -> PeeringOutcome {
    let roll = rng.unit();
    match member.policy {
        PeeringPolicy::Open => {
            if roll < 0.90 {
                PeeringOutcome::Accepted
            } else if roll < 0.94 {
                PeeringOutcome::AcceptedAfterQuestions
            } else {
                PeeringOutcome::NoResponse
            }
        }
        PeeringPolicy::CaseByCase => {
            if roll < 0.50 {
                PeeringOutcome::Accepted
            } else if roll < 0.58 {
                PeeringOutcome::AcceptedAfterQuestions
            } else if roll < 0.78 {
                PeeringOutcome::Declined
            } else {
                PeeringOutcome::NoResponse
            }
        }
        PeeringPolicy::Closed => {
            if roll < 0.75 {
                PeeringOutcome::Declined
            } else {
                PeeringOutcome::NoResponse
            }
        }
        PeeringPolicy::Unlisted => {
            if roll < 0.35 {
                PeeringOutcome::Accepted
            } else if roll < 0.45 {
                PeeringOutcome::Declined
            } else {
                PeeringOutcome::NoResponse
            }
        }
    }
}

/// Tracks every bilateral request one party (PEERING) has sent at an IXP.
#[derive(Debug, Clone, Default)]
pub struct PeeringWorkflow {
    requests: Vec<PeeringRequest>,
    /// How long before we treat silence as NoResponse.
    pub give_up_after: SimDuration,
}

impl PeeringWorkflow {
    /// A workflow with a 30-day silence deadline.
    pub fn new() -> Self {
        PeeringWorkflow {
            requests: Vec::new(),
            give_up_after: SimDuration::from_secs(30 * 24 * 3600),
        }
    }

    /// Send a request to `target`; the outcome and its timing are decided
    /// now (deterministically from the RNG) but only *visible* once
    /// `resolves_at` passes.
    pub fn send_request(
        &mut self,
        target: MemberId,
        member: &IxpMember,
        now: SimTime,
        rng: &mut SimRng,
    ) -> &PeeringRequest {
        let outcome = respond(member, rng);
        let delay = match outcome {
            // Open networks configure quickly: hours to a couple days.
            PeeringOutcome::Accepted => SimDuration::from_secs(3600 * (4 + rng.below(44))),
            PeeringOutcome::AcceptedAfterQuestions => {
                SimDuration::from_secs(3600 * 24 * (3 + rng.below(11)))
            }
            PeeringOutcome::Declined => SimDuration::from_secs(3600 * (8 + rng.below(72))),
            PeeringOutcome::NoResponse => self.give_up_after,
        };
        self.requests.push(PeeringRequest {
            target,
            sent_at: now,
            resolves_at: now + delay,
            outcome,
        });
        self.requests.last().expect("just pushed")
    }

    /// Requests resolved by `now`, with their outcomes.
    pub fn resolved(&self, now: SimTime) -> impl Iterator<Item = &PeeringRequest> {
        self.requests.iter().filter(move |r| r.resolves_at <= now)
    }

    /// Requests still awaiting an answer at `now`.
    pub fn pending(&self, now: SimTime) -> usize {
        self.requests.iter().filter(|r| r.resolves_at > now).count()
    }

    /// Sessions established by `now`.
    pub fn established(&self, now: SimTime) -> Vec<MemberId> {
        self.resolved(now)
            .filter(|r| r.outcome.established())
            .map(|r| r.target)
            .collect()
    }

    /// Total requests ever sent.
    pub fn sent(&self) -> usize {
        self.requests.len()
    }

    /// Outcome tally over resolved requests.
    pub fn tally(&self, now: SimTime) -> WorkflowTally {
        let mut t = WorkflowTally::default();
        for r in self.resolved(now) {
            match r.outcome {
                PeeringOutcome::Accepted => t.accepted += 1,
                PeeringOutcome::AcceptedAfterQuestions => t.accepted_after_questions += 1,
                PeeringOutcome::Declined => t.declined += 1,
                PeeringOutcome::NoResponse => t.no_response += 1,
            }
        }
        t
    }
}

/// Outcome counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkflowTally {
    /// Plain accepts.
    pub accepted: usize,
    /// Accepts preceded by questions.
    pub accepted_after_questions: usize,
    /// Declines.
    pub declined: usize,
    /// Silence past the deadline.
    pub no_response: usize,
}

impl WorkflowTally {
    /// Fraction of resolved requests that produced a session.
    pub fn accept_rate(&self) -> f64 {
        let total =
            self.accepted + self.accepted_after_questions + self.declined + self.no_response;
        if total == 0 {
            0.0
        } else {
            (self.accepted + self.accepted_after_questions) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_netsim::Asn;
    use peering_topology::AsIdx;

    fn member(policy: PeeringPolicy) -> IxpMember {
        IxpMember {
            as_idx: AsIdx(0),
            asn: Asn(64496),
            policy,
            on_route_server: false,
            country: *b"NL",
            name: None,
        }
    }

    #[test]
    fn open_members_nearly_always_accept() {
        let mut rng = SimRng::new(1);
        let m = member(PeeringPolicy::Open);
        let outcomes: Vec<PeeringOutcome> = (0..1000).map(|_| respond(&m, &mut rng)).collect();
        let ok = outcomes.iter().filter(|o| o.established()).count();
        assert!(ok > 900, "ok={ok}");
        assert!(outcomes.iter().all(|o| *o != PeeringOutcome::Declined));
        let questions = outcomes
            .iter()
            .filter(|o| **o == PeeringOutcome::AcceptedAfterQuestions)
            .count();
        assert!(questions > 0, "the occasional AS asks questions");
    }

    #[test]
    fn closed_members_never_accept() {
        let mut rng = SimRng::new(2);
        let m = member(PeeringPolicy::Closed);
        for _ in 0..500 {
            assert!(!respond(&m, &mut rng).established());
        }
    }

    #[test]
    fn case_by_case_is_mixed() {
        let mut rng = SimRng::new(3);
        let m = member(PeeringPolicy::CaseByCase);
        let outcomes: Vec<_> = (0..1000).map(|_| respond(&m, &mut rng)).collect();
        let ok = outcomes.iter().filter(|o| o.established()).count();
        assert!((400..750).contains(&ok), "ok={ok}");
    }

    #[test]
    fn workflow_resolution_timing() {
        let mut wf = PeeringWorkflow::new();
        let mut rng = SimRng::new(4);
        let m = member(PeeringPolicy::Open);
        let t0 = SimTime::ZERO;
        for i in 0..20 {
            wf.send_request(MemberId(i), &m, t0, &mut rng);
        }
        assert_eq!(wf.sent(), 20);
        // Immediately: nothing resolved yet (min delay is 4 hours).
        assert_eq!(wf.resolved(t0).count(), 0);
        assert_eq!(wf.pending(t0), 20);
        // After 60 days everything is resolved.
        let later = t0 + SimDuration::from_secs(60 * 24 * 3600);
        assert_eq!(wf.resolved(later).count(), 20);
        assert_eq!(wf.pending(later), 0);
        let tally = wf.tally(later);
        assert!(tally.accept_rate() > 0.8);
        assert_eq!(
            wf.established(later).len(),
            tally.accepted + tally.accepted_after_questions
        );
    }

    #[test]
    fn no_response_takes_the_give_up_deadline() {
        let mut wf = PeeringWorkflow::new();
        let mut rng = SimRng::new(5);
        let m = member(PeeringPolicy::Closed);
        // Find a NoResponse outcome.
        for i in 0..50 {
            wf.send_request(MemberId(i), &m, SimTime::ZERO, &mut rng);
        }
        let has_noresp = wf.requests.iter().any(|r| {
            r.outcome == PeeringOutcome::NoResponse
                && r.resolves_at == SimTime::ZERO + wf.give_up_after
        });
        assert!(has_noresp);
    }

    #[test]
    fn deterministic_outcomes_for_seed() {
        let m = member(PeeringPolicy::CaseByCase);
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            (0..50).map(|_| respond(&m, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn empty_tally_rate_is_zero() {
        assert_eq!(WorkflowTally::default().accept_rate(), 0.0);
    }
}
