//! `peering-lint`: statically check every shipped scenario's
//! control-plane plan against the PEERING safety rules.
//!
//! For each scenario in the workloads catalog, allocate a prefix from
//! the standard pool, materialize the scenario's announcements as an
//! `Experiment`, and run the `peering-verify` analyzer over it — plus
//! the cross-scenario allocation-conflict check and the policy-chain
//! safety proof. Exits non-zero if any error-severity finding is
//! produced.
//!
//! ```text
//! cargo run -p peering-verify --bin peering-lint
//! ```

use peering_core::safety::SafetyConfig;
use peering_core::{Experiment, ExperimentId, PrefixAllocator};
use peering_netsim::SimTime;
use peering_verify::{verify_chain, verify_experiments, Severity};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Sites assumed when materializing plans; matches the eval testbed.
const N_SITES: usize = 4;

fn main() -> ExitCode {
    let safety = SafetyConfig::peering_default();
    let mut allocator = PrefixAllocator::peering_default();
    let catalog = peering_workloads::catalog::all();

    // Materialize every scenario as a provisioned experiment.
    let mut experiments = Vec::new();
    for (i, scenario) in catalog.iter().enumerate() {
        let prefix = match allocator.allocate(i as u32) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: allocating for scenario {}: {e}", scenario.name);
                return ExitCode::FAILURE;
            }
        };
        let mut active = BTreeMap::new();
        for spec in (scenario.plan)(prefix, N_SITES) {
            // Later announcements for the same prefix replace earlier
            // ones, exactly as the testbed applies them.
            active.insert(spec.prefix, spec);
        }
        experiments.push(Experiment {
            id: ExperimentId(i as u32),
            name: scenario.name.to_string(),
            owner: "peering-lint".to_string(),
            prefix,
            created: SimTime::ZERO,
            active,
            v6_prefix: None,
            origin_asn: None,
            active_v6: BTreeMap::new(),
        });
    }

    println!(
        "peering-lint: checking {} scenarios against the safety config",
        experiments.len()
    );

    // The policy-chain proof is shared by all scenarios; report it once.
    let chain_report = verify_chain(
        &safety.client_import_policy(),
        &safety.export_safety_policy(),
        &safety,
    );
    println!(
        "  policy chain (client import ∘ export safety filter): {}",
        if chain_report.is_clean() {
            "proved hijack- and leak-free".to_string()
        } else {
            chain_report.to_string()
        }
    );

    let report = verify_experiments(&experiments, &safety);
    for scenario in &catalog {
        let findings: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.subject.contains(&format!("\"{}\"", scenario.name)))
            .collect();
        if findings.is_empty() {
            println!("  {:<12} clean", scenario.name);
        } else {
            println!("  {:<12} {} finding(s)", scenario.name, findings.len());
            for f in findings {
                println!("    {f}");
            }
        }
    }
    // Findings not attributed to a single scenario (chain structure,
    // conflicts naming two experiments) still count; print any that the
    // per-scenario loop did not show.
    for f in report.findings.iter().filter(|f| {
        !catalog
            .iter()
            .any(|s| f.subject.contains(&format!("\"{}\"", s.name)))
    }) {
        println!("  {f}");
    }

    let errors = report.count(Severity::Error) + chain_report.count(Severity::Error);
    let warnings = report.count(Severity::Warning) + chain_report.count(Severity::Warning);
    println!("peering-lint: {errors} error(s), {warnings} warning(s)");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
