//! Abstract interpretation of [`Policy`] rule chains.
//!
//! Prefix-structural matches (`PrefixIn`, `PrefixExact`, `LongerThan`)
//! denote exact regions in the [`PrefixSet`] lattice. Matches over path
//! attributes (`AsPathContains`, `OriginatedBy`, communities, …) cannot
//! be resolved from the prefix alone, so each match is abstracted to a
//! *pair* of regions:
//!
//! - **may-space** — prefixes for which the match *can* hold for some
//!   announcement (over-approximation),
//! - **must-space** — prefixes for which the match holds for *every*
//!   announcement (under-approximation).
//!
//! An attribute predicate evaluates to a [`Ternary`] under an
//! [`AbstractPath`] describing what is known about the announcements
//! being analyzed: `True` widens must-space to everything, `False`
//! narrows may-space to nothing, `Unknown` gives the sound pair
//! (may = full, must = empty). `Not` swaps the two spaces, `All`
//! intersects, `AnyOf` unions — the classic dual pair, and both sides
//! stay sound under arbitrary nesting.
//!
//! [`analyze_policy`] walks a rule chain with this machinery and
//! computes the region of prefixes the policy can accept, plus three
//! classes of structural defects: dead rules, shadowed rules, and
//! unreachable action arms.

use crate::domain::PrefixSet;
use peering_bgp::{Action, Match, Policy};
use peering_netsim::Asn;

/// Three-valued truth for attribute predicates under partial knowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ternary {
    /// Holds for every announcement described by the context.
    True,
    /// Holds for no announcement described by the context.
    False,
    /// May hold for some announcements and not others.
    Unknown,
}

/// What is statically known about the AS paths of the announcements
/// flowing through a policy. The default ([`AbstractPath::top`]) knows
/// nothing, which makes every attribute predicate `Unknown` — the
/// soundest possible context.
#[derive(Debug, Clone, Default)]
pub struct AbstractPath {
    /// The origin AS, when every announcement shares one.
    pub origin: Option<Asn>,
    /// ASNs guaranteed to appear somewhere on every path.
    pub must_contain: Vec<Asn>,
    /// When true, `must_contain` is exhaustive: no other ASN can appear.
    pub closed: bool,
    /// Lower bound on hop count, when known.
    pub min_hops: Option<u32>,
    /// Upper bound on hop count, when known.
    pub max_hops: Option<u32>,
}

impl AbstractPath {
    /// The no-knowledge context: every attribute predicate is `Unknown`.
    pub fn top() -> Self {
        AbstractPath::default()
    }

    /// Evaluate an attribute-leaf predicate. Only meaningful for the
    /// non-structural `Match` leaves; structural leaves are handled by
    /// the region computation directly.
    pub fn eval(&self, m: &Match) -> Ternary {
        match m {
            Match::AsPathContains(asn) => {
                if self.must_contain.contains(asn) {
                    Ternary::True
                } else if self.closed {
                    Ternary::False
                } else {
                    Ternary::Unknown
                }
            }
            Match::OriginatedBy(asn) => match self.origin {
                Some(o) if o == *asn => Ternary::True,
                Some(_) => Ternary::False,
                None => Ternary::Unknown,
            },
            Match::AsPathLongerThan(n) => {
                if self.min_hops.is_some_and(|lo| lo > *n) {
                    Ternary::True
                } else if self.max_hops.is_some_and(|hi| hi <= *n) {
                    Ternary::False
                } else {
                    Ternary::Unknown
                }
            }
            // Communities and ORIGIN are not tracked by the abstraction.
            Match::HasCommunity(_) | Match::OriginIs(_) => Ternary::Unknown,
            _ => Ternary::Unknown,
        }
    }
}

/// Over-approximation: prefixes for which `m` can match *some*
/// announcement described by `ctx`.
pub fn may_space(m: &Match, ctx: &AbstractPath) -> PrefixSet {
    match m {
        Match::Any => PrefixSet::full(),
        Match::PrefixIn(list) => list.iter().fold(PrefixSet::empty(), |acc, p| {
            acc.union(&PrefixSet::covered_by(p))
        }),
        Match::PrefixExact(list) => list.iter().fold(PrefixSet::empty(), |acc, p| {
            acc.union(&PrefixSet::exactly(p))
        }),
        Match::LongerThan(len) => PrefixSet::longer_than(*len),
        Match::Not(inner) => must_space(inner, ctx).complement(),
        Match::All(ms) => ms.iter().fold(PrefixSet::full(), |acc, m| {
            acc.intersect(&may_space(m, ctx))
        }),
        Match::AnyOf(ms) => ms
            .iter()
            .fold(PrefixSet::empty(), |acc, m| acc.union(&may_space(m, ctx))),
        attr => match ctx.eval(attr) {
            Ternary::False => PrefixSet::empty(),
            Ternary::True | Ternary::Unknown => PrefixSet::full(),
        },
    }
}

/// Under-approximation: prefixes for which `m` matches *every*
/// announcement described by `ctx`.
pub fn must_space(m: &Match, ctx: &AbstractPath) -> PrefixSet {
    match m {
        // Structural leaves depend only on the prefix: may = must.
        Match::Any | Match::PrefixIn(_) | Match::PrefixExact(_) | Match::LongerThan(_) => {
            may_space(m, ctx)
        }
        Match::Not(inner) => may_space(inner, ctx).complement(),
        Match::All(ms) => ms.iter().fold(PrefixSet::full(), |acc, m| {
            acc.intersect(&must_space(m, ctx))
        }),
        Match::AnyOf(ms) => ms
            .iter()
            .fold(PrefixSet::empty(), |acc, m| acc.union(&must_space(m, ctx))),
        attr => match ctx.eval(attr) {
            Ternary::True => PrefixSet::full(),
            Ternary::False | Ternary::Unknown => PrefixSet::empty(),
        },
    }
}

/// The result of abstractly interpreting one policy.
#[derive(Debug, Clone)]
pub struct PolicyAnalysis {
    /// Over-approximation of the prefixes the policy can accept (via any
    /// rule or the default verdict).
    pub accept_may: PrefixSet,
    /// Indices of rules whose match region is empty in isolation — they
    /// can never fire regardless of what precedes them.
    pub dead_rules: Vec<usize>,
    /// `(rule, shadowing_rule)`: the rule's entire may-region is consumed
    /// by terminal rules at or before `shadowing_rule`, so it can never
    /// fire even though its match is satisfiable on its own.
    pub shadowed_rules: Vec<(usize, usize)>,
    /// `(rule, action_indices)`: actions that can never run because an
    /// earlier action in the same rule is terminal.
    pub unreachable_actions: Vec<(usize, Vec<usize>)>,
}

/// Abstractly interpret `policy` under `ctx`.
///
/// Soundness argument, briefly: `reach` over-approximates the prefixes
/// that can arrive at each rule (only *guaranteed* matches of earlier
/// terminal rules are subtracted). A rule is reported dead/shadowed only
/// when its may-region — itself an over-approximation — is empty or
/// fully consumed, so there are no false positives in those reports.
/// `accept_may` accumulates `reach ∩ may` for accepting rules plus the
/// final `reach` when the default accepts, so no acceptable prefix is
/// missed. If a rule with path-mutating actions can fall through
/// (no terminal verdict), the path context degrades to
/// [`AbstractPath::top`] for subsequent rules, since mutations can
/// invalidate what the context claims about attributes.
pub fn analyze_policy(policy: &Policy, ctx: &AbstractPath) -> PolicyAnalysis {
    let mut ctx = ctx.clone();
    let mut reach = PrefixSet::full();
    let mut accept_may = PrefixSet::empty();
    let mut dead_rules = Vec::new();
    let mut shadowed_rules = Vec::new();
    let mut unreachable_actions = Vec::new();
    // (rule index, must-region) per terminal rule seen so far.
    let mut terminals: Vec<(usize, PrefixSet)> = Vec::new();

    for (i, rule) in policy.rules.iter().enumerate() {
        let may = may_space(&rule.matches, &ctx);
        let must = must_space(&rule.matches, &ctx);

        if may.is_empty() {
            dead_rules.push(i);
        } else if reach.intersect(&may).is_empty() {
            // Attribute the shadow to the earliest prefix of terminal
            // rules that already covers the whole may-region.
            let mut rem = may.clone();
            let mut by = i;
            for (k, m) in &terminals {
                rem = rem.subtract(m);
                if rem.is_empty() {
                    by = *k;
                    break;
                }
            }
            shadowed_rules.push((i, by));
        }

        let unreachable = rule.unreachable_actions();
        if !unreachable.is_empty() {
            unreachable_actions.push((i, unreachable));
        }

        match rule.verdict() {
            Some(accepts) => {
                if accepts {
                    accept_may = accept_may.union(&reach.intersect(&may));
                }
                reach = reach.subtract(&must);
                terminals.push((i, must));
            }
            None => {
                // Fall-through rule: it consumes nothing, but if it can
                // mutate the path, later attribute evaluations under the
                // original context are no longer trustworthy.
                let mutates_path = rule
                    .actions
                    .iter()
                    .any(|a| matches!(a, Action::Prepend(..) | Action::StripPrivateAsns));
                if mutates_path {
                    ctx = AbstractPath::top();
                }
            }
        }
    }

    if policy.default == peering_bgp::DefaultVerdict::Accept {
        accept_may = accept_may.union(&reach);
    }

    PolicyAnalysis {
        accept_may,
        dead_rules,
        shadowed_rules,
        unreachable_actions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::{AsPath, PathAttributes};
    use peering_netsim::Prefix;

    fn pool() -> Prefix {
        Prefix::v4(184, 164, 224, 0, 19)
    }

    /// Exhaustive-ish oracle: compare abstract may/must against concrete
    /// evaluation over a grid of prefixes and attribute samples.
    #[test]
    fn may_and_must_bracket_concrete_matches() {
        let ctx = AbstractPath::top();
        let matches = vec![
            Match::PrefixIn(vec![pool()]),
            Match::Not(Box::new(Match::LongerThan(24))),
            Match::All(vec![
                Match::PrefixIn(vec![pool()]),
                Match::Not(Box::new(Match::AsPathContains(Asn(666)))),
            ]),
            Match::AnyOf(vec![
                Match::PrefixExact(vec![pool()]),
                Match::OriginatedBy(Asn(47065)),
            ]),
            Match::Not(Box::new(Match::AnyOf(vec![
                Match::LongerThan(24),
                Match::AsPathContains(Asn(1)),
            ]))),
        ];
        let prefixes = [
            Prefix::v4(184, 164, 224, 0, 19),
            Prefix::v4(184, 164, 230, 0, 24),
            Prefix::v4(184, 164, 230, 0, 25),
            Prefix::v4(8, 8, 8, 0, 24),
        ];
        let attr_samples = [
            PathAttributes {
                as_path: AsPath::from_asns(&[Asn(47065)]),
                ..Default::default()
            },
            PathAttributes {
                as_path: AsPath::from_asns(&[Asn(666), Asn(1)]),
                ..Default::default()
            },
        ];
        for m in &matches {
            let may = may_space(m, &ctx);
            let must = must_space(m, &ctx);
            // must ⊆ may always.
            assert!(must.is_subset_of(&may), "must ⊄ may for {m:?}");
            for p in &prefixes {
                for a in &attr_samples {
                    let concrete = m.matches(p, a);
                    if concrete {
                        assert!(
                            may.contains(p),
                            "{m:?} matched {p} but may-space excludes it"
                        );
                    }
                    if must.contains(p) {
                        assert!(
                            concrete,
                            "{m:?} must-space has {p} but concrete eval is false"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn context_resolves_attribute_predicates() {
        let ctx = AbstractPath {
            origin: Some(Asn(65001)),
            must_contain: vec![Asn(65001), Asn(3356)],
            closed: true,
            min_hops: Some(2),
            max_hops: Some(4),
        };
        assert_eq!(ctx.eval(&Match::AsPathContains(Asn(3356))), Ternary::True);
        assert_eq!(ctx.eval(&Match::AsPathContains(Asn(174))), Ternary::False);
        assert_eq!(ctx.eval(&Match::OriginatedBy(Asn(65001))), Ternary::True);
        assert_eq!(ctx.eval(&Match::OriginatedBy(Asn(174))), Ternary::False);
        assert_eq!(ctx.eval(&Match::AsPathLongerThan(1)), Ternary::True);
        assert_eq!(ctx.eval(&Match::AsPathLongerThan(4)), Ternary::False);
        assert_eq!(ctx.eval(&Match::AsPathLongerThan(3)), Ternary::Unknown);
        // Under a resolved context, an attribute match becomes exact.
        let m = Match::AsPathContains(Asn(174));
        assert!(may_space(&m, &ctx).is_empty());
        let m2 = Match::AsPathContains(Asn(3356));
        assert!(PrefixSet::full().is_subset_of(&must_space(&m2, &ctx)));
    }

    #[test]
    fn analyze_finds_dead_shadowed_and_unreachable() {
        use peering_bgp::Action;
        let policy = Policy::reject_all()
            // 0: accepts the whole pool.
            .rule(Match::PrefixIn(vec![pool()]), vec![Action::Accept])
            // 1: dead — empty PrefixIn can never match.
            .rule(Match::PrefixIn(vec![]), vec![Action::Reject])
            // 2: shadowed by 0 — a /24 inside the pool.
            .rule(
                Match::PrefixExact(vec![Prefix::v4(184, 164, 230, 0, 24)]),
                vec![Action::Reject],
            )
            // 3: live, with unreachable trailing actions.
            .rule(Match::Any, vec![Action::Reject, Action::SetLocalPref(10)]);
        let a = analyze_policy(&policy, &AbstractPath::top());
        assert_eq!(a.dead_rules, vec![1]);
        assert_eq!(a.shadowed_rules, vec![(2, 0)]);
        assert_eq!(a.unreachable_actions, vec![(3, vec![1])]);
        // The accept region is exactly the pool's covers-region.
        let pool_region = PrefixSet::covered_by(&pool());
        assert!(a.accept_may.is_subset_of(&pool_region));
        assert!(pool_region.is_subset_of(&a.accept_may));
    }

    #[test]
    fn attribute_gated_rules_do_not_shadow() {
        use peering_bgp::Action;
        // Rule 0 rejects long-path routes — whether it fires depends on
        // attributes, so it must NOT count as consuming the space for
        // shadow analysis, and the accept region must still include
        // everything (some announcement can get past it).
        let policy = Policy::reject_all()
            .rule(Match::AsPathLongerThan(5), vec![Action::Reject])
            .rule(Match::Any, vec![Action::Accept]);
        let a = analyze_policy(&policy, &AbstractPath::top());
        assert!(a.dead_rules.is_empty());
        assert!(a.shadowed_rules.is_empty());
        assert!(PrefixSet::full().is_subset_of(&a.accept_may));
    }

    #[test]
    fn default_accept_contributes_to_accept_region() {
        use peering_bgp::Action;
        // Everything outside the pool falls through to the default.
        let policy = Policy::accept_all().rule(Match::PrefixIn(vec![pool()]), vec![Action::Reject]);
        let a = analyze_policy(&policy, &AbstractPath::top());
        assert!(a.accept_may.contains(&Prefix::v4(8, 8, 8, 0, 24)));
        assert!(!a.accept_may.contains(&Prefix::v4(184, 164, 230, 0, 24)));
    }

    #[test]
    fn path_mutation_degrades_context() {
        use peering_bgp::Action;
        // Context says the path can never contain 666 — but a preceding
        // fall-through rule prepends it, so the later gate must not be
        // treated as dead.
        let ctx = AbstractPath {
            must_contain: vec![Asn(65001)],
            closed: true,
            ..AbstractPath::default()
        };
        let policy = Policy::accept_all()
            .rule(Match::Any, vec![Action::Prepend(Asn(666), 1)])
            .rule(Match::AsPathContains(Asn(666)), vec![Action::Reject]);
        let a = analyze_policy(&policy, &ctx);
        assert!(a.dead_rules.is_empty());
        // Without the mutation the gate would be provably dead.
        let gate_only =
            Policy::accept_all().rule(Match::AsPathContains(Asn(666)), vec![Action::Reject]);
        let b = analyze_policy(&gate_only, &ctx);
        assert_eq!(b.dead_rules, vec![0]);
    }
}
