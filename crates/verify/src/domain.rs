//! The abstract domain: sets of prefixes as unions of boxes in
//! `(address, length)` space.
//!
//! A prefix `a.b.c.d/len` is a point `(addr, len)` where `addr` is the
//! network address as an integer. Every prefix-structural [`Match`]
//! (`PrefixIn`, `PrefixExact`, `LongerThan`) denotes an axis-aligned box
//! in this space:
//!
//! - `PrefixIn([p])`  → `[p.network, p.broadcast] × [p.len, MAX_LEN]`
//!   (everything covered by `p`),
//! - `PrefixExact([p])` → the single point `[p.network, p.network] ×
//!   [p.len, p.len]`,
//! - `LongerThan(l)`  → `[0, MAX_ADDR] × [l+1, MAX_LEN]`.
//!
//! A [`PrefixSet`] is a finite union of such boxes, kept separately per
//! address family. Boxes are closed under intersection, and the
//! complement of a box within the full space is at most four boxes, so
//! the family of finite unions is an (exact) Boolean algebra: `union`,
//! `intersect`, `subtract`, `complement`, and the derived `is_subset_of`
//! and `is_empty` are all precise for prefix-structural matches.
//!
//! The one over-approximation baked into the domain itself: boxes range
//! over *all* `(addr, len)` pairs, including pairs whose address has
//! host bits set below `len`. No real prefix has such a point, so a set
//! may be reported non-empty when every point in it is unaligned. This
//! errs in the safe direction everywhere the analyzer uses emptiness
//! (a may-region that looks bigger can only make the analyzer *more*
//! conservative). [`PrefixSet::example`] only ever returns aligned,
//! real prefixes.
//!
//! [`Match`]: peering_bgp::Match

use peering_netsim::{Ipv4Net, Ipv6Net, Prefix};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Maximum IPv4 address as the common `u128` coordinate.
const V4_MAX_ADDR: u128 = u32::MAX as u128;
/// Maximum IPv6 address.
const V6_MAX_ADDR: u128 = u128::MAX;
/// Maximum IPv4 prefix length.
const V4_MAX_LEN: u8 = 32;
/// Maximum IPv6 prefix length.
const V6_MAX_LEN: u8 = 128;

/// An axis-aligned box in `(address, length)` space: the set of points
/// `(a, l)` with `lo <= a <= hi` and `min_len <= l <= max_len`. Both
/// ranges are inclusive; an "empty box" is never constructed (emptiness
/// is represented by absence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PBox {
    /// Lowest address (inclusive).
    pub lo: u128,
    /// Highest address (inclusive).
    pub hi: u128,
    /// Shortest prefix length (inclusive).
    pub min_len: u8,
    /// Longest prefix length (inclusive).
    pub max_len: u8,
}

impl PBox {
    fn new(lo: u128, hi: u128, min_len: u8, max_len: u8) -> Option<PBox> {
        if lo > hi || min_len > max_len {
            None
        } else {
            Some(PBox {
                lo,
                hi,
                min_len,
                max_len,
            })
        }
    }

    fn contains_point(&self, addr: u128, len: u8) -> bool {
        self.lo <= addr && addr <= self.hi && self.min_len <= len && len <= self.max_len
    }

    fn contains_box(&self, other: &PBox) -> bool {
        self.lo <= other.lo
            && other.hi <= self.hi
            && self.min_len <= other.min_len
            && other.max_len <= self.max_len
    }

    fn intersect(&self, other: &PBox) -> Option<PBox> {
        PBox::new(
            self.lo.max(other.lo),
            self.hi.min(other.hi),
            self.min_len.max(other.min_len),
            self.max_len.min(other.max_len),
        )
    }

    /// `self \ other` as at most four boxes (2-D interval subtraction).
    fn subtract(&self, other: &PBox) -> Vec<PBox> {
        let Some(mid) = self.intersect(other) else {
            return vec![*self];
        };
        let mut out = Vec::with_capacity(4);
        // Address strips left and right of the intersection keep the full
        // length range of `self`.
        if self.lo < mid.lo {
            out.extend(PBox::new(self.lo, mid.lo - 1, self.min_len, self.max_len));
        }
        if mid.hi < self.hi {
            out.extend(PBox::new(mid.hi + 1, self.hi, self.min_len, self.max_len));
        }
        // Within the intersection's address range, the length strips
        // above and below.
        if self.min_len < mid.min_len {
            out.extend(PBox::new(mid.lo, mid.hi, self.min_len, mid.min_len - 1));
        }
        if mid.max_len < self.max_len {
            out.extend(PBox::new(mid.lo, mid.hi, mid.max_len + 1, self.max_len));
        }
        out
    }
}

/// Drop boxes subsumed by another box in the same list and exact
/// duplicates; keeps union representations from growing without bound.
fn normalize(boxes: &mut Vec<PBox>) {
    let mut i = 0;
    while i < boxes.len() {
        let mut subsumed = false;
        for j in 0..boxes.len() {
            if i != j && boxes[j].contains_box(&boxes[i]) && !(j > i && boxes[j] == boxes[i]) {
                subsumed = true;
                break;
            }
        }
        if subsumed {
            boxes.swap_remove(i);
        } else {
            i += 1;
        }
    }
}

fn v4_coord(net: &Ipv4Net) -> (u128, u8) {
    (net.network_u32() as u128, net.len())
}

fn v6_coord(net: &Ipv6Net) -> (u128, u8) {
    (u128::from(net.network()), net.len())
}

/// The size of the address block a prefix of `len` spans, in the family
/// with `max_len` total bits. `None` for `len == 0` (the whole space —
/// too big to represent as a count for IPv6).
fn block_size(len: u8, max_len: u8) -> Option<u128> {
    if len == 0 {
        None
    } else {
        Some(1u128 << (max_len - len).min(127))
    }
}

/// A finite union of boxes per address family: the analyzer's lattice
/// element. Exact (not widened) for prefix-structural matches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrefixSet {
    /// IPv4 boxes (addresses in `[0, 2^32)`, lengths in `[0, 32]`).
    pub v4: Vec<PBox>,
    /// IPv6 boxes (addresses in `[0, 2^128)`, lengths in `[0, 128]`).
    pub v6: Vec<PBox>,
}

impl PrefixSet {
    /// The empty set (bottom).
    pub fn empty() -> Self {
        PrefixSet::default()
    }

    /// Every prefix of both families (top).
    pub fn full() -> Self {
        PrefixSet {
            v4: vec![PBox {
                lo: 0,
                hi: V4_MAX_ADDR,
                min_len: 0,
                max_len: V4_MAX_LEN,
            }],
            v6: vec![PBox {
                lo: 0,
                hi: V6_MAX_ADDR,
                min_len: 0,
                max_len: V6_MAX_LEN,
            }],
        }
    }

    /// All prefixes covered by `p` (`p` itself and every more-specific):
    /// the denotation of `Match::PrefixIn([p])`.
    pub fn covered_by(p: &Prefix) -> Self {
        let mut s = PrefixSet::empty();
        match p {
            Prefix::V4(net) => {
                let (addr, len) = v4_coord(net);
                let hi = match block_size(len, V4_MAX_LEN) {
                    Some(b) => addr + (b - 1),
                    None => V4_MAX_ADDR,
                };
                s.v4.extend(PBox::new(addr, hi, len, V4_MAX_LEN));
            }
            Prefix::V6(net) => {
                let (addr, len) = v6_coord(net);
                let hi = match block_size(len, V6_MAX_LEN) {
                    Some(b) => addr + (b - 1),
                    None => V6_MAX_ADDR,
                };
                s.v6.extend(PBox::new(addr, hi, len, V6_MAX_LEN));
            }
        }
        s
    }

    /// Exactly `p` and nothing else: the denotation of
    /// `Match::PrefixExact([p])`.
    pub fn exactly(p: &Prefix) -> Self {
        let mut s = PrefixSet::empty();
        match p {
            Prefix::V4(net) => {
                let (addr, len) = v4_coord(net);
                s.v4.extend(PBox::new(addr, addr, len, len));
            }
            Prefix::V6(net) => {
                let (addr, len) = v6_coord(net);
                s.v6.extend(PBox::new(addr, addr, len, len));
            }
        }
        s
    }

    /// Every prefix strictly longer than `len`, in both families: the
    /// denotation of `Match::LongerThan(len)`.
    pub fn longer_than(len: u8) -> Self {
        let mut s = PrefixSet::empty();
        if len < V4_MAX_LEN {
            s.v4.extend(PBox::new(0, V4_MAX_ADDR, len + 1, V4_MAX_LEN));
        }
        if len < V6_MAX_LEN {
            s.v6.extend(PBox::new(0, V6_MAX_ADDR, len + 1, V6_MAX_LEN));
        }
        s
    }

    /// True when the set holds no points at all.
    pub fn is_empty(&self) -> bool {
        self.v4.is_empty() && self.v6.is_empty()
    }

    /// Set union (lattice join).
    pub fn union(&self, other: &PrefixSet) -> PrefixSet {
        let mut out = self.clone();
        out.v4.extend(other.v4.iter().copied());
        out.v6.extend(other.v6.iter().copied());
        normalize(&mut out.v4);
        normalize(&mut out.v6);
        out
    }

    /// Set intersection (lattice meet).
    pub fn intersect(&self, other: &PrefixSet) -> PrefixSet {
        let meet = |a: &[PBox], b: &[PBox]| -> Vec<PBox> {
            let mut out = Vec::new();
            for x in a {
                for y in b {
                    out.extend(x.intersect(y));
                }
            }
            normalize(&mut out);
            out
        };
        PrefixSet {
            v4: meet(&self.v4, &other.v4),
            v6: meet(&self.v6, &other.v6),
        }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &PrefixSet) -> PrefixSet {
        let diff = |a: &[PBox], b: &[PBox]| -> Vec<PBox> {
            let mut rem: Vec<PBox> = a.to_vec();
            for y in b {
                rem = rem.iter().flat_map(|x| x.subtract(y)).collect();
            }
            normalize(&mut rem);
            rem
        };
        PrefixSet {
            v4: diff(&self.v4, &other.v4),
            v6: diff(&self.v6, &other.v6),
        }
    }

    /// Complement within the full space of both families.
    pub fn complement(&self) -> PrefixSet {
        PrefixSet::full().subtract(self)
    }

    /// `self ⊆ other`, exactly.
    pub fn is_subset_of(&self, other: &PrefixSet) -> bool {
        self.subtract(other).is_empty()
    }

    /// Point membership for a concrete prefix.
    pub fn contains(&self, p: &Prefix) -> bool {
        match p {
            Prefix::V4(net) => {
                let (addr, len) = v4_coord(net);
                self.v4.iter().any(|b| b.contains_point(addr, len))
            }
            Prefix::V6(net) => {
                let (addr, len) = v6_coord(net);
                self.v6.iter().any(|b| b.contains_point(addr, len))
            }
        }
    }

    /// A concrete, properly aligned prefix inside the set, if one
    /// exists — used as the witness in findings ("… can emit
    /// 8.8.8.0/24"). Prefers IPv4 and the longest (most specific)
    /// feasible length per box, which always aligns within a non-empty
    /// address range wider than one block.
    pub fn example(&self) -> Option<Prefix> {
        for b in &self.v4 {
            if let Some(p) = example_in_box(b, V4_MAX_LEN) {
                return Some(Prefix::V4(Ipv4Net::new(Ipv4Addr::from(p.0 as u32), p.1)));
            }
        }
        for b in &self.v6 {
            if let Some(p) = example_in_box(b, V6_MAX_LEN) {
                return Some(Prefix::V6(Ipv6Net::new(Ipv6Addr::from(p.0), p.1)));
            }
        }
        None
    }
}

/// Find an aligned `(addr, len)` point inside the box, trying lengths
/// from most to least specific (finer lengths have smaller blocks and
/// align more easily).
fn example_in_box(b: &PBox, family_max: u8) -> Option<(u128, u8)> {
    for len in (b.min_len..=b.max_len).rev() {
        let Some(block) = block_size(len, family_max) else {
            // len == 0: the only aligned address is 0.
            if b.lo == 0 {
                return Some((0, 0));
            }
            continue;
        };
        // Round lo up to the next block boundary.
        let rem = b.lo % block;
        let addr = if rem == 0 { b.lo } else { b.lo + (block - rem) };
        if addr <= b.hi {
            return Some((addr, len));
        }
    }
    None
}

impl fmt::Display for PrefixSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        match self.example() {
            Some(p) => write!(
                f,
                "{{{} v4 + {} v6 boxes, e.g. {}}}",
                self.v4.len(),
                self.v6.len(),
                p
            ),
            None => write!(
                f,
                "{{{} v4 + {} v6 boxes, unaligned}}",
                self.v4.len(),
                self.v6.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(a: u8, b: u8, c: u8, d: u8, len: u8) -> Prefix {
        Prefix::v4(a, b, c, d, len)
    }

    #[test]
    fn covered_by_matches_concrete_covers() {
        let pool = v4(184, 164, 224, 0, 19);
        let set = PrefixSet::covered_by(&pool);
        assert!(set.contains(&v4(184, 164, 224, 0, 19)));
        assert!(set.contains(&v4(184, 164, 225, 0, 24)));
        assert!(set.contains(&v4(184, 164, 255, 255, 32)));
        assert!(!set.contains(&v4(184, 164, 224, 0, 18))); // supernet
        assert!(!set.contains(&v4(8, 8, 8, 0, 24)));
        assert!(!set.contains(&"2804:269c::/48".parse::<Prefix>().unwrap()));
    }

    #[test]
    fn exactly_is_a_point() {
        let p = v4(10, 0, 0, 0, 24);
        let set = PrefixSet::exactly(&p);
        assert!(set.contains(&p));
        assert!(!set.contains(&v4(10, 0, 0, 0, 25)));
        assert!(!set.contains(&v4(10, 0, 1, 0, 24)));
    }

    #[test]
    fn longer_than_spans_both_families() {
        let set = PrefixSet::longer_than(24);
        assert!(set.contains(&v4(1, 2, 3, 0, 25)));
        assert!(!set.contains(&v4(1, 2, 3, 0, 24)));
        assert!(set.contains(&"2804:269c::/64".parse::<Prefix>().unwrap()));
        // LongerThan(32) leaves no v4 lengths but still admits long v6.
        let v6only = PrefixSet::longer_than(32);
        assert!(v6only.v4.is_empty());
        assert!(v6only.contains(&"::/33".parse::<Prefix>().unwrap()));
    }

    #[test]
    fn boolean_algebra_laws_on_samples() {
        let a = PrefixSet::covered_by(&v4(184, 164, 224, 0, 19));
        let b = PrefixSet::longer_than(24);
        // A \ A = ∅ and A ⊆ A.
        assert!(a.subtract(&a).is_empty());
        assert!(a.is_subset_of(&a));
        // A ∩ B ⊆ A and ⊆ B.
        let meet = a.intersect(&b);
        assert!(meet.is_subset_of(&a));
        assert!(meet.is_subset_of(&b));
        // (A \ B) ∪ (A ∩ B) = A (checked via mutual inclusion).
        let rebuilt = a.subtract(&b).union(&meet);
        assert!(rebuilt.is_subset_of(&a));
        assert!(a.is_subset_of(&rebuilt));
        // De Morgan spot check: ¬(A ∪ B) = ¬A ∩ ¬B.
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersect(&b.complement());
        assert!(lhs.is_subset_of(&rhs));
        assert!(rhs.is_subset_of(&lhs));
    }

    #[test]
    fn complement_flips_membership() {
        let pool = PrefixSet::covered_by(&v4(184, 164, 224, 0, 19));
        let outside = pool.complement();
        assert!(outside.contains(&v4(8, 8, 8, 0, 24)));
        assert!(!outside.contains(&v4(184, 164, 230, 0, 24)));
        // The /19 itself is in the pool region, not its complement.
        assert!(!outside.contains(&v4(184, 164, 224, 0, 19)));
        // But its supernet is outside.
        assert!(outside.contains(&v4(184, 164, 192, 0, 18)));
        // Union with the complement is everything.
        assert!(PrefixSet::full().is_subset_of(&pool.union(&outside)));
    }

    #[test]
    fn example_is_aligned_and_inside() {
        let pool = PrefixSet::covered_by(&v4(184, 164, 224, 0, 19));
        let inside_not_longer = pool.subtract(&PrefixSet::longer_than(24));
        let ex = inside_not_longer.example().expect("non-empty");
        assert!(inside_not_longer.contains(&ex));
        assert!(ex.len() <= 24);
        // Empty set has no example.
        assert!(PrefixSet::empty().example().is_none());
        // A v6-only set yields a v6 example.
        let v6 = PrefixSet::covered_by(&"2804:269c::/32".parse::<Prefix>().unwrap());
        assert!(matches!(v6.example(), Some(Prefix::V6(_))));
    }

    #[test]
    fn subtraction_splits_boxes_exactly() {
        let all = PrefixSet::full();
        let hole = PrefixSet::covered_by(&v4(10, 0, 0, 0, 8));
        let rest = all.subtract(&hole);
        assert!(!rest.contains(&v4(10, 1, 0, 0, 16)));
        assert!(rest.contains(&v4(11, 0, 0, 0, 8)));
        assert!(rest.contains(&v4(10, 0, 0, 0, 7))); // supernet survives
                                                     // Adding the hole back restores the full space.
        assert!(PrefixSet::full().is_subset_of(&rest.union(&hole)));
    }
}
