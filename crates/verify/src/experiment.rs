//! Whole-config verification: experiments against the safety rules, and
//! policy chains against the three violations they must exclude.

use crate::domain::PrefixSet;
use crate::policy::{analyze_policy, AbstractPath};
use crate::report::{Finding, FindingCode, Report};
use peering_bgp::Policy;
use peering_core::safety::SafetyConfig;
use peering_core::{AnnouncementSpec, Experiment, Violation};
use peering_netsim::Prefix;

/// The region of prefix space PEERING is allowed to emit: everything
/// covered by a configured v4 or v6 pool.
fn pool_region(safety: &SafetyConfig) -> PrefixSet {
    let mut region = PrefixSet::empty();
    for net in &safety.pools {
        region = region.union(&PrefixSet::covered_by(&Prefix::V4(*net)));
    }
    for net in &safety.pools_v6 {
        region = region.union(&PrefixSet::covered_by(&Prefix::V6(*net)));
    }
    region
}

/// Report structural defects (dead rules, shadowed rules, unreachable
/// action arms) of one policy as warnings.
fn report_policy_structure(name: &str, policy: &Policy, ctx: &AbstractPath, report: &mut Report) {
    let analysis = analyze_policy(policy, ctx);
    for i in &analysis.dead_rules {
        report.push(Finding::warning(
            FindingCode::DeadRule,
            format!("{name} rule {i}"),
            "its match region is empty: the rule can never fire".to_string(),
        ));
    }
    for (i, by) in &analysis.shadowed_rules {
        report.push(Finding::warning(
            FindingCode::ShadowedRule,
            format!("{name} rule {i}"),
            format!("every prefix it could match is already decided by rule {by}"),
        ));
    }
    for (i, arms) in &analysis.unreachable_actions {
        report.push(Finding::warning(
            FindingCode::UnreachableActions,
            format!("{name} rule {i}"),
            format!("action(s) {arms:?} follow a terminal Accept/Reject and can never run"),
        ));
    }
}

/// Statically verify a mux policy chain against the safety config.
///
/// Proves (or refutes with a witness prefix) that the composed
/// `import ∘ export` chain can never emit:
///
/// - a **hijack** — a route for space outside PEERING's pools reaching
///   an upstream: checked as `accept(import) ∩ accept(export) ⊆ pools`,
/// - a **route leak** — a route learned from the Internet re-exported
///   back out: checked as `accept(export) ⊆ pools` under the
///   no-knowledge context (an Internet route for non-pool space can
///   carry arbitrary attributes, so only the export filter stands
///   between it and a leak).
///
/// Both checks use over-approximations of the accept regions, so a pass
/// is a proof; a failure yields a concrete witness prefix but may in
/// principle be a false alarm for attribute-gated policies (none of the
/// shipped chains are attribute-gated on the accept side).
///
/// Also reports dead/shadowed rules and unreachable action arms in
/// either policy, as warnings.
pub fn verify_chain(import: &Policy, export: &Policy, safety: &SafetyConfig) -> Report {
    let mut report = Report::new();
    let ctx = AbstractPath::top();
    let pools = pool_region(safety);

    let import_analysis = analyze_policy(import, &ctx);
    let export_analysis = analyze_policy(export, &ctx);

    // Hijack: something outside the pools survives both filters.
    let emit = import_analysis
        .accept_may
        .intersect(&export_analysis.accept_may);
    let escape = emit.subtract(&pools);
    if let Some(witness) = escape.example() {
        report.push(Finding::error(
            FindingCode::HijackPossible,
            "import+export chain",
            format!(
                "the composed policies can emit {witness}, which is outside every PEERING pool"
            ),
        ));
    }

    // Route leak: the export filter alone must pin emissions to the
    // pools, because Internet-learned routes bypass the client import
    // policy.
    let leak = export_analysis.accept_may.subtract(&pools);
    if let Some(witness) = leak.example() {
        report.push(Finding::error(
            FindingCode::RouteLeakPossible,
            "export policy",
            format!("a route learned from the Internet for {witness} would be re-exported"),
        ));
    }

    report_policy_structure("import policy", import, &ctx, &mut report);
    report_policy_structure("export policy", export, &ctx, &mut report);
    report
}

/// The abstract path context for announcements produced by `spec` with
/// the given origin: origin + prepends + poisons, nothing else.
fn spec_context(spec: &AnnouncementSpec, origin: peering_netsim::Asn) -> AbstractPath {
    let mut must = vec![origin];
    must.extend(spec.poison.iter().copied());
    must.extend(spec.emulated_origin);
    let extra = u32::from(spec.prepend) + spec.poison.len() as u32;
    AbstractPath {
        origin: if spec.poison.is_empty() && spec.emulated_origin.is_none() {
            Some(origin)
        } else {
            None
        },
        must_contain: must,
        closed: true,
        min_hops: Some(1),
        max_hops: Some(1 + extra + u32::from(spec.emulated_origin.is_some())),
    }
}

fn violation_finding(subject: String, v: &Violation) -> Finding {
    let code = match v {
        Violation::Hijack(_) | Violation::HijackV6(_) => FindingCode::HijackPossible,
        Violation::NotYourPrefix(_) | Violation::NotYourV6Prefix(_) => FindingCode::NotYourPrefix,
        Violation::BadOrigin(_) => FindingCode::BadOrigin,
        Violation::ExcessivePrepend(_) => FindingCode::ExcessivePrepend,
        Violation::ExcessivePoison(_) => FindingCode::ExcessivePoison,
        // The remaining violations are dynamic (damping, rate limits,
        // spoofing) and cannot arise from static_check.
        _ => FindingCode::FilteredAnnouncement,
    };
    Finding::error(code, subject, v.to_string())
}

/// Statically verify one experiment's configuration against the safety
/// rules, without executing anything.
///
/// Per announcement: the pure [`SafetyConfig::static_check`] (hijack,
/// ownership, origin, prepend and poison budgets), then a reachability
/// check against the mux import policy — an announcement the mux would
/// silently drop (e.g. a too-long prefix) is flagged as
/// [`FindingCode::FilteredAnnouncement`]. Per experiment: the composed
/// import/export chain is verified via [`verify_chain`].
pub fn verify_experiment(exp: &Experiment, safety: &SafetyConfig) -> Report {
    let mut report = Report::new();
    let origin = exp
        .origin_asn
        .or_else(|| safety.public_asns.first().copied())
        .unwrap_or(peering_netsim::Asn::PEERING);

    let import = safety.client_import_policy();
    let export = safety.export_safety_policy();

    for (net, spec) in &exp.active {
        let subject = format!("experiment \"{}\" announcement {}", exp.name, net);
        if let Err(v) = safety.static_check(&exp.prefix, spec, origin) {
            report.push(violation_finding(subject.clone(), &v));
            continue;
        }
        // The spec passed the safety rules; make sure the mux's import
        // policy will actually carry it. A dropped announcement is not a
        // safety problem, but it is a misconfiguration worth flagging.
        // Analyzing under the spec's own path context keeps the check
        // precise for attribute-gated import policies.
        let ctx = spec_context(spec, origin);
        let import_accept = analyze_policy(&import, &ctx).accept_may;
        let region = PrefixSet::exactly(&Prefix::V4(spec.prefix));
        if region.intersect(&import_accept).is_empty() {
            report.push(Finding::warning(
                FindingCode::FilteredAnnouncement,
                subject,
                format!(
                    "{} passes the safety rules but the mux import policy rejects it \
                     (too specific or outside the pools): it would be silently dropped",
                    spec.prefix
                ),
            ));
        }
    }

    for net in exp.active_v6.keys() {
        let subject = format!("experiment \"{}\" v6 announcement {}", exp.name, net);
        if !safety.pools_v6.iter().any(|p| p.covers(net)) {
            report.push(Finding::error(
                FindingCode::HijackPossible,
                subject,
                format!("{net} is outside every PEERING v6 pool"),
            ));
        } else if !exp.v6_prefix.is_some_and(|own| own.covers(net)) {
            report.push(Finding::error(
                FindingCode::NotYourPrefix,
                subject,
                format!("{net} is not inside the experiment's v6 allocation"),
            ));
        }
    }

    report.merge(verify_chain(&import, &export, safety));
    report
}

/// Verify a set of concurrently-provisioned experiments: each one
/// individually, plus cross-experiment prefix allocation conflicts
/// (overlapping v4 /24s or v6 /48s).
pub fn verify_experiments(exps: &[Experiment], safety: &SafetyConfig) -> Report {
    let mut report = Report::new();
    for exp in exps {
        report.merge(verify_experiment(exp, safety));
    }
    for (i, a) in exps.iter().enumerate() {
        for b in exps.iter().skip(i + 1) {
            if a.prefix.overlaps(&b.prefix) {
                report.push(Finding::error(
                    FindingCode::AllocationConflict,
                    format!("experiments \"{}\" and \"{}\"", a.name, b.name),
                    format!("allocations {} and {} overlap", a.prefix, b.prefix),
                ));
            }
            if let (Some(av6), Some(bv6)) = (a.v6_prefix, b.v6_prefix) {
                if av6.overlaps(&bv6) {
                    report.push(Finding::error(
                        FindingCode::AllocationConflict,
                        format!("experiments \"{}\" and \"{}\"", a.name, b.name),
                        format!("v6 allocations {av6} and {bv6} overlap"),
                    ));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_core::ExperimentId;
    use peering_netsim::{Asn, Ipv4Net, SimTime};
    use std::collections::BTreeMap;

    fn experiment(name: &str, prefix: Ipv4Net) -> Experiment {
        Experiment {
            id: ExperimentId(1),
            name: name.to_string(),
            owner: "repro".to_string(),
            prefix,
            created: SimTime::ZERO,
            active: BTreeMap::new(),
            v6_prefix: None,
            origin_asn: None,
            active_v6: BTreeMap::new(),
        }
    }

    fn pool24() -> Ipv4Net {
        "184.164.225.0/24".parse().expect("net")
    }

    #[test]
    fn default_chain_verifies_clean() {
        let safety = SafetyConfig::peering_default();
        let report = verify_chain(
            &safety.client_import_policy(),
            &safety.export_safety_policy(),
            &safety,
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn clean_experiment_produces_no_findings() {
        let safety = SafetyConfig::peering_default();
        let mut exp = experiment("anycast", pool24());
        exp.active.insert(
            pool24(),
            AnnouncementSpec::everywhere(pool24(), vec![0, 1, 2]),
        );
        let report = verify_experiment(&exp, &safety);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn hijacking_spec_is_flagged() {
        let safety = SafetyConfig::peering_default();
        let outside: Ipv4Net = "8.8.8.0/24".parse().expect("net");
        let mut exp = experiment("evil", pool24());
        exp.active
            .insert(outside, AnnouncementSpec::everywhere(outside, vec![0]));
        let report = verify_experiment(&exp, &safety);
        assert!(report.has_errors());
        assert_eq!(report.with_code(FindingCode::HijackPossible).count(), 1);
    }

    #[test]
    fn announcing_anothers_prefix_is_flagged() {
        let safety = SafetyConfig::peering_default();
        let other: Ipv4Net = "184.164.226.0/24".parse().expect("net");
        let mut exp = experiment("squatter", pool24());
        exp.active
            .insert(other, AnnouncementSpec::everywhere(other, vec![0]));
        let report = verify_experiment(&exp, &safety);
        assert_eq!(report.with_code(FindingCode::NotYourPrefix).count(), 1);
    }

    #[test]
    fn budget_violations_are_flagged() {
        let safety = SafetyConfig::peering_default();
        let mut exp = experiment("loud", pool24());
        exp.active.insert(
            pool24(),
            AnnouncementSpec::everywhere(pool24(), vec![0]).prepended(safety.max_prepend + 1),
        );
        let report = verify_experiment(&exp, &safety);
        assert_eq!(report.with_code(FindingCode::ExcessivePrepend).count(), 1);

        let mut exp2 = experiment("poisoner", pool24());
        exp2.active.insert(
            pool24(),
            AnnouncementSpec::everywhere(pool24(), vec![0])
                .poisoned((0..safety.max_poison as u32 + 1).map(Asn).collect()),
        );
        let report2 = verify_experiment(&exp2, &safety);
        assert_eq!(report2.with_code(FindingCode::ExcessivePoison).count(), 1);
    }

    #[test]
    fn too_specific_announcement_warns_filtered() {
        let safety = SafetyConfig::peering_default();
        let sliver: Ipv4Net = "184.164.225.0/25".parse().expect("net");
        let mut exp = experiment("sliver", pool24());
        exp.active
            .insert(sliver, AnnouncementSpec::everywhere(sliver, vec![0]));
        let report = verify_experiment(&exp, &safety);
        // Passes the safety rules (inside the pool, inside the /24) but
        // the mux would drop it.
        assert!(!report.has_errors(), "{report}");
        assert_eq!(
            report.with_code(FindingCode::FilteredAnnouncement).count(),
            1
        );
    }

    #[test]
    fn overlapping_allocations_conflict() {
        let safety = SafetyConfig::peering_default();
        let a = experiment("first", pool24());
        let b = experiment("second", "184.164.225.128/25".parse().expect("net"));
        let report = verify_experiments(&[a, b], &safety);
        assert_eq!(report.with_code(FindingCode::AllocationConflict).count(), 1);
        // Disjoint allocations are clean.
        let c = experiment("third", "184.164.226.0/24".parse().expect("net"));
        let d = experiment("fourth", "184.164.227.0/24".parse().expect("net"));
        let report2 = verify_experiments(&[c, d], &safety);
        assert!(report2.is_clean(), "{report2}");
    }

    #[test]
    fn v6_announcements_checked_against_pool_and_allocation() {
        let safety = SafetyConfig::peering_default();
        let mut exp = experiment("v6", pool24());
        exp.v6_prefix = Some("2804:269c:1::/48".parse().expect("net"));
        // Outside the v6 pool entirely.
        exp.active_v6
            .insert("2001:db8::/48".parse().expect("net"), vec![0]);
        // Inside the pool but not this experiment's /48.
        exp.active_v6
            .insert("2804:269c:2::/48".parse().expect("net"), vec![0]);
        // Fine.
        exp.active_v6
            .insert("2804:269c:1::/48".parse().expect("net"), vec![0]);
        let report = verify_experiment(&exp, &safety);
        assert_eq!(report.with_code(FindingCode::HijackPossible).count(), 1);
        assert_eq!(report.with_code(FindingCode::NotYourPrefix).count(), 1);
    }

    #[test]
    fn leaky_export_policy_is_refuted_with_witness() {
        let safety = SafetyConfig::peering_default();
        let report = verify_chain(
            &safety.client_import_policy(),
            &Policy::accept_all(),
            &safety,
        );
        assert!(report.has_errors());
        assert_eq!(report.with_code(FindingCode::RouteLeakPossible).count(), 1);
        // The import policy still pins the composed chain to the pools,
        // so no hijack finding — the leak is the export policy's fault.
        assert_eq!(report.with_code(FindingCode::HijackPossible).count(), 0);
    }
}
