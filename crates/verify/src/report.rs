//! Findings and reports produced by the static analyzer.
//!
//! A [`Report`] is the output of every verification entry point: a flat
//! list of [`Finding`]s, each tagged with a machine-readable
//! [`FindingCode`] and a [`Severity`]. `peering-lint` renders reports and
//! derives its exit code from [`Report::has_errors`].

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth knowing, never blocks.
    Info,
    /// Suspicious but not provably unsafe (dead rules, shadowing).
    Warning,
    /// Provably unsafe or misconfigured; `peering-lint` exits non-zero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Machine-readable classification of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingCode {
    /// The composed policy chain can emit a route outside PEERING's
    /// address pools: a hijack is not statically excluded.
    HijackPossible,
    /// The export policy can re-emit a route learned from the Internet:
    /// a route leak is not statically excluded.
    RouteLeakPossible,
    /// An announcement names a prefix outside the experiment's
    /// allocation.
    NotYourPrefix,
    /// An announcement originates from an ASN PEERING does not own.
    BadOrigin,
    /// More prepends than the safety rules allow.
    ExcessivePrepend,
    /// More poisoned ASNs than the safety rules allow.
    ExcessivePoison,
    /// A rule whose match region is empty on its own (e.g. an empty
    /// `PrefixIn` list or a contradictory `All`).
    DeadRule,
    /// A rule whose match region is fully consumed by earlier terminal
    /// rules: it can never fire.
    ShadowedRule,
    /// Actions after a terminal `Accept`/`Reject` in the same rule.
    UnreachableActions,
    /// Two concurrent experiments hold overlapping prefixes.
    AllocationConflict,
    /// The announcement would be silently dropped by the mux import
    /// policy (e.g. a too-long prefix).
    FilteredAnnouncement,
}

impl FindingCode {
    /// Kebab-case code for display ("error[hijack-possible] ...").
    pub fn as_str(&self) -> &'static str {
        match self {
            FindingCode::HijackPossible => "hijack-possible",
            FindingCode::RouteLeakPossible => "route-leak-possible",
            FindingCode::NotYourPrefix => "not-your-prefix",
            FindingCode::BadOrigin => "bad-origin",
            FindingCode::ExcessivePrepend => "excessive-prepend",
            FindingCode::ExcessivePoison => "excessive-poison",
            FindingCode::DeadRule => "dead-rule",
            FindingCode::ShadowedRule => "shadowed-rule",
            FindingCode::UnreachableActions => "unreachable-actions",
            FindingCode::AllocationConflict => "allocation-conflict",
            FindingCode::FilteredAnnouncement => "filtered-announcement",
        }
    }
}

impl fmt::Display for FindingCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verified problem (or observation) about a config or policy.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What kind of problem.
    pub code: FindingCode,
    /// How bad.
    pub severity: Severity,
    /// What it is about ("experiment lifeguard", "export policy rule 2").
    pub subject: String,
    /// Human-readable explanation with concrete evidence.
    pub detail: String,
}

impl Finding {
    /// An error-severity finding.
    pub fn error(code: FindingCode, subject: impl Into<String>, detail: impl Into<String>) -> Self {
        Finding {
            code,
            severity: Severity::Error,
            subject: subject.into(),
            detail: detail.into(),
        }
    }

    /// A warning-severity finding.
    pub fn warning(
        code: FindingCode,
        subject: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        Finding {
            code,
            severity: Severity::Warning,
            subject: subject.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.subject, self.detail
        )
    }
}

/// The result of a verification pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Add a finding.
    pub fn push(&mut self, f: Finding) {
        self.findings.push(f);
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
    }

    /// No findings at all — the config verifies with nothing to say.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// At least one error-severity finding.
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Count findings of a given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// Findings with a given code.
    pub fn with_code(&self, code: FindingCode) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.code == code)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "clean");
        }
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accounting() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        r.push(Finding::warning(
            FindingCode::DeadRule,
            "policy rule 3",
            "matches nothing",
        ));
        assert!(!r.is_clean());
        assert!(!r.has_errors());
        r.push(Finding::error(
            FindingCode::HijackPossible,
            "export policy",
            "accepts 8.8.8.0/24",
        ));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.with_code(FindingCode::DeadRule).count(), 1);
        let shown = r.to_string();
        assert!(shown.contains("error[hijack-possible] export policy"));
        assert!(shown.contains("warning[dead-rule]"));
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Report::new();
        a.push(Finding::error(FindingCode::BadOrigin, "x", "y"));
        let mut b = Report::new();
        b.push(Finding::warning(FindingCode::ShadowedRule, "p", "q"));
        a.merge(b);
        assert_eq!(a.findings.len(), 2);
        assert_eq!(Report::new().to_string(), "clean");
    }
}
