//! `peering-verify`: static safety verification of experiment configs
//! and mux policy chains — the analyzer behind `peering-lint`.
//!
//! The PEERING paper's safety story is dynamic: servers apply outbound
//! filters so a misbehaving experiment is caught at announcement time.
//! This crate adds the static half: given an [`Experiment`] and the
//! testbed's [`SafetyConfig`], it *proves* — by abstract interpretation
//! over the policy engine's [`Match`]/[`Action`] language, without
//! executing anything — that the composed client-import policy and
//! outbound safety filter can never emit a hijack, route leak, or
//! another experiment's prefix. When the proof fails, it produces a
//! concrete witness prefix instead.
//!
//! # How it works
//!
//! Prefix predicates are interpreted in an exact interval lattice over
//! `(address, length)` space ([`domain`]): each prefix-structural match
//! is a union of axis-aligned boxes, closed under union, intersection
//! and complement. Attribute predicates (AS-path containment, origin,
//! hop counts) are three-valued under an [`AbstractPath`] context, and
//! every match is abstracted to a *may*/*must* pair of regions — sound
//! over- and under-approximations that `Not` swaps, `All` intersects
//! and `AnyOf` unions ([`policy`]). Walking a rule chain with this
//! machinery yields the region the policy can accept, plus dead rules,
//! shadowed rules and unreachable action arms.
//!
//! # Known over-approximations
//!
//! - Boxes include `(address, length)` points with host bits set below
//!   the length; no real prefix has them, and they only ever make the
//!   analyzer more conservative.
//! - Communities and the ORIGIN attribute are not tracked: predicates
//!   over them are always `Unknown`.
//! - A fall-through rule that mutates the AS path degrades the path
//!   context to "unknown" for all later rules.
//!
//! Each can turn a provable property into a warning, never a wrong
//! "safe" verdict.
//!
//! # Entry points
//!
//! - [`verify_experiment`] / [`verify_experiments`] — full config
//!   checks, including cross-experiment allocation conflicts.
//! - [`verify_chain`] — just the policy-chain safety proof.
//! - `cargo run -p peering-verify --bin peering-lint` — check every
//!   scenario in the workloads catalog.
//!
//! [`Experiment`]: peering_core::Experiment
//! [`SafetyConfig`]: peering_core::SafetyConfig
//! [`Match`]: peering_bgp::Match
//! [`Action`]: peering_bgp::Action
//! [`AbstractPath`]: policy::AbstractPath

pub mod domain;
pub mod experiment;
pub mod policy;
pub mod report;

pub use domain::{PBox, PrefixSet};
pub use experiment::{verify_chain, verify_experiment, verify_experiments};
pub use policy::{analyze_policy, may_space, must_space, AbstractPath, PolicyAnalysis, Ternary};
pub use report::{Finding, FindingCode, Report, Severity};
