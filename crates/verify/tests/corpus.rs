//! The misconfiguration corpus: known-bad configs the analyzer must
//! flag, and the shipped scenario catalog it must pass with zero
//! findings.

use peering_bgp::{Action, Match, Policy};
use peering_core::safety::SafetyConfig;
use peering_core::{AnnouncementSpec, Experiment, ExperimentId, PrefixAllocator};
use peering_netsim::{Ipv4Net, Prefix, SimTime};
use peering_verify::{
    analyze_policy, verify_chain, verify_experiment, verify_experiments, AbstractPath, FindingCode,
};
use std::collections::BTreeMap;

fn experiment(name: &str, prefix: Ipv4Net) -> Experiment {
    Experiment {
        id: ExperimentId(0),
        name: name.to_string(),
        owner: "corpus".to_string(),
        prefix,
        created: SimTime::ZERO,
        active: BTreeMap::new(),
        v6_prefix: None,
        origin_asn: None,
        active_v6: BTreeMap::new(),
    }
}

/// Corpus case 1: an export policy that accepts everything — the
/// classic route-leak misconfiguration. The analyzer must refuse to
/// certify it and name a witness outside the pools.
#[test]
fn leaking_export_policy_is_flagged() {
    let safety = SafetyConfig::peering_default();
    let leaky = Policy::accept_all();
    let report = verify_chain(&safety.client_import_policy(), &leaky, &safety);
    assert!(report.has_errors(), "{report}");
    let leak = report
        .with_code(FindingCode::RouteLeakPossible)
        .next()
        .expect("route-leak finding");
    // The witness must be a concrete prefix outside PEERING space.
    assert!(leak.detail.contains('/'), "witness missing: {leak}");
}

/// Corpus case 2: an import policy with a hole — it admits a block
/// outside the pools, so the composed chain can emit a hijack.
#[test]
fn hijack_admitting_import_is_flagged() {
    let safety = SafetyConfig::peering_default();
    let import = safety.client_import_policy().rule(
        Match::PrefixIn(vec![Prefix::v4(8, 8, 8, 0, 24)]),
        vec![Action::Accept],
    );
    // The export filter must also admit it for a hijack to escape; use
    // a matching (broken) export policy.
    let export = Policy::accept_all();
    let report = verify_chain(&import, &export, &safety);
    assert!(
        report.with_code(FindingCode::HijackPossible).count() >= 1,
        "{report}"
    );
}

/// Corpus case 2b: an experiment that *announces* a prefix PEERING does
/// not own.
#[test]
fn hijacking_experiment_is_flagged() {
    let safety = SafetyConfig::peering_default();
    let mine: Ipv4Net = "184.164.230.0/24".parse().expect("net");
    let foreign: Ipv4Net = "192.0.2.0/24".parse().expect("net");
    let mut exp = experiment("hijacker", mine);
    exp.active
        .insert(foreign, AnnouncementSpec::everywhere(foreign, vec![0]));
    let report = verify_experiment(&exp, &safety);
    assert_eq!(report.with_code(FindingCode::HijackPossible).count(), 1);
}

/// Corpus case 3: a shadowed rule — an operator adds a special case
/// *after* the general rule that already decides it, so the special
/// case never fires.
#[test]
fn shadowed_rule_is_flagged() {
    let pool = Prefix::v4(184, 164, 224, 0, 19);
    let special = Prefix::v4(184, 164, 230, 0, 24);
    let policy = Policy::reject_all()
        .rule(Match::PrefixIn(vec![pool]), vec![Action::Accept])
        .rule(
            Match::PrefixExact(vec![special]),
            vec![Action::SetLocalPref(50), Action::Accept],
        );
    let analysis = analyze_policy(&policy, &AbstractPath::top());
    assert_eq!(analysis.shadowed_rules, vec![(1, 0)]);
    // The same defect surfaces as a warning through the chain verifier.
    let safety = SafetyConfig::peering_default();
    let report = verify_chain(&policy, &safety.export_safety_policy(), &safety);
    assert!(!report.has_errors(), "{report}");
    assert_eq!(report.with_code(FindingCode::ShadowedRule).count(), 1);
}

/// Corpus case 3b: a dead rule (empty match list) and unreachable
/// actions after a terminal verdict.
#[test]
fn dead_rules_and_unreachable_actions_are_flagged() {
    let safety = SafetyConfig::peering_default();
    let policy = safety
        .client_import_policy()
        .rule(Match::PrefixIn(vec![]), vec![Action::Reject])
        .rule(Match::Any, vec![Action::Reject, Action::SetLocalPref(10)]);
    let report = verify_chain(&policy, &safety.export_safety_policy(), &safety);
    assert!(!report.has_errors(), "{report}");
    assert_eq!(report.with_code(FindingCode::DeadRule).count(), 1);
    assert_eq!(report.with_code(FindingCode::UnreachableActions).count(), 1);
}

/// Corpus case 4: two experiments provisioned over overlapping space —
/// the allocation bug the portal must never let through.
#[test]
fn allocation_conflict_is_flagged() {
    let safety = SafetyConfig::peering_default();
    let a_net: Ipv4Net = "184.164.230.0/24".parse().expect("net");
    let b_net: Ipv4Net = "184.164.230.0/25".parse().expect("net");
    let mut a = experiment("alpha", a_net);
    a.active
        .insert(a_net, AnnouncementSpec::everywhere(a_net, vec![0]));
    let mut b = experiment("beta", b_net);
    b.id = ExperimentId(1);
    let report = verify_experiments(&[a, b], &safety);
    assert!(report.has_errors(), "{report}");
    assert_eq!(report.with_code(FindingCode::AllocationConflict).count(), 1);
}

/// The flip side of the corpus: every shipped scenario, materialized
/// exactly as `peering-lint` does it, verifies with ZERO findings — no
/// false positives.
#[test]
fn shipped_scenarios_are_clean() {
    let safety = SafetyConfig::peering_default();
    let mut allocator = PrefixAllocator::peering_default();
    let mut experiments = Vec::new();
    for (i, scenario) in peering_workloads::catalog::all().iter().enumerate() {
        let prefix = allocator.allocate(i as u32).expect("pool has room");
        let mut exp = experiment(scenario.name, prefix);
        exp.id = ExperimentId(i as u32);
        for spec in (scenario.plan)(prefix, 4) {
            exp.active.insert(spec.prefix, spec);
        }
        experiments.push(exp);
    }
    let report = verify_experiments(&experiments, &safety);
    assert!(
        report.is_clean(),
        "false positives on shipped scenarios:\n{report}"
    );

    let chain = verify_chain(
        &safety.client_import_policy(),
        &safety.export_safety_policy(),
        &safety,
    );
    assert!(chain.is_clean(), "{chain}");
}

/// The default chain proof is not vacuous: the accepted region is
/// non-empty (the pools are announceable) while everything outside the
/// pools is rejected.
#[test]
fn chain_proof_is_not_vacuous() {
    let safety = SafetyConfig::peering_default();
    let import = analyze_policy(&safety.client_import_policy(), &AbstractPath::top());
    let export = analyze_policy(&safety.export_safety_policy(), &AbstractPath::top());
    let emit = import.accept_may.intersect(&export.accept_may);
    assert!(emit.contains(&Prefix::v4(184, 164, 230, 0, 24)));
    assert!(!emit.contains(&Prefix::v4(8, 8, 8, 0, 24)));
    assert!(emit.contains(&"2804:269c:7::/48".parse::<Prefix>().expect("p")));
}
