//! Structured trace events and spans.
//!
//! Events are point-in-time moments ("fault applied", "session
//! established") stamped with the caller's [`SimTime`] and carrying a small
//! list of typed fields. Spans are timed regions with a begin and an end.
//! Both live in bounded insertion-ordered streams inside the registry —
//! the order of calls *is* the order in the snapshot, which is what makes
//! same-seed runs byte-identical.

use serde::{Deserialize, Serialize};

/// A typed field value attached to an event.
///
/// Deliberately integer/string only: floating-point field values would put
/// formatting (and NaN) questions in the determinism-critical path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Unsigned integer payload.
    U64(u64),
    /// Signed integer payload.
    I64(i64),
    /// Text payload.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One point-in-time trace event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Sim-time of the event, in microseconds since the epoch of the run.
    pub time_us: u64,
    /// Event name, `<crate>.<subsystem>.<name>` convention.
    pub name: String,
    /// Ordered `(key, value)` fields.
    pub fields: Vec<(String, FieldValue)>,
}

/// One completed timed region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name, `<crate>.<subsystem>.<name>` convention.
    pub name: String,
    /// Sim-time the span was opened, microseconds.
    pub start_us: u64,
    /// Sim-time the span was closed, microseconds (>= `start_us`).
    pub end_us: u64,
}

impl SpanRecord {
    /// Duration of the region in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3u64), FieldValue::U64(3));
        assert_eq!(FieldValue::from(4usize), FieldValue::U64(4));
        assert_eq!(FieldValue::from(-2i64), FieldValue::I64(-2));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
    }

    #[test]
    fn span_duration_saturates() {
        let s = SpanRecord {
            name: "t".into(),
            start_us: 10,
            end_us: 25,
        };
        assert_eq!(s.duration_us(), 15);
        let backwards = SpanRecord {
            name: "t".into(),
            start_us: 25,
            end_us: 10,
        };
        assert_eq!(backwards.duration_us(), 0);
    }

    #[test]
    fn event_serializes_stably() {
        let e = EventRecord {
            time_us: 7,
            name: "test.unit.fired".into(),
            fields: vec![("n".into(), FieldValue::U64(1))],
        };
        let json = serde_json::to_string(&e).expect("serialize");
        assert!(json.contains("\"test.unit.fired\""), "{json}");
    }
}
