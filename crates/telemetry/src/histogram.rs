//! Log-2 bucketed histograms.
//!
//! Values are `u64` (microseconds, bytes, counts — whatever the metric
//! measures). Bucket `i` counts observations whose value needs `i`
//! significant bits: bucket 0 holds the value 0, bucket 1 holds 1, bucket
//! 2 holds 2–3, bucket 3 holds 4–7, and so on up to bucket 64 for values
//! with the top bit set. Exponential buckets keep the memory footprint
//! fixed (65 slots) while resolving distributions that span many orders of
//! magnitude — convergence times range from microseconds to minutes.

use serde::{Deserialize, Serialize};

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// A fixed-footprint log-2 histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a value: 0 for 0, otherwise the value's bit length.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean of the observations, if any.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Freeze into the serializable form: only non-empty buckets are kept,
    /// as `(bucket_floor, count)` pairs where `bucket_floor` is the least
    /// value that lands in the bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let floor = if i == 0 { 0 } else { 1u64 << (i - 1) };
                (floor, n)
            })
            .collect();
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            buckets,
        }
    }
}

/// Serializable summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// `(bucket_floor, count)` for each non-empty log-2 bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn observe_tracks_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        for v in [0, 1, 5, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.mean(), Some(251));
        let snap = h.snapshot();
        // 0 -> bucket floor 0; 1 -> floor 1; 5 -> floor 4; 1000 -> floor 512.
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (4, 1), (512, 1)]);
    }

    #[test]
    fn sum_saturates() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
