//! Sim-time telemetry for the PEERING reproduction.
//!
//! The testbed's value proposition is *visibility* (PAPER.md §3–4): the mux
//! gives each client a per-peer view of routes and the operators a
//! per-experiment view of what was announced and heard. This crate is the
//! observability substrate that makes that visibility measurable — and it is
//! built for a discrete-event world, so it never consults `std::time`.
//! Every timestamp is a [`SimTime`] supplied by the caller; every run of the
//! same seed produces a byte-identical [`Snapshot`].
//!
//! # Model
//!
//! A [`Registry`] holds four kinds of instruments, all keyed by a flat
//! metric name following the `<crate>.<subsystem>.<name>` convention
//! (e.g. `bgp.speaker.updates_in`, `netsim.transport.delivered`):
//!
//! - **Counters** — monotonically increasing `u64` totals.
//! - **Gauges** — signed point-in-time levels (queue depths, RIB sizes),
//!   with a high-water helper for peaks.
//! - **Histograms** — log-2 bucketed `u64` distributions ([`Histogram`])
//!   recording count/sum/min/max plus per-power-of-two bucket counts, the
//!   right shape for latency-like quantities spanning orders of magnitude.
//! - **Events and spans** — a bounded, typed trace stream
//!   ([`EventRecord`], [`SpanRecord`]) for structured moments ("fault
//!   applied", "session established") and timed regions.
//!
//! Code under measurement never owns a `Registry` directly: it holds a
//! [`Telemetry`] handle, a cheap `Rc` clone that either points at a shared
//! registry or is [`Telemetry::disabled`] — a no-op mode with near-zero
//! cost, so library crates can instrument unconditionally. Handles are
//! plumbed explicitly (never via globals or thread-locals), which keeps the
//! determinism story auditable: the registry's state is a pure function of
//! the calls made against it, in order.
//!
//! [`Registry::snapshot`] freezes everything into a [`Snapshot`] whose JSON
//! rendering is deterministic: `BTreeMap` keys, insertion-ordered event
//! streams, and no floating-point derived values.

pub mod event;
pub mod histogram;
pub mod registry;
pub mod snapshot;

pub use event::{EventRecord, FieldValue, SpanRecord};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Registry, Span, Telemetry};
pub use snapshot::Snapshot;

/// Re-exported so instrument call sites need only this crate.
pub use peering_netsim::{SimDuration, SimTime};
