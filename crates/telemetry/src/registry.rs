//! The metric registry and the [`Telemetry`] handle instrumented code holds.

use crate::event::{EventRecord, FieldValue, SpanRecord};
use crate::histogram::Histogram;
use crate::snapshot::Snapshot;
use peering_netsim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Default cap on the stored event/span streams. Counters and histograms
/// are fixed-size per metric; the trace streams are the only unbounded
/// state, so they are bounded. Overflow is counted, never silent.
pub const DEFAULT_MAX_EVENTS: usize = 4096;

/// Backing store for one telemetry domain (one testbed, one emulation).
///
/// All metric families are `BTreeMap`-keyed so a [`Snapshot`] is sorted by
/// construction, independent of insertion order.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    events: Vec<EventRecord>,
    spans: Vec<SpanRecord>,
    dropped_events: u64,
    max_events: usize,
}

impl Registry {
    /// Fresh registry with the default event-stream bound.
    pub fn new() -> Self {
        Registry {
            max_events: DEFAULT_MAX_EVENTS,
            ..Registry::default()
        }
    }

    fn counter_add(&mut self, name: &str, delta: u64) {
        let c = self.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(delta);
    }

    fn gauge_set(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    fn gauge_max(&mut self, name: &str, value: i64) {
        let g = self.gauges.entry(name.to_string()).or_insert(i64::MIN);
        *g = (*g).max(value);
    }

    fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    fn push_event(&mut self, record: EventRecord) {
        if self.events.len() >= self.max_events {
            self.dropped_events += 1;
        } else {
            self.events.push(record);
        }
    }

    fn push_span(&mut self, record: SpanRecord) {
        if self.spans.len() >= self.max_events {
            self.dropped_events += 1;
        } else {
            self.spans.push(record);
        }
    }

    /// Freeze the registry into its serializable form.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            events: self.events.clone(),
            spans: self.spans.clone(),
            dropped_events: self.dropped_events,
        }
    }
}

/// Cheap, cloneable handle to a shared [`Registry`] — or a no-op.
///
/// Library crates hold one of these and instrument unconditionally;
/// whether anything is recorded is the *owner's* decision (the testbed,
/// the bench harness). [`Telemetry::disabled`] is the default everywhere
/// so un-instrumented use pays one branch per call.
///
/// Handles are plumbed explicitly — never stored in globals — so the
/// registry's contents are a deterministic function of the (seeded) run.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Registry>>>,
}

impl Telemetry {
    /// A live handle backed by a fresh registry.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Registry::new()))),
        }
    }

    /// The no-op handle: every record call is a cheap branch.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to the named counter (saturating).
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(r) = &self.inner {
            r.borrow_mut().counter_add(name, delta);
        }
    }

    /// Increment the named counter by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        if let Some(r) = &self.inner {
            r.borrow_mut().gauge_set(name, value);
        }
    }

    /// Raise the named gauge to `value` if it is below it (high-water mark).
    pub fn gauge_max(&self, name: &str, value: i64) {
        if let Some(r) = &self.inner {
            r.borrow_mut().gauge_max(name, value);
        }
    }

    /// Record one observation into the named log-2 histogram.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(r) = &self.inner {
            r.borrow_mut().observe(name, value);
        }
    }

    /// Record a sim-duration (in microseconds) into the named histogram.
    pub fn observe_duration(&self, name: &str, d: SimDuration) {
        self.observe(name, d.as_micros());
    }

    /// Append a structured trace event at sim-time `now`.
    pub fn event(&self, now: SimTime, name: &str, fields: &[(&str, FieldValue)]) {
        if let Some(r) = &self.inner {
            r.borrow_mut().push_event(EventRecord {
                time_us: now.as_micros(),
                name: name.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Open a timed region starting at `start`. Close it with
    /// [`Span::end`]; an unclosed span records nothing.
    pub fn span(&self, name: &str, start: SimTime) -> Span {
        Span {
            telemetry: self.clone(),
            name: name.to_string(),
            start,
        }
    }

    /// Freeze the current registry state. The disabled handle yields an
    /// empty snapshot.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            Some(r) => r.borrow().snapshot(),
            None => Snapshot::default(),
        }
    }
}

impl peering_netsim::TraceSink for Telemetry {
    /// Mirror an accepted [`peering_netsim::TraceLog`] record into the
    /// structured event stream. This is the unified recording path: code
    /// writes to the bounded trace ring once, and an attached telemetry
    /// handle sees the same record as a `netsim.trace.<tag>` event.
    fn trace_event(&self, event: &peering_netsim::TraceEvent) {
        self.counter_add("telemetry.trace.mirrored", 1);
        self.event(
            event.time,
            &format!("netsim.trace.{}", event.tag),
            &[("detail", FieldValue::from(event.detail.as_str()))],
        );
    }
}

/// An open timed region; see [`Telemetry::span`].
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    name: String,
    start: SimTime,
}

impl Span {
    /// Close the span at sim-time `now`: records a [`SpanRecord`] and an
    /// observation of the duration into the histogram of the same name.
    pub fn end(self, now: SimTime) {
        if let Some(r) = &self.telemetry.inner {
            let start_us = self.start.as_micros();
            let end_us = now.as_micros().max(start_us);
            let mut reg = r.borrow_mut();
            reg.observe(&self.name, end_us - start_us);
            reg.push_span(SpanRecord {
                name: self.name,
                start_us,
                end_us,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter_inc("a.b.c");
        t.gauge_set("a.b.g", 5);
        t.observe("a.b.h", 9);
        t.event(SimTime::from_micros(1), "a.b.e", &[]);
        let snap = t.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::new();
        let u = t.clone();
        t.counter_inc("x.y.n");
        u.counter_add("x.y.n", 2);
        assert_eq!(t.snapshot().counter("x.y.n"), 3);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let t = Telemetry::new();
        t.gauge_set("q.depth", 4);
        t.gauge_set("q.depth", 2);
        t.gauge_max("q.peak", 2);
        t.gauge_max("q.peak", 7);
        t.gauge_max("q.peak", 3);
        let s = t.snapshot();
        assert_eq!(s.gauges.get("q.depth"), Some(&2));
        assert_eq!(s.gauges.get("q.peak"), Some(&7));
    }

    #[test]
    fn span_records_duration_histogram_and_trace() {
        let t = Telemetry::new();
        let span = t.span("bgp.session.convergence_us", SimTime::from_micros(100));
        span.end(SimTime::from_micros(350));
        let s = t.snapshot();
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].duration_us(), 250);
        let h = s.histograms.get("bgp.session.convergence_us").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 250);
    }

    #[test]
    fn event_stream_is_bounded_and_counts_overflow() {
        let t = Telemetry::new();
        for i in 0..(DEFAULT_MAX_EVENTS as u64 + 10) {
            t.event(SimTime::from_micros(i), "e.v.t", &[("i", i.into())]);
        }
        let s = t.snapshot();
        assert_eq!(s.events.len(), DEFAULT_MAX_EVENTS);
        assert_eq!(s.dropped_events, 10);
    }

    #[test]
    fn trace_log_mirrors_into_event_stream() {
        use peering_netsim::TraceLog;
        use std::rc::Rc;
        let t = Telemetry::new();
        let mut log = TraceLog::new(2);
        log.set_sink(Rc::new(t.clone()));
        log.record(SimTime::from_secs(1), "bgp", "update in");
        log.set_enabled(false);
        log.record(SimTime::from_secs(2), "bgp", "suppressed");
        log.set_enabled(true);
        log.record(SimTime::from_secs(3), "safety", "hijack blocked");
        let s = t.snapshot();
        assert_eq!(s.counter("telemetry.trace.mirrored"), 2);
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].name, "netsim.trace.bgp");
        assert_eq!(s.events[1].name, "netsim.trace.safety");
        assert_eq!(log.total, 2);
        assert_eq!(log.suppressed, 1);
    }

    #[test]
    fn counters_saturate() {
        let t = Telemetry::new();
        t.counter_add("c", u64::MAX);
        t.counter_add("c", 5);
        assert_eq!(t.snapshot().counter("c"), u64::MAX);
    }
}
