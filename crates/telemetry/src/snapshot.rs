//! The frozen, serializable view of a registry.

use crate::event::{EventRecord, SpanRecord};
use crate::histogram::HistogramSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Frozen registry state. JSON rendering is deterministic: maps are
/// `BTreeMap` (sorted keys), event/span streams keep insertion order, and
/// all values are integers — no floats, so no NaN and no formatting drift.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotonic totals, by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time levels, by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Log-2 distributions, by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Trace events in recording order.
    pub events: Vec<EventRecord>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Events/spans discarded because the stream bound was hit.
    pub dropped_events: u64,
}

impl Snapshot {
    /// Counter value, 0 if the metric was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if the metric was ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, if the metric was ever observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Pretty JSON rendering with a trailing newline — the byte-stable
    /// format written to `results/BENCH_telemetry.json` and the goldens.
    pub fn to_json_pretty(&self) -> String {
        // The vendored serializer only fails on NaN map keys, which this
        // all-integer structure cannot contain.
        serde_json::to_string_pretty(self).unwrap_or_default() + "\n"
    }

    /// Structural sanity check used by the CI smoke step: histogram
    /// invariants must hold and every expected metric must be present.
    /// (Counters/gauges are integers by construction, so NaN or negative
    /// counters are unrepresentable; this guards the aggregate fields.)
    pub fn validate(&self, expected_counters: &[&str]) -> Result<(), String> {
        for name in expected_counters {
            if !self.counters.contains_key(*name) {
                return Err(format!("missing expected counter {name:?}"));
            }
        }
        for (name, h) in &self.histograms {
            let bucket_total: u64 = h.buckets.iter().map(|(_, n)| n).sum();
            if bucket_total != h.count {
                return Err(format!(
                    "histogram {name:?}: bucket total {bucket_total} != count {}",
                    h.count
                ));
            }
            if h.count > 0 && h.min > h.max {
                return Err(format!("histogram {name:?}: min {} > max {}", h.min, h.max));
            }
            if let Some(prev) = h.buckets.windows(2).find(|w| w[0].0 >= w[1].0) {
                return Err(format!(
                    "histogram {name:?}: bucket floors not ascending at {}",
                    prev[0].0
                ));
            }
        }
        for span in &self.spans {
            if span.end_us < span.start_us {
                return Err(format!("span {:?}: ends before it starts", span.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;
    use peering_netsim::SimTime;

    #[test]
    fn json_round_trips() {
        let t = Telemetry::new();
        t.counter_add("a.b.c", 3);
        t.gauge_set("a.b.g", -4);
        t.observe("a.b.h", 17);
        t.event(SimTime::from_micros(9), "a.b.e", &[("k", "v".into())]);
        let snap = t.snapshot();
        let json = snap.to_json_pretty();
        let back: Snapshot = serde_json::from_str(json.trim_end()).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn validate_accepts_live_registry_output() {
        let t = Telemetry::new();
        t.counter_inc("x.y.z");
        t.observe("x.y.h", 0);
        t.observe("x.y.h", 1023);
        let span = t.span("x.y.s", SimTime::from_micros(5));
        span.end(SimTime::from_micros(6));
        assert_eq!(t.snapshot().validate(&["x.y.z"]), Ok(()));
    }

    #[test]
    fn validate_flags_missing_counter() {
        let t = Telemetry::new();
        let err = t.snapshot().validate(&["not.there"]).unwrap_err();
        assert!(err.contains("not.there"), "{err}");
    }

    #[test]
    fn empty_snapshot_is_default() {
        assert_eq!(Telemetry::disabled().snapshot(), Snapshot::default());
    }
}
