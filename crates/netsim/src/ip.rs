//! A minimal IPv4 data plane: packets, payloads, and longest-prefix-match
//! forwarding tables.
//!
//! PEERING experiments exchange *real traffic* with the Internet; here the
//! traffic is simulated but follows the same rules: TTL decrement and
//! expiry (enabling traceroute), ICMP errors, UDP probes, and IP-in-IP
//! encapsulation for the OpenVPN-style tunnels between clients and servers
//! and for ARROW-style detour tunnels.

use crate::net::Ipv4Net;
use crate::trie::RadixTrie;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Transport protocol selector (informational; the payload enum governs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpProto {
    /// ICMP control messages.
    Icmp,
    /// UDP datagrams.
    Udp,
    /// TCP segments (modeled, not byte-accurate).
    Tcp,
    /// IP-in-IP encapsulation (tunnels).
    Encap,
}

/// Packet payloads understood by the simulated data plane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// ICMP echo request (ping).
    EchoRequest {
        /// Probe identifier.
        id: u16,
        /// Sequence number.
        seq: u16,
    },
    /// ICMP echo reply.
    EchoReply {
        /// Probe identifier.
        id: u16,
        /// Sequence number.
        seq: u16,
    },
    /// ICMP time exceeded, sent by the router where TTL hit zero.
    TtlExceeded {
        /// Destination of the original packet.
        orig_dst: Ipv4Addr,
    },
    /// ICMP destination unreachable (no route).
    Unreachable {
        /// Destination of the original packet.
        orig_dst: Ipv4Addr,
    },
    /// UDP datagram with opaque application bytes.
    Udp {
        /// Source port.
        sport: u16,
        /// Destination port.
        dport: u16,
        /// Application payload.
        data: Vec<u8>,
    },
    /// An encapsulated inner packet (IP-in-IP / tunnel).
    Encap(Box<IpPacket>),
    /// Uninterpreted bytes.
    Raw(Vec<u8>),
}

impl Payload {
    /// Approximate on-the-wire size of the payload in bytes.
    pub fn size(&self) -> usize {
        match self {
            Payload::EchoRequest { .. } | Payload::EchoReply { .. } => 8,
            Payload::TtlExceeded { .. } | Payload::Unreachable { .. } => 36,
            Payload::Udp { data, .. } => 8 + data.len(),
            Payload::Encap(inner) => inner.size(),
            Payload::Raw(b) => b.len(),
        }
    }
}

/// A simulated IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpPacket {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Time to live; decremented per hop.
    pub ttl: u8,
    /// The payload.
    pub payload: Payload,
}

impl IpPacket {
    /// Default initial TTL.
    pub const DEFAULT_TTL: u8 = 64;

    /// Build a packet with the default TTL.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, payload: Payload) -> Self {
        IpPacket {
            src,
            dst,
            ttl: Self::DEFAULT_TTL,
            payload,
        }
    }

    /// Build a ping probe.
    pub fn echo_request(src: Ipv4Addr, dst: Ipv4Addr, id: u16, seq: u16) -> Self {
        IpPacket::new(src, dst, Payload::EchoRequest { id, seq })
    }

    /// Approximate total size (20-byte header + payload).
    pub fn size(&self) -> usize {
        20 + self.payload.size()
    }

    /// Wrap this packet in a tunnel envelope between tunnel endpoints.
    pub fn encapsulate(self, outer_src: Ipv4Addr, outer_dst: Ipv4Addr) -> IpPacket {
        IpPacket::new(outer_src, outer_dst, Payload::Encap(Box::new(self)))
    }

    /// Unwrap one layer of tunnel encapsulation, if present.
    pub fn decapsulate(self) -> Option<IpPacket> {
        match self.payload {
            Payload::Encap(inner) => Some(*inner),
            _ => None,
        }
    }
}

impl fmt::Display for IpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} ttl={} ", self.src, self.dst, self.ttl)?;
        match &self.payload {
            Payload::EchoRequest { id, seq } => write!(f, "echo-req id={id} seq={seq}"),
            Payload::EchoReply { id, seq } => write!(f, "echo-rep id={id} seq={seq}"),
            Payload::TtlExceeded { orig_dst } => write!(f, "ttl-exceeded orig={orig_dst}"),
            Payload::Unreachable { orig_dst } => write!(f, "unreachable orig={orig_dst}"),
            Payload::Udp { sport, dport, data } => {
                write!(f, "udp {sport}->{dport} {}B", data.len())
            }
            Payload::Encap(inner) => write!(f, "encap[{inner}]"),
            Payload::Raw(b) => write!(f, "raw {}B", b.len()),
        }
    }
}

/// A longest-prefix-match forwarding table mapping prefixes to next hops.
///
/// The next-hop type is generic: the AS-level data plane uses ASNs, the
/// intradomain emulation uses node indices, and PEERING servers use
/// upstream peer identifiers.
#[derive(Debug, Clone)]
pub struct ForwardingTable<T> {
    // A binary radix trie: one masked descent per lookup instead of a
    // scan over every populated prefix length. `iter` yields the trie's
    // preorder — deterministic (address, length) order — so FIB walks
    // can still feed compiled forwarding snapshots (`nd-hash-iter`).
    trie: RadixTrie<u32, T>,
}

impl<T> Default for ForwardingTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ForwardingTable<T> {
    /// Create an empty table.
    pub fn new() -> Self {
        ForwardingTable {
            trie: RadixTrie::new(),
        }
    }

    /// Insert or replace the entry for `net`. Returns the old value if the
    /// exact prefix was already present.
    pub fn insert(&mut self, net: Ipv4Net, next_hop: T) -> Option<T> {
        self.trie.insert(net.network_u32(), net.len(), next_hop)
    }

    /// Remove the exact-match entry for `net`.
    pub fn remove(&mut self, net: &Ipv4Net) -> Option<T> {
        self.trie.remove(net.network_u32(), net.len())
    }

    /// Longest-prefix-match lookup: the most specific covering entry.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(Ipv4Net, &T)> {
        self.trie
            .longest_match(u32::from(ip))
            .map(|(addr, len, t)| (Ipv4Net::new(Ipv4Addr::from(addr), len), t))
    }

    /// Exact-match lookup.
    pub fn get(&self, net: &Ipv4Net) -> Option<&T> {
        self.trie.get(net.network_u32(), net.len())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Iterate all `(prefix, next_hop)` entries in ascending
    /// `(address, length)` order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Net, &T)> {
        self.trie
            .iter()
            .map(|(addr, len, t)| (Ipv4Net::new(Ipv4Addr::from(addr), len), t))
    }

    /// Iterate the entries covered by `net` (including the exact entry),
    /// in ascending `(address, length)` order.
    pub fn covered(&self, net: &Ipv4Net) -> impl Iterator<Item = (Ipv4Net, &T)> {
        self.trie
            .covered(net.network_u32(), net.len())
            .map(|(addr, len, t)| (Ipv4Net::new(Ipv4Addr::from(addr), len), t))
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.trie.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = ForwardingTable::new();
        t.insert(net("10.0.0.0/8"), "coarse");
        t.insert(net("10.1.0.0/16"), "mid");
        t.insert(net("10.1.2.0/24"), "fine");
        let ip = |s: &str| s.parse::<Ipv4Addr>().unwrap();
        assert_eq!(t.lookup(ip("10.1.2.3")).unwrap().1, &"fine");
        assert_eq!(t.lookup(ip("10.1.9.9")).unwrap().1, &"mid");
        assert_eq!(t.lookup(ip("10.200.0.1")).unwrap().1, &"coarse");
        assert_eq!(t.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn default_route() {
        let mut t = ForwardingTable::new();
        t.insert(net("0.0.0.0/0"), 99u32);
        assert_eq!(t.lookup("8.8.8.8".parse().unwrap()).unwrap().1, &99);
        t.insert(net("8.0.0.0/8"), 8u32);
        assert_eq!(t.lookup("8.8.8.8".parse().unwrap()).unwrap().1, &8);
    }

    #[test]
    fn insert_replace_and_remove() {
        let mut t = ForwardingTable::new();
        assert_eq!(t.insert(net("192.0.2.0/24"), 1), None);
        assert_eq!(t.insert(net("192.0.2.0/24"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&net("192.0.2.0/24")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(&net("192.0.2.0/24")), None);
        assert_eq!(t.lookup("192.0.2.1".parse().unwrap()), None);
    }

    #[test]
    fn exact_get_vs_lpm() {
        let mut t = ForwardingTable::new();
        t.insert(net("10.0.0.0/8"), 1);
        assert_eq!(t.get(&net("10.0.0.0/8")), Some(&1));
        assert_eq!(t.get(&net("10.0.0.0/16")), None); // exact only
    }

    #[test]
    fn iter_and_clear() {
        let mut t = ForwardingTable::new();
        t.insert(net("10.0.0.0/8"), 1);
        t.insert(net("20.0.0.0/8"), 2);
        let mut got: Vec<_> = t.iter().map(|(p, v)| (p.to_string(), *v)).collect();
        got.sort();
        assert_eq!(
            got,
            vec![("10.0.0.0/8".into(), 1), ("20.0.0.0/8".into(), 2)]
        );
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.lookup("10.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn packet_sizes_and_display() {
        let p = IpPacket::echo_request(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            7,
            1,
        );
        assert_eq!(p.size(), 28);
        assert!(p.to_string().contains("echo-req"));
        let udp = IpPacket::new(
            p.src,
            p.dst,
            Payload::Udp {
                sport: 1000,
                dport: 53,
                data: vec![0; 100],
            },
        );
        assert_eq!(udp.size(), 128);
    }

    #[test]
    fn tunnel_encap_decap_roundtrip() {
        let inner = IpPacket::echo_request(
            "10.0.0.1".parse().unwrap(),
            "203.0.113.5".parse().unwrap(),
            1,
            1,
        );
        let outer = inner
            .clone()
            .encapsulate("100.64.0.1".parse().unwrap(), "100.64.0.2".parse().unwrap());
        assert_eq!(outer.size(), 20 + inner.size());
        assert_eq!(outer.decapsulate(), Some(inner.clone()));
        assert_eq!(inner.decapsulate(), None);
    }
}
