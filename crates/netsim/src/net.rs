//! Fundamental network identifiers: AS numbers and IP prefixes.
//!
//! These types are shared by every layer of the reproduction — the BGP
//! implementation, the topology model, the IXP, and the testbed itself —
//! so they live in the substrate crate at the bottom of the dependency
//! graph.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// An autonomous system number (4-octet per RFC 6793).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Asn(pub u32);

impl Asn {
    /// PEERING's public ASN in the real deployment (AS47065).
    pub const PEERING: Asn = Asn(47065);

    /// True for 2-byte and 4-byte private-use ranges (RFC 6996).
    ///
    /// PEERING assigns private ASNs to emulated domains "behind" its public
    /// ASN and strips them before announcements reach the Internet.
    pub fn is_private(self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }

    /// True for ASNs reserved by IANA (0, 23456, 65535, 4294967295, doc ranges).
    pub fn is_reserved(self) -> bool {
        matches!(self.0, 0 | 23456 | 65535 | 4_294_967_295)
            || (64496..=64511).contains(&self.0)
            || (65536..=65551).contains(&self.0)
    }

    /// True if the ASN may legitimately appear on the public Internet.
    pub fn is_public(self) -> bool {
        !self.is_private() && !self.is_reserved()
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

/// Error produced when parsing a prefix from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

/// An IPv4 network in CIDR form; host bits are always zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Net {
    addr: u32,
    len: u8,
}

impl Ipv4Net {
    /// Construct, masking away host bits. Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "IPv4 prefix length {len} > 32");
        let raw = u32::from(addr);
        Ipv4Net {
            addr: raw & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The (masked) network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Raw network address as an integer.
    pub fn network_u32(&self) -> u32 {
        self.addr
    }

    /// Prefix length in bits.
    // A prefix length is not a container size; there is no is_empty.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered (saturating for /0).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u64).min(63)
    }

    /// True if `ip` falls inside this network.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask(self.len)) == self.addr
    }

    /// True if `other` is equal to or more specific than `self`.
    pub fn covers(&self, other: &Ipv4Net) -> bool {
        other.len >= self.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// True if the two networks share any address.
    pub fn overlaps(&self, other: &Ipv4Net) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The `i`-th address within the network (no bounds check beyond size).
    pub fn addr_at(&self, i: u32) -> Ipv4Addr {
        Ipv4Addr::from(self.addr.wrapping_add(i))
    }

    /// Split into consecutive subnets of length `sub_len`.
    ///
    /// Used by the PEERING prefix allocator to carve /24 experiment
    /// prefixes out of the testbed's /19. Returns an empty vector when
    /// `sub_len < self.len`.
    pub fn subnets(&self, sub_len: u8) -> Vec<Ipv4Net> {
        assert!(sub_len <= 32);
        if sub_len < self.len {
            return Vec::new();
        }
        let count = 1u64 << (sub_len - self.len).min(31);
        let step = 1u64 << (32 - sub_len);
        (0..count)
            .map(|i| Ipv4Net {
                addr: self.addr + (i * step) as u32,
                len: sub_len,
            })
            .collect()
    }

    /// The immediate parent network (one bit shorter), or `None` for /0.
    pub fn supernet(&self) -> Option<Ipv4Net> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Ipv4Net {
                addr: self.addr & Self::mask(len),
                len,
            })
        }
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Ipv4Net {
    type Err = PrefixParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(format!("{s}: missing '/'")))?;
        let addr: Ipv4Addr = a
            .parse()
            .map_err(|_| PrefixParseError(format!("{s}: bad address")))?;
        let len: u8 = l
            .parse()
            .map_err(|_| PrefixParseError(format!("{s}: bad length")))?;
        if len > 32 {
            return Err(PrefixParseError(format!("{s}: length > 32")));
        }
        Ok(Ipv4Net::new(addr, len))
    }
}

/// An IPv6 network in CIDR form; host bits are always zero.
///
/// The paper lists IPv6 support as planned work; the control plane here
/// handles v6 prefixes end to end so that extension is exercised.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv6Net {
    addr: u128,
    len: u8,
}

impl Ipv6Net {
    /// Construct, masking away host bits. Panics if `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "IPv6 prefix length {len} > 128");
        let raw = u128::from(addr);
        Ipv6Net {
            addr: raw & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len)
        }
    }

    /// The (masked) network address.
    pub fn network(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.addr)
    }

    /// Prefix length in bits.
    // A prefix length is not a container size; there is no is_empty.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True if `ip` falls inside this network.
    pub fn contains(&self, ip: Ipv6Addr) -> bool {
        (u128::from(ip) & Self::mask(self.len)) == self.addr
    }

    /// True if `other` is equal to or more specific than `self`.
    pub fn covers(&self, other: &Ipv6Net) -> bool {
        other.len >= self.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// True if the two networks share any address.
    pub fn overlaps(&self, other: &Ipv6Net) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The `i`-th address within the network.
    pub fn addr_at(&self, i: u128) -> Ipv6Addr {
        Ipv6Addr::from(self.addr.wrapping_add(i))
    }

    /// Split into consecutive subnets of length `sub_len`, capped at
    /// `max` results (a /32 holds 65,536 /48s — nobody needs them all in
    /// a `Vec` at once). Returns an empty vector when `sub_len < len`.
    pub fn subnets(&self, sub_len: u8, max: usize) -> Vec<Ipv6Net> {
        assert!(sub_len <= 128);
        if sub_len < self.len {
            return Vec::new();
        }
        let count_exp = (sub_len - self.len) as u32;
        let count = if count_exp >= 64 {
            u64::MAX
        } else {
            1u64 << count_exp
        };
        let step = 1u128 << (128 - sub_len);
        (0..count.min(max as u64))
            .map(|i| Ipv6Net {
                addr: self.addr + i as u128 * step,
                len: sub_len,
            })
            .collect()
    }
}

impl fmt::Display for Ipv6Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Ipv6Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Ipv6Net {
    type Err = PrefixParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(format!("{s}: missing '/'")))?;
        let addr: Ipv6Addr = a
            .parse()
            .map_err(|_| PrefixParseError(format!("{s}: bad address")))?;
        let len: u8 = l
            .parse()
            .map_err(|_| PrefixParseError(format!("{s}: bad length")))?;
        if len > 128 {
            return Err(PrefixParseError(format!("{s}: length > 128")));
        }
        Ok(Ipv6Net::new(addr, len))
    }
}

/// An IP prefix of either family, the unit of BGP reachability (NLRI).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Prefix {
    /// IPv4 network.
    V4(Ipv4Net),
    /// IPv6 network.
    V6(Ipv6Net),
}

impl Prefix {
    /// Convenience constructor for IPv4.
    pub fn v4(a: u8, b: u8, c: u8, d: u8, len: u8) -> Prefix {
        Prefix::V4(Ipv4Net::new(Ipv4Addr::new(a, b, c, d), len))
    }

    /// Prefix length in bits.
    // A prefix length is not a container size; there is no is_empty.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        match self {
            Prefix::V4(p) => p.len(),
            Prefix::V6(p) => p.len(),
        }
    }

    /// True for IPv4 prefixes.
    pub fn is_v4(&self) -> bool {
        matches!(self, Prefix::V4(_))
    }

    /// The IPv4 network, if this is a v4 prefix.
    pub fn as_v4(&self) -> Option<&Ipv4Net> {
        match self {
            Prefix::V4(p) => Some(p),
            Prefix::V6(_) => None,
        }
    }

    /// True if `other` is equal to or more specific than `self`
    /// (always false across families).
    pub fn covers(&self, other: &Prefix) -> bool {
        match (self, other) {
            (Prefix::V4(a), Prefix::V4(b)) => a.covers(b),
            (Prefix::V6(a), Prefix::V6(b)) => a.covers(b),
            _ => false,
        }
    }

    /// True if the two prefixes share any address.
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4(p) => write!(f, "{p}"),
            Prefix::V6(p) => write!(f, "{p}"),
        }
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4(p) => write!(f, "{p}"),
            Prefix::V6(p) => write!(f, "{p}"),
        }
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.contains(':') {
            Ok(Prefix::V6(s.parse()?))
        } else {
            Ok(Prefix::V4(s.parse()?))
        }
    }
}

impl From<Ipv4Net> for Prefix {
    fn from(p: Ipv4Net) -> Self {
        Prefix::V4(p)
    }
}

impl From<Ipv6Net> for Prefix {
    fn from(p: Ipv6Net) -> Self {
        Prefix::V6(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_classes() {
        assert!(Asn(65000).is_private());
        assert!(Asn(4_200_000_100).is_private());
        assert!(Asn(0).is_reserved());
        assert!(Asn(23456).is_reserved());
        assert!(Asn(64500).is_reserved()); // documentation range
        assert!(Asn(3356).is_public());
        assert!(Asn::PEERING.is_public());
        assert_eq!(Asn(174).to_string(), "AS174");
    }

    #[test]
    fn v4_masks_host_bits() {
        let p = Ipv4Net::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(p.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(p.size(), 65536);
    }

    #[test]
    fn v4_contains_and_covers() {
        let p: Ipv4Net = "192.0.2.0/24".parse().unwrap();
        assert!(p.contains(Ipv4Addr::new(192, 0, 2, 200)));
        assert!(!p.contains(Ipv4Addr::new(192, 0, 3, 1)));
        let wider: Ipv4Net = "192.0.0.0/16".parse().unwrap();
        assert!(wider.covers(&p));
        assert!(!p.covers(&wider));
        assert!(p.covers(&p));
        assert!(wider.overlaps(&p) && p.overlaps(&wider));
        let disjoint: Ipv4Net = "198.51.100.0/24".parse().unwrap();
        assert!(!p.overlaps(&disjoint));
    }

    #[test]
    fn v4_zero_length_prefix() {
        let all: Ipv4Net = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains(Ipv4Addr::new(8, 8, 8, 8)));
        assert!(all.covers(&"10.0.0.0/8".parse().unwrap()));
        assert_eq!(all.supernet(), None);
    }

    #[test]
    fn v4_subnets_carve_correctly() {
        // The PEERING /19 carves into 32 * /24s.
        let pool: Ipv4Net = "184.164.224.0/19".parse().unwrap();
        let subs = pool.subnets(24);
        assert_eq!(subs.len(), 32);
        assert_eq!(subs[0].to_string(), "184.164.224.0/24");
        assert_eq!(subs[31].to_string(), "184.164.255.0/24");
        for w in subs.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
        }
        for s in &subs {
            assert!(pool.covers(s));
        }
        assert!(pool.subnets(16).is_empty());
        assert_eq!(pool.subnets(19), vec![pool]);
    }

    #[test]
    fn v4_supernet_chain() {
        let p: Ipv4Net = "10.128.0.0/9".parse().unwrap();
        let s = p.supernet().unwrap();
        assert_eq!(s.to_string(), "10.0.0.0/8");
        assert!(s.covers(&p));
    }

    #[test]
    fn v4_parse_failures() {
        assert!("10.0.0.0".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.300/8".parse::<Ipv4Net>().is_err());
        assert!("banana/8".parse::<Ipv4Net>().is_err());
    }

    #[test]
    fn v6_basics() {
        let p: Ipv6Net = "2001:db8::/32".parse().unwrap();
        assert!(p.contains("2001:db8::1".parse().unwrap()));
        assert!(!p.contains("2001:db9::1".parse().unwrap()));
        assert_eq!(p.to_string(), "2001:db8::/32");
        let more: Ipv6Net = "2001:db8:1::/48".parse().unwrap();
        assert!(p.covers(&more));
        assert!("::/129".parse::<Ipv6Net>().is_err());
    }

    #[test]
    fn v6_subnets_and_addresses() {
        let pool: Ipv6Net = "2804:269c::/32".parse().unwrap();
        let subs = pool.subnets(48, 10);
        assert_eq!(subs.len(), 10, "capped");
        assert_eq!(subs[0].to_string(), "2804:269c::/48");
        assert_eq!(subs[1].to_string(), "2804:269c:1::/48");
        for w in subs.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
            assert!(pool.covers(&w[0]));
        }
        assert!(pool.subnets(16, 10).is_empty());
        let a = subs[2].addr_at(7);
        assert!(subs[2].contains(a));
        assert!(!subs[3].contains(a));
        assert!(pool.overlaps(&subs[5]));
    }

    #[test]
    fn prefix_enum_dispatch() {
        let v4: Prefix = "203.0.113.0/24".parse().unwrap();
        let v6: Prefix = "2001:db8::/32".parse().unwrap();
        assert!(v4.is_v4());
        assert!(!v6.is_v4());
        assert_eq!(v4.len(), 24);
        assert_eq!(v6.len(), 32);
        assert!(!v4.covers(&v6));
        assert!(!v4.overlaps(&v6));
        assert_eq!(Prefix::v4(203, 0, 113, 0, 24), v4);
        assert_eq!(format!("{v4}"), "203.0.113.0/24");
    }

    #[test]
    fn prefix_ordering_is_total_and_stable() {
        let mut ps: Vec<Prefix> = vec![
            "10.0.0.0/8".parse().unwrap(),
            "10.0.0.0/16".parse().unwrap(),
            "9.0.0.0/8".parse().unwrap(),
            "2001:db8::/32".parse().unwrap(),
        ];
        ps.sort();
        assert_eq!(ps[0], "9.0.0.0/8".parse().unwrap());
        // All v4 sort before v6 (enum variant order).
        assert!(ps[3].to_string().contains(':'));
    }
}
