//! Binary radix (Patricia) tries keyed by IP prefixes.
//!
//! The Loc-RIB and FIB hot paths need three operations that `BTreeMap`
//! scans make needlessly expensive at full-table scale (~524k prefixes):
//! exact lookup, longest-prefix match, and covered-range iteration.
//! [`RadixTrie`] provides all three in `O(prefix length)` with path
//! compression, and [`PrefixTrie`] wraps a v4 and a v6 trie behind the
//! [`Prefix`] type.
//!
//! **Iteration-order contract.** Preorder traversal (a node's own entry,
//! then its 0-branch subtree, then its 1-branch subtree) yields entries
//! in exactly `(address, length)` lexicographic order — the same order
//! `BTreeMap<Prefix, _>` iteration produced before the conversion, and
//! the order every convergence digest and collector dump is pinned to.
//! A covering prefix sorts before everything it covers (its address bits
//! are a prefix of theirs, and on an address tie the shorter length wins),
//! and sibling subtrees are ordered by their distinguishing bit; both
//! facts together make preorder equal to the sorted order bit for bit.

use crate::net::{Ipv4Net, Ipv6Net, Prefix};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Address-bits key for a radix trie: a fixed-width big-endian bit string.
pub trait TrieKey: Copy + Ord {
    /// Width of the key in bits (32 for IPv4, 128 for IPv6).
    const BITS: u8;
    /// The all-zero key.
    const ZERO: Self;
    /// Bit `i` counted from the most significant end (`i < BITS`).
    fn bit(self, i: u8) -> bool;
    /// Keep the top `len` bits, zeroing the rest.
    fn mask(self, len: u8) -> Self;
    /// Number of leading bits on which `self` and `other` agree, capped
    /// at `max`.
    fn common_len(self, other: Self, max: u8) -> u8;
}

impl TrieKey for u32 {
    const BITS: u8 = 32;
    const ZERO: Self = 0;
    fn bit(self, i: u8) -> bool {
        (self >> (31 - i)) & 1 == 1
    }
    fn mask(self, len: u8) -> Self {
        if len == 0 {
            0
        } else {
            self & (u32::MAX << (32 - len))
        }
    }
    fn common_len(self, other: Self, max: u8) -> u8 {
        ((self ^ other).leading_zeros() as u8).min(max)
    }
}

impl TrieKey for u128 {
    const BITS: u8 = 128;
    const ZERO: Self = 0;
    fn bit(self, i: u8) -> bool {
        (self >> (127 - i)) & 1 == 1
    }
    fn mask(self, len: u8) -> Self {
        if len == 0 {
            0
        } else {
            self & (u128::MAX << (128 - len))
        }
    }
    fn common_len(self, other: Self, max: u8) -> u8 {
        ((self ^ other).leading_zeros() as u8).min(max)
    }
}

/// One trie node. Children's keys strictly extend the node's key, so tree
/// depth is bounded by `K::BITS + 1` regardless of entry count.
#[derive(Debug, Clone)]
struct Node<K, T> {
    addr: K,
    len: u8,
    value: Option<T>,
    kids: [Option<Box<Node<K, T>>>; 2],
}

impl<K: TrieKey, T> Node<K, T> {
    fn leaf(addr: K, len: u8, value: T) -> Self {
        Node {
            addr,
            len,
            value: Some(value),
            kids: [None, None],
        }
    }

    fn root() -> Self {
        Node {
            addr: K::ZERO,
            len: 0,
            value: None,
            kids: [None, None],
        }
    }

    fn boxed_nodes(&self) -> usize {
        self.kids
            .iter()
            .flatten()
            .map(|k| 1 + k.boxed_nodes())
            .sum()
    }
}

/// A path-compressed binary radix trie over `(address, length)` prefixes.
#[derive(Debug, Clone)]
pub struct RadixTrie<K: TrieKey, T> {
    root: Node<K, T>,
    len: usize,
}

impl<K: TrieKey, T> Default for RadixTrie<K, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: TrieKey, T> RadixTrie<K, T> {
    /// An empty trie.
    pub fn new() -> Self {
        RadixTrie {
            root: Node::root(),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.root = Node::root();
        self.len = 0;
    }

    /// Heap-allocated node count (the root is inline). Memory accounting
    /// only; `O(n)` traversal.
    pub fn node_count(&self) -> usize {
        self.root.boxed_nodes()
    }

    /// Size in bytes of one heap node, for deep-size accounting.
    pub fn node_size() -> usize {
        std::mem::size_of::<Node<K, T>>()
    }

    /// Insert or replace the entry for `(addr, len)`, returning the old
    /// value on replacement. Host bits of `addr` are masked off.
    pub fn insert(&mut self, addr: K, len: u8, value: T) -> Option<T> {
        let addr = addr.mask(len);
        let mut cur: &mut Node<K, T> = &mut self.root;
        loop {
            if cur.len == len {
                // Walk invariant: cur's key is a bit-prefix of the target,
                // so equal lengths mean equal keys.
                debug_assert!(cur.addr == addr);
                let old = cur.value.replace(value);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }
            let b = addr.bit(cur.len) as usize;
            if cur.kids[b].is_none() {
                cur.kids[b] = Some(Box::new(Node::leaf(addr, len, value)));
                self.len += 1;
                return None;
            }
            let (descend, child_len) = {
                let child = cur.kids[b].as_deref().expect("checked above");
                let cpl = addr.common_len(child.addr, len.min(child.len));
                (cpl == child.len, cpl)
            };
            if descend {
                cur = cur.kids[b].as_deref_mut().expect("checked above");
                continue;
            }
            let cpl = child_len;
            let old_child = cur.kids[b].take().expect("checked above");
            if cpl == len {
                // The new key is an ancestor of the existing child.
                let mut n = Node::leaf(addr, len, value);
                let cb = old_child.addr.bit(len) as usize;
                n.kids[cb] = Some(old_child);
                cur.kids[b] = Some(Box::new(n));
            } else {
                // Keys diverge: fork at their common prefix.
                let mut fork = Node {
                    addr: addr.mask(cpl),
                    len: cpl,
                    value: None,
                    kids: [None, None],
                };
                let nb = addr.bit(cpl) as usize;
                fork.kids[nb] = Some(Box::new(Node::leaf(addr, len, value)));
                fork.kids[1 - nb] = Some(old_child);
                cur.kids[b] = Some(Box::new(fork));
            }
            self.len += 1;
            return None;
        }
    }

    /// Remove the exact entry for `(addr, len)`, splicing out any interior
    /// node left with no value and at most one child.
    pub fn remove(&mut self, addr: K, len: u8) -> Option<T> {
        let addr = addr.mask(len);
        if len == 0 {
            let old = self.root.value.take();
            if old.is_some() {
                self.len -= 1;
            }
            return old;
        }
        fn rec<K: TrieKey, T>(slot: &mut Option<Box<Node<K, T>>>, addr: K, len: u8) -> Option<T> {
            let node = slot.as_mut()?;
            let removed = if node.len == len {
                if node.addr != addr {
                    return None;
                }
                node.value.take()?
            } else {
                if node.len > len || node.addr != addr.mask(node.len) {
                    return None;
                }
                rec(&mut node.kids[addr.bit(node.len) as usize], addr, len)?
            };
            if node.value.is_none() {
                let kids = node.kids.iter().flatten().count();
                if kids == 0 {
                    *slot = None;
                } else if kids == 1 {
                    let kid = node
                        .kids
                        .iter_mut()
                        .find_map(Option::take)
                        .expect("one child present");
                    *slot = Some(kid);
                }
            }
            Some(removed)
        }
        let b = addr.bit(0) as usize;
        let old = rec(&mut self.root.kids[b], addr, len);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, addr: K, len: u8) -> Option<&T> {
        let addr = addr.mask(len);
        let mut cur = &self.root;
        loop {
            if cur.len == len {
                return if cur.addr == addr {
                    cur.value.as_ref()
                } else {
                    None
                };
            }
            if cur.len > len || cur.addr != addr.mask(cur.len) {
                return None;
            }
            cur = cur.kids[addr.bit(cur.len) as usize].as_deref()?;
        }
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, addr: K, len: u8) -> Option<&mut T> {
        let addr = addr.mask(len);
        let mut cur = &mut self.root;
        loop {
            if cur.len == len {
                return if cur.addr == addr {
                    cur.value.as_mut()
                } else {
                    None
                };
            }
            if cur.len > len || cur.addr != addr.mask(cur.len) {
                return None;
            }
            cur = cur.kids[addr.bit(cur.len) as usize].as_deref_mut()?;
        }
    }

    /// Longest-prefix match for a full-width address: the most specific
    /// stored entry covering it.
    pub fn longest_match(&self, addr: K) -> Option<(K, u8, &T)> {
        let mut best = None;
        let mut cur = &self.root;
        loop {
            if cur.addr != addr.mask(cur.len) {
                break;
            }
            if let Some(v) = &cur.value {
                best = Some((cur.addr, cur.len, v));
            }
            if cur.len >= K::BITS {
                break;
            }
            match cur.kids[addr.bit(cur.len) as usize].as_deref() {
                Some(n) => cur = n,
                None => break,
            }
        }
        best
    }

    /// Every stored entry whose key covers `(addr, len)` (including the
    /// exact entry), shortest first — the root-to-leaf path with values.
    pub fn covering(&self, addr: K, len: u8) -> Vec<(K, u8, &T)> {
        let addr = addr.mask(len);
        let mut out = Vec::new();
        let mut cur = &self.root;
        loop {
            if cur.len > len || cur.addr != addr.mask(cur.len) {
                break;
            }
            if let Some(v) = &cur.value {
                out.push((cur.addr, cur.len, v));
            }
            if cur.len >= len {
                break;
            }
            match cur.kids[addr.bit(cur.len) as usize].as_deref() {
                Some(n) => cur = n,
                None => break,
            }
        }
        out
    }

    /// Preorder iteration over all entries: `(address, length)`
    /// lexicographic order (see the module docs for why).
    pub fn iter(&self) -> TrieIter<'_, K, T> {
        TrieIter {
            stack: vec![&self.root],
        }
    }

    /// Preorder iteration over the entries covered by `(addr, len)`
    /// (including the exact entry), in `(address, length)` order.
    pub fn covered(&self, addr: K, len: u8) -> TrieIter<'_, K, T> {
        let addr = addr.mask(len);
        let mut cur = &self.root;
        loop {
            if cur.len >= len {
                let within = cur.addr.mask(len) == addr;
                return TrieIter {
                    stack: if within { vec![cur] } else { Vec::new() },
                };
            }
            if cur.addr != addr.mask(cur.len) {
                return TrieIter { stack: Vec::new() };
            }
            match cur.kids[addr.bit(cur.len) as usize].as_deref() {
                Some(n) => cur = n,
                None => return TrieIter { stack: Vec::new() },
            }
        }
    }
}

/// Preorder iterator over a [`RadixTrie`] (sub)tree.
#[derive(Debug)]
pub struct TrieIter<'a, K, T> {
    stack: Vec<&'a Node<K, T>>,
}

impl<'a, K: TrieKey, T> Iterator for TrieIter<'a, K, T> {
    type Item = (K, u8, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(node) = self.stack.pop() {
            // Push the 1-branch first so the 0-branch pops (and yields)
            // first: preorder = sorted order.
            if let Some(k) = node.kids[1].as_deref() {
                self.stack.push(k);
            }
            if let Some(k) = node.kids[0].as_deref() {
                self.stack.push(k);
            }
            if let Some(v) = &node.value {
                return Some((node.addr, node.len, v));
            }
        }
        None
    }
}

/// A dual-stack prefix trie: one radix trie per address family, iterated
/// v4-before-v6 to match `Prefix`'s derived ordering.
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    v4: RadixTrie<u32, T>,
    v6: RadixTrie<u128, T>,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

fn v4_prefix(addr: u32, len: u8) -> Prefix {
    Prefix::V4(Ipv4Net::new(Ipv4Addr::from(addr), len))
}

fn v6_prefix(addr: u128, len: u8) -> Prefix {
    Prefix::V6(Ipv6Net::new(Ipv6Addr::from(addr), len))
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            v4: RadixTrie::new(),
            v6: RadixTrie::new(),
        }
    }

    /// Number of stored entries across both families.
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.v4.clear();
        self.v6.clear();
    }

    /// Heap node count across both families (memory accounting).
    pub fn node_count(&self) -> usize {
        self.v4.node_count() + self.v6.node_count()
    }

    /// Total bytes held in heap trie nodes (memory accounting; excludes
    /// allocator headers, which the caller charges).
    pub fn node_bytes(&self) -> usize {
        self.v4.node_count() * RadixTrie::<u32, T>::node_size()
            + self.v6.node_count() * RadixTrie::<u128, T>::node_size()
    }

    /// Insert or replace the entry for `prefix`.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        match prefix {
            Prefix::V4(n) => self.v4.insert(n.network_u32(), n.len(), value),
            Prefix::V6(n) => self.v6.insert(u128::from(n.network()), n.len(), value),
        }
    }

    /// Remove the exact entry for `prefix`.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<T> {
        match prefix {
            Prefix::V4(n) => self.v4.remove(n.network_u32(), n.len()),
            Prefix::V6(n) => self.v6.remove(u128::from(n.network()), n.len()),
        }
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&T> {
        match prefix {
            Prefix::V4(n) => self.v4.get(n.network_u32(), n.len()),
            Prefix::V6(n) => self.v6.get(u128::from(n.network()), n.len()),
        }
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut T> {
        match prefix {
            Prefix::V4(n) => self.v4.get_mut(n.network_u32(), n.len()),
            Prefix::V6(n) => self.v6.get_mut(u128::from(n.network()), n.len()),
        }
    }

    /// Longest-prefix match for an address.
    pub fn longest_match(&self, addr: IpAddr) -> Option<(Prefix, &T)> {
        match addr {
            IpAddr::V4(ip) => self
                .v4
                .longest_match(u32::from(ip))
                .map(|(a, l, v)| (v4_prefix(a, l), v)),
            IpAddr::V6(ip) => self
                .v6
                .longest_match(u128::from(ip))
                .map(|(a, l, v)| (v6_prefix(a, l), v)),
        }
    }

    /// All entries whose prefix covers `prefix`, shortest first.
    pub fn covering(&self, prefix: &Prefix) -> Vec<(Prefix, &T)> {
        match prefix {
            Prefix::V4(n) => self
                .v4
                .covering(n.network_u32(), n.len())
                .into_iter()
                .map(|(a, l, v)| (v4_prefix(a, l), v))
                .collect(),
            Prefix::V6(n) => self
                .v6
                .covering(u128::from(n.network()), n.len())
                .into_iter()
                .map(|(a, l, v)| (v6_prefix(a, l), v))
                .collect(),
        }
    }

    /// All entries covered by `prefix` (including the exact entry), in
    /// `(address, length)` order.
    pub fn covered<'a>(&'a self, prefix: &Prefix) -> impl Iterator<Item = (Prefix, &'a T)> {
        let (v4, v6) = match prefix {
            Prefix::V4(n) => (Some(self.v4.covered(n.network_u32(), n.len())), None),
            Prefix::V6(n) => (
                None,
                Some(self.v6.covered(u128::from(n.network()), n.len())),
            ),
        };
        v4.into_iter()
            .flatten()
            .map(|(a, l, v)| (v4_prefix(a, l), v))
            .chain(
                v6.into_iter()
                    .flatten()
                    .map(|(a, l, v)| (v6_prefix(a, l), v)),
            )
    }

    /// All entries in `Prefix` sort order (v4 before v6, then
    /// `(address, length)` lexicographic within each family).
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        self.v4
            .iter()
            .map(|(a, l, v)| (v4_prefix(a, l), v))
            .chain(self.v6.iter().map(|(a, l, v)| (v6_prefix(a, l), v)))
    }

    /// Values in the same order as [`iter`](Self::iter).
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/16")), None);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
    }

    #[test]
    fn preorder_matches_btreemap_order() {
        use std::collections::BTreeMap;
        let prefixes = [
            "10.0.0.0/8",
            "10.0.0.0/16",
            "10.0.0.0/32",
            "10.128.0.0/9",
            "8.0.0.0/6",
            "11.0.0.0/8",
            "0.0.0.0/0",
            "255.255.255.255/32",
            "2001:db8::/32",
            "::/0",
            "2001:db8::1/128",
        ];
        let mut t = PrefixTrie::new();
        let mut m = BTreeMap::new();
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
            m.insert(p(s), i);
        }
        let got: Vec<(Prefix, usize)> = t.iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(Prefix, usize)> = m.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn longest_match_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "coarse");
        t.insert(p("10.1.0.0/16"), "mid");
        t.insert(p("10.1.2.0/24"), "fine");
        fn lpm(t: &PrefixTrie<&'static str>, s: &str) -> Option<&'static str> {
            t.longest_match(s.parse::<IpAddr>().unwrap())
                .map(|(_, v)| *v)
        }
        assert_eq!(lpm(&t, "10.1.2.3"), Some("fine"));
        assert_eq!(lpm(&t, "10.1.9.9"), Some("mid"));
        assert_eq!(lpm(&t, "10.200.0.1"), Some("coarse"));
        assert_eq!(lpm(&t, "11.0.0.1"), None);
        t.insert(p("0.0.0.0/0"), "default");
        assert_eq!(lpm(&t, "11.0.0.1"), Some("default"));
    }

    #[test]
    fn covered_and_covering() {
        let mut t = PrefixTrie::new();
        for s in ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "11.0.0.0/8"] {
            t.insert(p(s), s.to_string());
        }
        let covered: Vec<Prefix> = t.covered(&p("10.0.0.0/8")).map(|(k, _)| k).collect();
        assert_eq!(
            covered,
            vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("10.1.2.0/24")]
        );
        let covering: Vec<Prefix> = t
            .covering(&p("10.1.2.0/24"))
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(
            covering,
            vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("10.1.2.0/24")]
        );
        assert!(t.covered(&p("12.0.0.0/8")).next().is_none());
    }

    #[test]
    fn host_routes_and_default_route() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("192.0.2.1/32"), 1);
        t.insert(p("::/0"), 2);
        t.insert(p("2001:db8::1/128"), 3);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(&p("0.0.0.0/0")), Some(&0));
        assert_eq!(t.get(&p("192.0.2.1/32")), Some(&1));
        assert_eq!(t.get(&p("::/0")), Some(&2));
        assert_eq!(t.get(&p("2001:db8::1/128")), Some(&3));
        assert_eq!(t.remove(&p("0.0.0.0/0")), Some(0));
        assert_eq!(t.remove(&p("::/0")), Some(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn node_count_shrinks_after_removal() {
        let mut t = PrefixTrie::new();
        for s in ["10.0.0.0/8", "10.64.0.0/10", "10.128.0.0/9"] {
            t.insert(p(s), ());
        }
        let full = t.node_count();
        t.remove(&p("10.64.0.0/10"));
        assert!(t.node_count() < full, "splice must drop interior nodes");
        t.remove(&p("10.0.0.0/8"));
        t.remove(&p("10.128.0.0/9"));
        assert_eq!(t.node_count(), 0);
        assert!(t.is_empty());
    }
}
