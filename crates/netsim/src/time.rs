//! Virtual time.
//!
//! The simulation clock is a monotonically increasing count of microseconds
//! since simulation start. Wall-clock time never enters the simulation; all
//! timers, link delays, and hold times are expressed as [`SimDuration`]s.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in microseconds since start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never" for timers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration; used as "infinite".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond and saturating on overflow or negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let us = s * 1e6;
        if us >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(us.round() as u64)
        }
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!((t + d) - t, d);
        assert_eq!(d + d, SimDuration::from_secs(6));
        assert_eq!(d * 4, SimDuration::from_secs(12));
        assert_eq!(d / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn addition_saturates() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(10).to_string(), "10us");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "t=1.000000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
