//! Deterministic event engines: sequential reference and sharded parallel.
//!
//! The parallel engine partitions nodes across worker shards behind a
//! *conservative sim-time barrier* (classic conservative parallel DES):
//! each round, the shards agree on the global minimum pending event time
//! `T` and then independently process only the window `[T, T + L)`, where
//! the lookahead `L` is a lower bound on every cross-shard delivery
//! delay. A message sent while processing that window is delivered no
//! earlier than `T + L`, i.e. never inside the window being processed —
//! so no shard can receive an event "from the past", and every shard's
//! pop sequence equals the sequential engine's global pop sequence
//! restricted to that shard's nodes. An end-of-round barrier fences the
//! window against the next round's minimum computation: every
//! cross-shard send must land in its inbox before any shard measures
//! its pending minimum, or an in-flight event could undercut the agreed
//! window start.
//!
//! Determinism does not come for free from the barrier alone; two more
//! choices pin it down:
//!
//! * **Total event order.** Every event is keyed `(time, from, seq)`
//!   where `seq` is a per-source counter. Unlike the global push-order
//!   `seq` in [`EventQueue`](crate::queue::EventQueue), this key is a
//!   pure function of simulation history, not of thread interleaving.
//!   Both engines pop in this key order, so per-destination delivery
//!   order — the only thing node state can depend on — is identical.
//! * **Re-sort on drain.** Cross-shard envelopes travel through
//!   [`SharedEventQueue`] inboxes whose internal order depends on lock
//!   acquisition; the receiving shard drains its inbox into its local
//!   heap (keyed by the full `(time, from, seq)`) before each window,
//!   erasing the arrival interleaving.
//!
//! The primary oracle for all of this is differential: `run_parallel`
//! must produce bitwise-identical checkpoint and final digests to
//! `run_sequential` for every topology, seed, and shard count (see
//! `peering-workloads`' differential tests and the scale bench).

use crate::queue::SharedEventQueue;
use crate::sync::{Condvar, Mutex};
use crate::time::{SimDuration, SimTime};
use crate::transport::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A node hosted by an engine. Implementations must be deterministic:
/// outputs a pure function of construction arguments and the sequence of
/// `(now, from, msg)` deliveries.
pub trait EngineNode {
    /// Message type exchanged between nodes. `Send` because cross-shard
    /// envelopes migrate between worker threads (nodes themselves never
    /// do — each is built and dropped on its owning shard's thread).
    type Msg: Send;

    /// Called once at `SimTime::ZERO`, before any event, to seed the
    /// initial schedule (session starts, originations, first timers).
    fn on_start(&mut self, out: &mut Outbox<Self::Msg>);

    /// Deliver one event.
    fn on_event(&mut self, now: SimTime, from: NodeId, msg: Self::Msg, out: &mut Outbox<Self::Msg>);

    /// A deterministic 64-bit digest of the node's externally-relevant
    /// state (for BGP nodes: the Loc-RIB digest).
    fn digest(&self) -> u64;
}

/// Messages staged by a node during one callback, in emission order.
#[derive(Debug)]
pub struct Outbox<M> {
    staged: Vec<(NodeId, SimDuration, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Outbox<M> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox { staged: Vec::new() }
    }

    /// Schedule `msg` for delivery to `to` after `delay`. A node may send
    /// to itself (timers); cross-shard sends must respect the engine's
    /// lookahead (enforced by `run_parallel`).
    pub fn send(&mut self, to: NodeId, delay: SimDuration, msg: M) {
        self.staged.push((to, delay, msg));
    }

    fn drain(&mut self) -> std::vec::Drain<'_, (NodeId, SimDuration, M)> {
        self.staged.drain(..)
    }
}

/// One scheduled event, totally ordered by `(time, from, seq)`.
#[derive(Debug)]
pub struct SimEvent<M> {
    /// Delivery time.
    pub time: SimTime,
    /// Emitting node.
    pub from: NodeId,
    /// Per-source emission counter (unique per `from`).
    pub seq: u64,
    /// Destination node.
    pub to: NodeId,
    /// Payload.
    pub msg: M,
}

impl<M> SimEvent<M> {
    fn key(&self) -> (SimTime, NodeId, u64) {
        (self.time, self.from, self.seq)
    }
}

impl<M> PartialEq for SimEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for SimEvent<M> {}
impl<M> PartialOrd for SimEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for SimEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so BinaryHeap pops the smallest key first.
        other.key().cmp(&self.key())
    }
}

/// The observable outcome of an engine run. Two runs over the same nodes
/// agree iff these compare equal — this is what the differential harness
/// asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineRun {
    /// Events delivered (`on_event` invocations).
    pub events: u64,
    /// Time of the last delivered event.
    pub end_time: SimTime,
    /// `(checkpoint time, digest)` pairs: the fold of all node digests
    /// after every event strictly before the checkpoint time, in request
    /// order.
    pub checkpoints: Vec<(SimTime, u64)>,
    /// Digest fold at quiescence.
    pub final_digest: u64,
}

/// FNV-1a fold of per-node digests in `NodeId` order. FNV is sequential
/// by construction, so the fold is always computed centrally from the
/// ordered per-node values rather than merged pairwise.
fn fold_digests(digests: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in digests {
        for b in d.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn lock<'a, T>(m: &'a Mutex<T>) -> crate::sync::MutexGuard<'a, T> {
    // A poisoned lock means a sibling shard panicked; state under these
    // locks is only ever replaced wholesale, so recover rather than
    // cascade the panic into an opaque PoisonError.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run the reference sequential engine over `n` nodes built by
/// `make_node`, recording a digest at each requested checkpoint time and
/// stopping at quiescence (or after `max_time`).
pub fn run_sequential<N, F>(
    n: usize,
    make_node: F,
    checkpoints: &[SimTime],
    max_time: SimTime,
) -> EngineRun
where
    N: EngineNode,
    F: Fn(NodeId) -> N,
{
    let mut nodes: Vec<N> = (0..n).map(|i| make_node(NodeId(i as u32))).collect();
    let mut seqs: Vec<u64> = vec![0; n];
    let mut heap: BinaryHeap<SimEvent<N::Msg>> = BinaryHeap::new();
    let mut out = Outbox::new();

    for (i, node) in nodes.iter_mut().enumerate() {
        node.on_start(&mut out);
        for (to, delay, msg) in out.drain() {
            let seq = seqs[i];
            seqs[i] += 1;
            heap.push(SimEvent {
                time: SimTime::ZERO + delay,
                from: NodeId(i as u32),
                seq,
                to,
                msg,
            });
        }
    }

    let mut run = EngineRun {
        events: 0,
        end_time: SimTime::ZERO,
        checkpoints: Vec::new(),
        final_digest: 0,
    };
    let mut next_ck = 0;
    loop {
        let pending = heap.peek().map(|e| e.time);
        let horizon = match pending {
            Some(t) if t <= max_time => t,
            _ => SimTime::MAX,
        };
        while next_ck < checkpoints.len() && checkpoints[next_ck] <= horizon {
            let digests: Vec<u64> = nodes.iter().map(EngineNode::digest).collect();
            run.checkpoints
                .push((checkpoints[next_ck], fold_digests(&digests)));
            next_ck += 1;
        }
        if horizon == SimTime::MAX {
            break;
        }
        let ev = heap.pop().expect("horizon came from a pending event");
        run.events += 1;
        run.end_time = ev.time;
        let dst = ev.to.0 as usize;
        nodes[dst].on_event(ev.time, ev.from, ev.msg, &mut out);
        for (to, delay, msg) in out.drain() {
            let seq = seqs[dst];
            seqs[dst] += 1;
            heap.push(SimEvent {
                time: ev.time + delay,
                from: ev.to,
                seq,
                to,
                msg,
            });
        }
    }
    let digests: Vec<u64> = nodes.iter().map(EngineNode::digest).collect();
    run.final_digest = fold_digests(&digests);
    run
}

/// A reusable all-shards barrier whose last arriver runs a decision
/// closure under the barrier lock; every party returns a clone of the
/// decision. This is the only control-flow synchronization the parallel
/// engine uses, and it is built on [`crate::sync`] so the loom tests can
/// model-check it.
pub struct EpochBarrier<T> {
    state: Mutex<BarrierState<T>>,
    cv: Condvar,
    parties: usize,
}

#[derive(Debug)]
struct BarrierState<T> {
    arrived: usize,
    generation: u64,
    result: Option<T>,
    poisoned: bool,
}

impl<T: Clone> EpochBarrier<T> {
    /// A barrier for `parties` participants (must be nonzero).
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        EpochBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                result: None,
                poisoned: false,
            }),
            cv: Condvar::new(),
            parties,
        }
    }

    /// Block until all parties have arrived; the last arriver evaluates
    /// `decide` (exactly once per epoch, under the barrier lock) and all
    /// parties return its value.
    ///
    /// Panics if the barrier was [`poison`](Self::poison)ed — a party
    /// died, so the epoch can never complete.
    pub fn arrive_and_decide<F: FnOnce() -> T>(&self, decide: F) -> T {
        let mut g = lock(&self.state);
        assert!(!g.poisoned, "epoch barrier poisoned: a party died");
        let gen = g.generation;
        g.arrived += 1;
        if g.arrived == self.parties {
            let value = decide();
            g.result = Some(value.clone());
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            return value;
        }
        while g.generation == gen {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            assert!(!g.poisoned, "epoch barrier poisoned: a party died");
        }
        g.result.clone().expect("deciding arriver stored a result")
    }

    /// Mark the barrier unusable and wake every waiter: a party is never
    /// going to arrive (it panicked), so blocked siblings must abort
    /// instead of waiting forever.
    pub fn poison(&self) {
        let mut g = lock(&self.state);
        g.poisoned = true;
        self.cv.notify_all();
    }
}

/// One round's plan, decided at the first barrier of the round.
#[derive(Debug, Clone, Copy)]
struct RoundPlan {
    /// Global minimum pending event time (window start), `SimTime::MAX`
    /// at quiescence.
    window_start: SimTime,
    /// Exclusive end of the conservative window: `window_start +
    /// lookahead`, clamped down to the first checkpoint that is still
    /// unfired after this round's digest pass. A checkpoint strictly
    /// inside an unclamped window would see events at/after it applied
    /// before its digest is recorded — diverging from the sequential
    /// engine, which records every checkpoint digest before popping any
    /// event at or beyond it.
    window_end: SimTime,
    /// All shards must publish digests this round (a checkpoint fires or
    /// the run is finishing).
    need_digests: bool,
    /// The run is over (quiescent or past `max_time`).
    done: bool,
}

/// Coordination state shared by all shards of one parallel run.
struct ParShared<M> {
    /// Per-shard cross-shard inboxes (the `SharedEventQueue` seam).
    inboxes: Vec<SharedEventQueue<SimEvent<M>>>,
    /// Per-shard minimum pending event time, republished every round.
    mins: Mutex<Vec<SimTime>>,
    /// Per-node digest slots, written only on `need_digests` rounds.
    digests: Mutex<Vec<u64>>,
    /// Accumulated run record.
    record: Mutex<RunRecord>,
    /// Round-plan barrier (drain + min-publish complete ⇒ decide plan).
    plan: EpochBarrier<RoundPlan>,
    /// Digest barrier (digest slots written ⇒ fold and record).
    fold: EpochBarrier<()>,
    /// End-of-round barrier: every cross-shard send of round `k` must be
    /// in its destination inbox before any shard drains for round `k+1`.
    /// Without it, an in-flight event below the next global minimum is
    /// invisible to the round plan and gets processed out of order.
    round_end: EpochBarrier<()>,
    /// First engine-detected protocol violation (lookahead breach),
    /// re-raised by `run_parallel` with its original message after the
    /// shard panic has been contained.
    violation: Mutex<Option<String>>,
}

impl<M> ParShared<M> {
    /// Wake every sibling blocked on any engine barrier; called when a
    /// shard dies so the run aborts instead of deadlocking.
    fn poison_all(&self) {
        self.plan.poison();
        self.fold.poison();
        self.round_end.poison();
    }
}

#[derive(Debug)]
struct RunRecord {
    events: u64,
    end_time: SimTime,
    checkpoints: Vec<(SimTime, u64)>,
    next_ck: usize,
    final_digest: u64,
}

/// Run the sharded parallel engine. Must produce an [`EngineRun`] equal
/// to [`run_sequential`]'s for the same `n`/`make_node`/`checkpoints`.
///
/// `make_node` is called on the owning shard's worker thread (nodes need
/// not be `Send`); `lookahead` must be positive and no larger than every
/// cross-shard delivery delay — a cross-shard send below it panics,
/// because it would break the barrier invariant silently otherwise.
pub fn run_parallel<N, F>(
    n: usize,
    make_node: F,
    shards: usize,
    lookahead: SimDuration,
    checkpoints: &[SimTime],
    max_time: SimTime,
) -> EngineRun
where
    N: EngineNode,
    F: Fn(NodeId) -> N + Sync,
    N::Msg: Send,
{
    assert!(shards > 0, "need at least one shard");
    assert!(
        lookahead > SimDuration::ZERO,
        "conservative windows need a positive lookahead"
    );
    let shards = shards.min(n.max(1));
    // Contiguous node partition: shard s owns [s*n/shards, (s+1)*n/shards).
    let bounds: Vec<usize> = (0..=shards).map(|s| s * n / shards).collect();
    let shard_of: Vec<usize> = (0..n)
        .map(|i| bounds.partition_point(|&b| b <= i) - 1)
        .collect();

    let shared: ParShared<N::Msg> = ParShared {
        inboxes: (0..shards).map(|_| SharedEventQueue::new()).collect(),
        mins: Mutex::new(vec![SimTime::MAX; shards]),
        digests: Mutex::new(vec![0; n]),
        record: Mutex::new(RunRecord {
            events: 0,
            end_time: SimTime::ZERO,
            checkpoints: Vec::new(),
            next_ck: 0,
            final_digest: 0,
        }),
        plan: EpochBarrier::new(shards),
        fold: EpochBarrier::new(shards),
        round_end: EpochBarrier::new(shards),
        violation: Mutex::new(None),
    };

    let scope_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|scope| {
            for s in 0..shards {
                let shared = &shared;
                let make_node = &make_node;
                let shard_of = &shard_of;
                let range = bounds[s]..bounds[s + 1];
                scope.spawn(move || {
                    // A shard that dies (node panic, invariant breach)
                    // must poison the barriers on its way out, or its
                    // siblings block forever waiting for it to arrive.
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_shard(
                            s,
                            range,
                            make_node,
                            shared,
                            shard_of,
                            lookahead,
                            checkpoints,
                            max_time,
                        );
                    }));
                    if let Err(payload) = r {
                        shared.poison_all();
                        std::panic::resume_unwind(payload);
                    }
                });
            }
        });
    }));
    if let Err(payload) = scope_result {
        // `thread::scope` replaces scoped-thread panics with a generic
        // payload; surface the engine's own diagnosis when there is one.
        match lock(&shared.violation).take() {
            Some(msg) => panic!("{msg}"),
            None => std::panic::resume_unwind(payload),
        }
    }

    let rec = lock(&shared.record);
    EngineRun {
        events: rec.events,
        end_time: rec.end_time,
        checkpoints: rec.checkpoints.clone(),
        final_digest: rec.final_digest,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_shard<N, F>(
    shard: usize,
    range: std::ops::Range<usize>,
    make_node: &F,
    shared: &ParShared<N::Msg>,
    shard_of: &[usize],
    lookahead: SimDuration,
    checkpoints: &[SimTime],
    max_time: SimTime,
) where
    N: EngineNode,
    F: Fn(NodeId) -> N,
{
    let base = range.start;
    let mut nodes: Vec<N> = range.clone().map(|i| make_node(NodeId(i as u32))).collect();
    let mut seqs: Vec<u64> = vec![0; nodes.len()];
    let mut heap: BinaryHeap<SimEvent<N::Msg>> = BinaryHeap::new();
    let mut out = Outbox::new();
    let mut local_events: u64 = 0;
    let mut local_end = SimTime::ZERO;

    let route = |from_local: usize,
                 now: SimTime,
                 out: &mut Outbox<N::Msg>,
                 seqs: &mut Vec<u64>,
                 heap: &mut BinaryHeap<SimEvent<N::Msg>>| {
        for (to, delay, msg) in out.drain() {
            let seq = seqs[from_local];
            seqs[from_local] += 1;
            let ev = SimEvent {
                time: now + delay,
                from: NodeId((base + from_local) as u32),
                seq,
                to,
                msg,
            };
            let dest_shard = shard_of[to.0 as usize];
            if dest_shard == shard {
                heap.push(ev);
            } else {
                if delay < lookahead {
                    let msg = format!(
                        "cross-shard send below the lookahead breaks the barrier invariant \
                         ({from} -> {to} delay {delay:?} < {lookahead:?})",
                        from = ev.from,
                        to = ev.to,
                    );
                    lock(&shared.violation).get_or_insert(msg.clone());
                    panic!("{msg}");
                }
                shared.inboxes[dest_shard].push(ev.time, ev);
            }
        }
    };

    for (li, node) in nodes.iter_mut().enumerate() {
        node.on_start(&mut out);
        route(li, SimTime::ZERO, &mut out, &mut seqs, &mut heap);
    }

    // Startup fence: every shard's `on_start` cross-shard sends must be
    // in their destination inboxes before any shard drains and measures
    // its first pending minimum — the same publish-before-drain
    // invariant `round_end` enforces between rounds, applied to round
    // zero. Without it a fast shard can agree on a window start that is
    // blind to a sibling's still-in-flight startup event and deliver it
    // a round late, out of `(time, from, seq)` order.
    shared.round_end.arrive_and_decide(|| ());

    loop {
        // Drain the inbox into the locally-ordered heap: arrival
        // interleaving is erased by the (time, from, seq) re-sort.
        while let Some((_, ev)) = shared.inboxes[shard].pop() {
            heap.push(ev);
        }
        let local_min = heap.peek().map_or(SimTime::MAX, |e| e.time);
        lock(&shared.mins)[shard] = local_min;

        let plan = shared.plan.arrive_and_decide(|| {
            let mins = lock(&shared.mins);
            let window_start = mins.iter().copied().min().unwrap_or(SimTime::MAX);
            let done = window_start == SimTime::MAX || window_start > max_time;
            let horizon = if done { SimTime::MAX } else { window_start };
            let rec = lock(&shared.record);
            let need_digests =
                done || (rec.next_ck < checkpoints.len() && checkpoints[rec.next_ck] <= horizon);
            let window_end = if done {
                SimTime::MAX
            } else {
                // Checkpoints at or before `horizon` fire this round's
                // digest pass; the first one after it bounds how far the
                // window may advance.
                let mut end = window_start + lookahead;
                let mut k = rec.next_ck;
                while k < checkpoints.len() && checkpoints[k] <= horizon {
                    k += 1;
                }
                if k < checkpoints.len() {
                    end = end.min(checkpoints[k]);
                }
                end
            };
            RoundPlan {
                window_start,
                window_end,
                need_digests,
                done,
            }
        });

        if plan.need_digests {
            {
                let mut slots = lock(&shared.digests);
                for (li, node) in nodes.iter().enumerate() {
                    slots[base + li] = node.digest();
                }
            }
            shared.fold.arrive_and_decide(|| {
                let slots = lock(&shared.digests);
                let folded = fold_digests(&slots);
                let mut rec = lock(&shared.record);
                let horizon = if plan.done {
                    SimTime::MAX
                } else {
                    plan.window_start
                };
                while rec.next_ck < checkpoints.len() && checkpoints[rec.next_ck] <= horizon {
                    let at = checkpoints[rec.next_ck];
                    rec.checkpoints.push((at, folded));
                    rec.next_ck += 1;
                }
                if plan.done {
                    rec.final_digest = folded;
                }
            });
        }

        if plan.done {
            break;
        }

        // Process the conservative window [T, window_end), never past
        // `max_time`: the sequential engine treats a pending event after
        // `max_time` as quiescence, so an event inside the window but
        // beyond `max_time` must stay unpopped here too (it then drives
        // the next round's minimum above `max_time`, ending the run).
        let window_end = plan.window_end;
        while heap
            .peek()
            .is_some_and(|e| e.time < window_end && e.time <= max_time)
        {
            let ev = heap.pop().expect("peek said so");
            local_events += 1;
            local_end = ev.time;
            let li = ev.to.0 as usize - base;
            nodes[li].on_event(ev.time, ev.from, ev.msg, &mut out);
            route(li, ev.time, &mut out, &mut seqs, &mut heap);
        }

        // Publish-before-drain fence: the next round's minima must see
        // every event this round emitted, or the plan undercounts.
        shared.round_end.arrive_and_decide(|| ());
    }

    let mut rec = lock(&shared.record);
    rec.events += local_events;
    rec.end_time = rec.end_time.max(local_end);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A token-passing ring: node i forwards a counter to (i+1) % n with
    /// a fixed delay, `hops` times, folding everything it saw into a
    /// little state hash.
    struct RingNode {
        id: NodeId,
        n: u32,
        hops: u32,
        acc: u64,
    }

    impl EngineNode for RingNode {
        type Msg = u32;

        fn on_start(&mut self, out: &mut Outbox<u32>) {
            if self.id.0 == 0 {
                out.send(self.id, SimDuration::from_millis(1), 0);
            }
        }

        fn on_event(&mut self, now: SimTime, from: NodeId, hop: u32, out: &mut Outbox<u32>) {
            self.acc = self
                .acc
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(hop))
                .wrapping_add(u64::from(from.0))
                .wrapping_add(now.since(SimTime::ZERO).as_millis());
            if hop < self.hops {
                let next = NodeId((self.id.0 + 1) % self.n);
                out.send(next, SimDuration::from_millis(10), hop + 1);
            }
        }

        fn digest(&self) -> u64 {
            self.acc ^ u64::from(self.id.0)
        }
    }

    fn ring(n: u32, hops: u32) -> impl Fn(NodeId) -> RingNode + Sync {
        move |id| RingNode {
            id,
            n,
            hops,
            acc: 0,
        }
    }

    #[test]
    fn parallel_matches_sequential_on_ring() {
        let cks = [
            SimTime::from_millis(50),
            SimTime::from_millis(200),
            SimTime::from_secs(100),
        ];
        let seq = run_sequential(8, ring(8, 40), &cks, SimTime::MAX);
        assert_eq!(seq.events, 41);
        for shards in [1, 2, 3, 4, 8] {
            let par = run_parallel(
                8,
                ring(8, 40),
                shards,
                SimDuration::from_millis(10),
                &cks,
                SimTime::MAX,
            );
            assert_eq!(seq, par, "shards={shards}");
        }
    }

    /// Like [`RingNode`] but every ring delivery also schedules two
    /// short local self-echoes. Self-sends are exempt from the lookahead
    /// bound, so one conservative window holds events at several
    /// distinct times — the shape that exercises window clamping.
    struct EchoNode {
        id: NodeId,
        n: u32,
        hops: u32,
        acc: u64,
    }

    const ECHO: u32 = u32::MAX;

    impl EngineNode for EchoNode {
        type Msg = u32;

        fn on_start(&mut self, out: &mut Outbox<u32>) {
            if self.id.0 == 0 {
                out.send(self.id, SimDuration::from_millis(1), 0);
            }
        }

        fn on_event(&mut self, now: SimTime, from: NodeId, hop: u32, out: &mut Outbox<u32>) {
            self.acc = self
                .acc
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(hop))
                .wrapping_add(u64::from(from.0))
                .wrapping_add(now.since(SimTime::ZERO).as_millis());
            if hop == ECHO {
                return;
            }
            out.send(self.id, SimDuration::from_millis(1), ECHO);
            out.send(self.id, SimDuration::from_millis(2), ECHO);
            if hop < self.hops {
                let next = NodeId((self.id.0 + 1) % self.n);
                out.send(next, SimDuration::from_millis(10), hop + 1);
            }
        }

        fn digest(&self) -> u64 {
            self.acc ^ u64::from(self.id.0)
        }
    }

    fn echo_ring(n: u32, hops: u32) -> impl Fn(NodeId) -> EchoNode + Sync {
        move |id| EchoNode {
            id,
            n,
            hops,
            acc: 0,
        }
    }

    #[test]
    fn checkpoint_inside_window_matches_sequential() {
        // Ring hops land at 1, 11, 21, …; each spawns echoes at +1/+2.
        // Checkpoints at 12 and 13 fall strictly inside the window
        // starting at 11, with events at/after them in the same window:
        // without clamping, those events are applied before the digest
        // is recorded and the parallel run diverges.
        let cks = [
            SimTime::from_millis(12),
            SimTime::from_millis(13),
            SimTime::from_millis(45),
        ];
        let seq = run_sequential(4, echo_ring(4, 40), &cks, SimTime::MAX);
        for shards in [1, 2, 4] {
            let par = run_parallel(
                4,
                echo_ring(4, 40),
                shards,
                SimDuration::from_millis(10),
                &cks,
                SimTime::MAX,
            );
            assert_eq!(seq, par, "shards={shards}");
        }
        // Single shard with a huge lookahead: the whole run is one
        // window unless checkpoints clamp it.
        let par = run_parallel(
            4,
            echo_ring(4, 40),
            1,
            SimDuration::from_secs(3600),
            &cks,
            SimTime::MAX,
        );
        assert_eq!(seq, par, "one shard, horizon-sized window");
    }

    #[test]
    fn max_time_mid_window_matches_sequential() {
        // max_time = 42 cuts through the window starting at 41 (ring
        // hop at 41, echoes at 42 and 43): the echo at 43 must stay
        // unpopped, exactly as the sequential engine leaves it, and the
        // late checkpoint then fires with the truncated final digest.
        let cks = [SimTime::from_millis(30), SimTime::from_secs(10)];
        let max = SimTime::from_millis(42);
        let seq = run_sequential(4, echo_ring(4, 40), &cks, max);
        let full = run_sequential(4, echo_ring(4, 40), &cks, SimTime::MAX);
        assert!(
            seq.events < full.events,
            "max_time must actually truncate the run"
        );
        for shards in [1, 2, 4] {
            let par = run_parallel(
                4,
                echo_ring(4, 40),
                shards,
                SimDuration::from_millis(10),
                &cks,
                max,
            );
            assert_eq!(seq, par, "shards={shards}");
        }
    }

    #[test]
    fn checkpoints_cover_quiescence() {
        let cks = [SimTime::from_secs(1_000_000)];
        let seq = run_sequential(4, ring(4, 5), &cks, SimTime::MAX);
        assert_eq!(seq.checkpoints.len(), 1);
        assert_eq!(seq.checkpoints[0].1, seq.final_digest);
    }

    #[test]
    #[should_panic(expected = "breaks the barrier invariant")]
    fn cross_shard_send_below_lookahead_panics() {
        run_parallel(
            2,
            ring(2, 3),
            2,
            SimDuration::from_millis(50),
            &[],
            SimTime::MAX,
        );
    }

    #[test]
    fn sibling_shard_panic_does_not_deadlock() {
        // A node that dies mid-window must abort the whole run (via
        // barrier poisoning), not leave sibling shards blocked forever
        // at the next epoch.
        struct Bomb {
            id: NodeId,
        }
        impl EngineNode for Bomb {
            type Msg = ();
            fn on_start(&mut self, out: &mut Outbox<()>) {
                if self.id.0 == 0 {
                    out.send(self.id, SimDuration::from_millis(1), ());
                }
            }
            fn on_event(&mut self, _now: SimTime, _from: NodeId, _msg: (), _out: &mut Outbox<()>) {
                panic!("node blew up");
            }
            fn digest(&self) -> u64 {
                0
            }
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_parallel(
                4,
                |id| Bomb { id },
                2,
                SimDuration::from_millis(1),
                &[],
                SimTime::MAX,
            )
        }));
        assert!(r.is_err(), "the run must abort, not hang or succeed");
    }

    #[test]
    fn empty_engine_is_quiescent() {
        struct Idle;
        impl EngineNode for Idle {
            type Msg = ();
            fn on_start(&mut self, _out: &mut Outbox<()>) {}
            fn on_event(&mut self, _now: SimTime, _from: NodeId, _msg: (), _out: &mut Outbox<()>) {}
            fn digest(&self) -> u64 {
                7
            }
        }
        let seq = run_sequential(3, |_| Idle, &[SimTime::from_secs(1)], SimTime::MAX);
        let par = run_parallel(
            3,
            |_| Idle,
            2,
            SimDuration::from_millis(1),
            &[SimTime::from_secs(1)],
            SimTime::MAX,
        );
        assert_eq!(seq, par);
        assert_eq!(seq.events, 0);
    }
}
