//! The event queue at the heart of the discrete-event engine.
//!
//! Events are `(time, payload)` pairs popped in non-decreasing time order.
//! Ties are broken by insertion order (FIFO), which keeps the simulation
//! deterministic regardless of how the underlying heap reorders equal keys.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A monotonic, FIFO-stable priority queue of timed events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `payload` at `time`.
    ///
    /// Scheduling in the past (before the last popped event) is clamped to
    /// the current simulation time, preserving monotonicity: an event can
    /// never be delivered before one that has already been processed.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let time = time.max(self.last_popped);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Remove and return the earliest event, advancing the internal clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.last_popped);
        self.last_popped = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events (the clock is not rewound).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A clonable, thread-shareable handle to an [`EventQueue`].
///
/// This is the seam for the sharded parallel event engine (ROADMAP
/// item 1): shard workers will push cross-shard events through a shared
/// handle while the owning shard pops. The queue's determinism contract
/// is unchanged — pops are non-decreasing in time and FIFO-stable among
/// equal times *relative to the global `seq` order in which pushes
/// acquired the lock* — so a parallel schedule is reproducible exactly
/// when its lock-acquisition order is.
///
/// Built on [`crate::sync`], so compiling with `--features loom` swaps
/// in loom's model-checked `Arc`/`Mutex` and the concurrency tests can
/// explore every interleaving.
pub struct SharedEventQueue<E> {
    inner: crate::sync::Arc<crate::sync::Mutex<EventQueue<E>>>,
}

impl<E> Clone for SharedEventQueue<E> {
    fn clone(&self) -> Self {
        SharedEventQueue {
            inner: crate::sync::Arc::clone(&self.inner),
        }
    }
}

impl<E> Default for SharedEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> SharedEventQueue<E> {
    /// Create an empty shared queue.
    pub fn new() -> Self {
        SharedEventQueue {
            inner: crate::sync::Arc::new(crate::sync::Mutex::new(EventQueue::new())),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut EventQueue<E>) -> R) -> R {
        // A poisoned lock means a panicking sibling thread; the queue
        // itself is still structurally sound (every mutation is a single
        // heap operation), so recover the guard rather than cascade.
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// Schedule `payload` at `time` (clamped to the queue's clock).
    pub fn push(&self, time: SimTime, payload: E) {
        self.with(|q| q.push(time, payload));
    }

    /// Remove and return the earliest event, advancing the clock.
    pub fn pop(&self) -> Option<(SimTime, E)> {
        self.with(EventQueue::pop)
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.with(|q| q.peek_time())
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.with(|q| q.now())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.with(|q| q.len())
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.with(|q| q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        assert_eq!(q.pop().unwrap().1, "late");
        // Scheduling before t=10 now clamps to t=10.
        q.push(SimTime::from_secs(1), "early");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
        assert_eq!(e, "early");
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(7), 1);
        q.push(SimTime::from_millis(3), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_secs(2), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    fn shared_queue_clones_share_state() {
        let q = SharedEventQueue::new();
        let other = q.clone();
        q.push(SimTime::from_secs(2), "b");
        other.push(SimTime::from_secs(1), "a");
        assert_eq!(q.len(), 2);
        assert_eq!(other.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert!(q.is_empty() && other.is_empty());
    }

    #[test]
    fn shared_queue_clock_is_shared() {
        let q = SharedEventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(5), ());
        let other = q.clone();
        other.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
        // Past pushes clamp against the shared clock, same as EventQueue.
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), ())));
    }

    #[test]
    fn interleaved_push_pop_stays_monotonic() {
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        q.push(SimTime::from_millis(10), 0u32);
        for i in 1..50u32 {
            let (t, _) = q.pop().unwrap();
            assert!(t >= last);
            last = t;
            q.push(t + SimDuration::from_millis(u64::from(i % 7)), i);
        }
    }
}
