//! Point-to-point links with delay, jitter, loss, bandwidth and MTU.
//!
//! A [`Link`] models one direction of a physical or virtual circuit: the
//! OpenVPN tunnel between a PEERING client and server, the IXP fabric port,
//! or an inter-PoP backbone wave. Transmission accounts for serialization
//! delay at the configured bandwidth (with a FIFO queue abstracted as a
//! "next free transmit time"), propagation delay plus jitter, and Bernoulli
//! loss. Links can be administratively downed for fault injection.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static characteristics of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Uniform jitter added on top of `delay` (0 to `jitter`).
    pub jitter: SimDuration,
    /// Packet loss probability in `[0, 1]`.
    pub loss: f64,
    /// Serialization bandwidth in bits/s; `None` means infinite.
    pub bandwidth_bps: Option<u64>,
    /// Maximum transmission unit in bytes; larger packets are dropped.
    pub mtu: usize,
    /// Bound on packets queued awaiting serialization; `None` is
    /// unbounded. Only meaningful on rate-limited links — with infinite
    /// bandwidth nothing ever waits. A full queue tail-drops: floods
    /// degrade deterministically instead of growing memory without bound.
    pub queue_limit: Option<usize>,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            delay: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: None,
            mtu: 1500,
            queue_limit: None,
        }
    }
}

impl LinkParams {
    /// A lossless link with the given one-way delay and no rate limit.
    pub fn with_delay(delay: SimDuration) -> Self {
        LinkParams {
            delay,
            ..Default::default()
        }
    }

    /// Builder-style loss probability.
    pub fn loss(mut self, p: f64) -> Self {
        self.loss = p.clamp(0.0, 1.0);
        self
    }

    /// Builder-style bandwidth.
    pub fn bandwidth(mut self, bps: u64) -> Self {
        self.bandwidth_bps = Some(bps);
        self
    }

    /// Builder-style jitter.
    pub fn jitter(mut self, j: SimDuration) -> Self {
        self.jitter = j;
        self
    }

    /// Builder-style MTU.
    pub fn mtu(mut self, mtu: usize) -> Self {
        self.mtu = mtu;
        self
    }

    /// Builder-style queue bound.
    pub fn queue_limit(mut self, packets: usize) -> Self {
        self.queue_limit = Some(packets);
        self
    }
}

/// Why a transmission did not produce a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxFailure {
    /// The link is administratively or operationally down.
    LinkDown,
    /// The packet exceeded the link MTU.
    MtuExceeded,
    /// The packet was randomly lost.
    Lost,
    /// The bounded transmit queue was full (deterministic tail-drop).
    QueueFull,
}

/// One direction of a link, with its dynamic state.
#[derive(Debug, Clone)]
pub struct Link {
    /// Static parameters.
    pub params: LinkParams,
    up: bool,
    next_free_tx: SimTime,
    /// Serialization-completion times of packets still occupying the
    /// transmit queue, oldest first. Only maintained when a
    /// `queue_limit` is configured.
    queued: VecDeque<SimTime>,
    /// Counters for observability.
    pub tx_packets: u64,
    /// Packets dropped for any reason.
    pub dropped: u64,
    /// Of `dropped`, those tail-dropped by the bounded queue.
    pub tail_drops: u64,
    /// Deepest the bounded transmit queue ever got (packets).
    pub queue_peak: usize,
    /// Bytes successfully transmitted.
    pub tx_bytes: u64,
}

impl Link {
    /// Create an up link with the given parameters.
    pub fn new(params: LinkParams) -> Self {
        Link {
            params,
            up: true,
            next_free_tx: SimTime::ZERO,
            queued: VecDeque::new(),
            tx_packets: 0,
            dropped: 0,
            tail_drops: 0,
            queue_peak: 0,
            tx_bytes: 0,
        }
    }

    /// Administratively raise or lower the link.
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// Current operational state.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Attempt to transmit `size` bytes at time `now`.
    ///
    /// On success returns the delivery time at the far end; on failure
    /// returns why. Serialization delay occupies the transmitter (FIFO), so
    /// back-to-back packets queue behind each other.
    pub fn transmit(
        &mut self,
        now: SimTime,
        size: usize,
        rng: &mut SimRng,
    ) -> Result<SimTime, TxFailure> {
        if !self.up {
            self.dropped += 1;
            return Err(TxFailure::LinkDown);
        }
        if size > self.params.mtu {
            self.dropped += 1;
            return Err(TxFailure::MtuExceeded);
        }
        if self.params.loss > 0.0 && rng.chance(self.params.loss) {
            self.dropped += 1;
            return Err(TxFailure::Lost);
        }
        if let Some(limit) = self.params.queue_limit {
            // Packets leave the queue when their serialization finishes.
            while self.queued.front().is_some_and(|&t| t <= now) {
                self.queued.pop_front();
            }
            if self.queued.len() >= limit {
                self.dropped += 1;
                self.tail_drops += 1;
                return Err(TxFailure::QueueFull);
            }
        }
        let start = now.max(self.next_free_tx);
        let ser = match self.params.bandwidth_bps {
            Some(bps) if bps > 0 => {
                SimDuration::from_micros(((size as u64) * 8).saturating_mul(1_000_000) / bps)
            }
            _ => SimDuration::ZERO,
        };
        self.next_free_tx = start + ser;
        if self.params.queue_limit.is_some() {
            self.queued.push_back(self.next_free_tx);
            self.queue_peak = self.queue_peak.max(self.queued.len());
        }
        let jitter = if self.params.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(rng.below(self.params.jitter.as_micros() + 1))
        };
        self.tx_packets += 1;
        self.tx_bytes += size as u64;
        Ok(self.next_free_tx + self.params.delay + jitter)
    }

    /// Packets currently occupying the transmit queue at `now`. Always 0
    /// without a configured `queue_limit`.
    pub fn queue_depth(&self, now: SimTime) -> usize {
        self.queued.iter().filter(|&&t| t > now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(1)
    }

    #[test]
    fn basic_delay() {
        let mut l = Link::new(LinkParams::with_delay(SimDuration::from_millis(10)));
        let t = l.transmit(SimTime::from_secs(1), 100, &mut rng()).unwrap();
        assert_eq!(t, SimTime::from_secs(1) + SimDuration::from_millis(10));
        assert_eq!(l.tx_packets, 1);
        assert_eq!(l.tx_bytes, 100);
    }

    #[test]
    fn serialization_delay_and_queueing() {
        // 1 Mbit/s: 1250 bytes = 10 ms serialization.
        let params = LinkParams::with_delay(SimDuration::from_millis(5)).bandwidth(1_000_000);
        let mut l = Link::new(params);
        let mut r = rng();
        let t0 = SimTime::from_secs(0);
        let d1 = l.transmit(t0, 1250, &mut r).unwrap();
        assert_eq!(d1, SimTime::from_millis(15)); // 10ms ser + 5ms prop
                                                  // Second packet queues behind the first.
        let d2 = l.transmit(t0, 1250, &mut r).unwrap();
        assert_eq!(d2, SimTime::from_millis(25));
    }

    #[test]
    fn down_link_drops() {
        let mut l = Link::new(LinkParams::default());
        l.set_up(false);
        assert_eq!(
            l.transmit(SimTime::ZERO, 10, &mut rng()),
            Err(TxFailure::LinkDown)
        );
        assert!(!l.is_up());
        assert_eq!(l.dropped, 1);
        l.set_up(true);
        assert!(l.transmit(SimTime::ZERO, 10, &mut rng()).is_ok());
    }

    #[test]
    fn mtu_enforced() {
        let mut l = Link::new(LinkParams::default().mtu(100));
        assert_eq!(
            l.transmit(SimTime::ZERO, 101, &mut rng()),
            Err(TxFailure::MtuExceeded)
        );
        assert!(l.transmit(SimTime::ZERO, 100, &mut rng()).is_ok());
    }

    #[test]
    fn lossy_link_loses_roughly_p() {
        let mut l = Link::new(LinkParams::default().loss(0.3));
        let mut r = rng();
        let mut lost = 0;
        for _ in 0..10_000 {
            if l.transmit(SimTime::ZERO, 10, &mut r).is_err() {
                lost += 1;
            }
        }
        assert!((2_500..3_500).contains(&lost), "lost={lost}");
    }

    #[test]
    fn jitter_bounded() {
        let params = LinkParams::with_delay(SimDuration::from_millis(10))
            .jitter(SimDuration::from_millis(5));
        let mut l = Link::new(params);
        let mut r = rng();
        for _ in 0..200 {
            let t = l.transmit(SimTime::ZERO, 10, &mut r).unwrap();
            assert!(t >= SimTime::from_millis(10));
            assert!(t <= SimTime::from_millis(15));
        }
    }

    #[test]
    fn bounded_queue_tail_drops_deterministically() {
        // 1 Mbit/s, 1250-byte packets = 10 ms serialization each; a
        // 2-packet queue holds the one being serialized plus one more.
        let params = LinkParams::with_delay(SimDuration::from_millis(5))
            .bandwidth(1_000_000)
            .queue_limit(2);
        let mut l = Link::new(params);
        let mut r = rng();
        let t0 = SimTime::ZERO;
        assert!(l.transmit(t0, 1250, &mut r).is_ok());
        assert!(l.transmit(t0, 1250, &mut r).is_ok());
        assert_eq!(l.queue_depth(t0), 2);
        // Third back-to-back packet finds the queue full.
        assert_eq!(l.transmit(t0, 1250, &mut r), Err(TxFailure::QueueFull));
        assert_eq!(l.tail_drops, 1);
        assert_eq!(l.dropped, 1);
        // After the first packet drains (10 ms), capacity returns.
        let t1 = SimTime::from_millis(10);
        assert!(l.transmit(t1, 1250, &mut r).is_ok());
        assert_eq!(l.queue_depth(t1), 2);
        // A second run with the same inputs tail-drops identically.
        let mut l2 = Link::new(params);
        let mut r2 = rng();
        assert!(l2.transmit(t0, 1250, &mut r2).is_ok());
        assert!(l2.transmit(t0, 1250, &mut r2).is_ok());
        assert_eq!(l2.transmit(t0, 1250, &mut r2), Err(TxFailure::QueueFull));
    }

    #[test]
    fn unbounded_queue_never_tail_drops() {
        let params = LinkParams::with_delay(SimDuration::from_millis(5)).bandwidth(1_000_000);
        let mut l = Link::new(params);
        let mut r = rng();
        for _ in 0..100 {
            assert!(l.transmit(SimTime::ZERO, 1250, &mut r).is_ok());
        }
        assert_eq!(l.tail_drops, 0);
        assert_eq!(l.queue_depth(SimTime::ZERO), 0);
    }

    #[test]
    fn loss_clamped_by_builder() {
        let p = LinkParams::default().loss(7.0);
        assert_eq!(p.loss, 1.0);
        let p = LinkParams::default().loss(-2.0);
        assert_eq!(p.loss, 0.0);
    }
}
