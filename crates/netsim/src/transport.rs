//! A typed message network: nodes exchanging messages over links, driven
//! by the event queue.
//!
//! [`MsgNet`] is the transport that carries BGP messages between simulated
//! speakers. It owns the clock, the links, and the in-flight messages; the
//! caller (a BGP harness, the testbed) pulls deliveries one at a time with
//! [`MsgNet::next`] and feeds them into the receiving node's state machine.
//! Timers are modeled as messages a node sends to itself with a delay.

use crate::link::{Link, LinkParams, TxFailure};
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node attached to the message network.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What kind of delivery this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryKind {
    /// A message that traversed a link from another node.
    Message,
    /// A self-scheduled timer firing.
    Timer,
}

/// A message arriving at a node.
#[derive(Debug, Clone)]
pub struct Delivery<M> {
    /// Sender (equals `to` for timers).
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Message or timer payload.
    pub msg: M,
    /// Message vs timer.
    pub kind: DeliveryKind,
    /// When the sender handed this to the network (timer scheduling time
    /// for timers). Together with the delivery timestamp this gives the
    /// collector per-hop propagation latency without re-deriving link
    /// parameters.
    pub sent_at: SimTime,
}

/// Per-direction link counters exported for telemetry. Snapshot of the
/// [`Link`] observability fields at the time of the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets successfully transmitted.
    pub tx_packets: u64,
    /// Packets dropped for any reason (down, MTU, loss, queue full).
    pub dropped: u64,
    /// Of `dropped`, those tail-dropped by a bounded transmit queue.
    pub tail_drops: u64,
    /// Deepest the bounded transmit queue ever got (packets).
    pub queue_peak: usize,
    /// Bytes successfully transmitted.
    pub tx_bytes: u64,
}

/// The message network. `M` is the application message type.
pub struct MsgNet<M> {
    queue: EventQueue<Delivery<M>>,
    links: BTreeMap<(NodeId, NodeId), Link>,
    rng: SimRng,
    /// Count of messages dropped by links (loss, down, MTU).
    pub drops: u64,
    /// Count of sends attempted on nonexistent links.
    pub no_route: u64,
    /// Count of link messages handed to receivers by [`MsgNet::next`].
    pub delivered: u64,
    /// Count of self-timers handed to receivers by [`MsgNet::next`].
    pub timers_fired: u64,
    /// Largest number of simultaneously in-flight deliveries seen.
    pub queue_high_water: usize,
}

impl<M> MsgNet<M> {
    /// Create a network with a deterministic RNG substream.
    pub fn new(rng: SimRng) -> Self {
        MsgNet {
            queue: EventQueue::new(),
            links: BTreeMap::new(),
            rng,
            drops: 0,
            no_route: 0,
            delivered: 0,
            timers_fired: 0,
            queue_high_water: 0,
        }
    }

    /// Current simulation time (time of last delivered event).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Install a bidirectional link between `a` and `b`.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        self.links.insert((a, b), Link::new(params));
        self.links.insert((b, a), Link::new(params));
    }

    /// Remove the link between `a` and `b` in both directions.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) {
        self.links.remove(&(a, b));
        self.links.remove(&(b, a));
    }

    /// Set the operational state of the `a`->`b` and `b`->`a` link.
    pub fn set_link_up(&mut self, a: NodeId, b: NodeId, up: bool) {
        if let Some(l) = self.links.get_mut(&(a, b)) {
            l.set_up(up);
        }
        if let Some(l) = self.links.get_mut(&(b, a)) {
            l.set_up(up);
        }
    }

    /// True if a usable (existing and up) link connects `a` to `b`.
    pub fn link_up(&self, a: NodeId, b: NodeId) -> bool {
        self.links.get(&(a, b)).map(Link::is_up).unwrap_or(false)
    }

    /// Direct access to a link's state (for counters/fault injection).
    pub fn link_mut(&mut self, a: NodeId, b: NodeId) -> Option<&mut Link> {
        self.links.get_mut(&(a, b))
    }

    /// Set the operational state of every link touching `node`, in both
    /// directions. Used by fault injection to partition a node off from
    /// (or heal it back into) the topology in one action.
    pub fn set_node_links_up(&mut self, node: NodeId, up: bool) {
        for ((a, b), link) in self.links.iter_mut() {
            if *a == node || *b == node {
                link.set_up(up);
            }
        }
    }

    /// The nodes with a link to `node`, in ascending order.
    pub fn neighbors_of(&self, node: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .links
            .keys()
            .filter(|(a, _)| *a == node)
            .map(|(_, b)| *b)
            .collect();
        out.sort();
        out
    }

    /// Send `msg` of `size` bytes from `from` to `to` at the current time.
    ///
    /// Returns `true` if the message was accepted for delivery (it may
    /// still be reordered only by differing link delays, never within a
    /// link, because serialization occupies the transmitter FIFO).
    pub fn send(&mut self, from: NodeId, to: NodeId, size: usize, msg: M) -> bool {
        let now = self.queue.now();
        let Some(link) = self.links.get_mut(&(from, to)) else {
            self.no_route += 1;
            return false;
        };
        match link.transmit(now, size, &mut self.rng) {
            Ok(at) => {
                self.queue.push(
                    at,
                    Delivery {
                        from,
                        to,
                        msg,
                        kind: DeliveryKind::Message,
                        sent_at: now,
                    },
                );
                self.queue_high_water = self.queue_high_water.max(self.queue.len());
                true
            }
            Err(
                TxFailure::LinkDown
                | TxFailure::MtuExceeded
                | TxFailure::Lost
                | TxFailure::QueueFull,
            ) => {
                self.drops += 1;
                false
            }
        }
    }

    /// Schedule a timer on `node` to fire after `delay`.
    pub fn set_timer(&mut self, node: NodeId, delay: SimDuration, msg: M) {
        let now = self.queue.now();
        self.queue.push(
            now + delay,
            Delivery {
                from: node,
                to: node,
                msg,
                kind: DeliveryKind::Timer,
                sent_at: now,
            },
        );
        self.queue_high_water = self.queue_high_water.max(self.queue.len());
    }

    /// Pop the next delivery, advancing the clock to its timestamp.
    // Not an Iterator: popping mutates the simulated clock, and the
    // event queue refills between calls.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, Delivery<M>)> {
        let popped = self.queue.pop();
        if let Some((_, d)) = &popped {
            match d.kind {
                DeliveryKind::Message => self.delivered += 1,
                DeliveryKind::Timer => self.timers_fired += 1,
            }
        }
        popped
    }

    /// Per-direction link counters, sorted by `(from, to)` so iteration is
    /// deterministic regardless of `HashMap` order.
    pub fn link_stats(&self) -> Vec<((NodeId, NodeId), LinkStats)> {
        let mut out: Vec<_> = self
            .links
            .iter()
            .map(|(&key, link)| {
                (
                    key,
                    LinkStats {
                        tx_packets: link.tx_packets,
                        dropped: link.dropped,
                        tail_drops: link.tail_drops,
                        queue_peak: link.queue_peak,
                        tx_bytes: link.tx_bytes,
                    },
                )
            })
            .collect();
        out.sort_by_key(|(key, _)| *key);
        out
    }

    /// Total bounded-queue tail-drops across all links.
    pub fn tail_drops(&self) -> u64 {
        self.links.values().map(|l| l.tail_drops).sum()
    }

    /// Number of in-flight deliveries (messages plus pending timers).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is in flight.
    pub fn idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> MsgNet<&'static str> {
        MsgNet::new(SimRng::new(42))
    }

    #[test]
    fn delivers_in_order_over_one_link() {
        let mut n = net();
        n.add_link(
            NodeId(1),
            NodeId(2),
            LinkParams::with_delay(SimDuration::from_millis(10)),
        );
        assert!(n.send(NodeId(1), NodeId(2), 10, "a"));
        assert!(n.send(NodeId(1), NodeId(2), 10, "b"));
        let (t1, d1) = n.next().unwrap();
        let (t2, d2) = n.next().unwrap();
        assert_eq!((d1.msg, d2.msg), ("a", "b"));
        assert_eq!(t1, SimTime::from_millis(10));
        assert_eq!(t2, SimTime::from_millis(10));
        assert_eq!(d1.kind, DeliveryKind::Message);
        assert!(n.idle());
    }

    #[test]
    fn send_without_link_fails() {
        let mut n = net();
        assert!(!n.send(NodeId(1), NodeId(2), 10, "x"));
        assert_eq!(n.no_route, 1);
    }

    #[test]
    fn link_down_drops_and_counts() {
        let mut n = net();
        n.add_link(NodeId(1), NodeId(2), LinkParams::default());
        n.set_link_up(NodeId(1), NodeId(2), false);
        assert!(!n.link_up(NodeId(1), NodeId(2)));
        assert!(!n.send(NodeId(1), NodeId(2), 10, "x"));
        assert_eq!(n.drops, 1);
        n.set_link_up(NodeId(1), NodeId(2), true);
        assert!(n.send(NodeId(1), NodeId(2), 10, "x"));
    }

    #[test]
    fn timers_fire_at_requested_time() {
        let mut n = net();
        n.set_timer(NodeId(5), SimDuration::from_secs(30), "keepalive");
        n.set_timer(NodeId(5), SimDuration::from_secs(10), "connect-retry");
        let (t1, d1) = n.next().unwrap();
        assert_eq!(t1, SimTime::from_secs(10));
        assert_eq!(d1.msg, "connect-retry");
        assert_eq!(d1.kind, DeliveryKind::Timer);
        assert_eq!(d1.from, d1.to);
        let (t2, _) = n.next().unwrap();
        assert_eq!(t2, SimTime::from_secs(30));
    }

    #[test]
    fn clock_advances_with_deliveries() {
        let mut n = net();
        n.add_link(
            NodeId(1),
            NodeId(2),
            LinkParams::with_delay(SimDuration::from_millis(7)),
        );
        n.send(NodeId(1), NodeId(2), 1, "x");
        assert_eq!(n.now(), SimTime::ZERO);
        n.next();
        assert_eq!(n.now(), SimTime::from_millis(7));
        // A reply sent now arrives at 14ms.
        n.send(NodeId(2), NodeId(1), 1, "y");
        let (t, d) = n.next().unwrap();
        assert_eq!(t, SimTime::from_millis(14));
        assert_eq!(d.to, NodeId(1));
        // The delivery remembers when it was handed to the network.
        assert_eq!(d.sent_at, SimTime::from_millis(7));
    }

    #[test]
    fn remove_link_stops_traffic() {
        let mut n = net();
        n.add_link(NodeId(1), NodeId(2), LinkParams::default());
        n.remove_link(NodeId(1), NodeId(2));
        assert!(!n.send(NodeId(1), NodeId(2), 1, "x"));
        assert!(!n.send(NodeId(2), NodeId(1), 1, "x"));
    }

    #[test]
    fn node_wide_link_toggle_partitions_and_heals() {
        let mut n = net();
        n.add_link(NodeId(1), NodeId(2), LinkParams::default());
        n.add_link(NodeId(1), NodeId(3), LinkParams::default());
        n.add_link(NodeId(2), NodeId(3), LinkParams::default());
        assert_eq!(n.neighbors_of(NodeId(1)), vec![NodeId(2), NodeId(3)]);
        n.set_node_links_up(NodeId(1), false);
        assert!(!n.link_up(NodeId(1), NodeId(2)));
        assert!(!n.link_up(NodeId(3), NodeId(1)));
        // The unrelated link stays up.
        assert!(n.link_up(NodeId(2), NodeId(3)));
        n.set_node_links_up(NodeId(1), true);
        assert!(n.link_up(NodeId(1), NodeId(2)));
        assert!(n.link_up(NodeId(1), NodeId(3)));
    }

    #[test]
    fn delivery_counters_and_link_stats() {
        let mut n = net();
        n.add_link(NodeId(1), NodeId(2), LinkParams::default());
        n.send(NodeId(1), NodeId(2), 100, "a");
        n.send(NodeId(1), NodeId(2), 50, "b");
        n.set_timer(NodeId(2), SimDuration::from_secs(1), "t");
        assert_eq!(n.queue_high_water, 3);
        while n.next().is_some() {}
        assert_eq!(n.delivered, 2);
        assert_eq!(n.timers_fired, 1);
        let stats = n.link_stats();
        assert_eq!(stats.len(), 2);
        // Sorted by (from, to): (1,2) before (2,1).
        assert_eq!(stats[0].0, (NodeId(1), NodeId(2)));
        assert_eq!(
            stats[0].1,
            LinkStats {
                tx_packets: 2,
                dropped: 0,
                tail_drops: 0,
                queue_peak: 0,
                tx_bytes: 150
            }
        );
        assert_eq!(stats[1].1.tx_packets, 0);
    }

    #[test]
    fn asymmetric_link_state_is_paired() {
        let mut n = net();
        n.add_link(NodeId(1), NodeId(2), LinkParams::default());
        // set_link_up affects both directions.
        n.set_link_up(NodeId(2), NodeId(1), false);
        assert!(!n.link_up(NodeId(1), NodeId(2)));
        assert!(!n.link_up(NodeId(2), NodeId(1)));
    }
}
