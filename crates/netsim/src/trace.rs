//! A bounded in-memory event trace for debugging and experiment reports,
//! plus the [`TraceId`] type that threads causal update provenance through
//! the whole stack.
//!
//! The real testbed "automatically collect\[s\] regular control and data
//! plane measurements"; the trace log is the simulated analog used by the
//! monitoring layer to record BGP updates, packet events, and operator
//! actions without unbounded memory growth. Higher layers (telemetry, the
//! route collector) attach a [`TraceSink`] so that every record flows
//! through **one** recording path: the log keeps its bounded ring buffer
//! while the sink mirrors accepted events into richer streams.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// Identity of one originated routing change (announcement or withdrawal).
///
/// Minted once at the originating speaker and carried — out of band of the
/// wire messages, so behaviour is unperturbed — through Adj-RIB-In, the
/// decision process, and Adj-RIB-Out at every hop. The collector keys its
/// propagation DAGs on it. The packing is deterministic: origin ASN in the
/// high 32 bits, a per-origin sequence number in the low 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mint the `seq`-th trace id originated by `origin_asn`.
    pub fn new(origin_asn: u32, seq: u32) -> Self {
        TraceId((u64::from(origin_asn) << 32) | u64::from(seq))
    }

    /// The ASN that originated the traced change.
    pub fn origin_asn(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Per-origin sequence number of the traced change.
    pub fn seq(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}-{}", self.origin_asn(), self.seq())
    }
}

/// A single trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Subsystem tag, e.g. `"bgp"`, `"dataplane"`, `"safety"`.
    pub tag: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.time, self.tag, self.detail)
    }
}

/// A mirror for accepted trace records.
///
/// Implemented by `peering-telemetry`'s handle so a `TraceLog::record` call
/// is the one recording path: ring buffer here, structured event stream
/// there. Sinks only see records the log accepted (enabled, nonzero
/// capacity), so the log's counters and the mirrored stream agree.
pub trait TraceSink {
    /// Observe one accepted trace record.
    fn trace_event(&self, event: &TraceEvent);
}

/// A ring buffer of recent trace events.
#[derive(Clone)]
pub struct TraceLog {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    sink: Option<Rc<dyn TraceSink>>,
    /// Records actually accepted (stored, possibly later evicted).
    pub total: u64,
    /// Records offered while the log was disabled or zero-capacity.
    ///
    /// Kept separate from `total` so that disabling the log mid-run no
    /// longer drifts the accepted count away from what the buffer (and any
    /// attached sink) actually saw.
    pub suppressed: u64,
}

impl fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceLog")
            .field("events", &self.events)
            .field("capacity", &self.capacity)
            .field("enabled", &self.enabled)
            .field("sink", &self.sink.as_ref().map(|_| "attached"))
            .field("total", &self.total)
            .field("suppressed", &self.suppressed)
            .finish()
    }
}

impl TraceLog {
    /// Create a log holding up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            sink: None,
            total: 0,
            suppressed: 0,
        }
    }

    /// A disabled log that records nothing (for hot paths).
    pub fn disabled() -> Self {
        let mut l = TraceLog::new(0);
        l.enabled = false;
        l
    }

    /// Enable or disable recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Attach a mirror that observes every accepted record.
    pub fn set_sink(&mut self, sink: Rc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detach the mirror, if any.
    pub fn clear_sink(&mut self) {
        self.sink = None;
    }

    /// Record an event, evicting the oldest when at capacity.
    pub fn record(&mut self, time: SimTime, tag: &'static str, detail: impl Into<String>) {
        if !self.enabled || self.capacity == 0 {
            self.suppressed += 1;
            return;
        }
        self.total += 1;
        let event = TraceEvent {
            time,
            tag,
            detail: detail.into(),
        };
        if let Some(sink) = &self.sink {
            sink.trace_event(&event);
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// All currently retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained events with a given tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.tag == tag)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all retained events (counters keep counting).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn records_and_iterates() {
        let mut log = TraceLog::new(10);
        log.record(SimTime::from_secs(1), "bgp", "update received");
        log.record(SimTime::from_secs(2), "dataplane", "packet dropped");
        assert_eq!(log.len(), 2);
        assert_eq!(log.total, 2);
        let tags: Vec<_> = log.events().map(|e| e.tag).collect();
        assert_eq!(tags, vec!["bgp", "dataplane"]);
        assert_eq!(log.with_tag("bgp").count(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = TraceLog::new(3);
        for i in 0..5 {
            log.record(SimTime::from_secs(i), "t", format!("e{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total, 5);
        let details: Vec<_> = log.events().map(|e| e.detail.clone()).collect();
        assert_eq!(details, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn disabled_log_suppresses_without_counting() {
        let mut log = TraceLog::disabled();
        log.record(SimTime::ZERO, "t", "x");
        assert!(log.is_empty());
        assert_eq!(log.total, 0);
        assert_eq!(log.suppressed, 1);
        // Toggling the log off mid-run must not drift `total` away from
        // what was actually accepted.
        let mut log2 = TraceLog::new(5);
        log2.record(SimTime::ZERO, "t", "a");
        log2.set_enabled(false);
        log2.record(SimTime::ZERO, "t", "b");
        log2.set_enabled(true);
        log2.record(SimTime::ZERO, "t", "c");
        assert_eq!(log2.total, 2);
        assert_eq!(log2.suppressed, 1);
        assert_eq!(log2.len(), 2);
    }

    #[test]
    fn sink_mirrors_accepted_records_only() {
        struct Mirror(RefCell<Vec<String>>);
        impl TraceSink for Mirror {
            fn trace_event(&self, event: &TraceEvent) {
                self.0.borrow_mut().push(event.detail.clone());
            }
        }
        let mirror = Rc::new(Mirror(RefCell::new(Vec::new())));
        let mut log = TraceLog::new(2);
        log.set_sink(mirror.clone());
        log.record(SimTime::ZERO, "t", "a");
        log.set_enabled(false);
        log.record(SimTime::ZERO, "t", "hidden");
        log.set_enabled(true);
        log.record(SimTime::ZERO, "t", "b");
        log.record(SimTime::ZERO, "t", "c");
        // The sink saw every accepted record, even ones later evicted.
        assert_eq!(*mirror.0.borrow(), vec!["a", "b", "c"]);
        assert_eq!(log.len(), 2);
        log.clear_sink();
        log.record(SimTime::ZERO, "t", "d");
        assert_eq!(mirror.0.borrow().len(), 3);
    }

    #[test]
    fn trace_id_packs_origin_and_sequence() {
        let id = TraceId::new(65001, 7);
        assert_eq!(id.origin_asn(), 65001);
        assert_eq!(id.seq(), 7);
        assert_eq!(id.to_string(), "t65001-7");
        assert!(TraceId::new(65001, 7) < TraceId::new(65001, 8));
        assert!(TraceId::new(65001, 9) < TraceId::new(65002, 0));
    }

    #[test]
    fn display_format() {
        let mut log = TraceLog::new(1);
        log.record(SimTime::from_secs(3), "safety", "hijack blocked");
        let s = log.events().next().unwrap().to_string();
        assert!(s.contains("safety"));
        assert!(s.contains("hijack blocked"));
        log.clear();
        assert!(log.is_empty());
    }
}
