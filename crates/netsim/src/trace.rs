//! A bounded in-memory event trace for debugging and experiment reports.
//!
//! The real testbed "automatically collect\[s\] regular control and data
//! plane measurements"; the trace log is the simulated analog used by the
//! monitoring layer to record BGP updates, packet events, and operator
//! actions without unbounded memory growth.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// A single trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Subsystem tag, e.g. `"bgp"`, `"dataplane"`, `"safety"`.
    pub tag: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.time, self.tag, self.detail)
    }
}

/// A ring buffer of recent trace events.
#[derive(Debug, Clone)]
pub struct TraceLog {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    /// Total records ever offered, including evicted/suppressed ones.
    pub total: u64,
}

impl TraceLog {
    /// Create a log holding up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            total: 0,
        }
    }

    /// A disabled log that records nothing (for hot paths).
    pub fn disabled() -> Self {
        let mut l = TraceLog::new(0);
        l.enabled = false;
        l
    }

    /// Enable or disable recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Record an event, evicting the oldest when at capacity.
    pub fn record(&mut self, time: SimTime, tag: &'static str, detail: impl Into<String>) {
        self.total += 1;
        if !self.enabled || self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent {
            time,
            tag,
            detail: detail.into(),
        });
    }

    /// All currently retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained events with a given tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.tag == tag)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all retained events (counters keep counting).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_iterates() {
        let mut log = TraceLog::new(10);
        log.record(SimTime::from_secs(1), "bgp", "update received");
        log.record(SimTime::from_secs(2), "dataplane", "packet dropped");
        assert_eq!(log.len(), 2);
        assert_eq!(log.total, 2);
        let tags: Vec<_> = log.events().map(|e| e.tag).collect();
        assert_eq!(tags, vec!["bgp", "dataplane"]);
        assert_eq!(log.with_tag("bgp").count(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = TraceLog::new(3);
        for i in 0..5 {
            log.record(SimTime::from_secs(i), "t", format!("e{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total, 5);
        let details: Vec<_> = log.events().map(|e| e.detail.clone()).collect();
        assert_eq!(details, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn disabled_log_counts_but_does_not_store() {
        let mut log = TraceLog::disabled();
        log.record(SimTime::ZERO, "t", "x");
        assert!(log.is_empty());
        assert_eq!(log.total, 1);
        let mut log2 = TraceLog::new(5);
        log2.set_enabled(false);
        log2.record(SimTime::ZERO, "t", "x");
        assert!(log2.is_empty());
    }

    #[test]
    fn display_format() {
        let mut log = TraceLog::new(1);
        log.record(SimTime::from_secs(3), "safety", "hijack blocked");
        let s = log.events().next().unwrap().to_string();
        assert!(s.contains("safety"));
        assert!(s.contains("hijack blocked"));
        log.clear();
        assert!(log.is_empty());
    }
}
