//! Discrete-event network simulation substrate for the PEERING reproduction.
//!
//! The real PEERING testbed runs over the live Internet: OpenVPN tunnels,
//! BGP sessions to commercial routers, and packets crossing real networks.
//! This crate provides the deterministic stand-in for all of that physical
//! machinery:
//!
//! * a virtual clock ([`SimTime`], [`SimDuration`]) and a stable,
//!   monotonic [`EventQueue`];
//! * a seeded, forkable random-number generator ([`SimRng`]) so that every
//!   experiment is reproducible from a single seed;
//! * fundamental network identifiers shared by every higher layer:
//!   [`Asn`], [`Ipv4Net`], [`Ipv6Net`], [`Prefix`];
//! * point-to-point [`Link`]s with delay, jitter, loss, bandwidth and MTU,
//!   plus administrative up/down state for fault injection;
//! * a v4 IP data plane: [`IpPacket`], longest-prefix-match
//!   [`ForwardingTable`]s, and tunnel encapsulation;
//! * a typed message network ([`MsgNet`]) that delivers messages between
//!   simulated nodes in timestamp order, used to carry BGP messages between
//!   speakers;
//! * scripted fault injection ([`FaultPlan`]) and a bounded [`TraceLog`].
//!
//! Everything is synchronous and deterministic: there are no threads, no
//! sockets, and no wall-clock reads anywhere in the simulation core.

pub mod engine;
pub mod fault;
pub mod ip;
pub mod link;
pub mod net;
pub mod queue;
pub mod rng;
pub mod sync;
pub mod time;
pub mod trace;
pub mod transport;
pub mod trie;

pub use engine::{
    run_parallel, run_sequential, EngineNode, EngineRun, EpochBarrier, Outbox, SimEvent,
};
pub use fault::{FaultAction, FaultPlan};
pub use ip::{ForwardingTable, IpPacket, IpProto, Payload};
pub use link::{Link, LinkParams};
pub use net::{Asn, Ipv4Net, Ipv6Net, Prefix, PrefixParseError};
pub use queue::{EventQueue, SharedEventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceId, TraceLog, TraceSink};
pub use transport::{Delivery, DeliveryKind, LinkStats, MsgNet, NodeId};
pub use trie::{PrefixTrie, RadixTrie, TrieKey};
