//! Scripted fault injection.
//!
//! Experiments such as LIFEGUARD (routing around persistent failures) and
//! ARROW (tunneling around black holes) need failures to happen *on
//! schedule*. A [`FaultPlan`] is a time-ordered script of actions the
//! harness applies to the network as the clock passes each trigger time.
//!
//! Link-level actions are applied directly to the `MsgNet`; the
//! session-level actions (`SessionReset`, `CorruptMessage`,
//! `MuxCrash`/`MuxRestart`, …) are interpreted by the emulation harness,
//! which knows which BGP sessions ride which links.

use crate::time::{SimDuration, SimTime};
use crate::transport::NodeId;
use serde::{Deserialize, Serialize};

/// A single scripted action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Take the link between two nodes down.
    LinkDown(NodeId, NodeId),
    /// Bring the link between two nodes back up.
    LinkUp(NodeId, NodeId),
    /// Change the loss rate of the link between two nodes.
    SetLoss(NodeId, NodeId, f64),
    /// Silently drop all traffic transiting an AS-level node (black hole):
    /// interpreted by the AS-level data plane rather than `MsgNet`.
    BlackholeNode(NodeId),
    /// Restore a black-holed node.
    RestoreNode(NodeId),
    /// Abruptly tear down the BGP session(s) between two nodes without
    /// any NOTIFICATION on the wire — the simulated equivalent of a TCP
    /// reset on a flaky tunnel.
    SessionReset(NodeId, NodeId),
    /// Take every link touching a node down at once, cutting the node's
    /// AS off from the rest of the topology.
    PartitionAs(NodeId),
    /// Undo a [`FaultAction::PartitionAs`]: bring every link touching the
    /// node back up.
    HealAs(NodeId),
    /// Corrupt the next message delivered from the first node to the
    /// second: the receiver sees garbage it cannot decode and must send a
    /// NOTIFICATION and drop the session.
    CorruptMessage(NodeId, NodeId),
    /// Corrupt the *attributes* of the next UPDATE delivered from the
    /// first node to the second, in a way RFC 7606 classifies as
    /// recoverable: the receiver treats the announced routes as withdrawn
    /// and keeps the session Established (contrast with
    /// [`FaultAction::CorruptMessage`]).
    CorruptAttributes(NodeId, NodeId),
    /// Permanently add latency to the link between two nodes (a routing
    /// change under the tunnel, a congested transit hop).
    DelaySpike(NodeId, NodeId, SimDuration),
    /// Crash the BGP daemon on a node: volatile state (RIBs, sessions) is
    /// lost; configuration and locally-originated routes persist.
    MuxCrash(NodeId),
    /// Restart a crashed daemon from its persisted configuration.
    MuxRestart(NodeId),
}

/// A time-ordered script of fault actions.
///
/// Actions may be added in any order; they are stably sorted by trigger
/// time on first use, so actions scheduled for the same tick fire in
/// insertion order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultAction)>,
    cursor: usize,
    sorted: bool,
}

impl FaultPlan {
    /// Create an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an action at the given time. Actions may be added in any order;
    /// they are sorted on first use. Equal-time actions keep insertion
    /// order (the sort is stable and runs once, not per insert).
    pub fn at(mut self, time: SimTime, action: FaultAction) -> Self {
        self.events.push((time, action));
        self.sorted = false;
        self
    }

    /// Stable-sort the not-yet-consumed tail by trigger time. Events the
    /// cursor already walked past stay put, so adding actions mid-run is
    /// safe as long as they are in the future.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // `sort_by_key` is a stable sort: equal-time actions keep the
            // order they were inserted in.
            self.events[self.cursor..].sort_by_key(|(t, _)| *t);
            self.sorted = true;
        }
    }

    /// Pop all actions due at or before `now`, in schedule order.
    pub fn due(&mut self, now: SimTime) -> Vec<FaultAction> {
        self.ensure_sorted();
        let mut out = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].0 <= now {
            out.push(self.events[self.cursor].1.clone());
            self.cursor += 1;
        }
        out
    }

    /// The time of the next pending action, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        // The tail may not be sorted yet; scan instead of indexing.
        self.events[self.cursor..].iter().map(|(t, _)| *t).min()
    }

    /// True when every action has been consumed.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Total number of scripted actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the plan has no actions at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_fire_in_time_order() {
        let mut plan = FaultPlan::new()
            .at(
                SimTime::from_secs(20),
                FaultAction::LinkUp(NodeId(1), NodeId(2)),
            )
            .at(
                SimTime::from_secs(10),
                FaultAction::LinkDown(NodeId(1), NodeId(2)),
            );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.next_time(), Some(SimTime::from_secs(10)));
        assert!(plan.due(SimTime::from_secs(5)).is_empty());
        let due = plan.due(SimTime::from_secs(10));
        assert_eq!(due, vec![FaultAction::LinkDown(NodeId(1), NodeId(2))]);
        assert!(!plan.exhausted());
        let due = plan.due(SimTime::from_secs(100));
        assert_eq!(due, vec![FaultAction::LinkUp(NodeId(1), NodeId(2))]);
        assert!(plan.exhausted());
        assert!(plan.due(SimTime::from_secs(200)).is_empty());
    }

    #[test]
    fn simultaneous_actions_preserve_insertion_order() {
        let t = SimTime::from_secs(1);
        let mut plan = FaultPlan::new()
            .at(t, FaultAction::BlackholeNode(NodeId(9)))
            .at(t, FaultAction::SetLoss(NodeId(1), NodeId(2), 0.5));
        let due = plan.due(t);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0], FaultAction::BlackholeNode(NodeId(9)));
    }

    #[test]
    fn same_tick_ordering_survives_many_out_of_order_inserts() {
        // Regression test for the lazy stable sort: interleave inserts at
        // a shared tick with earlier and later events, in scrambled time
        // order, and check the shared-tick actions still fire in exactly
        // the order they were inserted.
        let t = SimTime::from_secs(50);
        let mut plan = FaultPlan::new();
        for i in 0..64u32 {
            // A decoy before and after the shared tick, around each insert.
            plan = plan
                .at(
                    SimTime::from_secs(100 + u64::from(i)),
                    FaultAction::LinkUp(NodeId(i), NodeId(i + 1)),
                )
                .at(t, FaultAction::BlackholeNode(NodeId(i)))
                .at(
                    SimTime::from_millis(u64::from(64 - i)),
                    FaultAction::LinkDown(NodeId(i), NodeId(i + 1)),
                );
        }
        // Everything before the shared tick drains first.
        let early = plan.due(SimTime::from_secs(49));
        assert_eq!(early.len(), 64);
        assert!(early
            .iter()
            .all(|a| matches!(a, FaultAction::LinkDown(_, _))));
        // The shared tick fires in insertion order: node 0, 1, 2, ...
        let same_tick = plan.due(t);
        let expect: Vec<FaultAction> = (0..64)
            .map(|i| FaultAction::BlackholeNode(NodeId(i)))
            .collect();
        assert_eq!(same_tick, expect);
        assert_eq!(plan.due(SimTime::MAX).len(), 64);
        assert!(plan.exhausted());
    }

    #[test]
    fn inserts_after_partial_consumption_sort_into_the_tail() {
        let mut plan = FaultPlan::new()
            .at(
                SimTime::from_secs(10),
                FaultAction::BlackholeNode(NodeId(1)),
            )
            .at(SimTime::from_secs(30), FaultAction::RestoreNode(NodeId(1)));
        assert_eq!(plan.due(SimTime::from_secs(10)).len(), 1);
        // Add a future event out of order relative to the remaining tail.
        plan = plan.at(SimTime::from_secs(20), FaultAction::PartitionAs(NodeId(2)));
        assert_eq!(plan.next_time(), Some(SimTime::from_secs(20)));
        let due = plan.due(SimTime::from_secs(40));
        assert_eq!(
            due,
            vec![
                FaultAction::PartitionAs(NodeId(2)),
                FaultAction::RestoreNode(NodeId(1)),
            ]
        );
    }

    #[test]
    fn chaos_actions_roundtrip_through_serde() {
        let actions = vec![
            FaultAction::SessionReset(NodeId(1), NodeId(2)),
            FaultAction::PartitionAs(NodeId(3)),
            FaultAction::HealAs(NodeId(3)),
            FaultAction::CorruptMessage(NodeId(1), NodeId(2)),
            FaultAction::CorruptAttributes(NodeId(1), NodeId(2)),
            FaultAction::DelaySpike(NodeId(1), NodeId(2), SimDuration::from_millis(50)),
            FaultAction::MuxCrash(NodeId(4)),
            FaultAction::MuxRestart(NodeId(4)),
        ];
        for a in actions {
            let json = serde_json::to_string(&a).expect("serialize");
            let back: FaultAction = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(a, back);
        }
    }

    #[test]
    fn empty_plan() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.exhausted());
        assert_eq!(plan.next_time(), None);
        assert!(plan.due(SimTime::MAX).is_empty());
    }
}
