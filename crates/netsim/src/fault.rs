//! Scripted fault injection.
//!
//! Experiments such as LIFEGUARD (routing around persistent failures) and
//! ARROW (tunneling around black holes) need failures to happen *on
//! schedule*. A [`FaultPlan`] is a time-ordered script of actions the
//! harness applies to the network as the clock passes each trigger time.

use crate::time::SimTime;
use crate::transport::NodeId;
use serde::{Deserialize, Serialize};

/// A single scripted action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Take the link between two nodes down.
    LinkDown(NodeId, NodeId),
    /// Bring the link between two nodes back up.
    LinkUp(NodeId, NodeId),
    /// Change the loss rate of the link between two nodes.
    SetLoss(NodeId, NodeId, f64),
    /// Silently drop all traffic transiting an AS-level node (black hole):
    /// interpreted by the AS-level data plane rather than `MsgNet`.
    BlackholeNode(NodeId),
    /// Restore a black-holed node.
    RestoreNode(NodeId),
}

/// A time-ordered script of fault actions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultAction)>,
    cursor: usize,
}

impl FaultPlan {
    /// Create an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an action at the given time. Actions may be added in any order;
    /// they are sorted on first use.
    pub fn at(mut self, time: SimTime, action: FaultAction) -> Self {
        self.events.push((time, action));
        self.events.sort_by_key(|(t, _)| *t);
        self
    }

    /// Pop all actions due at or before `now`, in schedule order.
    pub fn due(&mut self, now: SimTime) -> Vec<FaultAction> {
        let mut out = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].0 <= now {
            out.push(self.events[self.cursor].1.clone());
            self.cursor += 1;
        }
        out
    }

    /// The time of the next pending action, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.events.get(self.cursor).map(|(t, _)| *t)
    }

    /// True when every action has been consumed.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Total number of scripted actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the plan has no actions at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_fire_in_time_order() {
        let mut plan = FaultPlan::new()
            .at(
                SimTime::from_secs(20),
                FaultAction::LinkUp(NodeId(1), NodeId(2)),
            )
            .at(
                SimTime::from_secs(10),
                FaultAction::LinkDown(NodeId(1), NodeId(2)),
            );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.next_time(), Some(SimTime::from_secs(10)));
        assert!(plan.due(SimTime::from_secs(5)).is_empty());
        let due = plan.due(SimTime::from_secs(10));
        assert_eq!(due, vec![FaultAction::LinkDown(NodeId(1), NodeId(2))]);
        assert!(!plan.exhausted());
        let due = plan.due(SimTime::from_secs(100));
        assert_eq!(due, vec![FaultAction::LinkUp(NodeId(1), NodeId(2))]);
        assert!(plan.exhausted());
        assert!(plan.due(SimTime::from_secs(200)).is_empty());
    }

    #[test]
    fn simultaneous_actions_preserve_insertion_order() {
        let t = SimTime::from_secs(1);
        let mut plan = FaultPlan::new()
            .at(t, FaultAction::BlackholeNode(NodeId(9)))
            .at(t, FaultAction::SetLoss(NodeId(1), NodeId(2), 0.5));
        let due = plan.due(t);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0], FaultAction::BlackholeNode(NodeId(9)));
    }

    #[test]
    fn empty_plan() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.exhausted());
        assert_eq!(plan.next_time(), None);
        assert!(plan.due(SimTime::MAX).is_empty());
    }
}
