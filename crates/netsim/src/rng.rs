//! Deterministic, forkable randomness.
//!
//! Every stochastic decision in the simulation (link loss, peering-request
//! responses, workload shapes) draws from a [`SimRng`] seeded from the
//! experiment seed. Independent subsystems *fork* their own substream with
//! a label so that adding draws in one subsystem does not perturb another —
//! a requirement for reproducible experiments and for meaningful A/B
//! comparisons between testbed configurations.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A seeded random-number generator with labeled forking.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

/// FNV-1a hash, used to mix fork labels into seeds without external deps.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SimRng {
    /// Create a generator from an experiment seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent substream for a named subsystem.
    ///
    /// Forking is a pure function of `(seed, label)`: it does not consume
    /// randomness from `self`, so the order in which subsystems fork does
    /// not matter.
    pub fn fork(&self, label: &str) -> SimRng {
        let child = self.seed ^ fnv1a(label.as_bytes()).rotate_left(17);
        SimRng::new(child.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    /// Uniform `u64` in `[0, bound)`. Returns 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.inner.gen_range(0..bound)
        }
    }

    /// Uniform `usize` in `[0, bound)`. Returns 0 when `bound` is 0.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            lo
        } else {
            self.inner.gen_range(lo..=hi)
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Pick a uniformly random element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        items.choose(&mut self.inner)
    }

    /// Shuffle a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// Sample an exponential with the given mean (inverse-CDF method).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Sample a Pareto (power-law) with minimum `x_min` and shape `alpha`.
    ///
    /// Heavy-tailed draws model the extreme skew of Internet object
    /// populations: prefix counts per AS, routes per peer, resources per
    /// web page.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        x_min / u.powf(1.0 / alpha)
    }

    /// Sample a Zipf-like rank in `[0, n)` with exponent `s` via rejection
    /// on the continuous bounded Pareto. Rank 0 is the most popular item.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        if n <= 1 {
            return 0;
        }
        // Inverse-CDF of the continuous approximation.
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let nf = n as f64;
        let x = if (s - 1.0).abs() < 1e-9 {
            nf.powf(u)
        } else {
            let a = 1.0 - s;
            ((nf.powf(a) - 1.0) * u + 1.0).powf(1.0 / a)
        };
        (x.floor() as usize).min(n - 1)
    }

    /// Sample approximately-normal via the sum of 12 uniforms
    /// (Irwin–Hall), adequate for jitter modeling.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let s: f64 = (0..12).map(|_| self.inner.gen::<f64>()).sum();
        mean + (s - 6.0) * stddev
    }

    /// Draw `k` distinct indices from `[0, n)`; if `k >= n` returns all.
    pub fn distinct_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx.sort_unstable();
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let av: Vec<u64> = (0..32).map(|_| a.below(1 << 30)).collect();
        let bv: Vec<u64> = (0..32).map(|_| b.below(1 << 30)).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn fork_is_order_independent_and_label_sensitive() {
        let root = SimRng::new(42);
        let mut f1 = root.fork("links");
        let mut f2 = root.fork("workload");
        let mut f1_again = root.fork("links");
        assert_eq!(f1.below(1 << 20), f1_again.below(1 << 20));
        // Different labels must produce different streams.
        let a: Vec<u64> = (0..16).map(|_| f1.below(1 << 20)).collect();
        let b: Vec<u64> = (0..16).map(|_| f2.below(1 << 20)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(7.0));
    }

    #[test]
    fn chance_frequency_roughly_matches() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn below_zero_bound() {
        let mut r = SimRng::new(5);
        assert_eq!(r.below(0), 0);
        assert_eq!(r.index(0), 0);
        assert_eq!(r.range_inclusive(9, 3), 9);
    }

    #[test]
    fn pick_and_shuffle() {
        let mut r = SimRng::new(9);
        assert!(r.pick::<u32>(&[]).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(r.pick(&items).unwrap()));
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exp(5.0)).sum();
        let mean = total / n as f64;
        assert!((4.5..5.5).contains(&mean), "mean={mean}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = SimRng::new(17);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut r = SimRng::new(19);
        let n = 1000;
        let draws: Vec<usize> = (0..20_000).map(|_| r.zipf(n, 1.1)).collect();
        assert!(draws.iter().all(|&d| d < n));
        let low = draws.iter().filter(|&&d| d < 10).count();
        let high = draws.iter().filter(|&&d| d >= n - 10).count();
        assert!(low > high * 3, "low={low} high={high}");
    }

    #[test]
    fn zipf_tiny_populations() {
        let mut r = SimRng::new(23);
        assert_eq!(r.zipf(0, 1.0), 0);
        assert_eq!(r.zipf(1, 1.0), 0);
        for _ in 0..100 {
            assert!(r.zipf(2, 1.0) < 2);
        }
    }

    #[test]
    fn distinct_indices_are_distinct_and_sorted() {
        let mut r = SimRng::new(29);
        let idx = r.distinct_indices(50, 10);
        assert_eq!(idx.len(), 10);
        for w in idx.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(r.distinct_indices(3, 10).len(), 3);
    }

    #[test]
    fn normal_is_centered() {
        let mut r = SimRng::new(31);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.normal(10.0, 2.0)).sum::<f64>() / n as f64;
        assert!((9.8..10.2).contains(&mean), "mean={mean}");
    }
}
