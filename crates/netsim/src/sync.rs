//! Synchronization shim: std primitives normally, loom under `--features loom`.
//!
//! The simulation core is single-threaded and deterministic, but ROADMAP
//! item 1 (the sharded parallel event engine) will move the event queue
//! behind shared-state primitives. Everything that will cross a thread
//! boundary must import `Arc`/`Mutex` from *this* module instead of
//! `std::sync`, so the same code can be compiled against loom's
//! model-checked primitives and exhaustively interleaved before the
//! parallel engine lands. See DESIGN.md §13 for the gating rules.

#[cfg(feature = "loom")]
pub use loom::sync::{Arc, Condvar, Mutex, MutexGuard};

#[cfg(not(feature = "loom"))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};
