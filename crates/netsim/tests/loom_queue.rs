//! Loom model checks for [`peering_netsim::SharedEventQueue`].
//!
//! Compiled only under `--features loom`, which swaps the `sync` shim
//! from `std::sync` to loom's model-checked primitives. Under real loom
//! every interleaving of the spawned threads is explored; under the
//! offline stand-in a single interleaving runs, keeping the harness
//! exercised until the real dependency is available.
//!
//! Run with: `cargo test -p peering-netsim --features loom`
#![cfg(feature = "loom")]

use peering_netsim::{SharedEventQueue, SimTime};

/// Two concurrent pushers, then drain: every pushed event must be
/// popped exactly once and pop times must be non-decreasing, in every
/// interleaving of the pushes.
#[test]
fn concurrent_pushes_pop_exactly_once_in_time_order() {
    loom::model(|| {
        let q: SharedEventQueue<u32> = SharedEventQueue::new();
        let a = q.clone();
        let b = q.clone();
        let ta = loom::thread::spawn(move || {
            a.push(SimTime::from_secs(1), 1);
            a.push(SimTime::from_secs(3), 3);
        });
        let tb = loom::thread::spawn(move || {
            b.push(SimTime::from_secs(2), 2);
        });
        ta.join().expect("pusher a");
        tb.join().expect("pusher b");

        assert_eq!(q.len(), 3);
        let mut seen = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, payload)) = q.pop() {
            assert!(t >= last, "pop times must be non-decreasing");
            last = t;
            seen.push(payload);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3], "each event popped exactly once");
    });
}

/// A pusher racing a popper: the popper may see 0..=2 events, but
/// whatever it sees is time-monotonic, and the remainder drains cleanly.
#[test]
fn racing_popper_stays_monotonic() {
    loom::model(|| {
        let q: SharedEventQueue<u8> = SharedEventQueue::new();
        let pusher = q.clone();
        let popper = q.clone();
        let tp = loom::thread::spawn(move || {
            pusher.push(SimTime::from_millis(10), 1);
            pusher.push(SimTime::from_millis(20), 2);
        });
        let tc = loom::thread::spawn(move || {
            let mut got = 0usize;
            let mut last = SimTime::ZERO;
            while got < 2 {
                match popper.pop() {
                    Some((t, _)) => {
                        assert!(t >= last);
                        last = t;
                        got += 1;
                    }
                    None => loom::thread::yield_now(),
                }
            }
            got
        });
        tp.join().expect("pusher");
        let drained = tc.join().expect("popper");
        assert_eq!(drained, 2);
        assert!(q.is_empty());
    });
}
