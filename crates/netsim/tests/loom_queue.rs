//! Loom model checks for [`peering_netsim::SharedEventQueue`] and the
//! parallel engine's [`peering_netsim::EpochBarrier`] shard barrier.
//!
//! Compiled only under `--features loom`, which swaps the `sync` shim
//! from `std::sync` to loom's model-checked primitives. Under real loom
//! every interleaving of the spawned threads is explored; under the
//! offline stand-in a single interleaving runs, keeping the harness
//! exercised until the real dependency is available.
//!
//! Run with: `cargo test -p peering-netsim --features loom`
#![cfg(feature = "loom")]

use peering_netsim::{EpochBarrier, SharedEventQueue, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};

/// Two concurrent pushers, then drain: every pushed event must be
/// popped exactly once and pop times must be non-decreasing, in every
/// interleaving of the pushes.
#[test]
fn concurrent_pushes_pop_exactly_once_in_time_order() {
    loom::model(|| {
        let q: SharedEventQueue<u32> = SharedEventQueue::new();
        let a = q.clone();
        let b = q.clone();
        let ta = loom::thread::spawn(move || {
            a.push(SimTime::from_secs(1), 1);
            a.push(SimTime::from_secs(3), 3);
        });
        let tb = loom::thread::spawn(move || {
            b.push(SimTime::from_secs(2), 2);
        });
        ta.join().expect("pusher a");
        tb.join().expect("pusher b");

        assert_eq!(q.len(), 3);
        let mut seen = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, payload)) = q.pop() {
            assert!(t >= last, "pop times must be non-decreasing");
            last = t;
            seen.push(payload);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3], "each event popped exactly once");
    });
}

/// A pusher racing a popper: the popper may see 0..=2 events, but
/// whatever it sees is time-monotonic, and the remainder drains cleanly.
#[test]
fn racing_popper_stays_monotonic() {
    loom::model(|| {
        let q: SharedEventQueue<u8> = SharedEventQueue::new();
        let pusher = q.clone();
        let popper = q.clone();
        let tp = loom::thread::spawn(move || {
            pusher.push(SimTime::from_millis(10), 1);
            pusher.push(SimTime::from_millis(20), 2);
        });
        let tc = loom::thread::spawn(move || {
            let mut got = 0usize;
            let mut last = SimTime::ZERO;
            while got < 2 {
                match popper.pop() {
                    Some((t, _)) => {
                        assert!(t >= last);
                        last = t;
                        got += 1;
                    }
                    None => loom::thread::yield_now(),
                }
            }
            got
        });
        tp.join().expect("pusher");
        let drained = tc.join().expect("popper");
        assert_eq!(drained, 2);
        assert!(q.is_empty());
    });
}

/// The barrier's decide closure runs exactly once per epoch, and every
/// party observes that epoch's value — in every interleaving of the
/// arrivals.
#[test]
fn barrier_decides_once_per_epoch_for_all_parties() {
    loom::model(|| {
        let barrier = loom::sync::Arc::new(EpochBarrier::<u64>::new(2));
        let decisions = loom::sync::Arc::new(AtomicU64::new(0));
        const ROUNDS: u64 = 3;
        let worker = |barrier: loom::sync::Arc<EpochBarrier<u64>>,
                      decisions: loom::sync::Arc<AtomicU64>| {
            loom::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..ROUNDS {
                    let v =
                        barrier.arrive_and_decide(|| decisions.fetch_add(1, Ordering::SeqCst) + 1);
                    seen.push(v);
                }
                seen
            })
        };
        let ta = worker(barrier.clone(), decisions.clone());
        let tb = worker(barrier.clone(), decisions.clone());
        let sa = ta.join().expect("party a");
        let sb = tb.join().expect("party b");
        // One decision per epoch, and both parties agreed on each
        // epoch's value (epochs are totally ordered by the barrier).
        assert_eq!(decisions.load(Ordering::SeqCst), ROUNDS);
        assert_eq!(sa, sb, "parties must observe identical epoch values");
        assert_eq!(sa, vec![1, 2, 3]);
    });
}

/// The conservative-barrier invariant: a cross-shard event pushed
/// *before* the sender arrives at the barrier is always visible to the
/// destination shard *after* it passes the same epoch. No event
/// crosses the barrier early (the receiver never sees it before its
/// own arrival) and none is lost.
#[test]
fn cross_shard_event_never_crosses_barrier_early() {
    loom::model(|| {
        let inbox: SharedEventQueue<u32> = SharedEventQueue::new();
        let barrier = loom::sync::Arc::new(EpochBarrier::<()>::new(2));

        let sender_inbox = inbox.clone();
        let sender_barrier = barrier.clone();
        let sender = loom::thread::spawn(move || {
            // Window [0, L): emit a cross-shard event for the *next*
            // window, then arrive.
            sender_inbox.push(SimTime::from_millis(10), 7);
            sender_barrier.arrive_and_decide(|| ());
        });

        let receiver_inbox = inbox.clone();
        let receiver_barrier = barrier.clone();
        let receiver = loom::thread::spawn(move || {
            // Past the barrier, the sender's pre-arrival push must be
            // fully visible: conservative lookahead only works if the
            // inbox drain after the epoch sees every event for the
            // next window.
            receiver_barrier.arrive_and_decide(|| ());
            let mut drained = Vec::new();
            while let Some((t, v)) = receiver_inbox.pop() {
                drained.push((t, v));
            }
            drained
        });

        sender.join().expect("sender");
        let drained = receiver.join().expect("receiver");
        assert_eq!(
            drained,
            vec![(SimTime::from_millis(10), 7)],
            "event pushed before the barrier must be visible after it"
        );
    });
}

/// Multiple shards pushing into one destination inbox concurrently,
/// then a barrier, then the destination drains: every event survives,
/// in time order, regardless of push interleaving.
#[test]
fn no_lost_events_under_concurrent_shard_pushers() {
    loom::model(|| {
        let inbox: SharedEventQueue<u32> = SharedEventQueue::new();
        let barrier = loom::sync::Arc::new(EpochBarrier::<()>::new(3));

        let spawn_pusher = |events: Vec<(u64, u32)>| {
            let q = inbox.clone();
            let b = barrier.clone();
            loom::thread::spawn(move || {
                for (ms, payload) in events {
                    q.push(SimTime::from_millis(ms), payload);
                }
                b.arrive_and_decide(|| ());
            })
        };
        let p1 = spawn_pusher(vec![(30, 1), (10, 2)]);
        let p2 = spawn_pusher(vec![(20, 3)]);

        let q = inbox.clone();
        let b = barrier.clone();
        let consumer = loom::thread::spawn(move || {
            b.arrive_and_decide(|| ());
            let mut times = Vec::new();
            let mut payloads = Vec::new();
            while let Some((t, v)) = q.pop() {
                times.push(t);
                payloads.push(v);
            }
            payloads.sort_unstable();
            (times, payloads)
        });

        p1.join().expect("pusher 1");
        p2.join().expect("pusher 2");
        let (times, payloads) = consumer.join().expect("consumer");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "drain is time-ordered"
        );
        assert_eq!(payloads, vec![1, 2, 3], "no event lost, none duplicated");
    });
}
