//! Property tests for the binary radix trie, cross-checked against a
//! naive `BTreeMap<Prefix, _>` model: any operation sequence must leave
//! the trie and the model agreeing on contents, order, exact lookups,
//! longest-prefix match, and covered/covering range queries — including
//! the v4/v6 boundary cases (default routes, host routes) and
//! ADD-PATH-style multi-valued entries.

use peering_netsim::{Ipv4Net, Ipv6Net, Prefix, PrefixTrie};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Dense v4 prefixes: four top nibbles, every length, so sequences
/// collide, nest, and split trie nodes constantly.
fn arb_v4_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..4, any::<u32>(), 0u8..=32).prop_map(|(hi, bits, len)| {
        let addr = (hi << 28) | (bits & 0x0fff_ffff);
        Prefix::V4(Ipv4Net::new(Ipv4Addr::from(addr), len))
    })
}

/// Dense v6 prefixes covering the full 0..=128 length range.
fn arb_v6_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..4, any::<u64>(), 0u8..=128).prop_map(|(hi, bits, len)| {
        let addr = ((hi as u128) << 124) | ((bits as u128) << 30);
        Prefix::V6(Ipv6Net::new(Ipv6Addr::from(addr), len))
    })
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![arb_v4_prefix(), arb_v6_prefix()]
}

/// One mutation against both trie and model.
#[derive(Debug, Clone)]
enum Op {
    Insert(Prefix, i32),
    Remove(Prefix),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (arb_prefix(), any::<i32>()).prop_map(|(p, v)| Op::Insert(p, v)),
            1 => arb_prefix().prop_map(Op::Remove),
        ],
        0..100,
    )
}

fn apply(ops: &[Op]) -> (PrefixTrie<i32>, BTreeMap<Prefix, i32>) {
    let mut trie = PrefixTrie::new();
    let mut model = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(p, v) => {
                assert_eq!(trie.insert(*p, *v), model.insert(*p, *v), "insert {p:?}");
            }
            Op::Remove(p) => {
                assert_eq!(trie.remove(p), model.remove(p), "remove {p:?}");
            }
        }
    }
    (trie, model)
}

fn contains_ip(p: &Prefix, ip: IpAddr) -> bool {
    match (p, ip) {
        (Prefix::V4(n), IpAddr::V4(a)) => n.contains(a),
        (Prefix::V6(n), IpAddr::V6(a)) => n.contains(a),
        _ => false,
    }
}

proptest! {
    /// Contents and iteration order match the model exactly after any
    /// operation sequence (iter order is the model's sort order — that
    /// is what keeps Loc-RIB digests stable across the trie swap).
    #[test]
    fn trie_matches_model(ops in arb_ops()) {
        let (trie, model) = apply(&ops);
        prop_assert_eq!(trie.len(), model.len());
        prop_assert_eq!(trie.is_empty(), model.is_empty());
        let got: Vec<(Prefix, i32)> = trie.iter().map(|(p, v)| (p, *v)).collect();
        let want: Vec<(Prefix, i32)> = model.iter().map(|(p, v)| (*p, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Exact-match get agrees with the model for present and absent keys.
    #[test]
    fn get_matches_model(ops in arb_ops(), probe in proptest::collection::vec(arb_prefix(), 8)) {
        let (trie, model) = apply(&ops);
        for p in model.keys() {
            prop_assert_eq!(trie.get(p), model.get(p));
        }
        for p in &probe {
            prop_assert_eq!(trie.get(p), model.get(p));
        }
    }

    /// Longest-prefix match equals the naive "most specific covering
    /// entry" over the model, for both families.
    #[test]
    fn lpm_matches_model(ops in arb_ops(), v4 in any::<u32>(), v6 in any::<u64>()) {
        let (trie, model) = apply(&ops);
        let probes = [
            IpAddr::V4(Ipv4Addr::from(v4 & 0x3fff_ffff)),
            IpAddr::V4(Ipv4Addr::from(v4)),
            IpAddr::V6(Ipv6Addr::from(((v6 as u128) << 30) | 1)),
        ];
        for ip in probes {
            let want = model
                .iter()
                .filter(|(p, _)| contains_ip(p, ip))
                .max_by_key(|(p, _)| p.len())
                .map(|(p, v)| (*p, *v));
            let got = trie.longest_match(ip).map(|(p, v)| (p, *v));
            prop_assert_eq!(got, want, "lpm for {}", ip);
        }
    }

    /// `covered` returns exactly the model entries under the query, in
    /// sorted order; `covering` returns exactly the chain above it,
    /// shortest first.
    #[test]
    fn range_queries_match_model(ops in arb_ops(), q in arb_prefix()) {
        let (trie, model) = apply(&ops);
        let got: Vec<(Prefix, i32)> = trie.covered(&q).map(|(p, v)| (p, *v)).collect();
        let want: Vec<(Prefix, i32)> = model
            .iter()
            .filter(|(p, _)| q.covers(p))
            .map(|(p, v)| (*p, *v))
            .collect();
        prop_assert_eq!(got, want, "covered({:?})", q);

        let got: Vec<(Prefix, i32)> = trie.covering(&q).into_iter().map(|(p, v)| (p, *v)).collect();
        let mut want: Vec<(Prefix, i32)> = model
            .iter()
            .filter(|(p, _)| p.covers(&q))
            .map(|(p, v)| (*p, *v))
            .collect();
        want.sort_by_key(|(p, _)| p.len());
        prop_assert_eq!(got, want, "covering({:?})", q);
    }
}

#[test]
fn default_routes_and_host_routes_coexist() {
    let mut t = PrefixTrie::new();
    let v4_default = Prefix::V4(Ipv4Net::new(Ipv4Addr::UNSPECIFIED, 0));
    let v6_default = Prefix::V6(Ipv6Net::new(Ipv6Addr::UNSPECIFIED, 0));
    let v4_host = Prefix::v4(192, 0, 2, 1, 32);
    let v6_host = Prefix::V6(Ipv6Net::new(Ipv6Addr::from(1u128), 128));
    t.insert(v4_default, 1);
    t.insert(v6_default, 2);
    t.insert(v4_host, 3);
    t.insert(v6_host, 4);
    assert_eq!(t.len(), 4);

    // Host routes win LPM over defaults; defaults catch everything else.
    fn lpm(t: &PrefixTrie<i32>, ip: IpAddr) -> Option<(Prefix, i32)> {
        t.longest_match(ip).map(|(p, v)| (p, *v))
    }
    assert_eq!(lpm(&t, "192.0.2.1".parse().unwrap()), Some((v4_host, 3)));
    assert_eq!(lpm(&t, "8.8.8.8".parse().unwrap()), Some((v4_default, 1)));
    assert_eq!(
        lpm(&t, IpAddr::V6(Ipv6Addr::from(1u128))),
        Some((v6_host, 4))
    );
    assert_eq!(
        lpm(&t, IpAddr::V6(Ipv6Addr::from(2u128))),
        Some((v6_default, 2))
    );

    // The v4 default covers every v4 entry and no v6 entry.
    let under: Vec<Prefix> = t.covered(&v4_default).map(|(p, _)| p).collect();
    assert_eq!(under, vec![v4_default, v4_host]);

    // Removing the defaults leaves host routes reachable.
    assert_eq!(t.remove(&v4_default), Some(1));
    assert_eq!(t.remove(&v6_default), Some(2));
    assert_eq!(lpm(&t, "8.8.8.8".parse().unwrap()), None);
    assert_eq!(lpm(&t, "192.0.2.1".parse().unwrap()), Some((v4_host, 3)));
}

#[test]
fn add_path_style_multivalued_entries() {
    // ADD-PATH RIBs hang several paths off one NLRI: model that as a
    // Vec value and mutate it in place through `get_mut`.
    let mut t: PrefixTrie<Vec<(u32, &str)>> = PrefixTrie::new();
    let p = Prefix::v4(203, 0, 113, 0, 24);
    t.insert(p, vec![(0, "primary")]);
    t.get_mut(&p).unwrap().push((1, "backup"));
    t.get_mut(&p).unwrap().push((2, "anycast"));
    assert_eq!(t.get(&p).unwrap().len(), 3);
    // Replacement returns the whole path set.
    let old = t.insert(p, vec![(0, "fresh")]).unwrap();
    assert_eq!(old.len(), 3);
    assert_eq!(t.get(&p).unwrap()[0].1, "fresh");
}
