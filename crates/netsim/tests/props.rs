//! Property tests for the simulation substrate: prefix algebra, the
//! event queue's ordering guarantees, and LPM correctness against a
//! naive reference.

use peering_netsim::{EventQueue, ForwardingTable, Ipv4Net, Prefix, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_v4net() -> impl Strategy<Value = Ipv4Net> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Net::new(Ipv4Addr::from(addr), len))
}

proptest! {
    /// Construction masks host bits: the network address re-parses to
    /// itself and every contained address maps back into the net.
    #[test]
    fn v4net_is_canonical(net in arb_v4net(), offset in any::<u32>()) {
        let rebuilt = Ipv4Net::new(net.network(), net.len());
        prop_assert_eq!(net, rebuilt);
        if net.len() > 0 {
            let inside = net.addr_at(offset % net.size().min(u32::MAX as u64) as u32);
            prop_assert!(net.contains(inside));
        }
    }

    /// covers() is a partial order: reflexive, antisymmetric (on equal
    /// lengths), and consistent with contains().
    #[test]
    fn covers_partial_order(a in arb_v4net(), b in arb_v4net()) {
        prop_assert!(a.covers(&a));
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(a, b);
        }
        if a.covers(&b) {
            // Every address of b is inside a.
            prop_assert!(a.contains(b.network()));
            prop_assert!(a.len() <= b.len());
        }
        // overlaps is symmetric.
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    /// subnets() partitions the parent exactly: disjoint, covering, and
    /// summing to the parent's size.
    #[test]
    fn subnets_partition(net in (any::<u32>(), 0u8..=24).prop_map(|(a, l)| Ipv4Net::new(Ipv4Addr::from(a), l)),
                         extra in 0u8..=6) {
        let sub_len = net.len() + extra;
        let subs = net.subnets(sub_len);
        prop_assert_eq!(subs.len(), 1usize << extra);
        let total: u64 = subs.iter().map(|s| s.size()).sum();
        prop_assert_eq!(total, net.size());
        for (i, s) in subs.iter().enumerate() {
            prop_assert!(net.covers(s));
            for t in &subs[i+1..] {
                prop_assert!(!s.overlaps(t));
            }
        }
    }

    /// Prefix parsing and display round-trip.
    #[test]
    fn prefix_display_roundtrip(net in arb_v4net()) {
        let p = Prefix::V4(net);
        let parsed: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(p, parsed);
    }

    /// The event queue pops in non-decreasing time order with FIFO ties,
    /// regardless of push order.
    #[test]
    fn event_queue_is_monotonic_and_stable(times in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut prev_t = None;
        let mut count = 0;
        while let Some((t, idx)) = q.pop() {
            count += 1;
            prop_assert!(t >= last_time);
            if prev_t == Some(t) {
                // FIFO within equal timestamps: indices increase.
                prop_assert!(seen_at_time.last().map(|&l| l < idx).unwrap_or(true));
                seen_at_time.push(idx);
            } else {
                seen_at_time.clear();
                seen_at_time.push(idx);
            }
            prev_t = Some(t);
            last_time = t;
        }
        prop_assert_eq!(count, times.len());
    }

    /// LPM lookup agrees with a brute-force scan over all entries.
    #[test]
    fn lpm_matches_reference(entries in proptest::collection::vec((any::<u32>(), 8u8..=28), 1..40),
                             probes in proptest::collection::vec(any::<u32>(), 1..40)) {
        let mut table = ForwardingTable::new();
        let mut reference: Vec<(Ipv4Net, usize)> = Vec::new();
        for (i, (addr, len)) in entries.iter().enumerate() {
            let net = Ipv4Net::new(Ipv4Addr::from(*addr), *len);
            table.insert(net, i);
            reference.retain(|(n, _)| *n != net);
            reference.push((net, i));
        }
        for p in probes {
            let ip = Ipv4Addr::from(p);
            let got = table.lookup(ip).map(|(n, v)| (n, *v));
            let expect = reference
                .iter()
                .filter(|(n, _)| n.contains(ip))
                .max_by_key(|(n, _)| n.len())
                .map(|(n, v)| (*n, *v));
            prop_assert_eq!(got, expect);
        }
    }

    /// Insert/remove keeps the table count exact.
    #[test]
    fn table_len_accounting(ops in proptest::collection::vec((any::<u32>(), 8u8..=24, any::<bool>()), 1..60)) {
        let mut table = ForwardingTable::new();
        let mut reference = std::collections::HashMap::new();
        for (addr, len, insert) in ops {
            let net = Ipv4Net::new(Ipv4Addr::from(addr), len);
            if insert {
                table.insert(net, ());
                reference.insert(net, ());
            } else {
                table.remove(&net);
                reference.remove(&net);
            }
            prop_assert_eq!(table.len(), reference.len());
        }
    }
}
