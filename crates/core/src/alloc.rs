//! Prefix and ASN allocation.
//!
//! PEERING owns an IPv4 /19 and delegates a /24 to each experiment,
//! isolating simultaneous experiments from one another; "PEERING
//! scalability depends on the number of available prefixes", and
//! researchers can donate more pools. The testbed also plans to hold
//! multiple public ASNs to ease multi-origin experiments.

use peering_netsim::{Asn, Ipv4Net, Ipv6Net};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// Every /24 in every pool is in use.
    Exhausted,
    /// The prefix being released is not an allocation we made.
    UnknownAllocation(Ipv4Net),
    /// A donated pool overlaps one we already manage.
    OverlappingPool(Ipv4Net),
    /// No IPv6 pool configured, or it is exhausted.
    V6Unavailable,
    /// The v6 prefix being released is not an allocation we made.
    UnknownV6Allocation(Ipv6Net),
    /// The allocator was built with an empty ASN list.
    NoAsns,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Exhausted => write!(f, "prefix pool exhausted"),
            AllocError::UnknownAllocation(p) => write!(f, "{p} was not allocated by this pool"),
            AllocError::OverlappingPool(p) => write!(f, "pool {p} overlaps an existing pool"),
            AllocError::V6Unavailable => write!(f, "no IPv6 pool available"),
            AllocError::UnknownV6Allocation(p) => {
                write!(f, "{p} was not allocated by this pool")
            }
            AllocError::NoAsns => write!(f, "allocator has no public ASNs"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Allocates /24 experiment prefixes from one or more pools, plus ASNs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixAllocator {
    pools: Vec<Ipv4Net>,
    free: Vec<Ipv4Net>,
    // prefix -> experiment tag
    allocated: BTreeMap<Ipv4Net, u32>,
    asns: Vec<Asn>,
    asn_cursor: usize,
    v6_pool: Option<Ipv6Net>,
    free_v6: Vec<Ipv6Net>,
    allocated_v6: BTreeMap<Ipv6Net, u32>,
}

impl PrefixAllocator {
    /// The experiment prefix length.
    pub const EXPERIMENT_LEN: u8 = 24;
    /// The IPv6 experiment prefix length.
    pub const EXPERIMENT_V6_LEN: u8 = 48;

    /// An allocator over the testbed's primary pool and ASN list.
    pub fn new(pool: Ipv4Net, asns: Vec<Asn>) -> Self {
        let mut free = pool.subnets(Self::EXPERIMENT_LEN);
        free.reverse(); // pop from the low end first
        PrefixAllocator {
            pools: vec![pool],
            free,
            allocated: BTreeMap::new(),
            asns,
            asn_cursor: 0,
            v6_pool: None,
            free_v6: Vec::new(),
            allocated_v6: BTreeMap::new(),
        }
    }

    /// The conventional PEERING allocator: 184.164.224.0/19 plus the
    /// testbed's IPv6 /32 (2804:269c::/32), AS47065.
    pub fn peering_default() -> Self {
        PrefixAllocator::new(
            "184.164.224.0/19".parse().expect("valid pool"),
            vec![Asn::PEERING],
        )
        .with_v6_pool("2804:269c::/32".parse().expect("valid v6 pool"), 64)
    }

    /// Attach an IPv6 pool, carving up to `slots` /48 experiment
    /// prefixes out of it ("we also plan to add support for IPv6", §3).
    pub fn with_v6_pool(mut self, pool: Ipv6Net, slots: usize) -> Self {
        let mut free = pool.subnets(Self::EXPERIMENT_V6_LEN, slots);
        free.reverse();
        self.v6_pool = Some(pool);
        self.free_v6 = free;
        self.allocated_v6 = BTreeMap::new();
        self
    }

    /// Add a donated pool.
    pub fn donate_pool(&mut self, pool: Ipv4Net) -> Result<(), AllocError> {
        if self.pools.iter().any(|p| p.overlaps(&pool)) {
            return Err(AllocError::OverlappingPool(pool));
        }
        let mut subs = pool.subnets(Self::EXPERIMENT_LEN);
        subs.reverse();
        // New pool prefixes go behind remaining primary ones.
        let mut merged = std::mem::take(&mut self.free);
        merged.splice(0..0, subs);
        self.free = merged;
        self.pools.push(pool);
        Ok(())
    }

    /// Allocate a /24 for experiment `tag`.
    pub fn allocate(&mut self, tag: u32) -> Result<Ipv4Net, AllocError> {
        let p = self.free.pop().ok_or(AllocError::Exhausted)?;
        self.allocated.insert(p, tag);
        Ok(p)
    }

    /// Release an allocation back to the pool.
    pub fn release(&mut self, prefix: Ipv4Net) -> Result<(), AllocError> {
        if self.allocated.remove(&prefix).is_none() {
            return Err(AllocError::UnknownAllocation(prefix));
        }
        self.free.push(prefix);
        Ok(())
    }

    /// Which experiment holds a prefix (or covers the queried one).
    pub fn owner_of(&self, prefix: &Ipv4Net) -> Option<u32> {
        self.allocated
            .iter()
            .find_map(|(p, tag)| if p.covers(prefix) { Some(*tag) } else { None })
    }

    /// True if `prefix` is inside any managed pool.
    pub fn in_pool(&self, prefix: &Ipv4Net) -> bool {
        self.pools.iter().any(|p| p.covers(prefix))
    }

    /// The managed pools.
    pub fn pools(&self) -> &[Ipv4Net] {
        &self.pools
    }

    /// Remaining capacity in experiments.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Current allocations `(prefix, tag)`.
    pub fn allocations(&self) -> impl Iterator<Item = (&Ipv4Net, &u32)> {
        self.allocated.iter()
    }

    /// Allocate a /48 for experiment `tag`.
    pub fn allocate_v6(&mut self, tag: u32) -> Result<Ipv6Net, AllocError> {
        let p = self.free_v6.pop().ok_or(AllocError::V6Unavailable)?;
        self.allocated_v6.insert(p, tag);
        Ok(p)
    }

    /// Release a v6 allocation back to the pool.
    pub fn release_v6(&mut self, prefix: Ipv6Net) -> Result<(), AllocError> {
        if self.allocated_v6.remove(&prefix).is_none() {
            return Err(AllocError::UnknownV6Allocation(prefix));
        }
        self.free_v6.push(prefix);
        Ok(())
    }

    /// Which experiment holds a v6 prefix.
    pub fn owner_of_v6(&self, prefix: &Ipv6Net) -> Option<u32> {
        self.allocated_v6.iter().find_map(
            |(p, tag)| {
                if p.covers(prefix) {
                    Some(*tag)
                } else {
                    None
                }
            },
        )
    }

    /// True if `prefix` is inside the v6 pool.
    pub fn in_v6_pool(&self, prefix: &Ipv6Net) -> bool {
        self.v6_pool.map(|p| p.covers(prefix)).unwrap_or(false)
    }

    /// The managed v6 pool, if any.
    pub fn v6_pool(&self) -> Option<Ipv6Net> {
        self.v6_pool
    }

    /// Remaining v6 capacity in experiments.
    pub fn available_v6(&self) -> usize {
        self.free_v6.len()
    }

    /// The testbed's public ASN(s), round-robin for multi-ASN experiments.
    pub fn next_asn(&mut self) -> Result<Asn, AllocError> {
        if self.asns.is_empty() {
            return Err(AllocError::NoAsns);
        }
        let asn = self.asns[self.asn_cursor % self.asns.len()];
        self.asn_cursor += 1;
        Ok(asn)
    }

    /// The primary public ASN.
    pub fn primary_asn(&self) -> Result<Asn, AllocError> {
        self.asns.first().copied().ok_or(AllocError::NoAsns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_gives_32_experiments() {
        let mut a = PrefixAllocator::peering_default();
        assert_eq!(a.available(), 32, "a /19 holds 32 /24s");
        let first = a.allocate(1).unwrap();
        assert_eq!(first.to_string(), "184.164.224.0/24");
        assert_eq!(a.available(), 31);
        assert_eq!(a.owner_of(&first), Some(1));
        assert!(a.in_pool(&first));
    }

    #[test]
    fn allocations_never_overlap() {
        let mut a = PrefixAllocator::peering_default();
        let mut got = Vec::new();
        while let Ok(p) = a.allocate(7) {
            got.push(p);
        }
        assert_eq!(got.len(), 32);
        for i in 0..got.len() {
            for j in (i + 1)..got.len() {
                assert!(!got[i].overlaps(&got[j]));
            }
        }
        assert_eq!(a.allocate(9), Err(AllocError::Exhausted));
    }

    #[test]
    fn release_and_reuse() {
        let mut a = PrefixAllocator::peering_default();
        let p = a.allocate(1).unwrap();
        a.release(p).unwrap();
        assert_eq!(a.owner_of(&p), None);
        assert_eq!(a.available(), 32);
        // Double release is an error.
        assert_eq!(a.release(p), Err(AllocError::UnknownAllocation(p)));
        // The prefix comes back out eventually.
        let mut seen = false;
        while let Ok(q) = a.allocate(2) {
            if q == p {
                seen = true;
            }
        }
        assert!(seen);
    }

    #[test]
    fn owner_covers_more_specifics() {
        let mut a = PrefixAllocator::peering_default();
        let p = a.allocate(5).unwrap();
        let more_specific: Ipv4Net = format!("{}/26", p.network()).parse().unwrap();
        assert_eq!(a.owner_of(&more_specific), Some(5));
    }

    #[test]
    fn donated_pools_extend_capacity() {
        let mut a = PrefixAllocator::peering_default();
        a.donate_pool("198.51.100.0/24".parse().unwrap()).unwrap();
        assert_eq!(a.available(), 33);
        // Overlapping donation is rejected.
        assert!(matches!(
            a.donate_pool("184.164.224.0/20".parse().unwrap()),
            Err(AllocError::OverlappingPool(_))
        ));
        assert!(a.in_pool(&"198.51.100.0/24".parse().unwrap()));
    }

    #[test]
    fn primary_pool_drains_before_donations() {
        let mut a = PrefixAllocator::peering_default();
        a.donate_pool("198.51.100.0/24".parse().unwrap()).unwrap();
        let first = a.allocate(1).unwrap();
        assert!(first.to_string().starts_with("184.164."));
    }

    #[test]
    fn v6_allocation_lifecycle() {
        let mut a = PrefixAllocator::peering_default();
        assert_eq!(a.available_v6(), 64);
        assert_eq!(a.v6_pool().unwrap().to_string(), "2804:269c::/32");
        let p = a.allocate_v6(3).unwrap();
        assert_eq!(p.to_string(), "2804:269c::/48");
        assert!(a.in_v6_pool(&p));
        assert_eq!(a.owner_of_v6(&p), Some(3));
        let q = a.allocate_v6(4).unwrap();
        assert!(!p.overlaps(&q));
        a.release_v6(p).unwrap();
        assert_eq!(a.owner_of_v6(&p), None);
        assert_eq!(a.release_v6(p), Err(AllocError::UnknownV6Allocation(p)));
        assert_eq!(a.available_v6(), 63);
    }

    #[test]
    fn v6_without_pool_is_unavailable() {
        let mut a = PrefixAllocator::new("184.164.224.0/19".parse().unwrap(), vec![Asn::PEERING]);
        assert_eq!(a.allocate_v6(1), Err(AllocError::V6Unavailable));
        assert_eq!(a.available_v6(), 0);
        assert!(a.v6_pool().is_none());
    }

    #[test]
    fn asn_round_robin() {
        let mut a = PrefixAllocator::new(
            "184.164.224.0/19".parse().unwrap(),
            vec![Asn(47065), Asn(61574)],
        );
        assert_eq!(a.primary_asn(), Ok(Asn(47065)));
        assert_eq!(a.next_asn(), Ok(Asn(47065)));
        assert_eq!(a.next_asn(), Ok(Asn(61574)));
        assert_eq!(a.next_asn(), Ok(Asn(47065)));
    }

    #[test]
    fn empty_asn_list_is_a_typed_error() {
        let mut a = PrefixAllocator::new("184.164.224.0/19".parse().unwrap(), Vec::new());
        assert_eq!(a.primary_asn(), Err(AllocError::NoAsns));
        assert_eq!(a.next_asn(), Err(AllocError::NoAsns));
        assert!(AllocError::NoAsns.to_string().contains("no public ASNs"));
    }
}
