//! The PEERING testbed — the paper's primary contribution.
//!
//! PEERING "couples an emulated intradomain experiment with real
//! interdomain peering and connectivity": researchers run *clients* that
//! connect to PEERING *servers*; servers hold the real BGP sessions with
//! transit providers and IXP peers, multiplex every peer's routes to
//! every client, enforce safety, and carry experiment traffic over
//! tunnels. This crate implements that whole system against the simulated
//! Internet:
//!
//! * [`alloc`] — carving the testbed's IPv4 /19 (and ASN pool) into
//!   per-experiment /24s; "PEERING supports a client per /24 prefix".
//! * [`safety`] — the §3 safety story: outbound prefix and origin-AS
//!   filters (no hijacks, no leaks), private-ASN stripping, flap
//!   damping, spoofing control, announcement rate limits.
//! * [`mux`] — the BGP multiplexer, in both designs the paper discusses:
//!   Quagga-style one-session-per-peer-per-client, and the BIRD-style
//!   ADD-PATH multiplexed design proposed for large IXPs.
//! * [`server`] / [`client`] — PEERING servers at sites (IXPs and
//!   universities) and researcher-side clients with tunnels.
//! * [`experiment`] — experiment vetting, isolation, and the
//!   announcement scheduler behind the web portal.
//! * [`monitor`] — control-plane update logs and data-plane
//!   measurements the testbed collects automatically.
//! * [`pktproc`] — the lightweight packet-processing API (§3's planned
//!   replacement for heavyweight per-client VMs).
//! * [`portal`] — the researcher portal: account requests, advisory
//!   board vetting, automated provisioning, notifications.
//! * [`capability`] — the Table 1 capability matrix, with PEERING's row
//!   *derived* from the running system rather than asserted.
//! * [`testbed`] — the facade: build the Internet, deploy servers,
//!   obtain peering (route servers + bilateral workflow), run
//!   experiments, measure outcomes.

pub mod alloc;
pub mod capability;
pub mod client;
pub mod containment;
pub mod experiment;
pub mod monitor;
pub mod mux;
pub mod pktproc;
pub mod portal;
pub mod safety;
pub mod server;
pub mod testbed;

pub use alloc::{AllocError, PrefixAllocator};
pub use capability::{peering_row, testbed_matrix, Capabilities, Support, GOALS};
pub use client::PeeringClient;
pub use containment::{
    ContainmentConfig, ContainmentEngine, ContainmentState, TokenBucket, TokenBucketConfig,
    Transition, UpdateVerdict,
};
pub use experiment::{
    AnnouncementSpec, Experiment, ExperimentId, PeerSelector, Schedule, ScheduledAction,
};
pub use monitor::{
    ContainmentRecord, Monitor, ProbeRecord, SessionKind, SessionRecord, TelemetryEvent,
    UpdateKind, UpdateRecord,
};
pub use mux::{MuxDesign, MuxHarness, MuxOptions, MuxStats};
pub use pktproc::{Backend, PacketProcessor, PktAction, PktMatch, PktVerdict};
pub use portal::{Portal, Proposal, ProvisionRequest, RequestId, RequestState, VettingPolicy};
pub use safety::{SafetyConfig, SafetyFilter, SafetyVerdict, Violation};
pub use server::{PeeringServer, SiteKind, SiteSpec};
pub use testbed::{Testbed, TestbedConfig, TestbedError};
