//! Packet processing at PEERING servers.
//!
//! §3: "Researchers can also run lightweight code in VMs on PEERING
//! servers to process packets. They can rewrite, rate-limit, or DPI
//! traffic... The virtual machines allow flexibility but incur high
//! overhead. Going forward, we plan to expose a lightweight packet
//! processing API (e.g., running an OpenFlow software switch or
//! extending Linux's iptables) to provide common packet processing
//! capabilities to clients at lower overhead."
//!
//! [`PacketProcessor`] is that API: an ordered match/action pipeline
//! over experiment traffic, with the execution backend modeled as either
//! a full VM (high per-packet overhead) or the proposed lightweight
//! datapath — the ablation the paper's plan implies.

use peering_netsim::{IpPacket, Ipv4Net, Payload, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Packet predicates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PktMatch {
    /// Always matches.
    Any,
    /// Destination inside a network.
    DstIn(Ipv4Net),
    /// Source inside a network.
    SrcIn(Ipv4Net),
    /// UDP datagram to this destination port.
    UdpDport(u16),
    /// ICMP echo request/reply.
    Icmp,
    /// Payload starts with these bytes (the DPI primitive).
    PayloadPrefix(Vec<u8>),
    /// Negation.
    Not(Box<PktMatch>),
    /// Conjunction.
    All(Vec<PktMatch>),
}

impl PktMatch {
    /// Evaluate against a packet.
    pub fn matches(&self, pkt: &IpPacket) -> bool {
        match self {
            PktMatch::Any => true,
            PktMatch::DstIn(net) => net.contains(pkt.dst),
            PktMatch::SrcIn(net) => net.contains(pkt.src),
            PktMatch::UdpDport(port) => {
                matches!(&pkt.payload, Payload::Udp { dport, .. } if dport == port)
            }
            PktMatch::Icmp => matches!(
                &pkt.payload,
                Payload::EchoRequest { .. } | Payload::EchoReply { .. }
            ),
            PktMatch::PayloadPrefix(bytes) => match &pkt.payload {
                Payload::Udp { data, .. } => data.starts_with(bytes),
                Payload::Raw(data) => data.starts_with(bytes),
                _ => false,
            },
            PktMatch::Not(m) => !m.matches(pkt),
            PktMatch::All(ms) => ms.iter().all(|m| m.matches(pkt)),
        }
    }
}

/// Actions on a matched packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PktAction {
    /// Deliver unchanged (terminal).
    Pass,
    /// Discard (terminal).
    Drop,
    /// Rewrite the destination (decoy-routing style) and continue.
    RewriteDst(Ipv4Addr),
    /// Rewrite the source (NAT style) and continue.
    RewriteSrc(Ipv4Addr),
    /// Enforce a token-bucket rate limit; over-rate packets drop
    /// (terminal when it drops, else continue).
    RateLimit {
        /// Sustained bytes per second.
        bytes_per_sec: u64,
        /// Bucket depth in bytes.
        burst: u64,
    },
    /// Count the packet and continue (monitoring tap).
    Count,
}

/// A processing rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PktRule {
    /// Predicate.
    pub matches: PktMatch,
    /// Actions applied in order.
    pub actions: Vec<PktAction>,
}

/// The execution backend, with its per-packet overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// A VM on the server ("allow flexibility but incur high overhead").
    Vm,
    /// The proposed lightweight datapath (OpenFlow/iptables class).
    Lightweight,
}

impl Backend {
    /// Modeled per-packet processing latency.
    pub fn per_packet_overhead(self) -> SimDuration {
        match self {
            // Context switch + virtio round trip.
            Backend::Vm => SimDuration::from_micros(150),
            // Kernel-path match/action.
            Backend::Lightweight => SimDuration::from_micros(6),
        }
    }
}

/// Per-rule token-bucket state. A fresh bucket starts full (the burst
/// allowance is immediately available).
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    tokens: f64,
    last: SimTime,
    initialized: bool,
}

/// What happened to a processed packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PktVerdict {
    /// Deliver this (possibly rewritten) packet.
    Deliver(IpPacket),
    /// Dropped by policy or rate limit.
    Dropped,
}

/// An ordered match/action pipeline bound to a backend.
#[derive(Debug, Clone)]
pub struct PacketProcessor {
    rules: Vec<PktRule>,
    buckets: Vec<Bucket>,
    /// Execution backend.
    pub backend: Backend,
    /// Packets processed.
    pub processed: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets counted by `Count` actions.
    pub counted: u64,
    /// Cumulative processing latency spent.
    pub busy: SimDuration,
}

impl PacketProcessor {
    /// An empty pipeline (passes everything) on a backend.
    pub fn new(backend: Backend) -> Self {
        PacketProcessor {
            rules: Vec::new(),
            buckets: Vec::new(),
            backend,
            processed: 0,
            dropped: 0,
            counted: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Append a rule.
    pub fn rule(mut self, matches: PktMatch, actions: Vec<PktAction>) -> Self {
        self.rules.push(PktRule { matches, actions });
        self.buckets.push(Bucket::default());
        self
    }

    /// Process one packet at `now`. First terminal action decides; a
    /// packet matching no rule passes unchanged.
    pub fn process(&mut self, mut pkt: IpPacket, now: SimTime) -> PktVerdict {
        self.processed += 1;
        self.busy += self.backend.per_packet_overhead();
        let size = pkt.size() as f64;
        for (i, rule) in self.rules.iter().enumerate() {
            if !rule.matches.matches(&pkt) {
                continue;
            }
            for action in &rule.actions {
                match action {
                    PktAction::Pass => return PktVerdict::Deliver(pkt),
                    PktAction::Drop => {
                        self.dropped += 1;
                        return PktVerdict::Dropped;
                    }
                    PktAction::RewriteDst(ip) => pkt.dst = *ip,
                    PktAction::RewriteSrc(ip) => pkt.src = *ip,
                    PktAction::Count => self.counted += 1,
                    PktAction::RateLimit {
                        bytes_per_sec,
                        burst,
                    } => {
                        let b = &mut self.buckets[i];
                        if !b.initialized {
                            b.initialized = true;
                            b.tokens = *burst as f64;
                            b.last = now;
                        }
                        let dt = now.since(b.last).as_secs_f64();
                        b.last = now;
                        b.tokens = (b.tokens + dt * *bytes_per_sec as f64).min(*burst as f64);
                        if b.tokens >= size {
                            b.tokens -= size;
                        } else {
                            self.dropped += 1;
                            return PktVerdict::Dropped;
                        }
                    }
                }
            }
        }
        PktVerdict::Deliver(pkt)
    }

    /// Rules installed.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udp(src: &str, dst: &str, dport: u16, data: &[u8]) -> IpPacket {
        IpPacket::new(
            src.parse().unwrap(),
            dst.parse().unwrap(),
            Payload::Udp {
                sport: 40000,
                dport,
                data: data.to_vec(),
            },
        )
    }

    #[test]
    fn match_primitives() {
        let p = udp("10.0.0.1", "184.164.224.5", 53, b"query");
        assert!(PktMatch::Any.matches(&p));
        assert!(PktMatch::DstIn("184.164.224.0/24".parse().unwrap()).matches(&p));
        assert!(!PktMatch::DstIn("10.0.0.0/8".parse().unwrap()).matches(&p));
        assert!(PktMatch::SrcIn("10.0.0.0/8".parse().unwrap()).matches(&p));
        assert!(PktMatch::UdpDport(53).matches(&p));
        assert!(!PktMatch::UdpDport(80).matches(&p));
        assert!(!PktMatch::Icmp.matches(&p));
        assert!(PktMatch::PayloadPrefix(b"que".to_vec()).matches(&p));
        assert!(!PktMatch::PayloadPrefix(b"xx".to_vec()).matches(&p));
        assert!(PktMatch::Not(Box::new(PktMatch::Icmp)).matches(&p));
        assert!(PktMatch::All(vec![PktMatch::UdpDport(53), PktMatch::Any]).matches(&p));
        let ping = IpPacket::echo_request(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            1,
            1,
        );
        assert!(PktMatch::Icmp.matches(&ping));
    }

    #[test]
    fn first_terminal_action_decides() {
        let mut pp = PacketProcessor::new(Backend::Lightweight)
            .rule(PktMatch::UdpDport(23), vec![PktAction::Drop])
            .rule(PktMatch::Any, vec![PktAction::Pass]);
        let telnet = udp("10.0.0.1", "10.0.0.2", 23, b"");
        assert_eq!(pp.process(telnet, SimTime::ZERO), PktVerdict::Dropped);
        let dns = udp("10.0.0.1", "10.0.0.2", 53, b"");
        assert!(matches!(
            pp.process(dns, SimTime::ZERO),
            PktVerdict::Deliver(_)
        ));
        assert_eq!(pp.processed, 2);
        assert_eq!(pp.dropped, 1);
    }

    #[test]
    fn rewrite_and_count_continue() {
        let covert: Ipv4Addr = "198.51.100.9".parse().unwrap();
        let mut pp = PacketProcessor::new(Backend::Lightweight).rule(
            PktMatch::PayloadPrefix(b"DECOY".to_vec()),
            vec![
                PktAction::Count,
                PktAction::RewriteDst(covert),
                PktAction::Pass,
            ],
        );
        let p = udp("10.0.0.1", "203.0.113.80", 443, b"DECOY+payload");
        match pp.process(p, SimTime::ZERO) {
            PktVerdict::Deliver(out) => assert_eq!(out.dst, covert),
            other => panic!("{other:?}"),
        }
        assert_eq!(pp.counted, 1);
    }

    #[test]
    fn unmatched_packets_pass_unchanged() {
        let mut pp =
            PacketProcessor::new(Backend::Vm).rule(PktMatch::UdpDport(9999), vec![PktAction::Drop]);
        let p = udp("10.0.0.1", "10.0.0.2", 53, b"x");
        assert_eq!(pp.process(p.clone(), SimTime::ZERO), PktVerdict::Deliver(p));
    }

    #[test]
    fn rate_limit_enforces_token_bucket() {
        // 1000 B/s, 200 B burst; ~128 B packets.
        let mut pp = PacketProcessor::new(Backend::Lightweight).rule(
            PktMatch::Any,
            vec![
                PktAction::RateLimit {
                    bytes_per_sec: 1000,
                    burst: 200,
                },
                PktAction::Pass,
            ],
        );
        let pkt = udp("10.0.0.1", "10.0.0.2", 80, &[0u8; 100]);
        // Burst allows one packet immediately; the second (t=0) drops.
        assert!(matches!(
            pp.process(pkt.clone(), SimTime::ZERO),
            PktVerdict::Deliver(_)
        ));
        assert_eq!(pp.process(pkt.clone(), SimTime::ZERO), PktVerdict::Dropped);
        // After a second, tokens refill.
        assert!(matches!(
            pp.process(pkt.clone(), SimTime::from_secs(1)),
            PktVerdict::Deliver(_)
        ));
        // Sustained flooding at 10x the rate mostly drops.
        let mut delivered = 0;
        for i in 0..100 {
            let t = SimTime::from_secs(2) + SimDuration::from_millis(i * 10);
            if matches!(pp.process(pkt.clone(), t), PktVerdict::Deliver(_)) {
                delivered += 1;
            }
        }
        // 1 second elapsed at 1000 B/s = ~1000 B = ~7-8 packets of 128 B.
        assert!((5..=12).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    fn backend_overhead_ablation() {
        let pkt = udp("10.0.0.1", "10.0.0.2", 53, b"x");
        let mut vm = PacketProcessor::new(Backend::Vm).rule(PktMatch::Any, vec![PktAction::Pass]);
        let mut light =
            PacketProcessor::new(Backend::Lightweight).rule(PktMatch::Any, vec![PktAction::Pass]);
        for _ in 0..1000 {
            vm.process(pkt.clone(), SimTime::ZERO);
            light.process(pkt.clone(), SimTime::ZERO);
        }
        // The paper's motivation: the lightweight API frees up processing
        // power — here >20x less busy time for the same workload.
        assert!(vm.busy > light.busy * 20, "{} vs {}", vm.busy, light.busy);
    }
}
