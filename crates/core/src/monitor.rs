//! Automatic control- and data-plane measurement collection.
//!
//! "We also automatically collect regular control and data plane
//! measurements towards PEERING prefixes" (§3). The monitor keeps one
//! typed, time-ordered stream of [`TelemetryEvent`]s — announcements and
//! withdrawals the testbed executes (a RouteViews-style update log),
//! data-plane probe outcomes, and BGP session lifecycle changes — and
//! answers queries through filtered views over that stream.
//!
//! The monitor is also a thin facade over the shared telemetry registry
//! (`peering-telemetry`): when a [`Telemetry`] handle is attached, every
//! recorded event is mirrored into aggregate counters under `core.*`
//! (per-experiment announce/withdraw/blocked counts, per-mux session
//! flaps, propagation-reach histograms), so one snapshot carries both the
//! raw event log and the rolled-up metrics.

use crate::containment::ContainmentState;
use crate::experiment::ExperimentId;
use peering_netsim::{Prefix, SimDuration, SimTime};
use peering_telemetry::Telemetry;
use peering_topology::AsIdx;
use serde::{DeError, Deserialize, Serialize, Value};

/// Control-plane event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateKind {
    /// Prefix announced.
    Announce,
    /// Prefix withdrawn.
    Withdraw,
    /// Announcement blocked by safety.
    Blocked,
}

/// One control-plane log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateRecord {
    /// When.
    pub time: SimTime,
    /// Which experiment.
    pub experiment: ExperimentId,
    /// What happened.
    pub kind: UpdateKind,
    /// The prefix involved (v4 or v6).
    pub prefix: Prefix,
    /// How many ASes ended up with a route (post-propagation), if known.
    pub reach: Option<usize>,
}

/// Session lifecycle event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionKind {
    /// A BGP session reached Established.
    Up,
    /// A BGP session went down.
    Down,
}

/// One BGP session lifecycle record. PEERING operators watch session
/// health across every mux; chaos tests assert against this log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// When.
    pub time: SimTime,
    /// Emulation node (container index) that observed the event.
    pub node: usize,
    /// The node's local peer id for the session.
    pub peer: u32,
    /// Up or down.
    pub kind: SessionKind,
    /// Reason for a down event, when the speaker reported one.
    pub reason: Option<String>,
}

/// One containment-ladder state change: client `client` moved from
/// `from` to `to` on the abuse escalation ladder. Mirrors the
/// [`Transition`](crate::containment::Transition) log into the monitor's
/// unified stream so operators see quarantines next to the session and
/// update history that triggered them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainmentRecord {
    /// When.
    pub time: SimTime,
    /// Which client lane.
    pub client: usize,
    /// Ladder state before.
    pub from: ContainmentState,
    /// Ladder state after.
    pub to: ContainmentState,
    /// What triggered the move.
    pub cause: String,
}

/// One data-plane probe record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// When.
    pub time: SimTime,
    /// Probe source AS.
    pub from: AsIdx,
    /// Destination prefix.
    pub prefix: Prefix,
    /// Round-trip time, if the probe came back.
    pub rtt: Option<SimDuration>,
    /// AS-level hop count, if delivered.
    pub hops: Option<usize>,
}

/// One entry in the monitor's unified measurement stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A control-plane update-log entry.
    Update(UpdateRecord),
    /// A data-plane probe outcome.
    Probe(ProbeRecord),
    /// A BGP session lifecycle change.
    Session(SessionRecord),
    /// A containment-ladder state change.
    Containment(ContainmentRecord),
}

impl TelemetryEvent {
    /// Sim-time the event was recorded at.
    pub fn time(&self) -> SimTime {
        match self {
            TelemetryEvent::Update(u) => u.time,
            TelemetryEvent::Probe(p) => p.time,
            TelemetryEvent::Session(s) => s.time,
            TelemetryEvent::Containment(c) => c.time,
        }
    }
}

/// The measurement store: one typed event stream plus a telemetry mirror.
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    events: Vec<TelemetryEvent>,
    telemetry: Telemetry,
}

impl Monitor {
    /// An empty monitor (telemetry mirroring disabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a telemetry handle; subsequently recorded events are
    /// mirrored into `core.*` aggregate metrics.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Record one event. This is the single write path; the old
    /// `record_*` methods forward here.
    pub fn record(&mut self, event: TelemetryEvent) {
        self.mirror(&event);
        self.events.push(event);
    }

    /// Mirror an event into the aggregate registry metrics.
    fn mirror(&self, event: &TelemetryEvent) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let t = &self.telemetry;
        match event {
            TelemetryEvent::Update(u) => {
                let exp = u.experiment.0;
                match u.kind {
                    UpdateKind::Announce => {
                        t.counter_inc("core.testbed.announces");
                        t.counter_inc(&format!("core.experiment.exp{exp}.announces"));
                    }
                    UpdateKind::Withdraw => {
                        t.counter_inc("core.testbed.withdraws");
                        t.counter_inc(&format!("core.experiment.exp{exp}.withdraws"));
                    }
                    UpdateKind::Blocked => {
                        t.counter_inc("core.safety.blocked");
                        t.counter_inc(&format!("core.experiment.exp{exp}.blocked"));
                    }
                }
                if let Some(reach) = u.reach {
                    t.observe("core.testbed.propagation_reach", reach as u64);
                }
            }
            TelemetryEvent::Probe(p) => {
                t.counter_inc("core.monitor.probes");
                match p.rtt {
                    Some(rtt) => t.observe_duration("core.monitor.probe_rtt_us", rtt),
                    None => t.counter_inc("core.monitor.probes_lost"),
                }
            }
            TelemetryEvent::Session(s) => match s.kind {
                SessionKind::Up => {
                    t.counter_inc("core.mux.sessions_up");
                    t.counter_inc(&format!("core.mux.node{}.sessions_up", s.node));
                }
                SessionKind::Down => {
                    t.counter_inc("core.mux.sessions_down");
                    t.counter_inc(&format!("core.mux.node{}.sessions_down", s.node));
                }
            },
            TelemetryEvent::Containment(c) => {
                t.counter_inc("core.monitor.containment_events");
                if c.to == ContainmentState::Quarantined {
                    t.counter_inc("core.monitor.quarantines");
                }
            }
        }
    }

    /// The full unified event stream, in recording order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// View filtered to session lifecycle records.
    pub fn sessions(&self) -> impl Iterator<Item = &SessionRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Session(s) => Some(s),
            _ => None,
        })
    }

    /// Number of session losses a node observed.
    pub fn session_flaps(&self, node: usize) -> usize {
        self.sessions()
            .filter(|s| s.node == node && s.kind == SessionKind::Down)
            .count()
    }

    /// View filtered to control-plane update records.
    pub fn updates(&self) -> impl Iterator<Item = &UpdateRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Update(u) => Some(u),
            _ => None,
        })
    }

    /// Update log filtered to one experiment.
    pub fn updates_for(&self, exp: ExperimentId) -> impl Iterator<Item = &UpdateRecord> {
        self.updates().filter(move |u| u.experiment == exp)
    }

    /// View filtered to containment-ladder records.
    pub fn containments(&self) -> impl Iterator<Item = &ContainmentRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Containment(c) => Some(c),
            _ => None,
        })
    }

    /// How many times a client entered quarantine.
    pub fn quarantine_count(&self, client: usize) -> usize {
        self.containments()
            .filter(|c| c.client == client && c.to == ContainmentState::Quarantined)
            .count()
    }

    /// View filtered to data-plane probe records.
    pub fn probes(&self) -> impl Iterator<Item = &ProbeRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Probe(p) => Some(p),
            _ => None,
        })
    }

    /// Loss rate over probes toward a prefix.
    pub fn loss_rate(&self, prefix: impl Into<Prefix>) -> Option<f64> {
        let prefix = prefix.into();
        let relevant: Vec<&ProbeRecord> = self.probes().filter(|p| p.prefix == prefix).collect();
        if relevant.is_empty() {
            return None;
        }
        let lost = relevant.iter().filter(|p| p.rtt.is_none()).count();
        Some(lost as f64 / relevant.len() as f64)
    }

    /// Median RTT over successful probes toward a prefix.
    pub fn median_rtt(&self, prefix: impl Into<Prefix>) -> Option<SimDuration> {
        let prefix = prefix.into();
        let mut rtts: Vec<SimDuration> = self
            .probes()
            .filter(|p| p.prefix == prefix)
            .filter_map(|p| p.rtt)
            .collect();
        if rtts.is_empty() {
            return None;
        }
        rtts.sort();
        Some(rtts[rtts.len() / 2])
    }

    /// Count of blocked actions per experiment.
    pub fn blocked_count(&self, exp: ExperimentId) -> usize {
        self.updates_for(exp)
            .filter(|u| u.kind == UpdateKind::Blocked)
            .count()
    }
}

// Hand-written serde: the telemetry handle is runtime wiring, not data, so
// only the event stream round-trips (the vendored derive has no `skip`).
impl Serialize for Monitor {
    fn to_value(&self) -> Value {
        Value::Map(vec![("events".to_string(), self.events.to_value())])
    }
}

impl Deserialize for Monitor {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => {
                let events = m
                    .iter()
                    .find(|(k, _)| k == "events")
                    .map(|(_, ev)| Vec::<TelemetryEvent>::from_value(ev))
                    .transpose()?
                    .unwrap_or_default();
                Ok(Monitor {
                    events,
                    telemetry: Telemetry::disabled(),
                })
            }
            _ => Err(DeError::expected("Monitor map")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> peering_netsim::Ipv4Net {
        s.parse().unwrap()
    }

    fn update(time: SimTime, exp: u32, kind: UpdateKind, prefix: Prefix) -> TelemetryEvent {
        TelemetryEvent::Update(UpdateRecord {
            time,
            experiment: ExperimentId(exp),
            kind,
            prefix,
            reach: None,
        })
    }

    #[test]
    fn update_log_records_and_filters() {
        let mut m = Monitor::new();
        let p = net("184.164.225.0/24");
        m.record(TelemetryEvent::Update(UpdateRecord {
            time: SimTime::ZERO,
            experiment: ExperimentId(1),
            kind: UpdateKind::Announce,
            prefix: p.into(),
            reach: Some(500),
        }));
        m.record(update(
            SimTime::from_secs(60),
            2,
            UpdateKind::Blocked,
            net("8.8.8.0/24").into(),
        ));
        m.record(update(
            SimTime::from_secs(120),
            1,
            UpdateKind::Withdraw,
            p.into(),
        ));
        assert_eq!(m.updates().count(), 3);
        assert_eq!(m.events().len(), 3);
        assert_eq!(m.updates_for(ExperimentId(1)).count(), 2);
        assert_eq!(m.blocked_count(ExperimentId(2)), 1);
        assert_eq!(m.blocked_count(ExperimentId(1)), 0);
    }

    #[test]
    fn probe_statistics() {
        let mut m = Monitor::new();
        let p = net("184.164.225.0/24");
        for i in 0..10u64 {
            let rtt = if i % 5 == 4 {
                None // 2 of 10 lost
            } else {
                Some(SimDuration::from_millis(50 + i))
            };
            m.record(TelemetryEvent::Probe(ProbeRecord {
                time: SimTime::from_secs(i),
                from: AsIdx(7),
                prefix: p.into(),
                rtt,
                hops: rtt.map(|_| 4),
            }));
        }
        assert_eq!(m.loss_rate(p), Some(0.2));
        let med = m.median_rtt(p).unwrap();
        assert!(med >= SimDuration::from_millis(50));
        assert!(med <= SimDuration::from_millis(60));
        // Unknown prefix: no stats.
        assert_eq!(m.loss_rate(net("1.2.3.0/24")), None);
        assert_eq!(m.median_rtt(net("1.2.3.0/24")), None);
    }

    #[test]
    fn session_log_counts_flaps_per_node() {
        let mut m = Monitor::new();
        let session = |time, node, peer, kind, reason: Option<&str>| {
            TelemetryEvent::Session(SessionRecord {
                time,
                node,
                peer,
                kind,
                reason: reason.map(String::from),
            })
        };
        m.record(session(SimTime::ZERO, 3, 0, SessionKind::Up, None));
        m.record(session(
            SimTime::from_secs(10),
            3,
            0,
            SessionKind::Down,
            Some("connection lost"),
        ));
        m.record(session(SimTime::from_secs(15), 3, 0, SessionKind::Up, None));
        m.record(session(
            SimTime::from_secs(40),
            4,
            1,
            SessionKind::Down,
            Some("hold timer expired"),
        ));
        assert_eq!(m.sessions().count(), 4);
        assert_eq!(m.session_flaps(3), 1);
        assert_eq!(m.session_flaps(4), 1);
        assert_eq!(m.session_flaps(9), 0);
        let down = m.sessions().nth(1).unwrap();
        assert_eq!(down.reason.as_deref(), Some("connection lost"));
    }

    #[test]
    fn mirrors_into_registry_when_attached() {
        let mut m = Monitor::new();
        m.set_telemetry(Telemetry::new());
        let p = net("184.164.225.0/24");
        m.record(TelemetryEvent::Update(UpdateRecord {
            time: SimTime::ZERO,
            experiment: ExperimentId(7),
            kind: UpdateKind::Announce,
            prefix: p.into(),
            reach: Some(120),
        }));
        m.record(update(
            SimTime::from_secs(1),
            7,
            UpdateKind::Blocked,
            net("8.8.8.0/24").into(),
        ));
        m.record(TelemetryEvent::Probe(ProbeRecord {
            time: SimTime::from_secs(2),
            from: AsIdx(1),
            prefix: p.into(),
            rtt: None,
            hops: None,
        }));
        let snap = m.telemetry.snapshot();
        assert_eq!(snap.counter("core.testbed.announces"), 1);
        assert_eq!(snap.counter("core.experiment.exp7.announces"), 1);
        assert_eq!(snap.counter("core.safety.blocked"), 1);
        assert_eq!(snap.counter("core.monitor.probes_lost"), 1);
        let reach = snap
            .histogram("core.testbed.propagation_reach")
            .expect("reach histogram");
        assert_eq!((reach.count, reach.max), (1, 120));
    }

    #[test]
    fn containment_view_filters_and_counts_quarantines() {
        let mut m = Monitor::new();
        m.set_telemetry(Telemetry::new());
        let step = |time, client, from, to| {
            TelemetryEvent::Containment(ContainmentRecord {
                time,
                client,
                from,
                to,
                cause: "test".to_string(),
            })
        };
        m.record(step(
            SimTime::from_secs(1),
            0,
            ContainmentState::Healthy,
            ContainmentState::Warned,
        ));
        m.record(step(
            SimTime::from_secs(2),
            0,
            ContainmentState::Warned,
            ContainmentState::Quarantined,
        ));
        m.record(step(
            SimTime::from_secs(3),
            1,
            ContainmentState::Healthy,
            ContainmentState::Warned,
        ));
        // Unrelated events do not leak into the filtered view.
        m.record(update(
            SimTime::from_secs(4),
            1,
            UpdateKind::Announce,
            net("184.164.225.0/24").into(),
        ));
        assert_eq!(m.containments().count(), 3);
        assert_eq!(m.quarantine_count(0), 1);
        assert_eq!(m.quarantine_count(1), 0);
        let snap = m.telemetry.snapshot();
        assert_eq!(snap.counter("core.monitor.containment_events"), 3);
        assert_eq!(snap.counter("core.monitor.quarantines"), 1);
        // The variant round-trips through the stream serde.
        let back = Monitor::from_value(&m.to_value()).expect("deserialize");
        assert_eq!(back.events(), m.events());
    }

    #[test]
    fn serde_round_trips_event_stream() {
        let mut m = Monitor::new();
        m.record(update(
            SimTime::ZERO,
            1,
            UpdateKind::Announce,
            net("184.164.225.0/24").into(),
        ));
        let v = m.to_value();
        let back = Monitor::from_value(&v).expect("deserialize");
        assert_eq!(back.events(), m.events());
    }
}
