//! Automatic control- and data-plane measurement collection.
//!
//! "We also automatically collect regular control and data plane
//! measurements towards PEERING prefixes" (§3). The monitor records every
//! announcement/withdrawal the testbed executes (a RouteViews-style
//! update log) and data-plane probe outcomes, and can produce summaries
//! for experiment reports.

use crate::experiment::ExperimentId;
use peering_netsim::{Prefix, SimDuration, SimTime};
use peering_topology::AsIdx;
use serde::{Deserialize, Serialize};

/// Control-plane event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateKind {
    /// Prefix announced.
    Announce,
    /// Prefix withdrawn.
    Withdraw,
    /// Announcement blocked by safety.
    Blocked,
}

/// One control-plane log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateRecord {
    /// When.
    pub time: SimTime,
    /// Which experiment.
    pub experiment: ExperimentId,
    /// What happened.
    pub kind: UpdateKind,
    /// The prefix involved (v4 or v6).
    pub prefix: Prefix,
    /// How many ASes ended up with a route (post-propagation), if known.
    pub reach: Option<usize>,
}

/// Session lifecycle event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionKind {
    /// A BGP session reached Established.
    Up,
    /// A BGP session went down.
    Down,
}

/// One BGP session lifecycle record. PEERING operators watch session
/// health across every mux; chaos tests assert against this log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// When.
    pub time: SimTime,
    /// Emulation node (container index) that observed the event.
    pub node: usize,
    /// The node's local peer id for the session.
    pub peer: u32,
    /// Up or down.
    pub kind: SessionKind,
    /// Reason for a down event, when the speaker reported one.
    pub reason: Option<String>,
}

/// One data-plane probe record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// When.
    pub time: SimTime,
    /// Probe source AS.
    pub from: AsIdx,
    /// Destination prefix.
    pub prefix: Prefix,
    /// Round-trip time, if the probe came back.
    pub rtt: Option<SimDuration>,
    /// AS-level hop count, if delivered.
    pub hops: Option<usize>,
}

/// The measurement store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Monitor {
    updates: Vec<UpdateRecord>,
    probes: Vec<ProbeRecord>,
    sessions: Vec<SessionRecord>,
}

impl Monitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a control-plane event.
    pub fn record_update(
        &mut self,
        time: SimTime,
        experiment: ExperimentId,
        kind: UpdateKind,
        prefix: impl Into<Prefix>,
        reach: Option<usize>,
    ) {
        self.updates.push(UpdateRecord {
            time,
            experiment,
            kind,
            prefix: prefix.into(),
            reach,
        });
    }

    /// Record a data-plane probe.
    pub fn record_probe(
        &mut self,
        time: SimTime,
        from: AsIdx,
        prefix: impl Into<Prefix>,
        rtt: Option<SimDuration>,
        hops: Option<usize>,
    ) {
        self.probes.push(ProbeRecord {
            time,
            from,
            prefix: prefix.into(),
            rtt,
            hops,
        });
    }

    /// Record a session lifecycle event.
    pub fn record_session(
        &mut self,
        time: SimTime,
        node: usize,
        peer: u32,
        kind: SessionKind,
        reason: Option<String>,
    ) {
        self.sessions.push(SessionRecord {
            time,
            node,
            peer,
            kind,
            reason,
        });
    }

    /// The full session lifecycle log.
    pub fn sessions(&self) -> &[SessionRecord] {
        &self.sessions
    }

    /// Number of session losses a node observed.
    pub fn session_flaps(&self, node: usize) -> usize {
        self.sessions
            .iter()
            .filter(|s| s.node == node && s.kind == SessionKind::Down)
            .count()
    }

    /// The full update log.
    pub fn updates(&self) -> &[UpdateRecord] {
        &self.updates
    }

    /// Update log filtered to one experiment.
    pub fn updates_for(&self, exp: ExperimentId) -> impl Iterator<Item = &UpdateRecord> {
        self.updates.iter().filter(move |u| u.experiment == exp)
    }

    /// The full probe log.
    pub fn probes(&self) -> &[ProbeRecord] {
        &self.probes
    }

    /// Loss rate over probes toward a prefix.
    pub fn loss_rate(&self, prefix: impl Into<Prefix>) -> Option<f64> {
        let prefix = prefix.into();
        let relevant: Vec<&ProbeRecord> =
            self.probes.iter().filter(|p| p.prefix == prefix).collect();
        if relevant.is_empty() {
            return None;
        }
        let lost = relevant.iter().filter(|p| p.rtt.is_none()).count();
        Some(lost as f64 / relevant.len() as f64)
    }

    /// Median RTT over successful probes toward a prefix.
    pub fn median_rtt(&self, prefix: impl Into<Prefix>) -> Option<SimDuration> {
        let prefix = prefix.into();
        let mut rtts: Vec<SimDuration> = self
            .probes
            .iter()
            .filter(|p| p.prefix == prefix)
            .filter_map(|p| p.rtt)
            .collect();
        if rtts.is_empty() {
            return None;
        }
        rtts.sort();
        Some(rtts[rtts.len() / 2])
    }

    /// Count of blocked actions per experiment.
    pub fn blocked_count(&self, exp: ExperimentId) -> usize {
        self.updates_for(exp)
            .filter(|u| u.kind == UpdateKind::Blocked)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> peering_netsim::Ipv4Net {
        s.parse().unwrap()
    }

    #[test]
    fn update_log_records_and_filters() {
        let mut m = Monitor::new();
        let p = net("184.164.225.0/24");
        m.record_update(
            SimTime::ZERO,
            ExperimentId(1),
            UpdateKind::Announce,
            p,
            Some(500),
        );
        m.record_update(
            SimTime::from_secs(60),
            ExperimentId(2),
            UpdateKind::Blocked,
            net("8.8.8.0/24"),
            None,
        );
        m.record_update(
            SimTime::from_secs(120),
            ExperimentId(1),
            UpdateKind::Withdraw,
            p,
            None,
        );
        assert_eq!(m.updates().len(), 3);
        assert_eq!(m.updates_for(ExperimentId(1)).count(), 2);
        assert_eq!(m.blocked_count(ExperimentId(2)), 1);
        assert_eq!(m.blocked_count(ExperimentId(1)), 0);
    }

    #[test]
    fn probe_statistics() {
        let mut m = Monitor::new();
        let p = net("184.164.225.0/24");
        for i in 0..10u64 {
            let rtt = if i % 5 == 4 {
                None // 2 of 10 lost
            } else {
                Some(SimDuration::from_millis(50 + i))
            };
            m.record_probe(SimTime::from_secs(i), AsIdx(7), p, rtt, rtt.map(|_| 4));
        }
        assert_eq!(m.loss_rate(p), Some(0.2));
        let med = m.median_rtt(p).unwrap();
        assert!(med >= SimDuration::from_millis(50));
        assert!(med <= SimDuration::from_millis(60));
        // Unknown prefix: no stats.
        assert_eq!(m.loss_rate(net("1.2.3.0/24")), None);
        assert_eq!(m.median_rtt(net("1.2.3.0/24")), None);
    }

    #[test]
    fn session_log_counts_flaps_per_node() {
        let mut m = Monitor::new();
        m.record_session(SimTime::ZERO, 3, 0, SessionKind::Up, None);
        m.record_session(
            SimTime::from_secs(10),
            3,
            0,
            SessionKind::Down,
            Some("connection lost".into()),
        );
        m.record_session(SimTime::from_secs(15), 3, 0, SessionKind::Up, None);
        m.record_session(
            SimTime::from_secs(40),
            4,
            1,
            SessionKind::Down,
            Some("hold timer expired".into()),
        );
        assert_eq!(m.sessions().len(), 4);
        assert_eq!(m.session_flaps(3), 1);
        assert_eq!(m.session_flaps(4), 1);
        assert_eq!(m.session_flaps(9), 0);
        let down = &m.sessions()[1];
        assert_eq!(down.reason.as_deref(), Some("connection lost"));
    }
}
