//! The researcher-facing portal: account requests, advisory-board
//! vetting, automated provisioning, and notifications.
//!
//! §3: "Ultimately, we plan a web portal by which a researcher can
//! request an account. We (via an advisory board) will vet experiments,
//! at which point the provisioning will be automated, configuring
//! servers and giving researchers the configuration they need for their
//! clients." And: "The system will then notify researchers when their
//! announcements will be executed."

use crate::experiment::ExperimentId;
use crate::testbed::{Testbed, TestbedError};
use peering_netsim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies an account request / account.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u32);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// A researcher's experiment proposal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proposal {
    /// Researcher contact.
    pub email: String,
    /// Institution.
    pub institution: String,
    /// Experiment title.
    pub title: String,
    /// What it will announce and why (the board reads this).
    pub abstract_text: String,
    /// Requested sites.
    pub sites: Vec<usize>,
    /// Whether the experiment needs controlled spoofing approval.
    pub needs_spoofing: bool,
}

/// Where a request stands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestState {
    /// Waiting for the advisory board.
    PendingReview,
    /// Approved; not yet provisioned.
    Approved,
    /// Provisioned with a live experiment.
    Provisioned(ExperimentId),
    /// Rejected with a reason.
    Rejected(String),
}

/// A queued notification to the researcher.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Notification {
    /// When it was queued.
    pub time: SimTime,
    /// Destination address.
    pub email: String,
    /// Body.
    pub message: String,
}

/// The advisory board's vetting policy. The real board is humans; the
/// model encodes the published criteria.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VettingPolicy {
    /// Institutional email required (no free-mail research accounts).
    pub require_institutional_email: bool,
    /// Minimum abstract length — the board wants a real description.
    pub min_abstract_len: usize,
    /// Spoofing requests need extra scrutiny (held for manual review).
    pub hold_spoofing_requests: bool,
}

impl Default for VettingPolicy {
    fn default() -> Self {
        VettingPolicy {
            require_institutional_email: true,
            min_abstract_len: 80,
            hold_spoofing_requests: true,
        }
    }
}

/// The board's decision for a proposal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Vetting {
    /// Approve it.
    Approve,
    /// Reject with a reason.
    Reject(String),
    /// Keep pending (e.g. spoofing requests awaiting a human).
    Hold,
}

impl VettingPolicy {
    /// Apply the written criteria to a proposal.
    pub fn vet(&self, p: &Proposal) -> Vetting {
        if self.require_institutional_email
            && !(p.email.ends_with(".edu")
                || p.email.ends_with(".ac.uk")
                || p.email.contains(".edu.")
                || p.email.ends_with(".br"))
        {
            return Vetting::Reject("institutional email required".into());
        }
        if p.abstract_text.len() < self.min_abstract_len {
            return Vetting::Reject("abstract too short for review".into());
        }
        if p.needs_spoofing && self.hold_spoofing_requests {
            return Vetting::Hold;
        }
        Vetting::Approve
    }
}

/// Parameters for [`Portal::provision`]. Replaces the old positional
/// `(RequestId, &mut Testbed)` form so provisioning options (site
/// overrides, operator notes, …) extend without breaking callers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ProvisionRequest {
    /// The approved account request to provision.
    pub id: RequestId,
    /// Override the proposal's requested sites (e.g. when capacity
    /// forces operators to place the experiment elsewhere).
    pub sites: Option<Vec<usize>>,
    /// Operator note appended to the provisioning notification.
    pub note: Option<String>,
}

impl ProvisionRequest {
    /// Provision `id` exactly as proposed.
    pub fn new(id: RequestId) -> Self {
        ProvisionRequest {
            id,
            ..Default::default()
        }
    }

    /// Place the experiment at `sites` instead of the proposed ones.
    pub fn with_sites(mut self, sites: Vec<usize>) -> Self {
        self.sites = Some(sites);
        self
    }

    /// Append an operator note to the provisioning notification.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }
}

/// The portal: request intake, vetting, provisioning, notifications.
#[derive(Debug, Default)]
pub struct Portal {
    requests: BTreeMap<RequestId, (Proposal, RequestState)>,
    next_id: u32,
    /// Vetting criteria.
    pub policy: VettingPolicy,
    /// Outbound notification queue.
    pub notifications: Vec<Notification>,
}

impl Portal {
    /// A portal with the default policy.
    pub fn new() -> Self {
        Portal {
            next_id: 1,
            ..Default::default()
        }
    }

    /// Submit a proposal; it is vetted immediately against the written
    /// criteria (held requests stay pending for the human board).
    pub fn submit(&mut self, proposal: Proposal, now: SimTime) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let state = match self.policy.vet(&proposal) {
            Vetting::Approve => {
                self.notify(now, &proposal.email, format!("{id}: approved"));
                RequestState::Approved
            }
            Vetting::Reject(reason) => {
                self.notify(now, &proposal.email, format!("{id}: rejected — {reason}"));
                RequestState::Rejected(reason)
            }
            Vetting::Hold => {
                self.notify(
                    now,
                    &proposal.email,
                    format!("{id}: pending advisory board review"),
                );
                RequestState::PendingReview
            }
        };
        self.requests.insert(id, (proposal, state));
        id
    }

    /// A board member resolves a held request.
    pub fn board_decision(&mut self, id: RequestId, approve: bool, now: SimTime) {
        let Some((proposal, state)) = self.requests.get_mut(&id) else {
            return;
        };
        if *state != RequestState::PendingReview {
            return;
        }
        *state = if approve {
            self.notifications.push(Notification {
                time: now,
                email: proposal.email.clone(),
                message: format!("{id}: approved by the board"),
            });
            RequestState::Approved
        } else {
            self.notifications.push(Notification {
                time: now,
                email: proposal.email.clone(),
                message: format!("{id}: rejected by the board"),
            });
            RequestState::Rejected("board rejection".into())
        };
    }

    /// Provision an approved request on the testbed: allocates the
    /// prefix, creates the client, applies spoofing approval if granted.
    /// Takes a [`ProvisionRequest`] so provisioning options can grow
    /// without changing every call site again.
    pub fn provision(
        &mut self,
        req: ProvisionRequest,
        tb: &mut Testbed,
    ) -> Result<ExperimentId, TestbedError> {
        let id = req.id;
        let Some((proposal, state)) = self.requests.get(&id) else {
            return Err(TestbedError::UnknownExperiment(ExperimentId(0)));
        };
        if *state != RequestState::Approved {
            return Err(TestbedError::UnknownExperiment(ExperimentId(0)));
        }
        let proposal = proposal.clone();
        let sites = req.sites.as_deref().unwrap_or(&proposal.sites);
        let exp = tb.new_experiment(&proposal.title, &proposal.email, sites)?;
        let now = tb.now();
        let client = tb.clients[&exp].clone();
        self.requests.get_mut(&id).expect("present").1 = RequestState::Provisioned(exp);
        let mut message = format!(
            "{id}: provisioned as {exp} — prefix {}, {} tunnels; client config attached",
            client.prefix,
            client.tunnels.len()
        );
        if let Some(note) = &req.note {
            message.push_str(" — ");
            message.push_str(note);
        }
        self.notify(now, &proposal.email, message);
        Ok(exp)
    }

    fn notify(&mut self, time: SimTime, email: &str, message: String) {
        self.notifications.push(Notification {
            time,
            email: email.to_string(),
            message,
        });
    }

    /// Current state of a request.
    pub fn state(&self, id: RequestId) -> Option<&RequestState> {
        self.requests.get(&id).map(|(_, s)| s)
    }

    /// Requests awaiting the human board.
    pub fn pending_review(&self) -> Vec<RequestId> {
        self.requests
            .iter()
            .filter(|(_, (_, s))| *s == RequestState::PendingReview)
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::TestbedConfig;

    fn proposal(email: &str, spoof: bool) -> Proposal {
        Proposal {
            email: email.into(),
            institution: "USC".into(),
            title: "anycast study".into(),
            abstract_text: "We will announce our /24 from multiple sites to map anycast \
                            catchments and measure failover behavior under withdrawal."
                .into(),
            sites: vec![0, 1],
            needs_spoofing: spoof,
        }
    }

    #[test]
    fn good_proposal_flows_to_provisioning() {
        let mut tb = Testbed::build(TestbedConfig::small(400));
        let mut portal = Portal::new();
        let id = portal.submit(proposal("alice@usc.edu", false), tb.now());
        assert_eq!(portal.state(id), Some(&RequestState::Approved));
        let exp = portal
            .provision(ProvisionRequest::new(id), &mut tb)
            .expect("provisions");
        assert!(matches!(
            portal.state(id),
            Some(RequestState::Provisioned(e)) if *e == exp
        ));
        assert!(tb.experiments.contains_key(&exp));
        // The researcher got approval + provisioning notifications.
        let mine: Vec<_> = portal
            .notifications
            .iter()
            .filter(|n| n.email == "alice@usc.edu")
            .collect();
        assert_eq!(mine.len(), 2);
        assert!(mine[1].message.contains("prefix"));
    }

    #[test]
    fn freemail_and_thin_abstracts_are_rejected() {
        let mut portal = Portal::new();
        let id = portal.submit(proposal("bob@gmail.com", false), SimTime::ZERO);
        assert!(matches!(portal.state(id), Some(RequestState::Rejected(_))));
        let mut thin = proposal("carol@usc.edu", false);
        thin.abstract_text = "announce stuff".into();
        let id2 = portal.submit(thin, SimTime::ZERO);
        assert!(matches!(portal.state(id2), Some(RequestState::Rejected(_))));
        // A rejected request cannot be provisioned.
        let mut tb = Testbed::build(TestbedConfig::small(401));
        assert!(portal
            .provision(ProvisionRequest::new(id), &mut tb)
            .is_err());
    }

    #[test]
    fn spoofing_requests_wait_for_the_board() {
        let mut tb = Testbed::build(TestbedConfig::small(402));
        let mut portal = Portal::new();
        let id = portal.submit(proposal("dan@usc.edu", true), tb.now());
        assert_eq!(portal.state(id), Some(&RequestState::PendingReview));
        assert_eq!(portal.pending_review(), vec![id]);
        // Cannot provision while pending.
        assert!(portal
            .provision(ProvisionRequest::new(id), &mut tb)
            .is_err());
        // Board approves; provisioning proceeds.
        portal.board_decision(id, true, tb.now());
        assert_eq!(portal.state(id), Some(&RequestState::Approved));
        assert!(portal.provision(ProvisionRequest::new(id), &mut tb).is_ok());
        assert!(portal.pending_review().is_empty());
    }

    #[test]
    fn board_can_reject() {
        let mut portal = Portal::new();
        let id = portal.submit(proposal("eve@usc.edu", true), SimTime::ZERO);
        portal.board_decision(id, false, SimTime::ZERO);
        assert!(matches!(portal.state(id), Some(RequestState::Rejected(_))));
        // Deciding again is a no-op.
        portal.board_decision(id, true, SimTime::ZERO);
        assert!(matches!(portal.state(id), Some(RequestState::Rejected(_))));
    }
}
