//! The researcher-side client.
//!
//! A client "connects to servers to execute experiments": it terminates
//! OpenVPN-style tunnels to one or more servers, originates announcements
//! for its allocated prefix, and exchanges data-plane traffic through the
//! tunnels. Clients can front an entire emulated intradomain network
//! (MinineXt/VINI) — the glue for that lives in the emulation crate's
//! external sessions; here we keep the client's testbed-facing state.

use crate::experiment::{AnnouncementSpec, ExperimentId, PeerSelector};
use peering_netsim::{IpPacket, Ipv4Net};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A tunnel between the client and one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tunnel {
    /// The site index this tunnel lands on.
    pub site: usize,
    /// Client-side tunnel endpoint address.
    pub client_endpoint: Ipv4Addr,
    /// Server-side tunnel endpoint address.
    pub server_endpoint: Ipv4Addr,
}

impl Tunnel {
    /// Encapsulate an experiment packet for the trip to the server.
    pub fn encapsulate(&self, inner: IpPacket) -> IpPacket {
        inner.encapsulate(self.client_endpoint, self.server_endpoint)
    }

    /// Decapsulate a packet arriving from the server; `None` if it is not
    /// tunnel traffic or not addressed to us.
    pub fn decapsulate(&self, outer: IpPacket) -> Option<IpPacket> {
        if outer.dst != self.client_endpoint {
            return None;
        }
        outer.decapsulate()
    }
}

/// The client-side controller for one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeeringClient {
    /// The experiment this client drives.
    pub experiment: ExperimentId,
    /// The /24 allocated to it.
    pub prefix: Ipv4Net,
    /// Tunnels to servers, one per site in use.
    pub tunnels: Vec<Tunnel>,
}

impl PeeringClient {
    /// A client with tunnels to the given sites.
    pub fn new(experiment: ExperimentId, prefix: Ipv4Net, sites: &[usize]) -> Self {
        let tunnels = sites
            .iter()
            .enumerate()
            .map(|(i, &site)| Tunnel {
                site,
                client_endpoint: Ipv4Addr::new(100, 64, experiment.0 as u8, 2 * i as u8 + 1),
                server_endpoint: Ipv4Addr::new(100, 64, experiment.0 as u8, 2 * i as u8 + 2),
            })
            .collect();
        PeeringClient {
            experiment,
            prefix,
            tunnels,
        }
    }

    /// Sites this client is connected to.
    pub fn sites(&self) -> Vec<usize> {
        self.tunnels.iter().map(|t| t.site).collect()
    }

    /// The tunnel to a site, if connected there.
    pub fn tunnel_to(&self, site: usize) -> Option<&Tunnel> {
        self.tunnels.iter().find(|t| t.site == site)
    }

    /// An address inside the client's prefix (host `i`).
    pub fn addr(&self, i: u32) -> Ipv4Addr {
        self.prefix.addr_at(i)
    }

    /// Build an announcement of the whole /24 from every connected site.
    pub fn announce_everywhere(&self) -> AnnouncementSpec {
        AnnouncementSpec::everywhere(self.prefix, self.sites())
    }

    /// Build an announcement restricted to one site and a peer selection
    /// (the paper's per-peer announcement control).
    pub fn announce_from(&self, site: usize, select: PeerSelector) -> AnnouncementSpec {
        AnnouncementSpec::everywhere(self.prefix, vec![site]).select(select)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_netsim::Payload;

    fn client() -> PeeringClient {
        PeeringClient::new(
            ExperimentId(3),
            "184.164.227.0/24".parse().unwrap(),
            &[0, 2],
        )
    }

    #[test]
    fn tunnels_per_site() {
        let c = client();
        assert_eq!(c.sites(), vec![0, 2]);
        assert!(c.tunnel_to(0).is_some());
        assert!(c.tunnel_to(2).is_some());
        assert!(c.tunnel_to(1).is_none());
        // Endpoints are distinct across tunnels.
        assert_ne!(c.tunnels[0].client_endpoint, c.tunnels[1].client_endpoint);
    }

    #[test]
    fn tunnel_roundtrip() {
        let c = client();
        let t = c.tunnel_to(0).unwrap();
        let inner = IpPacket::new(
            c.addr(9),
            "8.8.8.8".parse().unwrap(),
            Payload::EchoRequest { id: 1, seq: 1 },
        );
        let outer = t.encapsulate(inner.clone());
        assert_eq!(outer.src, t.client_endpoint);
        assert_eq!(outer.dst, t.server_endpoint);
        // Server-to-client direction.
        let reply_inner = IpPacket::new(
            "8.8.8.8".parse().unwrap(),
            c.addr(9),
            Payload::EchoReply { id: 1, seq: 1 },
        );
        let reply_outer = reply_inner
            .clone()
            .encapsulate(t.server_endpoint, t.client_endpoint);
        assert_eq!(t.decapsulate(reply_outer), Some(reply_inner));
        // Mis-addressed packets are rejected.
        let stray = inner.encapsulate(t.server_endpoint, "9.9.9.9".parse().unwrap());
        assert_eq!(t.decapsulate(stray), None);
    }

    #[test]
    fn addresses_come_from_the_prefix() {
        let c = client();
        assert!(c.prefix.contains(c.addr(0)));
        assert!(c.prefix.contains(c.addr(200)));
    }

    #[test]
    fn announcement_builders() {
        let c = client();
        let all = c.announce_everywhere();
        assert_eq!(all.sites, vec![0, 2]);
        assert_eq!(all.prefix, c.prefix);
        let one = c.announce_from(2, PeerSelector::PeersOnly);
        assert_eq!(one.sites, vec![2]);
        assert_eq!(one.select, PeerSelector::PeersOnly);
    }
}
