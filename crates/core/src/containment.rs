//! Runtime abuse containment: the escalating quarantine engine.
//!
//! PEERING's safety layer (`safety.rs`) vets each announcement *before*
//! it leaves an experiment. Containment is the complementary runtime
//! defense: it watches how a client session actually behaves — safety
//! violations, update churn, session flaps, max-prefix blowups — and
//! walks an escalation ladder per client:
//!
//! ```text
//! Healthy -> Warned -> Throttled -> Quarantined -> Probation -> Healthy
//!                                       ^................|
//!                                 (offense during probation)
//! ```
//!
//! * **Healthy / Warned** — offenses accumulate a score; nothing is
//!   enforced yet, but the warning is visible in telemetry.
//! * **Throttled** — a token-bucket UPDATE rate limiter engages at the
//!   mux: updates beyond the refill rate are policed, and each policed
//!   update raises the score further.
//! * **Quarantined** — the client's announcements are withheld and
//!   withdrawn upstream (the mux swaps the session's import policy to
//!   reject-all); other clients on the same mux keep converging.
//! * **Probation** — after a clean quarantine hold, routes are restored
//!   (import policy back, ROUTE-REFRESH re-learns the table). Any
//!   offense during probation drops the client straight back to
//!   Quarantined; a clean probation hold returns it to Healthy.
//!
//! Everything is integer arithmetic over [`SimTime`] — the token bucket
//! refills in whole micro-tokens per elapsed microsecond, scores decay in
//! whole steps per elapsed interval — so identically-seeded runs take
//! identical escalation paths.

use crate::safety::Violation;
use peering_netsim::{SimDuration, SimTime};
use peering_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a client sits on the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ContainmentState {
    /// No recent offenses.
    Healthy,
    /// Offense score crossed the warning threshold; not yet enforced.
    Warned,
    /// The token-bucket rate limiter polices this client's updates.
    Throttled,
    /// Announcements withheld and withdrawn upstream.
    Quarantined,
    /// Restored after quarantine; one offense sends it straight back.
    Probation,
}

impl fmt::Display for ContainmentState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ContainmentState::Healthy => "healthy",
            ContainmentState::Warned => "warned",
            ContainmentState::Throttled => "throttled",
            ContainmentState::Quarantined => "quarantined",
            ContainmentState::Probation => "probation",
        };
        f.write_str(s)
    }
}

/// Token bucket parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenBucketConfig {
    /// Burst capacity in whole tokens (updates).
    pub capacity: u32,
    /// Sustained refill rate in tokens per simulated second.
    pub refill_per_sec: u32,
}

impl Default for TokenBucketConfig {
    fn default() -> Self {
        TokenBucketConfig {
            capacity: 20,
            refill_per_sec: 2,
        }
    }
}

/// A deterministic token bucket in simulated time.
///
/// Tokens are stored in micro-tokens so the refill is exact integer
/// arithmetic: `refill_per_sec` tokens/second is precisely
/// `refill_per_sec` micro-tokens per elapsed microsecond.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    micro: u64,
    capacity_micro: u64,
    refill_per_sec: u64,
    last: SimTime,
}

const MICRO: u64 = 1_000_000;

impl TokenBucket {
    /// A full bucket at time zero.
    pub fn new(cfg: TokenBucketConfig) -> Self {
        let capacity_micro = u64::from(cfg.capacity) * MICRO;
        TokenBucket {
            micro: capacity_micro,
            capacity_micro,
            refill_per_sec: u64::from(cfg.refill_per_sec),
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.as_micros().saturating_sub(self.last.as_micros());
        let gained = u128::from(elapsed) * u128::from(self.refill_per_sec);
        self.micro = self
            .micro
            .saturating_add(gained.min(u128::from(u64::MAX)) as u64)
            .min(self.capacity_micro);
        self.last = self.last.max(now);
    }

    /// Take one token if available. Never blocks; `false` means the
    /// caller is over rate.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.micro >= MICRO {
            self.micro -= MICRO;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available (after an implicit refill).
    pub fn tokens(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        self.micro / MICRO
    }
}

/// Thresholds and weights for the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainmentConfig {
    /// Score at which Healthy becomes Warned.
    pub warn_score: u32,
    /// Score at which the rate limiter engages.
    pub throttle_score: u32,
    /// Score at which the client is quarantined.
    pub quarantine_score: u32,
    /// Score added per safety violation.
    pub violation_weight: u32,
    /// Score added per session flap observed at the mux.
    pub flap_weight: u32,
    /// Score added when a session hits its max-prefix limit.
    pub max_prefix_weight: u32,
    /// Score added each time the rate limiter polices an update.
    pub policed_weight: u32,
    /// One point of score decays per this much offense-free time.
    pub decay_interval: SimDuration,
    /// Clean time in Quarantined before the client enters Probation.
    pub quarantine_hold: SimDuration,
    /// Clean time in Probation before the client returns to Healthy.
    pub probation_hold: SimDuration,
    /// UPDATE rate limiter parameters.
    pub bucket: TokenBucketConfig,
}

impl Default for ContainmentConfig {
    fn default() -> Self {
        ContainmentConfig {
            warn_score: 2,
            throttle_score: 4,
            quarantine_score: 8,
            violation_weight: 2,
            flap_weight: 1,
            max_prefix_weight: 4,
            policed_weight: 1,
            decay_interval: SimDuration::from_secs(60),
            quarantine_hold: SimDuration::from_secs(120),
            probation_hold: SimDuration::from_secs(180),
            bucket: TokenBucketConfig::default(),
        }
    }
}

/// What the mux should do with one client UPDATE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateVerdict {
    /// Deliver normally.
    Forward,
    /// Policed by the rate limiter: the update is dropped at the mux.
    Policed,
    /// The client is quarantined: nothing it says propagates.
    Quarantined,
}

impl UpdateVerdict {
    /// True when the update may proceed.
    pub fn admitted(&self) -> bool {
        matches!(self, UpdateVerdict::Forward)
    }
}

/// One recorded state change on the ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// When.
    pub time: SimTime,
    /// Which client lane.
    pub client: usize,
    /// State before.
    pub from: ContainmentState,
    /// State after.
    pub to: ContainmentState,
    /// Human-readable trigger (violation text, "session flap", ...).
    pub cause: String,
}

/// Per-client ladder position.
#[derive(Debug, Clone)]
struct Lane {
    state: ContainmentState,
    score: u32,
    bucket: TokenBucket,
    last_offense: SimTime,
    last_decay: SimTime,
}

/// The per-client escalation engine.
#[derive(Debug, Clone)]
pub struct ContainmentEngine {
    cfg: ContainmentConfig,
    lanes: Vec<Lane>,
    transitions: Vec<Transition>,
    telemetry: Telemetry,
}

impl ContainmentEngine {
    /// An engine with one Healthy lane per client.
    pub fn new(n_clients: usize, cfg: ContainmentConfig) -> Self {
        let lanes = (0..n_clients)
            .map(|_| Lane {
                state: ContainmentState::Healthy,
                score: 0,
                bucket: TokenBucket::new(cfg.bucket),
                last_offense: SimTime::ZERO,
                last_decay: SimTime::ZERO,
            })
            .collect();
        ContainmentEngine {
            cfg,
            lanes,
            transitions: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; state changes bump
    /// `core.containment.state_transitions`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of client lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when the engine tracks no clients.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Current ladder state of client `c`.
    pub fn state(&self, c: usize) -> ContainmentState {
        self.lanes[c].state
    }

    /// Current offense score of client `c`.
    pub fn score(&self, c: usize) -> u32 {
        self.lanes[c].score
    }

    /// The full state-change log, in recording order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    fn goto(&mut self, c: usize, to: ContainmentState, cause: &str, now: SimTime) {
        let from = self.lanes[c].state;
        if from == to {
            return;
        }
        self.lanes[c].state = to;
        self.telemetry
            .counter_inc("core.containment.state_transitions");
        self.transitions.push(Transition {
            time: now,
            client: c,
            from,
            to,
            cause: cause.to_string(),
        });
    }

    /// Ladder state implied by `score` for the score-driven states.
    fn score_state(&self, score: u32) -> ContainmentState {
        if score >= self.cfg.throttle_score {
            ContainmentState::Throttled
        } else if score >= self.cfg.warn_score {
            ContainmentState::Warned
        } else {
            ContainmentState::Healthy
        }
    }

    fn offend(&mut self, c: usize, weight: u32, cause: &str, now: SimTime) {
        self.lanes[c].last_offense = now;
        match self.lanes[c].state {
            // One strike during probation and the client is back in
            // quarantine — no re-climbing of the lower rungs.
            ContainmentState::Probation => {
                self.lanes[c].score = self.cfg.quarantine_score;
                self.goto(c, ContainmentState::Quarantined, cause, now);
            }
            ContainmentState::Quarantined => {
                // Already contained; the offense only refreshes the
                // clean-time clock (done above) and caps the score.
                self.lanes[c].score = self.lanes[c]
                    .score
                    .saturating_add(weight)
                    .min(self.cfg.quarantine_score * 2);
            }
            _ => {
                let score = self.lanes[c]
                    .score
                    .saturating_add(weight)
                    .min(self.cfg.quarantine_score * 2);
                self.lanes[c].score = score;
                if score >= self.cfg.quarantine_score {
                    self.goto(c, ContainmentState::Quarantined, cause, now);
                } else {
                    let target = self.score_state(score);
                    // Offenses only ever move up the ladder.
                    if target > self.lanes[c].state {
                        self.goto(c, target, cause, now);
                    }
                }
            }
        }
    }

    /// Feed one safety violation attributed to client `c`.
    pub fn on_violation(&mut self, c: usize, v: &Violation, now: SimTime) {
        let cause = format!("safety violation: {v}");
        self.offend(c, self.cfg.violation_weight, &cause, now);
    }

    /// Feed one session flap (the mux saw the client's session drop).
    pub fn on_flap(&mut self, c: usize, now: SimTime) {
        self.offend(c, self.cfg.flap_weight, "session flap", now);
    }

    /// Feed one max-prefix limit event on the client's session.
    pub fn on_max_prefix(&mut self, c: usize, now: SimTime) {
        self.offend(c, self.cfg.max_prefix_weight, "max prefixes reached", now);
    }

    /// Charge one UPDATE from client `c` against its token bucket and
    /// decide its fate. The bucket is charged in every state so a flood
    /// is visible before the ladder reaches Throttled; policing (and the
    /// score it adds) only engages from Throttled upward.
    pub fn on_update(&mut self, c: usize, now: SimTime) -> UpdateVerdict {
        if self.lanes[c].state == ContainmentState::Quarantined {
            return UpdateVerdict::Quarantined;
        }
        let in_rate = self.lanes[c].bucket.try_take(now);
        if in_rate {
            return UpdateVerdict::Forward;
        }
        match self.lanes[c].state {
            ContainmentState::Throttled => {
                self.offend(c, self.cfg.policed_weight, "update rate policed", now);
                // The offense may have escalated to Quarantined.
                if self.lanes[c].state == ContainmentState::Quarantined {
                    UpdateVerdict::Quarantined
                } else {
                    UpdateVerdict::Policed
                }
            }
            // Below Throttled the limiter observes but does not police;
            // the over-rate strike still climbs the ladder.
            _ => {
                self.offend(c, self.cfg.policed_weight, "update rate exceeded", now);
                if self.lanes[c].state == ContainmentState::Quarantined {
                    UpdateVerdict::Quarantined
                } else {
                    UpdateVerdict::Forward
                }
            }
        }
    }

    /// Advance clean-time machinery: decay scores, promote Quarantined
    /// lanes to Probation after a clean hold, and Probation lanes back to
    /// Healthy. Call at least once per simulated tick.
    pub fn tick(&mut self, now: SimTime) {
        for c in 0..self.lanes.len() {
            // Integer decay: one point per whole elapsed interval.
            let interval = self.cfg.decay_interval.as_micros();
            if let Some(steps) = now
                .as_micros()
                .saturating_sub(self.lanes[c].last_decay.as_micros())
                .checked_div(interval)
            {
                let lane = &mut self.lanes[c];
                if steps > 0 {
                    lane.score = lane
                        .score
                        .saturating_sub(steps.min(u64::from(u32::MAX)) as u32);
                    lane.last_decay =
                        SimTime::from_micros(lane.last_decay.as_micros() + steps * interval);
                }
            }
            let clean_for = now
                .as_micros()
                .saturating_sub(self.lanes[c].last_offense.as_micros());
            match self.lanes[c].state {
                ContainmentState::Quarantined => {
                    if clean_for >= self.cfg.quarantine_hold.as_micros() {
                        self.lanes[c].score = 0;
                        self.goto(c, ContainmentState::Probation, "clean quarantine hold", now);
                    }
                }
                ContainmentState::Probation => {
                    if clean_for >= self.cfg.probation_hold.as_micros() {
                        self.goto(c, ContainmentState::Healthy, "clean probation hold", now);
                    }
                }
                _ => {
                    // Decay may demote Throttled -> Warned -> Healthy.
                    let target = self.score_state(self.lanes[c].score);
                    if target < self.lanes[c].state {
                        self.goto(c, target, "score decay", now);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn engine() -> ContainmentEngine {
        ContainmentEngine::new(2, ContainmentConfig::default())
    }

    fn violation() -> Violation {
        Violation::RouteLeak
    }

    #[test]
    fn token_bucket_refills_deterministically() {
        let cfg = TokenBucketConfig {
            capacity: 2,
            refill_per_sec: 1,
        };
        let mut b = TokenBucket::new(cfg);
        assert!(b.try_take(t(0)));
        assert!(b.try_take(t(0)));
        assert!(!b.try_take(t(0)), "burst exhausted");
        // Half a second refills half a token: still empty.
        assert!(!b.try_take(SimTime::from_millis(500)));
        // The two halves add up to a whole token at t=1s.
        assert!(b.try_take(t(1)));
        assert!(!b.try_take(t(1)));
        // Refill caps at capacity.
        let mut b2 = TokenBucket::new(cfg);
        assert_eq!(b2.tokens(t(1000)), 2);
    }

    #[test]
    fn offenses_climb_the_ladder_in_order() {
        let mut e = engine();
        assert_eq!(e.state(0), ContainmentState::Healthy);
        e.on_violation(0, &violation(), t(1)); // score 2 -> Warned
        assert_eq!(e.state(0), ContainmentState::Warned);
        e.on_violation(0, &violation(), t(2)); // score 4 -> Throttled
        assert_eq!(e.state(0), ContainmentState::Throttled);
        e.on_violation(0, &violation(), t(3)); // score 6
        e.on_violation(0, &violation(), t(4)); // score 8 -> Quarantined
        assert_eq!(e.state(0), ContainmentState::Quarantined);
        // The other lane is untouched.
        assert_eq!(e.state(1), ContainmentState::Healthy);
        let states: Vec<ContainmentState> = e.transitions().iter().map(|tr| tr.to).collect();
        assert_eq!(
            states,
            vec![
                ContainmentState::Warned,
                ContainmentState::Throttled,
                ContainmentState::Quarantined
            ]
        );
    }

    #[test]
    fn quarantine_recovers_through_probation() {
        let mut e = engine();
        for i in 0..4 {
            e.on_violation(0, &violation(), t(i));
        }
        assert_eq!(e.state(0), ContainmentState::Quarantined);
        // Still quarantined before the hold elapses.
        e.tick(t(3 + 119));
        assert_eq!(e.state(0), ContainmentState::Quarantined);
        // Clean hold -> Probation.
        e.tick(t(3 + 120));
        assert_eq!(e.state(0), ContainmentState::Probation);
        assert_eq!(e.score(0), 0);
        // Clean probation -> Healthy.
        e.tick(t(3 + 120 + 180));
        assert_eq!(e.state(0), ContainmentState::Healthy);
    }

    #[test]
    fn offense_during_probation_requarantines_immediately() {
        let mut e = engine();
        for i in 0..4 {
            e.on_violation(0, &violation(), t(i));
        }
        e.tick(t(200));
        assert_eq!(e.state(0), ContainmentState::Probation);
        e.on_flap(0, t(201));
        assert_eq!(e.state(0), ContainmentState::Quarantined);
    }

    #[test]
    fn score_decay_demotes_without_offenses() {
        let mut e = engine();
        e.on_violation(0, &violation(), t(1)); // score 2 -> Warned
        assert_eq!(e.state(0), ContainmentState::Warned);
        // Two decay intervals drain the score; the lane demotes.
        e.tick(t(121));
        assert_eq!(e.score(0), 0);
        assert_eq!(e.state(0), ContainmentState::Healthy);
    }

    #[test]
    fn throttled_lane_polices_over_rate_updates() {
        let cfg = ContainmentConfig {
            bucket: TokenBucketConfig {
                capacity: 2,
                refill_per_sec: 1,
            },
            ..ContainmentConfig::default()
        };
        let mut e = ContainmentEngine::new(1, cfg);
        // Push the lane to Throttled.
        e.on_violation(0, &violation(), t(0));
        e.on_violation(0, &violation(), t(0));
        assert_eq!(e.state(0), ContainmentState::Throttled);
        // Burst passes, then policing engages.
        assert_eq!(e.on_update(0, t(1)), UpdateVerdict::Forward);
        assert_eq!(e.on_update(0, t(1)), UpdateVerdict::Forward);
        assert_eq!(e.on_update(0, t(1)), UpdateVerdict::Policed);
        // Each policed update raises the score toward quarantine.
        let mut last = UpdateVerdict::Policed;
        for _ in 0..8 {
            last = e.on_update(0, t(1));
        }
        assert_eq!(last, UpdateVerdict::Quarantined);
        assert_eq!(e.state(0), ContainmentState::Quarantined);
        assert_eq!(e.on_update(0, t(2)), UpdateVerdict::Quarantined);
    }

    #[test]
    fn healthy_lane_forwards_even_over_rate() {
        let cfg = ContainmentConfig {
            bucket: TokenBucketConfig {
                capacity: 1,
                refill_per_sec: 1,
            },
            ..ContainmentConfig::default()
        };
        let mut e = ContainmentEngine::new(1, cfg);
        assert_eq!(e.on_update(0, t(0)), UpdateVerdict::Forward);
        // Over rate but still below Throttled: forwarded, score climbs.
        assert_eq!(e.on_update(0, t(0)), UpdateVerdict::Forward);
        assert!(e.score(0) > 0);
    }

    #[test]
    fn transitions_counter_mirrors_into_telemetry() {
        let mut e = engine();
        e.set_telemetry(Telemetry::new());
        e.on_violation(0, &violation(), t(1));
        e.on_violation(0, &violation(), t(2));
        let snap = e.telemetry.snapshot();
        assert_eq!(snap.counter("core.containment.state_transitions"), 2);
        assert_eq!(e.transitions().len(), 2);
    }

    #[test]
    fn transition_log_serde_round_trips() {
        let tr = Transition {
            time: t(5),
            client: 1,
            from: ContainmentState::Warned,
            to: ContainmentState::Throttled,
            cause: "safety violation: re-exporting non-PEERING routes (leak)".to_string(),
        };
        let json = serde_json::to_string(&tr).expect("serialize");
        let back: Transition = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(tr, back);
    }
}
