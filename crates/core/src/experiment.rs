//! Experiments: definitions, isolation, and the announcement scheduler.
//!
//! "Each experiment receives its own prefixes out of PEERING's supply,
//! isolating them from each other" (§3). The scheduler models the
//! prototype web service that "lets users schedule announcements without
//! setting up a client software router... The system will then notify
//! researchers when their announcements will be executed."

use peering_netsim::{Asn, Ipv4Net, Ipv6Net, SimTime};
use peering_topology::AsIdx;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies an experiment within the testbed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ExperimentId(pub u32);

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exp{}", self.0)
    }
}

/// Which neighbors an announcement goes to, per site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerSelector {
    /// Everyone: transit providers and all peers.
    All,
    /// Only transit providers (university upstreams).
    TransitOnly,
    /// Only settlement-free peers (IXP neighbors).
    PeersOnly,
    /// Exactly these neighbors.
    Specific(Vec<AsIdx>),
    /// Everyone except these neighbors ("ignoring particular peers...
    /// to emulate a particular topology").
    Excluding(Vec<AsIdx>),
}

/// One controlled announcement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnouncementSpec {
    /// The prefix to announce (must be within the experiment's /24).
    pub prefix: Ipv4Net,
    /// Server sites that announce (indices into the testbed's sites).
    pub sites: Vec<usize>,
    /// Neighbor selection at those sites.
    pub select: PeerSelector,
    /// Extra self-prepends.
    pub prepend: u8,
    /// Poisoned ASNs.
    pub poison: Vec<Asn>,
    /// Private origin ASN of an emulated domain behind PEERING (stripped
    /// at the border; recorded for bookkeeping).
    pub emulated_origin: Option<Asn>,
}

impl AnnouncementSpec {
    /// Announce `prefix` everywhere from the given sites.
    pub fn everywhere(prefix: Ipv4Net, sites: Vec<usize>) -> Self {
        AnnouncementSpec {
            prefix,
            sites,
            select: PeerSelector::All,
            prepend: 0,
            poison: Vec::new(),
            emulated_origin: None,
        }
    }

    /// Builder: neighbor selection.
    pub fn select(mut self, s: PeerSelector) -> Self {
        self.select = s;
        self
    }

    /// Builder: prepending.
    pub fn prepended(mut self, n: u8) -> Self {
        self.prepend = n;
        self
    }

    /// Builder: poisoning.
    pub fn poisoned(mut self, asns: Vec<Asn>) -> Self {
        self.poison = asns;
        self
    }
}

/// A vetted, provisioned experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Experiment {
    /// Its id.
    pub id: ExperimentId,
    /// Human name ("lifeguard-repro").
    pub name: String,
    /// Researcher / institution (the advisory board vets these).
    pub owner: String,
    /// The /24 allocated to it.
    pub prefix: Ipv4Net,
    /// When it was provisioned.
    pub created: SimTime,
    /// Currently active announcements by prefix.
    pub active: BTreeMap<Ipv4Net, AnnouncementSpec>,
    /// The experiment's IPv6 /48, once requested via `enable_ipv6`.
    pub v6_prefix: Option<Ipv6Net>,
    /// A dedicated public origin ASN, once requested via
    /// `assign_secondary_asn` (the paper plans "multiple public ASNs" to
    /// ease multi-origin experiments).
    pub origin_asn: Option<Asn>,
    /// Active IPv6 announcements: prefix -> announcing sites.
    pub active_v6: BTreeMap<Ipv6Net, Vec<usize>>,
}

impl Experiment {
    /// True if this experiment may announce `prefix`.
    pub fn owns(&self, prefix: &Ipv4Net) -> bool {
        self.prefix.covers(prefix)
    }
}

/// A scheduled control-plane action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduledAction {
    /// Make this announcement.
    Announce(AnnouncementSpec),
    /// Withdraw this prefix everywhere.
    Withdraw(Ipv4Net),
}

/// The announcement calendar (the web-portal backend).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schedule {
    entries: Vec<(SimTime, ExperimentId, ScheduledAction)>,
    cursor: usize,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an entry; entries may be added out of order. An entry
    /// timestamped before actions that have already executed is treated
    /// as overdue: it fires on the next [`due`](Self::due) call, and the
    /// already-executed prefix is never replayed.
    pub fn at(&mut self, time: SimTime, exp: ExperimentId, action: ScheduledAction) {
        let pos = self
            .entries
            .partition_point(|(t, _, _)| *t <= time)
            .max(self.cursor);
        self.entries.insert(pos, (time, exp, action));
    }

    /// Entries due at or before `now` that have not been executed yet.
    pub fn due(&mut self, now: SimTime) -> Vec<(SimTime, ExperimentId, ScheduledAction)> {
        let mut out = Vec::new();
        while self.cursor < self.entries.len() && self.entries[self.cursor].0 <= now {
            out.push(self.entries[self.cursor].clone());
            self.cursor += 1;
        }
        out
    }

    /// When the next entry fires.
    pub fn next_time(&self) -> Option<SimTime> {
        self.entries.get(self.cursor).map(|(t, _, _)| *t)
    }

    /// Number of entries not yet executed.
    pub fn pending(&self) -> usize {
        self.entries.len() - self.cursor
    }

    /// All entries (for the "notify researchers when announcements will
    /// be executed" view).
    pub fn upcoming(&self) -> &[(SimTime, ExperimentId, ScheduledAction)] {
        &self.entries[self.cursor..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }

    #[test]
    fn experiment_ownership() {
        let e = Experiment {
            id: ExperimentId(1),
            name: "t".into(),
            owner: "usc".into(),
            prefix: net("184.164.225.0/24"),
            created: SimTime::ZERO,
            active: BTreeMap::new(),
            v6_prefix: None,
            active_v6: BTreeMap::new(),
            origin_asn: None,
        };
        assert!(e.owns(&net("184.164.225.0/24")));
        assert!(e.owns(&net("184.164.225.128/25")));
        assert!(!e.owns(&net("184.164.226.0/24")));
        assert_eq!(e.id.to_string(), "exp1");
    }

    #[test]
    fn spec_builders() {
        let spec = AnnouncementSpec::everywhere(net("184.164.225.0/24"), vec![0, 1])
            .select(PeerSelector::PeersOnly)
            .prepended(3)
            .poisoned(vec![Asn(3356)]);
        assert_eq!(spec.sites, vec![0, 1]);
        assert_eq!(spec.select, PeerSelector::PeersOnly);
        assert_eq!(spec.prepend, 3);
        assert_eq!(spec.poison, vec![Asn(3356)]);
    }

    #[test]
    fn schedule_fires_in_order() {
        let mut s = Schedule::new();
        let spec = AnnouncementSpec::everywhere(net("184.164.225.0/24"), vec![0]);
        s.at(
            SimTime::from_secs(100),
            ExperimentId(1),
            ScheduledAction::Withdraw(net("184.164.225.0/24")),
        );
        s.at(
            SimTime::from_secs(10),
            ExperimentId(1),
            ScheduledAction::Announce(spec.clone()),
        );
        assert_eq!(s.pending(), 2);
        assert_eq!(s.next_time(), Some(SimTime::from_secs(10)));
        let due = s.due(SimTime::from_secs(50));
        assert_eq!(due.len(), 1);
        assert!(matches!(due[0].2, ScheduledAction::Announce(_)));
        assert_eq!(s.pending(), 1);
        let due = s.due(SimTime::from_secs(100));
        assert_eq!(due.len(), 1);
        assert!(matches!(due[0].2, ScheduledAction::Withdraw(_)));
        assert!(s.due(SimTime::from_secs(1000)).is_empty());
        assert_eq!(s.next_time(), None);
    }

    #[test]
    fn simultaneous_entries_preserve_insertion_order() {
        let mut s = Schedule::new();
        let t = SimTime::from_secs(5);
        s.at(
            t,
            ExperimentId(1),
            ScheduledAction::Withdraw(net("184.164.225.0/24")),
        );
        s.at(
            t,
            ExperimentId(2),
            ScheduledAction::Withdraw(net("184.164.226.0/24")),
        );
        let due = s.due(t);
        assert_eq!(due[0].1, ExperimentId(1));
        assert_eq!(due[1].1, ExperimentId(2));
    }

    #[test]
    fn late_scheduling_never_replays_executed_entries() {
        let mut s = Schedule::new();
        let p = net("184.164.225.0/24");
        s.at(
            SimTime::from_secs(10),
            ExperimentId(1),
            ScheduledAction::Withdraw(p),
        );
        // Execute it.
        assert_eq!(s.due(SimTime::from_secs(20)).len(), 1);
        // Now schedule something timestamped BEFORE the executed entry.
        s.at(
            SimTime::from_secs(5),
            ExperimentId(2),
            ScheduledAction::Withdraw(p),
        );
        let due = s.due(SimTime::from_secs(20));
        // Only the overdue new entry fires; the old one is not replayed.
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].1, ExperimentId(2));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn upcoming_view() {
        let mut s = Schedule::new();
        s.at(
            SimTime::from_secs(10),
            ExperimentId(1),
            ScheduledAction::Withdraw(net("184.164.225.0/24")),
        );
        assert_eq!(s.upcoming().len(), 1);
        s.due(SimTime::from_secs(10));
        assert!(s.upcoming().is_empty());
    }
}
