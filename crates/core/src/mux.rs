//! The BGP multiplexer — the heart of a PEERING server.
//!
//! "PEERING servers do not run the BGP route selection process; instead,
//! they establish one BGP session per peer with each client" (§3). That
//! is the Quagga-era design ([`MuxDesign::PerPeerSessions`]): faithful,
//! but the session count is `upstreams × clients`, which "cannot support
//! large IXPs with many peers". The paper's planned replacement is
//! "lightweight multiplexing by using BGP Additional Paths" on BIRD
//! ([`MuxDesign::AddPathMux`]): one session per client carries every
//! upstream's routes, distinguished by ADD-PATH ids.
//!
//! [`MuxHarness`] builds either design as a live network of speakers
//! (upstream neighbors, the server-side mux, and clients) inside the
//! emulation substrate, so the two designs can be compared on sessions,
//! memory, and update fan-out — the E7 ablation.

use crate::containment::{ContainmentConfig, ContainmentEngine, ContainmentState, UpdateVerdict};
use crate::monitor::{ContainmentRecord, Monitor, SessionKind, SessionRecord, TelemetryEvent};
use crate::safety::{SafetyConfig, Violation};
use peering_bgp::{
    Asn, ConnectRetryConfig, MaxPrefixConfig, PeerConfig, PeerId, Policy, Prefix, Speaker,
    SpeakerConfig, SpeakerEvent,
};
use peering_emulation::{Container, Emulation};
use peering_netsim::{FaultPlan, LinkParams, SimDuration, SimRng, SimTime};
use peering_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Which server architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MuxDesign {
    /// Quagga/Transit-Portal style: one server-side speaker per upstream
    /// peer; every client holds one session per upstream.
    PerPeerSessions,
    /// BIRD style: one server-side speaker; one ADD-PATH session per
    /// client carries all upstreams' routes.
    AddPathMux,
}

/// Comparison metrics for one built mux.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MuxStats {
    /// BGP sessions terminated at the server side.
    pub server_sessions: usize,
    /// Sessions each client must maintain.
    pub sessions_per_client: usize,
    /// Server-side BGP table memory in bytes.
    pub server_memory: usize,
    /// UPDATE messages the server has emitted.
    pub server_updates_sent: u64,
}

/// Optional knobs for [`MuxHarness::build_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MuxOptions {
    /// Max-prefix limit enforced on every client-facing session.
    pub client_max_prefix: Option<MaxPrefixConfig>,
    /// Link parameters for client<->mux links (bandwidth and a queue
    /// bound here make flood scenarios exercise tail-drop).
    pub client_link: LinkParams,
}

/// A live mux deployment: upstream speakers, the mux, and clients.
pub struct MuxHarness {
    /// The architecture built.
    pub design: MuxDesign,
    emu: Emulation,
    upstream_nodes: Vec<usize>,
    mux_nodes: Vec<usize>,
    client_nodes: Vec<usize>,
    n_upstreams: usize,
    n_clients: usize,
    /// The safety import policy client sessions normally run; restored
    /// when a quarantined client is paroled.
    client_import: Policy,
    /// Escalation engine, present once
    /// [`enable_containment`](Self::enable_containment) is called.
    containment: Option<ContainmentEngine>,
    /// Whether the quarantine lever (reject-all import at the mux) is
    /// currently applied to each client.
    quarantine_applied: Vec<bool>,
    /// How far [`containment_step`](Self::containment_step) has scanned
    /// the emulation's speaker event log.
    events_cursor: usize,
}

/// Upstream neighbor ASNs start here (public range).
const UPSTREAM_ASN_BASE: u32 = 1000;
/// Client (experiment) ASNs are private.
const CLIENT_ASN_BASE: u32 = 65001;

impl MuxHarness {
    /// Build and establish a mux with `n_upstreams` peers and
    /// `n_clients` clients, using default options.
    pub fn build(design: MuxDesign, n_upstreams: usize, n_clients: usize, seed: u64) -> Self {
        Self::build_with(design, n_upstreams, n_clients, seed, MuxOptions::default())
    }

    /// Build and establish a mux with explicit [`MuxOptions`].
    pub fn build_with(
        design: MuxDesign,
        n_upstreams: usize,
        n_clients: usize,
        seed: u64,
        opts: MuxOptions,
    ) -> Self {
        let mut emu = Emulation::new(SimRng::new(seed).fork("mux"));
        // The mux is where clients touch the real Internet, so the
        // server-side sessions carry the safety policies: client-facing
        // sessions only *import* PEERING-pool prefixes (no hijacks into
        // the mux RIB), and upstream-facing sessions only *export*
        // PEERING-pool prefixes (no leaks out of it).
        let safety = SafetyConfig::peering_default();
        let client_import = safety.client_import_policy();
        let upstream_export = safety.export_safety_policy();
        // Every speaker reconnects by itself after a session loss, with a
        // per-container jitter stream so a mux crash does not make the
        // whole fleet retry in lockstep.
        let retry = |label: String| ConnectRetryConfig::new(SimRng::new(seed).fork(&label).seed());
        // Client-facing sessions optionally carry a max-prefix limit.
        let clientside = |cfg: PeerConfig| match opts.client_max_prefix {
            Some(mp) => cfg.with_max_prefix(mp),
            None => cfg,
        };
        // Upstream neighbor routers.
        let upstream_nodes: Vec<usize> = (0..n_upstreams)
            .map(|u| {
                let asn = Asn(UPSTREAM_ASN_BASE + u as u32);
                emu.add_container(Container::router(
                    &format!("upstream-{u}"),
                    Speaker::new(
                        SpeakerConfig::new(
                            asn,
                            Ipv4Addr::new(80, 249, (u >> 8) as u8, (u & 0xff) as u8),
                        )
                        .with_connect_retry(retry(format!("retry/upstream-{u}"))),
                    ),
                ))
            })
            .collect();
        // Client routers.
        let client_nodes: Vec<usize> = (0..n_clients)
            .map(|c| {
                let asn = Asn(CLIENT_ASN_BASE + c as u32);
                emu.add_container(Container::router(
                    &format!("client-{c}"),
                    Speaker::new(
                        SpeakerConfig::new(
                            asn,
                            Ipv4Addr::new(100, 64, (c >> 8) as u8, (c & 0xff) as u8),
                        )
                        .with_connect_retry(retry(format!("retry/client-{c}"))),
                    ),
                ))
            })
            .collect();

        let mux_nodes = match design {
            MuxDesign::PerPeerSessions => {
                // One transparent speaker per upstream.
                let mut nodes = Vec::with_capacity(n_upstreams);
                for u in 0..n_upstreams {
                    let node = emu.add_container(Container::router(
                        &format!("mux-{u}"),
                        Speaker::new(
                            SpeakerConfig::new(
                                Asn::PEERING,
                                Ipv4Addr::new(100, 65, (u >> 8) as u8, (u & 0xff) as u8),
                            )
                            .route_server()
                            .with_connect_retry(retry(format!("retry/mux-{u}"))),
                        ),
                    ));
                    nodes.push(node);
                }
                // Wire upstream u <-> mux-u.
                for u in 0..n_upstreams {
                    emu.link(upstream_nodes[u], nodes[u], LinkParams::default());
                    emu.connect_bgp(
                        upstream_nodes[u],
                        PeerConfig::new(PeerId(0), Asn::PEERING),
                        nodes[u],
                        PeerConfig::new(PeerId(0), Asn(UPSTREAM_ASN_BASE + u as u32))
                            .passive()
                            .export(upstream_export.clone()),
                    );
                }
                // Wire every client to every mux instance.
                for (c, &cn) in client_nodes.iter().enumerate() {
                    for (u, &mn) in nodes.iter().enumerate() {
                        emu.link(cn, mn, opts.client_link);
                        emu.connect_bgp(
                            cn,
                            PeerConfig::new(PeerId(u as u32), Asn::PEERING),
                            mn,
                            clientside(
                                PeerConfig::new(
                                    PeerId(1 + c as u32),
                                    Asn(CLIENT_ASN_BASE + c as u32),
                                )
                                .passive()
                                .import(client_import.clone()),
                            ),
                        );
                    }
                }
                nodes
            }
            MuxDesign::AddPathMux => {
                let node = emu.add_container(Container::router(
                    "mux",
                    Speaker::new(
                        SpeakerConfig::new(Asn::PEERING, Ipv4Addr::new(100, 65, 0, 0))
                            .route_server()
                            .with_connect_retry(retry("retry/mux".to_string())),
                    ),
                ));
                for (u, &un) in upstream_nodes.iter().enumerate().take(n_upstreams) {
                    emu.link(un, node, LinkParams::default());
                    emu.connect_bgp(
                        un,
                        PeerConfig::new(PeerId(0), Asn::PEERING),
                        node,
                        PeerConfig::new(PeerId(u as u32), Asn(UPSTREAM_ASN_BASE + u as u32))
                            .passive()
                            .export(upstream_export.clone()),
                    );
                }
                for (c, &cn) in client_nodes.iter().enumerate() {
                    emu.link(cn, node, opts.client_link);
                    emu.connect_bgp(
                        cn,
                        PeerConfig::new(PeerId(0), Asn::PEERING),
                        node,
                        clientside(
                            PeerConfig::new(
                                PeerId(1000 + c as u32),
                                Asn(CLIENT_ASN_BASE + c as u32),
                            )
                            .passive()
                            .all_paths()
                            .import(client_import.clone()),
                        ),
                    );
                }
                vec![node]
            }
        };

        let mut harness = MuxHarness {
            design,
            emu,
            upstream_nodes,
            mux_nodes,
            client_nodes,
            n_upstreams,
            n_clients,
            client_import,
            containment: None,
            quarantine_applied: vec![false; n_clients],
            events_cursor: 0,
        };
        harness.emu.start_all();
        harness.emu.run_until_quiet(usize::MAX);
        harness
    }

    /// Originate `prefix` at upstream `u` and run to convergence.
    pub fn announce_from_upstream(&mut self, u: usize, prefix: Prefix) {
        self.emu.originate(self.upstream_nodes[u], prefix);
        self.emu.run_until_quiet(usize::MAX);
    }

    /// Withdraw `prefix` at upstream `u` and run to convergence.
    pub fn withdraw_from_upstream(&mut self, u: usize, prefix: Prefix) {
        self.emu.withdraw(self.upstream_nodes[u], prefix);
        self.emu.run_until_quiet(usize::MAX);
    }

    /// Originate `prefix` at client `c` and run to convergence. Whether
    /// it survives the mux's import policy is up to the safety config.
    pub fn announce_from_client(&mut self, c: usize, prefix: Prefix) {
        self.emu.originate(self.client_nodes[c], prefix);
        self.emu.run_until_quiet(usize::MAX);
    }

    /// Whether any mux instance accepted a route for `prefix`.
    pub fn mux_has_route(&self, prefix: &Prefix) -> bool {
        self.mux_nodes.iter().any(|&m| {
            self.emu
                .daemon(m)
                .map(|d| d.loc_rib().get(prefix).is_some())
                .unwrap_or(false)
        })
    }

    /// Number of paths upstream `u` holds for `prefix`.
    pub fn upstream_paths(&self, u: usize, prefix: &Prefix) -> usize {
        let Some(d) = self.emu.daemon(self.upstream_nodes[u]) else {
            return 0;
        };
        d.peer_ids()
            .filter_map(|p| d.adj_rib_in(p))
            .map(|rib| rib.paths(prefix).count())
            .sum()
    }

    /// Number of distinct paths client `c` holds for `prefix` across its
    /// session(s).
    pub fn client_paths(&self, c: usize, prefix: &Prefix) -> usize {
        let d = self
            .emu
            .daemon(self.client_nodes[c])
            .expect("client daemon");
        d.peer_ids()
            .filter_map(|p| d.adj_rib_in(p))
            .map(|rib| rib.paths(prefix).count())
            .sum()
    }

    /// The AS seen as first hop for each path client `c` has to `prefix`.
    pub fn client_path_origins(&self, c: usize, prefix: &Prefix) -> Vec<Asn> {
        let d = self
            .emu
            .daemon(self.client_nodes[c])
            .expect("client daemon");
        let mut v: Vec<Asn> = d
            .peer_ids()
            .filter_map(|p| d.adj_rib_in(p))
            .flat_map(|rib| rib.paths(prefix))
            .filter_map(|r| r.attrs.as_path.first_as())
            .collect();
        v.sort();
        v
    }

    /// Metrics for the comparison.
    pub fn stats(&self) -> MuxStats {
        let server_sessions = match self.design {
            MuxDesign::PerPeerSessions => self.n_upstreams + self.n_upstreams * self.n_clients,
            MuxDesign::AddPathMux => self.n_upstreams + self.n_clients,
        };
        let sessions_per_client = match self.design {
            MuxDesign::PerPeerSessions => self.n_upstreams,
            MuxDesign::AddPathMux => 1,
        };
        let mut server_memory = 0;
        let mut server_updates_sent = 0;
        for &m in &self.mux_nodes {
            let d = self.emu.daemon(m).expect("mux daemon");
            server_memory += d.table_memory();
            server_updates_sent += d.updates_sent;
        }
        MuxStats {
            server_sessions,
            sessions_per_client,
            server_memory,
            server_updates_sent,
        }
    }

    /// Attach a telemetry handle: the emulation substrate and every
    /// hosted speaker mirror `bgp.*` / `emulation.*` metrics into it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        if let Some(engine) = self.containment.as_mut() {
            engine.set_telemetry(telemetry.clone());
        }
        self.emu.set_telemetry(telemetry);
    }

    /// The attached telemetry handle (disabled unless
    /// [`set_telemetry`](Self::set_telemetry) was called).
    pub fn telemetry(&self) -> &Telemetry {
        self.emu.telemetry()
    }

    /// Export cumulative transport counters (`netsim.*` gauges) into the
    /// attached registry.
    pub fn export_net_stats(&self) {
        self.emu.export_net_stats();
    }

    /// Verify every configured session reached Established.
    pub fn fully_established(&self) -> bool {
        let all = |idx: usize| {
            let Some(d) = self.emu.daemon(idx) else {
                return false;
            };
            d.peer_ids().all(|p| d.peer_established(p))
        };
        self.upstream_nodes.iter().all(|&n| all(n))
            && self.mux_nodes.iter().all(|&n| all(n))
            && self.client_nodes.iter().all(|&n| all(n))
    }

    /// Emulation node index of mux instance `i`.
    pub fn mux_node(&self, i: usize) -> usize {
        self.mux_nodes[i]
    }

    /// Emulation node index of client `c`.
    pub fn client_node(&self, c: usize) -> usize {
        self.client_nodes[c]
    }

    /// Emulation node index of upstream `u`.
    pub fn upstream_node(&self, u: usize) -> usize {
        self.upstream_nodes[u]
    }

    /// Read-only access to the underlying emulation, for digests and
    /// RIB inspection by workload drivers.
    pub fn emulation(&self) -> &Emulation {
        &self.emu
    }

    /// Mutable access to the underlying emulation, for workload drivers
    /// that need raw fault injection or wire-level bursts.
    pub fn emulation_mut(&mut self) -> &mut Emulation {
        &mut self.emu
    }

    /// Crash mux instance `i`: the daemon process dies, every session it
    /// terminated drops at the far end.
    pub fn crash_mux(&mut self, i: usize) {
        let node = self.mux_nodes[i];
        self.emu.crash_daemon(node);
        self.emu.run_until_quiet(usize::MAX);
    }

    /// Restart a crashed mux instance `i` with empty RIBs; far-end
    /// speakers reconnect via their ConnectRetry timers and re-announce.
    pub fn restart_mux(&mut self, i: usize) {
        let node = self.mux_nodes[i];
        self.emu.restart_daemon(node);
        self.emu.run_until_quiet(usize::MAX);
    }

    /// Run the harness under a fault schedule until `until`, ticking
    /// every simulated second so retry/hold timers fire.
    pub fn run_faults(&mut self, plan: &mut FaultPlan, until: SimTime) {
        self.emu
            .run_with_faults(plan, until, SimDuration::from_secs(1), usize::MAX);
    }

    /// Arm the abuse containment engine: one escalation lane per client.
    /// The event-log scan starts from "now" so establishment churn during
    /// build is not held against anyone.
    pub fn enable_containment(&mut self, cfg: ContainmentConfig) {
        let mut engine = ContainmentEngine::new(self.n_clients, cfg);
        engine.set_telemetry(self.emu.telemetry().clone());
        self.containment = Some(engine);
        self.events_cursor = self.emu.events.len();
    }

    /// The containment engine, if armed.
    pub fn containment(&self) -> Option<&ContainmentEngine> {
        self.containment.as_ref()
    }

    /// The client's peer id on a mux node (the mux side of its session).
    fn client_peer(&self, c: usize) -> PeerId {
        match self.design {
            MuxDesign::PerPeerSessions => PeerId(1 + c as u32),
            MuxDesign::AddPathMux => PeerId(1000 + c as u32),
        }
    }

    /// The client index behind a mux-side peer id, if it names a client.
    fn client_for_peer(design: MuxDesign, n_clients: usize, peer: PeerId) -> Option<usize> {
        let c = match design {
            MuxDesign::PerPeerSessions => (peer.0 as usize).checked_sub(1)?,
            MuxDesign::AddPathMux => (peer.0 as usize).checked_sub(1000)?,
        };
        (c < n_clients).then_some(c)
    }

    /// Feed a safety violation attributed to client `c` into the engine
    /// and apply any resulting quarantine immediately.
    pub fn report_violation(&mut self, c: usize, v: &Violation) {
        let now = self.emu.now();
        if let Some(engine) = self.containment.as_mut() {
            engine.on_violation(c, v, now);
        }
        self.apply_containment();
    }

    /// Originate `prefix` at client `c` under containment: the engine's
    /// rate limiter sees the update first, and a policed or quarantined
    /// update never reaches the wire. Without an engine this behaves
    /// like [`announce_from_client`](Self::announce_from_client).
    pub fn guarded_announce_from_client(&mut self, c: usize, prefix: Prefix) -> UpdateVerdict {
        let now = self.emu.now();
        let verdict = match self.containment.as_mut() {
            Some(engine) => engine.on_update(c, now),
            None => UpdateVerdict::Forward,
        };
        if verdict.admitted() {
            self.emu.originate(self.client_nodes[c], prefix);
            self.emu.run_until_quiet(usize::MAX);
        }
        self.apply_containment();
        verdict
    }

    /// Withdraw `prefix` at client `c` under containment; same policing
    /// as [`guarded_announce_from_client`](Self::guarded_announce_from_client).
    pub fn guarded_withdraw_from_client(&mut self, c: usize, prefix: Prefix) -> UpdateVerdict {
        let now = self.emu.now();
        let verdict = match self.containment.as_mut() {
            Some(engine) => engine.on_update(c, now),
            None => UpdateVerdict::Forward,
        };
        if verdict.admitted() {
            self.emu.withdraw(self.client_nodes[c], prefix);
            self.emu.run_until_quiet(usize::MAX);
        }
        self.apply_containment();
        verdict
    }

    /// Advance containment: ingest new mux-side session events (flaps,
    /// max-prefix ceases) into the engine, run its clean-time machinery,
    /// and apply or lift quarantines.
    pub fn containment_step(&mut self) {
        let now = self.emu.now();
        if let Some(engine) = self.containment.as_mut() {
            // Scan the speaker event log for client sessions dropping at
            // the mux side; a Cease for max prefixes weighs more than an
            // ordinary flap.
            while self.events_cursor < self.emu.events.len() {
                let (time, node, ev) = &self.emu.events[self.events_cursor];
                self.events_cursor += 1;
                if !self.mux_nodes.contains(node) {
                    continue;
                }
                if let SpeakerEvent::PeerDown(peer, reason) = ev {
                    if let Some(c) = Self::client_for_peer(self.design, self.n_clients, *peer) {
                        if reason.contains("max prefixes") {
                            engine.on_max_prefix(c, *time);
                        } else {
                            engine.on_flap(c, *time);
                        }
                    }
                }
            }
            engine.tick(now);
        }
        self.apply_containment();
    }

    /// Bring the mux's import policies in line with the engine's ladder:
    /// newly quarantined clients get a reject-all import (their routes
    /// are withdrawn upstream); paroled clients get the safety policy
    /// back plus a ROUTE-REFRESH to re-learn their table.
    fn apply_containment(&mut self) {
        let Some(engine) = self.containment.as_ref() else {
            return;
        };
        let changes: Vec<(usize, bool)> = (0..self.n_clients)
            .map(|c| (c, engine.state(c) == ContainmentState::Quarantined))
            .filter(|&(c, q)| q != self.quarantine_applied[c])
            .collect();
        for (c, quarantine) in changes {
            let peer = self.client_peer(c);
            for m in self.mux_nodes.clone() {
                if quarantine {
                    self.emu.set_peer_import(m, peer, Policy::reject_all());
                } else {
                    self.emu
                        .set_peer_import(m, peer, self.client_import.clone());
                    self.emu.request_refresh(m, peer);
                }
            }
            self.quarantine_applied[c] = quarantine;
            self.emu.run_until_quiet(usize::MAX);
        }
    }

    /// Replay the engine's transition log into a [`Monitor`] stream.
    pub fn containment_log_into(&self, monitor: &mut Monitor) {
        let Some(engine) = self.containment.as_ref() else {
            return;
        };
        for tr in engine.transitions() {
            monitor.record(TelemetryEvent::Containment(ContainmentRecord {
                time: tr.time,
                client: tr.client,
                from: tr.from,
                to: tr.to,
                cause: tr.cause.clone(),
            }));
        }
    }

    /// Replay the emulation's speaker event log into a [`Monitor`]
    /// session-lifecycle log.
    pub fn session_log_into(&self, monitor: &mut Monitor) {
        for (time, node, ev) in &self.emu.events {
            let (peer, kind, reason) = match ev {
                SpeakerEvent::PeerUp(p) => (p.0, SessionKind::Up, None),
                SpeakerEvent::PeerDown(p, reason) => (p.0, SessionKind::Down, Some(reason.clone())),
                _ => continue,
            };
            monitor.record(TelemetryEvent::Session(SessionRecord {
                time: *time,
                node: *node,
                peer,
                kind,
                reason,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix(i: u32) -> Prefix {
        Prefix::v4(203, (i >> 8) as u8, (i & 0xff) as u8, 0, 24)
    }

    #[test]
    fn per_peer_design_establishes_and_delivers_all_paths() {
        let mut h = MuxHarness::build(MuxDesign::PerPeerSessions, 4, 3, 1);
        assert!(h.fully_established());
        let p = prefix(1);
        for u in 0..4 {
            h.announce_from_upstream(u, p);
        }
        for c in 0..3 {
            assert_eq!(h.client_paths(c, &p), 4, "client {c} sees all 4 paths");
            let origins = h.client_path_origins(c, &p);
            assert_eq!(
                origins,
                vec![Asn(1000), Asn(1001), Asn(1002), Asn(1003)],
                "one path per upstream, untouched AS paths"
            );
        }
    }

    #[test]
    fn add_path_design_delivers_all_paths_on_one_session() {
        let mut h = MuxHarness::build(MuxDesign::AddPathMux, 4, 3, 1);
        assert!(h.fully_established());
        let p = prefix(2);
        for u in 0..4 {
            h.announce_from_upstream(u, p);
        }
        for c in 0..3 {
            assert_eq!(h.client_paths(c, &p), 4, "client {c} sees all 4 paths");
            let origins = h.client_path_origins(c, &p);
            assert_eq!(origins, vec![Asn(1000), Asn(1001), Asn(1002), Asn(1003)]);
        }
        assert_eq!(h.stats().sessions_per_client, 1);
    }

    #[test]
    fn session_counts_match_the_designs() {
        let per_peer = MuxHarness::build(MuxDesign::PerPeerSessions, 5, 4, 1);
        let add_path = MuxHarness::build(MuxDesign::AddPathMux, 5, 4, 1);
        let pp = per_peer.stats();
        let ap = add_path.stats();
        assert_eq!(pp.server_sessions, 5 + 5 * 4);
        assert_eq!(ap.server_sessions, 5 + 4);
        assert_eq!(pp.sessions_per_client, 5);
        assert_eq!(ap.sessions_per_client, 1);
        assert!(
            ap.server_sessions < pp.server_sessions,
            "ADD-PATH mux needs fewer sessions"
        );
    }

    #[test]
    fn designs_grow_differently_with_scale() {
        // The paper's point: per-peer sessions explode at big IXPs.
        let small_pp = MuxHarness::build(MuxDesign::PerPeerSessions, 2, 2, 1).stats();
        let big_pp = MuxHarness::build(MuxDesign::PerPeerSessions, 8, 6, 1).stats();
        let small_ap = MuxHarness::build(MuxDesign::AddPathMux, 2, 2, 1).stats();
        let big_ap = MuxHarness::build(MuxDesign::AddPathMux, 8, 6, 1).stats();
        let pp_growth = big_pp.server_sessions as f64 / small_pp.server_sessions as f64;
        let ap_growth = big_ap.server_sessions as f64 / small_ap.server_sessions as f64;
        assert!(pp_growth > ap_growth);
    }

    #[test]
    fn mux_drops_client_hijacks_but_forwards_pool_space() {
        for design in [MuxDesign::PerPeerSessions, MuxDesign::AddPathMux] {
            let mut h = MuxHarness::build(design, 2, 1, 3);
            assert!(h.fully_established());
            // A client announcing space outside the PEERING pool is
            // stopped at the mux's import policy: nothing reaches the
            // mux RIB, let alone an upstream.
            let hijack = Prefix::v4(8, 8, 8, 0, 24);
            h.announce_from_client(0, hijack);
            assert!(!h.mux_has_route(&hijack), "{design:?}: hijack imported");
            assert_eq!(h.upstream_paths(0, &hijack), 0, "{design:?}");
            // The client's allocated PEERING /24 flows through to the
            // upstreams, with the client's private ASN stripped at the
            // border by the export policy.
            let owned = Prefix::v4(184, 164, 224, 0, 24);
            h.announce_from_client(0, owned);
            assert!(h.mux_has_route(&owned), "{design:?}: pool space dropped");
            for u in 0..2 {
                assert_eq!(h.upstream_paths(u, &owned), 1, "{design:?} upstream {u}");
                let d = h.emu.daemon(h.upstream_nodes[u]).expect("daemon");
                let rib = d.adj_rib_in(PeerId(0)).expect("rib");
                for r in rib.paths(&owned) {
                    assert!(
                        !r.attrs.as_path.asns().any(|a| a.is_private()),
                        "{design:?}: private ASN leaked upstream"
                    );
                }
            }
        }
    }

    #[test]
    fn mux_crash_and_restart_recovers_both_designs() {
        use peering_netsim::{FaultAction, NodeId};
        for design in [MuxDesign::PerPeerSessions, MuxDesign::AddPathMux] {
            let mut h = MuxHarness::build(design, 3, 2, 5);
            let p = prefix(42);
            for u in 0..3 {
                h.announce_from_upstream(u, p);
            }
            assert_eq!(h.client_paths(0, &p), 3, "{design:?}: baseline");
            // Crash a mux daemon at t=10s and revive it at t=20s; run on
            // until the far ends' retry timers have reconnected and the
            // table is re-announced.
            let node = h.mux_node(0);
            let nid = NodeId(node as u32);
            let mut plan = FaultPlan::new()
                .at(SimTime::from_secs(10), FaultAction::MuxCrash(nid))
                .at(SimTime::from_secs(20), FaultAction::MuxRestart(nid));
            h.run_faults(&mut plan, SimTime::from_secs(240));
            assert!(h.fully_established(), "{design:?}: sessions recovered");
            assert_eq!(
                h.client_paths(0, &p),
                3,
                "{design:?}: all paths relearned after mux restart"
            );
            // The monitor's session log shows the outage.
            let mut mon = Monitor::new();
            h.session_log_into(&mut mon);
            assert!(
                mon.session_flaps(h.upstream_nodes[0]) >= 1
                    || mon.session_flaps(h.client_nodes[0]) >= 1,
                "{design:?}: far ends logged the session loss"
            );
        }
    }

    #[test]
    fn update_flood_walks_ladder_to_quarantine_and_back() {
        use crate::containment::TokenBucketConfig;
        let mut h = MuxHarness::build(MuxDesign::AddPathMux, 2, 2, 11);
        assert!(h.fully_established());
        let cfg = ContainmentConfig {
            bucket: TokenBucketConfig {
                capacity: 4,
                refill_per_sec: 1,
            },
            ..ContainmentConfig::default()
        };
        h.enable_containment(cfg);
        let abuser = Prefix::v4(184, 164, 225, 0, 24);
        let healthy = Prefix::v4(184, 164, 226, 0, 24);
        // Client 0 floods announce/withdraw churn until the ladder stops
        // it; the burst passes, then strikes accumulate.
        let mut verdicts = Vec::new();
        for _ in 0..20 {
            verdicts.push(h.guarded_announce_from_client(0, abuser));
            verdicts.push(h.guarded_withdraw_from_client(0, abuser));
        }
        let engine = h.containment().expect("engine");
        assert_eq!(engine.state(0), ContainmentState::Quarantined);
        assert_eq!(engine.state(1), ContainmentState::Healthy);
        assert!(verdicts.contains(&UpdateVerdict::Quarantined));
        // The quarantine lever withdrew whatever the abuser had placed.
        assert!(!h.mux_has_route(&abuser), "abuser routes withheld");
        // A healthy client on the same mux still converges.
        h.guarded_announce_from_client(1, healthy);
        assert!(h.mux_has_route(&healthy));
        assert_eq!(h.upstream_paths(0, &healthy), 1);
        // The ladder was climbed in order.
        let path: Vec<ContainmentState> = h
            .containment()
            .expect("engine")
            .transitions()
            .iter()
            .filter(|tr| tr.client == 0)
            .map(|tr| tr.to)
            .collect();
        assert_eq!(
            path,
            vec![
                ContainmentState::Warned,
                ContainmentState::Throttled,
                ContainmentState::Quarantined
            ]
        );
        // Clean time paroles the client; ROUTE-REFRESH restores the
        // table it still holds on its side.
        h.emu.originate(h.client_nodes[0], abuser);
        h.emu.run_until_quiet(usize::MAX);
        assert!(!h.mux_has_route(&abuser), "still quarantined");
        let mut plan = FaultPlan::new();
        h.run_faults(&mut plan, h.emu.now() + SimDuration::from_secs(130));
        h.containment_step();
        assert_eq!(
            h.containment().expect("engine").state(0),
            ContainmentState::Probation
        );
        assert!(
            h.mux_has_route(&abuser),
            "parole restores the client's routes via refresh"
        );
    }

    #[test]
    fn max_prefix_cease_feeds_the_containment_ladder() {
        use peering_bgp::MaxPrefixConfig;
        let opts = MuxOptions {
            client_max_prefix: Some(MaxPrefixConfig::new(3)),
            ..MuxOptions::default()
        };
        let mut h = MuxHarness::build_with(MuxDesign::AddPathMux, 2, 2, 13, opts);
        assert!(h.fully_established());
        h.enable_containment(ContainmentConfig::default());
        // A prefix-count blowup: the 4th pool prefix trips the limit and
        // the mux ceases the session.
        for i in 0..4u8 {
            h.announce_from_client(0, Prefix::v4(184, 164, 224 + i, 0, 24));
        }
        h.containment_step();
        let engine = h.containment().expect("engine");
        assert!(
            engine.score(0) >= 4,
            "max-prefix cease weighed in (score {})",
            engine.score(0)
        );
        assert!(engine.state(0) >= ContainmentState::Throttled);
        assert!(engine
            .transitions()
            .iter()
            .any(|tr| tr.cause.contains("max prefixes")));
        // The flushed session left no abuser routes behind.
        for i in 0..4u8 {
            assert!(!h.mux_has_route(&Prefix::v4(184, 164, 224 + i, 0, 24)));
        }
        // The other client is untouched.
        assert_eq!(engine.state(1), ContainmentState::Healthy);
    }

    #[test]
    fn withdrawals_flow_through_both_designs() {
        for design in [MuxDesign::PerPeerSessions, MuxDesign::AddPathMux] {
            let mut h = MuxHarness::build(design, 3, 2, 7);
            let p = prefix(9);
            for u in 0..3 {
                h.announce_from_upstream(u, p);
            }
            assert_eq!(h.client_paths(0, &p), 3, "design {design:?}");
            h.withdraw_from_upstream(1, p);
            assert_eq!(h.client_paths(0, &p), 2, "design {design:?}: one path gone");
            let origins = h.client_path_origins(0, &p);
            assert_eq!(origins, vec![Asn(1000), Asn(1002)]);
            h.withdraw_from_upstream(0, p);
            h.withdraw_from_upstream(2, p);
            assert_eq!(h.client_paths(0, &p), 0, "design {design:?}: all gone");
        }
    }
}
