//! PEERING servers and their sites.
//!
//! "PEERING has nine servers on three continents, dozens of indirect
//! providers through universities, and hundreds of peers \[at\] AMS-IX."
//! A server is the testbed's presence at one site: it terminates the real
//! BGP sessions there (transit at universities; route-server and
//! bilateral peers at IXPs), runs the mux toward clients, and forwards
//! tunnel traffic.

use crate::mux::MuxDesign;
use peering_topology::{AsGraph, AsIdx};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What kind of site a server is deployed at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteKind {
    /// Colocated at an IXP (index into the testbed's IXP list).
    Ixp {
        /// Which IXP.
        ixp_index: usize,
    },
    /// Hosted at a university with some number of transit upstreams.
    University {
        /// How many transit providers the university gives us.
        n_transits: usize,
    },
    /// Reached over a remote-peering provider's virtual layer-2 circuit
    /// from another physical site ("Hibernia Networks offered us
    /// virtualized layer 2 connectivity from our AMS-IX server to tens
    /// of IXPs around the world", §3).
    RemoteIxp {
        /// Which IXP.
        ixp_index: usize,
        /// The physical site whose server terminates the circuit.
        via_site: usize,
        /// One-way circuit latency in milliseconds.
        circuit_ms: u32,
    },
}

/// Site description used when building the testbed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Site name ("amsterdam01", "gatech01").
    pub name: String,
    /// Site kind.
    pub kind: SiteKind,
    /// Country the server sits in.
    pub country: [u8; 2],
}

impl SiteSpec {
    /// An IXP site.
    pub fn ixp(name: &str, ixp_index: usize, country: [u8; 2]) -> Self {
        SiteSpec {
            name: name.into(),
            kind: SiteKind::Ixp { ixp_index },
            country,
        }
    }

    /// A university site.
    pub fn university(name: &str, n_transits: usize, country: [u8; 2]) -> Self {
        SiteSpec {
            name: name.into(),
            kind: SiteKind::University { n_transits },
            country,
        }
    }

    /// A remote-peering site: no new hardware, a virtual circuit from
    /// `via_site`'s server to the IXP's fabric.
    pub fn remote_ixp(
        name: &str,
        ixp_index: usize,
        via_site: usize,
        circuit_ms: u32,
        country: [u8; 2],
    ) -> Self {
        SiteSpec {
            name: name.into(),
            kind: SiteKind::RemoteIxp {
                ixp_index,
                via_site,
                circuit_ms,
            },
            country,
        }
    }
}

/// A deployed PEERING server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeeringServer {
    /// The site it serves.
    pub site: SiteSpec,
    /// Transit providers at this site (customer-to-provider edges).
    pub transits: Vec<AsIdx>,
    /// Peers obtained through the IXP route server.
    pub rs_peers: Vec<AsIdx>,
    /// Peers obtained through bilateral requests.
    pub bilateral_peers: Vec<AsIdx>,
    /// Which mux architecture this server runs.
    pub mux_design: MuxDesign,
    /// For remote-peering sites: the physical site terminating the
    /// circuit (`None` for physically deployed servers).
    pub remote_via: Option<usize>,
}

impl PeeringServer {
    /// A server with no sessions yet.
    pub fn new(site: SiteSpec, mux_design: MuxDesign) -> Self {
        PeeringServer {
            site,
            transits: Vec::new(),
            rs_peers: Vec::new(),
            bilateral_peers: Vec::new(),
            mux_design,
            remote_via: None,
        }
    }

    /// All settlement-free peers at this site.
    pub fn peers(&self) -> Vec<AsIdx> {
        let mut v = self.rs_peers.clone();
        v.extend(&self.bilateral_peers);
        v
    }

    /// Every BGP neighbor at this site (transit + peers).
    pub fn neighbors(&self) -> Vec<AsIdx> {
        let mut v = self.transits.clone();
        v.extend(self.peers());
        v
    }

    /// Total session count at this site (before client multiplexing).
    pub fn session_count(&self) -> usize {
        self.transits.len() + self.rs_peers.len() + self.bilateral_peers.len()
    }

    /// Routes each peer would export to us: everything in its customer
    /// cone (peers export customer and own routes, never peer/provider
    /// routes). This is what §4.2's closing observation measures: "only
    /// our 5 largest peers give us more than 10K routes, and 307 give us
    /// fewer than 100 routes."
    pub fn peer_route_counts(&self, g: &AsGraph, cones: &[BTreeSet<AsIdx>]) -> Vec<(AsIdx, usize)> {
        self.peers()
            .iter()
            .map(|&p| {
                let count: usize = cones[p.i()].iter().map(|&m| g.info(m).prefixes.len()).sum();
                (p, count)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_netsim::Asn;
    use peering_topology::{cone::customer_cones, AsInfo, AsKind, Relationship};

    #[test]
    fn site_constructors() {
        let s = SiteSpec::ixp("amsterdam01", 0, *b"NL");
        assert_eq!(s.kind, SiteKind::Ixp { ixp_index: 0 });
        let u = SiteSpec::university("gatech01", 2, *b"US");
        assert_eq!(u.kind, SiteKind::University { n_transits: 2 });
    }

    #[test]
    fn peer_and_neighbor_sets() {
        let mut srv =
            PeeringServer::new(SiteSpec::ixp("ams", 0, *b"NL"), MuxDesign::PerPeerSessions);
        srv.transits = vec![AsIdx(1)];
        srv.rs_peers = vec![AsIdx(2), AsIdx(3)];
        srv.bilateral_peers = vec![AsIdx(4)];
        assert_eq!(srv.peers(), vec![AsIdx(2), AsIdx(3), AsIdx(4)]);
        assert_eq!(srv.neighbors().len(), 4);
        assert_eq!(srv.session_count(), 4);
    }

    #[test]
    fn peer_route_counts_follow_cones() {
        // p has customers c1 (2 prefixes) and c2 (1 prefix); q is a stub
        // with 1 prefix.
        let mut g = AsGraph::new();
        let p = g.add_as(AsInfo::new(Asn(1), AsKind::Transit));
        let c1 = g.add_as(AsInfo::new(Asn(2), AsKind::Stub));
        let c2 = g.add_as(AsInfo::new(Asn(3), AsKind::Stub));
        let q = g.add_as(AsInfo::new(Asn(4), AsKind::Content));
        g.add_edge(c1, p, Relationship::CustomerToProvider);
        g.add_edge(c2, p, Relationship::CustomerToProvider);
        g.info_mut(p).prefixes.push("10.0.0.0/16".parse().unwrap());
        g.info_mut(c1).prefixes.push("10.1.0.0/24".parse().unwrap());
        g.info_mut(c1).prefixes.push("10.1.1.0/24".parse().unwrap());
        g.info_mut(c2).prefixes.push("10.2.0.0/24".parse().unwrap());
        g.info_mut(q).prefixes.push("10.3.0.0/24".parse().unwrap());
        let cones = customer_cones(&g);
        let mut srv = PeeringServer::new(SiteSpec::ixp("x", 0, *b"NL"), MuxDesign::AddPathMux);
        srv.rs_peers = vec![p, q];
        let counts = srv.peer_route_counts(&g, &cones);
        assert_eq!(counts, vec![(p, 4), (q, 1)]);
    }
}
