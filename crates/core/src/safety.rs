//! Safety enforcement at PEERING servers.
//!
//! "By applying outbound filters on prefixes and origin AS and by
//! route-flap dampening, PEERING prevents experiments from impacting
//! routing for prefixes outside PEERING control. Clients cannot hijack or
//! leak prefixes, and they cannot spoof traffic in uncontrolled ways"
//! (§3). Servers interpose on both planes, so this module checks both
//! announcements and packets.

use crate::experiment::AnnouncementSpec;
use peering_bgp::{Action, AsPath, DampingConfig, DampingState, Match, Policy};
use peering_netsim::{Asn, Ipv4Net, Ipv6Net, Prefix, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Why an announcement or packet was blocked.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// The prefix is outside every PEERING pool: announcing it would
    /// hijack someone else's address space.
    Hijack(Ipv4Net),
    /// The prefix is PEERING space but not allocated to this experiment:
    /// it would stomp a concurrent experiment.
    NotYourPrefix(Ipv4Net),
    /// The route's origin ASN is not a PEERING ASN (origin spoofing).
    BadOrigin(Asn),
    /// A non-PEERING route would be re-exported (providing transit /
    /// leaking).
    RouteLeak,
    /// Prepend count above the configured ceiling.
    ExcessivePrepend(u8),
    /// Poison list longer than allowed.
    ExcessivePoison(usize),
    /// Flap damping suppressed this prefix.
    Damped(Ipv4Net),
    /// Announcement rate limit exceeded.
    RateLimited,
    /// Data-plane packet with a source address outside the experiment's
    /// prefix (uncontrolled spoofing).
    SpoofedSource(Ipv4Addr),
    /// An IPv6 announcement outside PEERING's v6 pool.
    HijackV6(Ipv6Net),
    /// An IPv6 announcement of another experiment's /48.
    NotYourV6Prefix(Ipv6Net),
    /// Flap damping suppressed this v6 prefix.
    DampedV6(Ipv6Net),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Hijack(p) => write!(f, "hijack attempt: {p} is not PEERING space"),
            Violation::NotYourPrefix(p) => write!(f, "{p} belongs to another experiment"),
            Violation::BadOrigin(a) => write!(f, "origin {a} is not a PEERING ASN"),
            Violation::RouteLeak => write!(f, "re-exporting non-PEERING routes (leak)"),
            Violation::ExcessivePrepend(n) => write!(f, "prepend {n} above limit"),
            Violation::ExcessivePoison(n) => write!(f, "poison list of {n} above limit"),
            Violation::Damped(p) => write!(f, "{p} suppressed by flap damping"),
            Violation::RateLimited => write!(f, "announcement rate limit exceeded"),
            Violation::SpoofedSource(ip) => write!(f, "spoofed source {ip}"),
            Violation::HijackV6(p) => write!(f, "hijack attempt: {p} is not PEERING v6 space"),
            Violation::NotYourV6Prefix(p) => write!(f, "{p} belongs to another experiment"),
            Violation::DampedV6(p) => write!(f, "{p} suppressed by flap damping"),
        }
    }
}

/// The filter's decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SafetyVerdict {
    /// Pass it along.
    Allowed,
    /// Blocked with a reason.
    Blocked(Violation),
}

impl SafetyVerdict {
    /// True when allowed.
    pub fn is_allowed(&self) -> bool {
        *self == SafetyVerdict::Allowed
    }
}

/// Safety limits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SafetyConfig {
    /// Address pools PEERING controls.
    pub pools: Vec<Ipv4Net>,
    /// IPv6 pools PEERING controls.
    pub pools_v6: Vec<Ipv6Net>,
    /// ASNs announcements may originate from.
    pub public_asns: Vec<Asn>,
    /// Flap-damping parameters applied per experiment prefix.
    pub damping: DampingConfig,
    /// Max AS-path prepends per announcement.
    pub max_prepend: u8,
    /// Max poisoned ASNs per announcement.
    pub max_poison: usize,
    /// Max control-plane actions per prefix per rate window.
    pub max_actions_per_window: u32,
    /// The rate-limit window.
    pub rate_window: SimDuration,
    /// Experiments with explicit spoofing approval (source prefixes they
    /// may use beyond their own) — "carefully controlled" spoofing.
    pub spoof_allowlist: Vec<(u32, Ipv4Net)>,
}

impl SafetyConfig {
    /// Defaults matching the testbed's published rules.
    pub fn new(pools: Vec<Ipv4Net>, public_asns: Vec<Asn>) -> Self {
        SafetyConfig {
            pools,
            pools_v6: Vec::new(),
            public_asns,
            damping: DampingConfig::default(),
            max_prepend: 10,
            max_poison: 5,
            max_actions_per_window: 20,
            rate_window: SimDuration::from_secs(3600),
            spoof_allowlist: Vec::new(),
        }
    }

    /// The conventional deployment: the 184.164.224.0/19 pool, the
    /// 2804:269c::/32 v6 pool, and AS47065 — matching
    /// [`PrefixAllocator::peering_default`](crate::alloc::PrefixAllocator::peering_default).
    pub fn peering_default() -> Self {
        let mut cfg = SafetyConfig::new(
            vec!["184.164.224.0/19".parse().expect("valid pool")],
            vec![Asn::PEERING],
        );
        cfg.pools_v6 = vec!["2804:269c::/32".parse().expect("valid v6 pool")];
        cfg
    }

    /// Longest announcement the testbed forwards upstream: the global
    /// table's conventional /24 (v4) and /48 (v6) acceptance limits.
    pub const MAX_V4_LEN: u8 = 24;
    /// See [`MAX_V4_LEN`](Self::MAX_V4_LEN).
    pub const MAX_V6_LEN: u8 = 48;

    /// Import policy for client-facing (mux) sessions: accept only
    /// PEERING-pool prefixes no more specific than the global-table
    /// limits, reject everything else. A client session carrying this
    /// policy cannot inject a hijack ([`Violation::Hijack`]) or an
    /// unroutable more-specific into the testbed's RIBs.
    pub fn client_import_policy(&self) -> Policy {
        let v4: Vec<Prefix> = self.pools.iter().copied().map(Prefix::from).collect();
        let v6: Vec<Prefix> = self.pools_v6.iter().copied().map(Prefix::from).collect();
        let mut p = Policy::reject_all();
        if !v4.is_empty() {
            p = p.rule(
                Match::All(vec![
                    Match::PrefixIn(v4),
                    Match::Not(Box::new(Match::LongerThan(Self::MAX_V4_LEN))),
                ]),
                vec![Action::Accept],
            );
        }
        if !v6.is_empty() {
            p = p.rule(
                Match::All(vec![
                    Match::PrefixIn(v6),
                    Match::Not(Box::new(Match::LongerThan(Self::MAX_V6_LEN))),
                ]),
                vec![Action::Accept],
            );
        }
        p
    }

    /// Export policy for upstream-facing sessions: only PEERING-pool
    /// prefixes leave the testbed (everything else is a
    /// [`Violation::RouteLeak`]), and private ASNs used by emulated
    /// domains are stripped at the border.
    pub fn export_safety_policy(&self) -> Policy {
        let mut nets: Vec<Prefix> = self.pools.iter().copied().map(Prefix::from).collect();
        nets.extend(self.pools_v6.iter().copied().map(Prefix::from));
        Policy::reject_all().rule(
            Match::PrefixIn(nets),
            vec![Action::StripPrivateAsns, Action::Accept],
        )
    }

    /// Statically check an announcement spec against the stateless subset
    /// of the safety rules (pool membership, ownership, origin, traffic-
    /// engineering limits). This is the pure kernel of
    /// [`SafetyFilter::check_announcement`]: no damping or rate state, so
    /// the same spec always yields the same verdict and the check can run
    /// before an experiment is ever executed.
    pub fn static_check(
        &self,
        owned: &Ipv4Net,
        spec: &AnnouncementSpec,
        origin: Asn,
    ) -> Result<(), Violation> {
        if !self.pools.iter().any(|p| p.covers(&spec.prefix)) {
            return Err(Violation::Hijack(spec.prefix));
        }
        if !owned.covers(&spec.prefix) {
            return Err(Violation::NotYourPrefix(spec.prefix));
        }
        if !self.public_asns.contains(&origin) {
            return Err(Violation::BadOrigin(origin));
        }
        if spec.prepend > self.max_prepend {
            return Err(Violation::ExcessivePrepend(spec.prepend));
        }
        if spec.poison.len() > self.max_poison {
            return Err(Violation::ExcessivePoison(spec.poison.len()));
        }
        Ok(())
    }
}

/// Stateful safety filter: one per testbed (damping and rate state are
/// tracked per experiment prefix).
#[derive(Debug)]
pub struct SafetyFilter {
    /// The active limits.
    pub cfg: SafetyConfig,
    damping: DampingState,
    rate: BTreeMap<Ipv4Net, (SimTime, u32)>,
    /// Count of blocked actions, by experiment tag.
    pub blocked: BTreeMap<u32, u32>,
}

impl SafetyFilter {
    /// Build from a config.
    pub fn new(cfg: SafetyConfig) -> Self {
        SafetyFilter {
            cfg,
            damping: DampingState::new(),
            rate: BTreeMap::new(),
            blocked: BTreeMap::new(),
        }
    }

    fn block(&mut self, tag: u32, v: Violation) -> SafetyVerdict {
        *self.blocked.entry(tag).or_insert(0) += 1;
        SafetyVerdict::Blocked(v)
    }

    /// Check a client's announcement.
    ///
    /// `tag` identifies the experiment; `owned` is the prefix allocated
    /// to it; `prefix` is what it is trying to announce.
    #[allow(clippy::too_many_arguments)]
    pub fn check_announcement(
        &mut self,
        tag: u32,
        owned: &Ipv4Net,
        prefix: &Ipv4Net,
        origin: Asn,
        prepend: u8,
        poison_len: usize,
        now: SimTime,
    ) -> SafetyVerdict {
        if !self.cfg.pools.iter().any(|p| p.covers(prefix)) {
            return self.block(tag, Violation::Hijack(*prefix));
        }
        if !owned.covers(prefix) {
            return self.block(tag, Violation::NotYourPrefix(*prefix));
        }
        if !self.cfg.public_asns.contains(&origin) {
            return self.block(tag, Violation::BadOrigin(origin));
        }
        if prepend > self.cfg.max_prepend {
            return self.block(tag, Violation::ExcessivePrepend(prepend));
        }
        if poison_len > self.cfg.max_poison {
            return self.block(tag, Violation::ExcessivePoison(poison_len));
        }
        // Rate limiting per prefix per window.
        let entry = self.rate.entry(*prefix).or_insert((now, 0));
        if now.since(entry.0) > self.cfg.rate_window {
            *entry = (now, 0);
        }
        entry.1 += 1;
        if entry.1 > self.cfg.max_actions_per_window {
            return self.block(tag, Violation::RateLimited);
        }
        // Flap damping across announce events.
        let p4 = Prefix::V4(*prefix);
        if self.damping.on_announce(p4, now, &self.cfg.damping)
            || self.damping.is_suppressed(&p4, now, &self.cfg.damping)
        {
            return self.block(tag, Violation::Damped(*prefix));
        }
        SafetyVerdict::Allowed
    }

    /// Check an IPv6 announcement (same rules as v4: pool membership,
    /// experiment ownership, origin, TE limits, damping, rate limits).
    #[allow(clippy::too_many_arguments)]
    pub fn check_announcement_v6(
        &mut self,
        tag: u32,
        owned: &Ipv6Net,
        prefix: &Ipv6Net,
        origin: Asn,
        prepend: u8,
        poison_len: usize,
        now: SimTime,
    ) -> SafetyVerdict {
        if !self.cfg.pools_v6.iter().any(|p| p.covers(prefix)) {
            return self.block(tag, Violation::HijackV6(*prefix));
        }
        if !owned.covers(prefix) {
            return self.block(tag, Violation::NotYourV6Prefix(*prefix));
        }
        if !self.cfg.public_asns.contains(&origin) {
            return self.block(tag, Violation::BadOrigin(origin));
        }
        if prepend > self.cfg.max_prepend {
            return self.block(tag, Violation::ExcessivePrepend(prepend));
        }
        if poison_len > self.cfg.max_poison {
            return self.block(tag, Violation::ExcessivePoison(poison_len));
        }
        let p6 = Prefix::V6(*prefix);
        if self.damping.on_announce(p6, now, &self.cfg.damping)
            || self.damping.is_suppressed(&p6, now, &self.cfg.damping)
        {
            return self.block(tag, Violation::DampedV6(*prefix));
        }
        SafetyVerdict::Allowed
    }

    /// Record an IPv6 withdrawal (feeds damping).
    pub fn note_withdrawal_v6(&mut self, prefix: &Ipv6Net, now: SimTime) {
        self.damping
            .on_withdraw(Prefix::V6(*prefix), now, &self.cfg.damping);
    }

    /// Record a withdrawal (feeds damping; withdrawals themselves are
    /// always allowed — pulling a route back is safe).
    pub fn note_withdrawal(&mut self, prefix: &Ipv4Net, now: SimTime) {
        self.damping
            .on_withdraw(Prefix::V4(*prefix), now, &self.cfg.damping);
    }

    /// Check a route a client wants PEERING to re-export (transit). The
    /// testbed "will not provide transit for non-PEERING destinations".
    pub fn check_reexport(&mut self, tag: u32, prefix: &Ipv4Net) -> SafetyVerdict {
        if self.cfg.pools.iter().any(|p| p.covers(prefix)) {
            SafetyVerdict::Allowed
        } else {
            self.block(tag, Violation::RouteLeak)
        }
    }

    /// Check a data-plane packet's source address.
    pub fn check_packet_source(
        &mut self,
        tag: u32,
        owned: &Ipv4Net,
        src: Ipv4Addr,
    ) -> SafetyVerdict {
        if owned.contains(src) {
            return SafetyVerdict::Allowed;
        }
        if self
            .cfg
            .spoof_allowlist
            .iter()
            .any(|(t, net)| *t == tag && net.contains(src))
        {
            return SafetyVerdict::Allowed;
        }
        self.block(tag, Violation::SpoofedSource(src))
    }

    /// Strip private ASNs from a path at the testbed border — emulated
    /// domains run private ASNs "behind" the public PEERING ASN.
    pub fn sanitize_path(path: &mut AsPath) {
        path.strip_private();
    }

    /// Total blocked actions across experiments.
    pub fn total_blocked(&self) -> u32 {
        self.blocked.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter() -> (SafetyFilter, Ipv4Net) {
        let pool: Ipv4Net = "184.164.224.0/19".parse().unwrap();
        let cfg = SafetyConfig::new(vec![pool], vec![Asn::PEERING]);
        let owned: Ipv4Net = "184.164.225.0/24".parse().unwrap();
        (SafetyFilter::new(cfg), owned)
    }

    #[test]
    fn legitimate_announcement_allowed() {
        let (mut f, owned) = filter();
        let v = f.check_announcement(1, &owned, &owned, Asn::PEERING, 2, 1, SimTime::ZERO);
        assert!(v.is_allowed());
        assert_eq!(f.total_blocked(), 0);
    }

    #[test]
    fn hijack_blocked() {
        let (mut f, owned) = filter();
        let google: Ipv4Net = "8.8.8.0/24".parse().unwrap();
        let v = f.check_announcement(1, &owned, &google, Asn::PEERING, 0, 0, SimTime::ZERO);
        assert_eq!(v, SafetyVerdict::Blocked(Violation::Hijack(google)));
        assert_eq!(f.blocked[&1], 1);
    }

    #[test]
    fn cross_experiment_stomp_blocked() {
        let (mut f, owned) = filter();
        let other: Ipv4Net = "184.164.230.0/24".parse().unwrap();
        let v = f.check_announcement(1, &owned, &other, Asn::PEERING, 0, 0, SimTime::ZERO);
        assert_eq!(v, SafetyVerdict::Blocked(Violation::NotYourPrefix(other)));
    }

    #[test]
    fn more_specific_of_own_prefix_allowed() {
        let (mut f, owned) = filter();
        let sub: Ipv4Net = "184.164.225.0/25".parse().unwrap();
        let v = f.check_announcement(1, &owned, &sub, Asn::PEERING, 0, 0, SimTime::ZERO);
        assert!(v.is_allowed());
    }

    #[test]
    fn bad_origin_blocked() {
        let (mut f, owned) = filter();
        let v = f.check_announcement(1, &owned, &owned, Asn(15169), 0, 0, SimTime::ZERO);
        assert_eq!(v, SafetyVerdict::Blocked(Violation::BadOrigin(Asn(15169))));
    }

    #[test]
    fn prepend_and_poison_limits() {
        let (mut f, owned) = filter();
        let v = f.check_announcement(1, &owned, &owned, Asn::PEERING, 11, 0, SimTime::ZERO);
        assert_eq!(v, SafetyVerdict::Blocked(Violation::ExcessivePrepend(11)));
        let v = f.check_announcement(1, &owned, &owned, Asn::PEERING, 0, 6, SimTime::ZERO);
        assert_eq!(v, SafetyVerdict::Blocked(Violation::ExcessivePoison(6)));
    }

    #[test]
    fn flapping_gets_damped() {
        let (mut f, owned) = filter();
        let mut now = SimTime::ZERO;
        let mut damped = false;
        for _ in 0..10 {
            now += SimDuration::from_secs(30);
            let v = f.check_announcement(1, &owned, &owned, Asn::PEERING, 0, 0, now);
            if matches!(v, SafetyVerdict::Blocked(Violation::Damped(_))) {
                damped = true;
                break;
            }
            now += SimDuration::from_secs(30);
            f.note_withdrawal(&owned, now);
        }
        assert!(damped, "rapid announce/withdraw cycles must be damped");
    }

    #[test]
    fn rate_limit_kicks_in() {
        let (mut f, owned) = filter();
        // Disable damping interference by spreading within window but
        // using a huge damping suppress threshold.
        f.cfg.damping.suppress_threshold = 1e12;
        let mut verdicts = Vec::new();
        for i in 0..25 {
            let now = SimTime::from_secs(i * 10);
            verdicts.push(f.check_announcement(1, &owned, &owned, Asn::PEERING, 0, 0, now));
        }
        assert!(verdicts
            .iter()
            .any(|v| matches!(v, SafetyVerdict::Blocked(Violation::RateLimited))));
        // A new window resets the counter.
        let later = SimTime::from_secs(10 * 3600);
        let v = f.check_announcement(1, &owned, &owned, Asn::PEERING, 0, 0, later);
        assert!(
            v.is_allowed() || matches!(v, SafetyVerdict::Blocked(Violation::Damped(_))),
            "{v:?}"
        );
    }

    #[test]
    fn transit_leak_blocked() {
        let (mut f, _) = filter();
        let outside: Ipv4Net = "1.2.3.0/24".parse().unwrap();
        assert_eq!(
            f.check_reexport(3, &outside),
            SafetyVerdict::Blocked(Violation::RouteLeak)
        );
        let inside: Ipv4Net = "184.164.226.0/24".parse().unwrap();
        assert!(f.check_reexport(3, &inside).is_allowed());
    }

    #[test]
    fn spoof_control() {
        let (mut f, owned) = filter();
        let ok = f.check_packet_source(1, &owned, "184.164.225.7".parse().unwrap());
        assert!(ok.is_allowed());
        let bad_ip: Ipv4Addr = "9.9.9.9".parse().unwrap();
        let bad = f.check_packet_source(1, &owned, bad_ip);
        assert_eq!(
            bad,
            SafetyVerdict::Blocked(Violation::SpoofedSource(bad_ip))
        );
        // Allowlisted controlled spoofing (e.g. reverse traceroute).
        f.cfg
            .spoof_allowlist
            .push((1, "9.9.9.0/24".parse().unwrap()));
        assert!(f.check_packet_source(1, &owned, bad_ip).is_allowed());
        // ...but only for the approved experiment.
        assert!(!f.check_packet_source(2, &owned, bad_ip).is_allowed());
    }

    #[test]
    fn sanitize_strips_private_asns() {
        let mut path = AsPath::from_asns(&[Asn::PEERING, Asn(65001), Asn(65002)]);
        SafetyFilter::sanitize_path(&mut path);
        assert_eq!(path.to_string(), "47065");
    }

    #[test]
    fn client_import_policy_admits_only_pool_space() {
        use peering_bgp::PathAttributes;
        let pool: Ipv4Net = "184.164.224.0/19".parse().unwrap();
        let cfg = SafetyConfig::new(vec![pool], vec![Asn::PEERING]);
        let policy = cfg.client_import_policy();
        let mut attrs = PathAttributes::default();
        assert!(policy.apply(&Prefix::v4(184, 164, 225, 0, 24), &mut attrs));
        // Outside PEERING space: would be a hijack.
        assert!(!policy.apply(&Prefix::v4(8, 8, 8, 0, 24), &mut attrs));
        // More specific than the global-table limit.
        assert!(!policy.apply(&Prefix::v4(184, 164, 225, 0, 25), &mut attrs));
        // A covering supernet of the pool is NOT pool space.
        assert!(!policy.apply(&Prefix::v4(184, 164, 0, 0, 16), &mut attrs));
    }

    #[test]
    fn export_safety_policy_blocks_leaks_and_strips_private_asns() {
        use peering_bgp::PathAttributes;
        let pool: Ipv4Net = "184.164.224.0/19".parse().unwrap();
        let cfg = SafetyConfig::new(vec![pool], vec![Asn::PEERING]);
        let policy = cfg.export_safety_policy();
        let mut attrs = PathAttributes {
            as_path: AsPath::from_asns(&[Asn::PEERING, Asn(65001)]),
            ..Default::default()
        };
        assert!(policy.apply(&Prefix::v4(184, 164, 226, 0, 24), &mut attrs));
        assert_eq!(attrs.as_path.to_string(), "47065", "private ASN stripped");
        // A route for non-PEERING space must never leave the testbed.
        let mut attrs = PathAttributes::default();
        assert!(!policy.apply(&Prefix::v4(1, 2, 3, 0, 24), &mut attrs));
    }

    #[test]
    fn static_check_agrees_with_dynamic_filter() {
        let (mut f, owned) = filter();
        let cfg = f.cfg.clone();
        let specs = [
            AnnouncementSpec::everywhere(owned, vec![0]),
            AnnouncementSpec::everywhere("8.8.8.0/24".parse().unwrap(), vec![0]),
            AnnouncementSpec::everywhere("184.164.230.0/24".parse().unwrap(), vec![0]),
            AnnouncementSpec::everywhere(owned, vec![0]).prepended(11),
            AnnouncementSpec::everywhere(owned, vec![0])
                .poisoned((0..6).map(|i| Asn(100 + i)).collect()),
        ];
        for (i, spec) in specs.iter().enumerate() {
            let origin = Asn::PEERING;
            let statically = cfg.static_check(&owned, spec, origin);
            let dynamically = f.check_announcement(
                1,
                &owned,
                &spec.prefix,
                origin,
                spec.prepend,
                spec.poison.len(),
                SimTime::from_secs(7200 * (i as u64 + 1)),
            );
            match (&statically, &dynamically) {
                (Ok(()), SafetyVerdict::Allowed) => {}
                (Err(a), SafetyVerdict::Blocked(b)) => assert_eq!(a, b, "spec {i}"),
                other => panic!("spec {i}: static/dynamic disagree: {other:?}"),
            }
        }
        // Origin spoofing is caught statically too.
        let spec = AnnouncementSpec::everywhere(owned, vec![0]);
        assert_eq!(
            cfg.static_check(&owned, &spec, Asn(15169)),
            Err(Violation::BadOrigin(Asn(15169)))
        );
    }

    #[test]
    fn violation_display() {
        let v = Violation::Hijack("8.8.8.0/24".parse().unwrap());
        assert!(v.to_string().contains("hijack"));
        assert!(Violation::RouteLeak.to_string().contains("leak"));
    }
}
