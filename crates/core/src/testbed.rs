//! The testbed facade: build the simulated Internet, deploy PEERING into
//! it, obtain peering, and run experiments.
//!
//! This is the API a researcher-facing portal would sit on: provision an
//! experiment (vetting + prefix allocation), make controlled
//! announcements (safety-checked, per-site, per-peer), observe the
//! control plane (who hears the route, with what path) and the data
//! plane (pings/traceroutes honoring black holes).

use crate::alloc::PrefixAllocator;
use crate::capability::ObservedFeatures;
use crate::client::PeeringClient;
use crate::experiment::{
    AnnouncementSpec, Experiment, ExperimentId, PeerSelector, Schedule, ScheduledAction,
};
use crate::monitor::{Monitor, ProbeRecord, TelemetryEvent, UpdateKind, UpdateRecord};
use crate::mux::MuxDesign;
use crate::safety::{SafetyConfig, SafetyFilter, SafetyVerdict, Violation};
use crate::server::{PeeringServer, SiteKind, SiteSpec};
use peering_ixp::{Ixp, PeeringWorkflow};
use peering_netsim::{Asn, Ipv4Net, Ipv6Net, Prefix, SimDuration, SimRng, SimTime};
use peering_telemetry::Telemetry;
use peering_topology::{
    cone::{as_rank, customer_cones},
    routing::{propagate, Announcement, PropagationResult, TraceOutcome},
    AsGraph, AsIdx, AsInfo, AsKind, Internet, InternetConfig, PeeringPolicy, Relationship,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Testbed-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum TestbedError {
    /// No such experiment.
    UnknownExperiment(ExperimentId),
    /// Prefix pool exhausted or misused.
    Alloc(crate::alloc::AllocError),
    /// Safety filter blocked the action.
    Safety(Violation),
    /// The site index does not exist.
    BadSite(usize),
    /// The prefix has no active announcement.
    NotAnnounced(Ipv4Net),
    /// The v6 prefix has no active announcement, or v6 not enabled.
    V6NotAvailable,
}

impl fmt::Display for TestbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestbedError::UnknownExperiment(id) => write!(f, "unknown experiment {id}"),
            TestbedError::Alloc(e) => write!(f, "allocation: {e}"),
            TestbedError::Safety(v) => write!(f, "blocked by safety: {v}"),
            TestbedError::BadSite(s) => write!(f, "no such site {s}"),
            TestbedError::NotAnnounced(p) => write!(f, "{p} is not announced"),
            TestbedError::V6NotAvailable => write!(f, "IPv6 not enabled or not announced"),
        }
    }
}

impl std::error::Error for TestbedError {}

/// Testbed build configuration.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Master seed.
    pub seed: u64,
    /// The Internet to build around the testbed.
    pub internet: InternetConfig,
    /// Server sites to deploy.
    pub sites: Vec<SiteSpec>,
    /// Mux architecture at every server.
    pub mux_design: MuxDesign,
}

impl TestbedConfig {
    /// A small testbed for unit tests: one IXP site, one university.
    pub fn small(seed: u64) -> Self {
        TestbedConfig {
            seed,
            internet: InternetConfig::small(seed),
            sites: vec![
                SiteSpec::ixp("testix01", 0, *b"NL"),
                SiteSpec::university("uni01", 2, *b"US"),
            ],
            mux_design: MuxDesign::PerPeerSessions,
        }
    }

    /// The paper's deployment on the full-scale (47k-AS, 524k-prefix)
    /// Internet — used for the unscaled §4.1 numbers. Build cost is
    /// under a second.
    pub fn full(seed: u64) -> Self {
        TestbedConfig {
            internet: InternetConfig::full(seed),
            ..TestbedConfig::eval(seed)
        }
    }

    /// The paper's deployment: nine servers on three continents — the
    /// AMS-IX and Phoenix-IX colocations plus seven university sites
    /// giving "dozens of indirect providers".
    pub fn eval(seed: u64) -> Self {
        TestbedConfig {
            seed,
            internet: InternetConfig::eval(seed),
            sites: vec![
                SiteSpec::ixp("amsterdam01", 0, *b"NL"),
                SiteSpec::ixp("phoenix01", 1, *b"US"),
                SiteSpec::university("gatech01", 4, *b"US"),
                SiteSpec::university("usc01", 4, *b"US"),
                SiteSpec::university("uw01", 3, *b"US"),
                SiteSpec::university("ufmg01", 3, *b"BR"),
                SiteSpec::university("cornell01", 3, *b"US"),
                SiteSpec::university("clemson01", 3, *b"US"),
                SiteSpec::university("wisc01", 4, *b"US"),
            ],
            mux_design: MuxDesign::AddPathMux,
        }
    }
}

struct ActiveAnnouncement {
    experiment: ExperimentId,
    spec: AnnouncementSpec,
    result: PropagationResult,
}

/// The deployed testbed.
pub struct Testbed {
    /// The Internet PEERING lives in.
    pub internet: Internet,
    /// IXPs assembled from the Internet.
    pub ixps: Vec<Ixp>,
    /// PEERING's node in the AS graph.
    pub node: AsIdx,
    /// Deployed servers, parallel to the config's sites.
    pub servers: Vec<PeeringServer>,
    /// Prefix/ASN allocation.
    pub allocator: PrefixAllocator,
    /// The safety filter.
    pub safety: SafetyFilter,
    /// Measurement collection.
    pub monitor: Monitor,
    /// Shared telemetry registry for the whole testbed; the monitor
    /// mirrors its event stream into it, and other subsystems can clone
    /// the handle.
    pub telemetry: Telemetry,
    /// The announcement calendar.
    pub schedule: Schedule,
    /// Provisioned experiments.
    pub experiments: BTreeMap<ExperimentId, Experiment>,
    /// Clients, one per experiment.
    pub clients: BTreeMap<ExperimentId, PeeringClient>,
    /// ASes currently black-holing traffic (fault injection).
    pub blackholes: BTreeSet<AsIdx>,
    /// Bilateral workflows per IXP site (site index -> workflow).
    pub workflows: BTreeMap<usize, PeeringWorkflow>,
    cones: Vec<BTreeSet<AsIdx>>,
    announcements: BTreeMap<Prefix, ActiveAnnouncement>,
    now: SimTime,
    rng: SimRng,
    next_exp: u32,
}

impl Testbed {
    /// Build and deploy: generate the Internet, insert the PEERING AS,
    /// connect transit at universities, join route servers and run the
    /// bilateral workflow at IXPs. The clock ends up ~45 days in, after
    /// the peering-request dust settles.
    pub fn build(cfg: TestbedConfig) -> Testbed {
        let internet = Internet::build(cfg.internet.clone());
        let ixps: Vec<Ixp> = (0..internet.specs.len())
            .map(|i| Ixp::from_internet(&internet, i))
            .collect();
        let mut internet = internet;
        let root = SimRng::new(cfg.seed);
        let mut rng = root.fork("testbed");

        let mut info = AsInfo::new(Asn::PEERING, AsKind::Testbed);
        info.name = Some("PEERING".into());
        info.policy = PeeringPolicy::Open;
        let node = internet.graph.add_as(info);

        let mut servers = Vec::new();
        let mut workflows = BTreeMap::new();
        let t0 = SimTime::ZERO;
        for (site_idx, site) in cfg.sites.iter().enumerate() {
            let mut server = PeeringServer::new(site.clone(), cfg.mux_design);
            match &site.kind {
                SiteKind::University { n_transits } => {
                    // Universities give us transit: pick regional transits.
                    let transits: Vec<AsIdx> = internet
                        .graph
                        .infos()
                        .filter(|(_, i)| i.kind == AsKind::Transit)
                        .map(|(idx, _)| idx)
                        .collect();
                    // Universities may also resell access-network uplinks
                    // when every transit is already peered with us (tiny
                    // test topologies).
                    let fallback: Vec<AsIdx> = internet
                        .graph
                        .infos()
                        .filter(|(_, i)| i.kind == AsKind::Access)
                        .map(|(idx, _)| idx)
                        .collect();
                    let mut chosen = BTreeSet::new();
                    let mut guard = 0;
                    while chosen.len() < *n_transits && guard < 2000 {
                        guard += 1;
                        let pool = if guard <= 1000 { &transits } else { &fallback };
                        let cand = pool[rng.index(pool.len())];
                        // Skip ASes we already have a relationship with
                        // (e.g. an IXP peering from an earlier site).
                        if !chosen.contains(&cand) && !internet.graph.adjacent(node, cand) {
                            chosen.insert(cand);
                        }
                    }
                    for &t in &chosen {
                        internet
                            .graph
                            .add_edge(node, t, Relationship::CustomerToProvider);
                    }
                    let mut v: Vec<AsIdx> = chosen.into_iter().collect();
                    v.sort();
                    server.transits = v;
                }
                SiteKind::Ixp { ixp_index } | SiteKind::RemoteIxp { ixp_index, .. } => {
                    if let SiteKind::RemoteIxp { via_site, .. } = &site.kind {
                        server.remote_via = Some(*via_site);
                    }
                    let ixp = &ixps[*ixp_index];
                    // Multilateral: one session to the route server peers
                    // us with every RS member instantly.
                    // A directory id with no entry is a stale listing, not
                    // a reason to abort deployment: skip it.
                    for id in ixp.rs_member_ids() {
                        let Some(m) = ixp.directory.get(id) else {
                            continue;
                        };
                        internet
                            .graph
                            .add_edge(node, m.as_idx, Relationship::PeerToPeer);
                        server.rs_peers.push(m.as_idx);
                    }
                    // Bilateral: request peering from every non-RS member.
                    let mut wf = PeeringWorkflow::new();
                    let mut wf_rng = root.fork(&format!("workflow-{site_idx}"));
                    for id in ixp.bilateral_ids() {
                        let Some(m) = ixp.directory.get(id) else {
                            continue;
                        };
                        wf.send_request(id, m, t0, &mut wf_rng);
                    }
                    // Outcomes resolve over the setup window.
                    let resolved_at = t0 + SimDuration::from_secs(45 * 24 * 3600);
                    for id in wf.established(resolved_at) {
                        let Some(m) = ixp.directory.get(id) else {
                            continue;
                        };
                        internet
                            .graph
                            .add_edge(node, m.as_idx, Relationship::PeerToPeer);
                        server.bilateral_peers.push(m.as_idx);
                    }
                    workflows.insert(site_idx, wf);
                }
            }
            servers.push(server);
        }

        let allocator = PrefixAllocator::peering_default();
        let mut safety_cfg = SafetyConfig::new(
            allocator.pools().to_vec(),
            allocator.primary_asn().into_iter().collect(),
        );
        safety_cfg.pools_v6 = allocator.v6_pool().into_iter().collect();
        let safety = SafetyFilter::new(safety_cfg);
        let cones = customer_cones(&internet.graph);
        let telemetry = Telemetry::new();
        let mut monitor = Monitor::new();
        monitor.set_telemetry(telemetry.clone());
        Testbed {
            internet,
            ixps,
            node,
            servers,
            allocator,
            safety,
            monitor,
            telemetry,
            schedule: Schedule::new(),
            experiments: BTreeMap::new(),
            clients: BTreeMap::new(),
            blackholes: BTreeSet::new(),
            workflows,
            cones,
            announcements: BTreeMap::new(),
            now: SimTime::ZERO + SimDuration::from_secs(45 * 24 * 3600),
            rng,
            next_exp: 1,
        }
    }

    /// The AS graph (with PEERING inserted).
    pub fn graph(&self) -> &AsGraph {
        &self.internet.graph
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock.
    pub fn advance(&mut self, dt: SimDuration) {
        self.now += dt;
    }

    /// Customer cones (indexed by AS).
    pub fn cones(&self) -> &[BTreeSet<AsIdx>] {
        &self.cones
    }

    /// A deterministic snapshot of the testbed's telemetry registry
    /// (monitor mirrors plus anything else sharing the handle).
    pub fn telemetry_snapshot(&self) -> peering_telemetry::Snapshot {
        self.telemetry.snapshot()
    }

    /// Append a control-plane record to the monitor's event stream.
    fn log_update(
        &mut self,
        id: ExperimentId,
        kind: UpdateKind,
        prefix: impl Into<Prefix>,
        reach: Option<usize>,
    ) {
        self.monitor.record(TelemetryEvent::Update(UpdateRecord {
            time: self.now,
            experiment: id,
            kind,
            prefix: prefix.into(),
            reach,
        }));
    }

    // ------------------------------------------------------- experiments

    /// Vet and provision an experiment with tunnels to `sites`.
    pub fn new_experiment(
        &mut self,
        name: &str,
        owner: &str,
        sites: &[usize],
    ) -> Result<ExperimentId, TestbedError> {
        for &s in sites {
            if s >= self.servers.len() {
                return Err(TestbedError::BadSite(s));
            }
        }
        let id = ExperimentId(self.next_exp);
        let prefix = self.allocator.allocate(id.0).map_err(TestbedError::Alloc)?;
        self.next_exp += 1;
        self.experiments.insert(
            id,
            Experiment {
                id,
                name: name.into(),
                owner: owner.into(),
                prefix,
                created: self.now,
                active: BTreeMap::new(),
                v6_prefix: None,
                active_v6: BTreeMap::new(),
                origin_asn: None,
            },
        );
        self.clients
            .insert(id, PeeringClient::new(id, prefix, sites));
        Ok(id)
    }

    /// Tear an experiment down, withdrawing its announcements.
    pub fn end_experiment(&mut self, id: ExperimentId) -> Result<(), TestbedError> {
        let exp = self
            .experiments
            .remove(&id)
            .ok_or(TestbedError::UnknownExperiment(id))?;
        let active: Vec<Ipv4Net> = exp.active.keys().copied().collect();
        for p in active {
            self.announcements.remove(&Prefix::V4(p));
            self.safety.note_withdrawal(&p, self.now);
            self.log_update(id, UpdateKind::Withdraw, p, None);
        }
        let active6: Vec<Ipv6Net> = exp.active_v6.keys().copied().collect();
        for p in active6 {
            self.announcements.remove(&Prefix::V6(p));
            self.safety.note_withdrawal_v6(&p, self.now);
            self.log_update(id, UpdateKind::Withdraw, p, None);
        }
        if let Some(v6) = exp.v6_prefix {
            self.allocator.release_v6(v6).map_err(TestbedError::Alloc)?;
        }
        self.clients.remove(&id);
        self.allocator
            .release(exp.prefix)
            .map_err(TestbedError::Alloc)?;
        Ok(())
    }

    /// The neighbors an announcement from `site` with `select` reaches.
    pub fn site_neighbors(
        &self,
        site: usize,
        select: &PeerSelector,
    ) -> Result<Vec<AsIdx>, TestbedError> {
        let server = self.servers.get(site).ok_or(TestbedError::BadSite(site))?;
        let base: Vec<AsIdx> = match select {
            PeerSelector::All => server.neighbors(),
            PeerSelector::TransitOnly => server.transits.clone(),
            PeerSelector::PeersOnly => server.peers(),
            PeerSelector::Specific(list) => {
                let all: BTreeSet<AsIdx> = server.neighbors().into_iter().collect();
                list.iter().copied().filter(|a| all.contains(a)).collect()
            }
            PeerSelector::Excluding(list) => {
                let excl: BTreeSet<AsIdx> = list.iter().copied().collect();
                server
                    .neighbors()
                    .into_iter()
                    .filter(|a| !excl.contains(a))
                    .collect()
            }
        };
        Ok(base)
    }

    /// Execute a controlled announcement. On success returns how many
    /// ASes ended up selecting a route to the prefix.
    pub fn announce(
        &mut self,
        id: ExperimentId,
        spec: AnnouncementSpec,
    ) -> Result<usize, TestbedError> {
        let exp = self
            .experiments
            .get(&id)
            .ok_or(TestbedError::UnknownExperiment(id))?;
        let owned = exp.prefix;
        let origin = match exp.origin_asn {
            Some(asn) => asn,
            None => self.allocator.primary_asn().map_err(TestbedError::Alloc)?,
        };
        let verdict = self.safety.check_announcement(
            id.0,
            &owned,
            &spec.prefix,
            origin,
            spec.prepend,
            spec.poison.len(),
            self.now,
        );
        // The stateless verdict must agree with the dynamic filter on
        // everything it models (pool, ownership, origin, TE limits);
        // damping and rate limiting are dynamic-only by design.
        debug_assert!(
            match &verdict {
                SafetyVerdict::Allowed =>
                    self.safety.cfg.static_check(&owned, &spec, origin).is_ok(),
                SafetyVerdict::Blocked(
                    v @ (Violation::Hijack(_)
                    | Violation::NotYourPrefix(_)
                    | Violation::BadOrigin(_)
                    | Violation::ExcessivePrepend(_)
                    | Violation::ExcessivePoison(_)),
                ) => self.safety.cfg.static_check(&owned, &spec, origin) == Err(v.clone()),
                SafetyVerdict::Blocked(_) => true,
            },
            "static_check disagrees with the dynamic safety filter"
        );
        if let SafetyVerdict::Blocked(v) = verdict {
            self.log_update(id, UpdateKind::Blocked, spec.prefix, None);
            return Err(TestbedError::Safety(v));
        }
        // One topology announcement per site, all from the PEERING node,
        // restricted to that site's selected neighbors — multi-site specs
        // are anycast and the winning announcement index is the catchment.
        let mut anns = Vec::new();
        for &site in &spec.sites {
            let neighbors = self.site_neighbors(site, &spec.select)?;
            anns.push(
                Announcement::simple(self.node, Prefix::V4(spec.prefix))
                    .prepended(spec.prepend)
                    .poisoned(spec.poison.clone())
                    .only_to(neighbors),
            );
        }
        let result = propagate(&self.internet.graph, &anns);
        let reach = result.reach_count().saturating_sub(1); // exclude ourselves
        self.log_update(id, UpdateKind::Announce, spec.prefix, Some(reach));
        self.experiments
            .get_mut(&id)
            .ok_or(TestbedError::UnknownExperiment(id))?
            .active
            .insert(spec.prefix, spec.clone());
        self.announcements.insert(
            Prefix::V4(spec.prefix),
            ActiveAnnouncement {
                experiment: id,
                spec,
                result,
            },
        );
        Ok(reach)
    }

    /// Withdraw a prefix.
    pub fn withdraw(&mut self, id: ExperimentId, prefix: Ipv4Net) -> Result<(), TestbedError> {
        let exp = self
            .experiments
            .get_mut(&id)
            .ok_or(TestbedError::UnknownExperiment(id))?;
        if exp.active.remove(&prefix).is_none() {
            return Err(TestbedError::NotAnnounced(prefix));
        }
        self.announcements.remove(&Prefix::V4(prefix));
        self.safety.note_withdrawal(&prefix, self.now);
        self.log_update(id, UpdateKind::Withdraw, prefix, None);
        Ok(())
    }

    /// Assign a dedicated public origin ASN to an experiment from the
    /// testbed's ASN pool (the paper: "We plan to acquire multiple
    /// public ASNs in the future"). The safety filter then accepts that
    /// ASN as a route origin for this experiment's announcements.
    pub fn assign_secondary_asn(&mut self, id: ExperimentId) -> Result<Asn, TestbedError> {
        let exp = self
            .experiments
            .get_mut(&id)
            .ok_or(TestbedError::UnknownExperiment(id))?;
        if let Some(asn) = exp.origin_asn {
            return Ok(asn);
        }
        let asn = self.allocator.next_asn().map_err(TestbedError::Alloc)?;
        exp.origin_asn = Some(asn);
        if !self.safety.cfg.public_asns.contains(&asn) {
            self.safety.cfg.public_asns.push(asn);
        }
        Ok(asn)
    }

    /// Request an IPv6 /48 for an experiment ("we also plan to add
    /// support for IPv6", §3). Idempotent per experiment.
    pub fn enable_ipv6(&mut self, id: ExperimentId) -> Result<Ipv6Net, TestbedError> {
        let exp = self
            .experiments
            .get_mut(&id)
            .ok_or(TestbedError::UnknownExperiment(id))?;
        if let Some(p) = exp.v6_prefix {
            return Ok(p);
        }
        let p = self
            .allocator
            .allocate_v6(id.0)
            .map_err(TestbedError::Alloc)?;
        exp.v6_prefix = Some(p);
        Ok(p)
    }

    /// Announce an experiment's IPv6 /48 from `sites` with the given
    /// neighbor selection. Returns how many ASes selected a route.
    /// Dual-stack neighbors only: ASes without v6 deployment ignore the
    /// announcement.
    pub fn announce_v6(
        &mut self,
        id: ExperimentId,
        sites: &[usize],
        select: &PeerSelector,
    ) -> Result<usize, TestbedError> {
        let exp = self
            .experiments
            .get(&id)
            .ok_or(TestbedError::UnknownExperiment(id))?;
        let owned = exp.v6_prefix.ok_or(TestbedError::V6NotAvailable)?;
        let origin = self.allocator.primary_asn().map_err(TestbedError::Alloc)?;
        let verdict = self
            .safety
            .check_announcement_v6(id.0, &owned, &owned, origin, 0, 0, self.now);
        if let SafetyVerdict::Blocked(v) = verdict {
            self.log_update(id, UpdateKind::Blocked, owned, None);
            return Err(TestbedError::Safety(v));
        }
        // Only dual-stacked ASes (plus ourselves) can carry v6 routes.
        let mut participants: Vec<AsIdx> = self
            .internet
            .graph
            .infos()
            .filter(|(_, i)| !i.v6_prefixes.is_empty())
            .map(|(idx, _)| idx)
            .collect();
        participants.push(self.node);
        let mut anns = Vec::new();
        for &site in sites {
            // v6 sessions exist only with dual-stacked neighbors.
            let neighbors: Vec<AsIdx> = self
                .site_neighbors(site, select)?
                .into_iter()
                .filter(|&n| !self.internet.graph.info(n).v6_prefixes.is_empty())
                .collect();
            anns.push(
                Announcement::simple(self.node, Prefix::V6(owned))
                    .only_to(neighbors)
                    .among(participants.clone()),
            );
        }
        let result = propagate(&self.internet.graph, &anns);
        let reach = result.reach_count().saturating_sub(1);
        self.log_update(id, UpdateKind::Announce, owned, Some(reach));
        let exp = self
            .experiments
            .get_mut(&id)
            .ok_or(TestbedError::UnknownExperiment(id))?;
        exp.active_v6.insert(owned, sites.to_vec());
        let v4_prefix = exp.prefix;
        self.announcements.insert(
            Prefix::V6(owned),
            ActiveAnnouncement {
                experiment: id,
                spec: AnnouncementSpec::everywhere(v4_prefix, sites.to_vec()),
                result,
            },
        );
        Ok(reach)
    }

    /// Withdraw the experiment's IPv6 announcement.
    pub fn withdraw_v6(&mut self, id: ExperimentId) -> Result<(), TestbedError> {
        let exp = self
            .experiments
            .get_mut(&id)
            .ok_or(TestbedError::UnknownExperiment(id))?;
        let owned = exp.v6_prefix.ok_or(TestbedError::V6NotAvailable)?;
        if exp.active_v6.remove(&owned).is_none() {
            return Err(TestbedError::V6NotAvailable);
        }
        self.announcements.remove(&Prefix::V6(owned));
        self.safety.note_withdrawal_v6(&owned, self.now);
        self.log_update(id, UpdateKind::Withdraw, owned, None);
        Ok(())
    }

    /// ASes that are dual-stacked (can hold v6 routes at all).
    pub fn dual_stack_count(&self) -> usize {
        self.internet
            .graph
            .infos()
            .filter(|(_, i)| !i.v6_prefixes.is_empty())
            .count()
    }

    /// Run scheduled actions up to `until`, advancing the clock.
    pub fn run_schedule(&mut self, until: SimTime) {
        let due = self.schedule.due(until);
        for (t, exp, action) in due {
            self.now = self.now.max(t);
            match action {
                ScheduledAction::Announce(spec) => {
                    let _ = self.announce(exp, spec);
                }
                ScheduledAction::Withdraw(prefix) => {
                    let _ = self.withdraw(exp, prefix);
                }
            }
        }
        self.now = self.now.max(until);
    }

    // ------------------------------------------------------ control view

    /// The propagation result for an announced prefix (either family).
    pub fn routes_for_prefix(&self, prefix: &Prefix) -> Option<&PropagationResult> {
        self.announcements.get(prefix).map(|a| &a.result)
    }

    /// The propagation result for an announced v4 prefix.
    pub fn routes_for(&self, prefix: &Ipv4Net) -> Option<&PropagationResult> {
        self.routes_for_prefix(&Prefix::V4(*prefix))
    }

    /// The experiment owning an active announcement.
    pub fn announced_by(&self, prefix: &Ipv4Net) -> Option<ExperimentId> {
        self.announcements
            .get(&Prefix::V4(*prefix))
            .map(|a| a.experiment)
    }

    /// Which site's announcement each AS selected (anycast catchments):
    /// returns `(site, number of ASes)` pairs.
    pub fn catchments(&self, prefix: &Ipv4Net) -> Option<Vec<(usize, usize)>> {
        let active = self.announcements.get(&Prefix::V4(*prefix))?;
        Some(
            active
                .spec
                .sites
                .iter()
                .enumerate()
                .map(|(ann_idx, &site)| (site, active.result.won_by(ann_idx)))
                .collect(),
        )
    }

    // -------------------------------------------------------- data plane

    /// Deterministic per-AS-hop one-way latency.
    pub fn hop_latency(&self, a: AsIdx, b: AsIdx) -> SimDuration {
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in lo.to_le_bytes().into_iter().chain(hi.to_le_bytes()) {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimDuration::from_millis(2 + h % 28)
    }

    /// One-way latency along an AS path.
    pub fn path_latency(&self, path: &[AsIdx]) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for w in path.windows(2) {
            total += self.hop_latency(w[0], w[1]);
        }
        total
    }

    /// Trace from an AS toward an announced prefix (control path +
    /// black holes).
    pub fn traceroute(&self, from: AsIdx, prefix: &Ipv4Net) -> TraceOutcome {
        match self.routes_for(prefix) {
            Some(result) => result.trace(from, &self.blackholes),
            None => TraceOutcome::NoRoute,
        }
    }

    /// Ping an announced prefix from an AS: RTT if delivered. Records the
    /// probe in the monitor.
    pub fn ping(&mut self, from: AsIdx, prefix: &Ipv4Net) -> Option<SimDuration> {
        let outcome = self.traceroute(from, prefix);
        let (rtt, hops) = match &outcome {
            TraceOutcome::Delivered(path) => (Some(self.path_latency(path) * 2), Some(path.len())),
            _ => (None, None),
        };
        self.monitor.record(TelemetryEvent::Probe(ProbeRecord {
            time: self.now,
            from,
            prefix: (*prefix).into(),
            rtt,
            hops,
        }));
        rtt
    }

    /// Black-hole (or restore) an AS.
    pub fn set_blackhole(&mut self, at: AsIdx, active: bool) {
        if active {
            self.blackholes.insert(at);
        } else {
            self.blackholes.remove(&at);
        }
    }

    /// Alternate paths to a destination via each neighbor at a site
    /// (PECAN-style: "uncover alternate paths in the Internet and
    /// \[use\] traffic to measure their performance").
    pub fn paths_via_neighbors(
        &self,
        site: usize,
        dst: &Ipv4Net,
    ) -> Result<Vec<(AsIdx, Vec<AsIdx>, SimDuration)>, TestbedError> {
        let origin = self
            .internet
            .graph
            .origin_of(&Prefix::V4(*dst))
            .ok_or(TestbedError::NotAnnounced(*dst))?;
        let result = propagate(
            &self.internet.graph,
            &[Announcement::simple(origin, Prefix::V4(*dst))],
        );
        let neighbors = self.site_neighbors(site, &PeerSelector::All)?;
        let mut out = Vec::new();
        for n in neighbors {
            if let Some(entry) = result.route(n) {
                let mut path = vec![self.node];
                path.extend_from_slice(&entry.path);
                let lat = self.path_latency(&path);
                out.push((n, path, lat));
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------- peer stats

    /// Distinct peers (route-server + bilateral) across all servers.
    pub fn all_peers(&self) -> BTreeSet<AsIdx> {
        self.servers.iter().flat_map(|s| s.peers()).collect()
    }

    /// Distinct transit providers across all servers.
    pub fn all_transits(&self) -> BTreeSet<AsIdx> {
        self.servers
            .iter()
            .flat_map(|s| s.transits.iter().copied())
            .collect()
    }

    /// Countries spanned by our peers.
    pub fn peer_countries(&self) -> BTreeSet<[u8; 2]> {
        self.all_peers()
            .iter()
            .map(|&p| self.internet.graph.info(p).country)
            .collect()
    }

    /// How many of the top-`k` ASes (by customer cone) we peer with.
    pub fn top_cone_coverage(&self, k: usize) -> usize {
        let rank = as_rank(&self.internet.graph);
        let peers = self.all_peers();
        rank.iter().take(k).filter(|a| peers.contains(a)).count()
    }

    /// Prefixes reachable via peer routes alone ("ignoring transit"):
    /// everything originated inside any peer's customer cone.
    pub fn peer_reachable_prefixes(&self) -> usize {
        let mut ases: BTreeSet<AsIdx> = BTreeSet::new();
        for p in self.all_peers() {
            ases.extend(self.cones[p.i()].iter().copied());
        }
        ases.iter()
            .map(|&a| self.internet.graph.info(a).prefixes.len())
            .sum()
    }

    /// The set of ASes whose prefixes are reachable via peers.
    pub fn peer_reachable_ases(&self) -> BTreeSet<AsIdx> {
        let mut ases: BTreeSet<AsIdx> = BTreeSet::new();
        for p in self.all_peers() {
            ases.extend(self.cones[p.i()].iter().copied());
        }
        ases
    }

    /// Observable features for the Table 1 derivation.
    pub fn features(&self) -> ObservedFeatures {
        ObservedFeatures {
            announcement_control: true,
            peer_count: self.all_peers().len(),
            traffic_exchange: true,
            service_hosting: true,
            intradomain_bridging: true,
            concurrent_experiment_slots: self.allocator.available() + self.experiments.len(),
        }
    }

    /// Deterministic sub-RNG for workloads built on this testbed.
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.rng.fork(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed() -> Testbed {
        Testbed::build(TestbedConfig::small(1))
    }

    #[test]
    fn build_deploys_sites_and_peers() {
        let tb = testbed();
        assert_eq!(tb.servers.len(), 2);
        // IXP site has RS peers (22 in the small spec) plus bilaterals.
        let ams = &tb.servers[0];
        assert_eq!(ams.rs_peers.len(), 22);
        assert!(!ams.bilateral_peers.is_empty(), "some bilaterals accepted");
        // University site has its transits.
        let uni = &tb.servers[1];
        assert_eq!(uni.transits.len(), 2);
        // The graph gained the PEERING node with those edges.
        let g = tb.graph();
        assert_eq!(g.info(tb.node).asn, Asn::PEERING);
        assert_eq!(g.peers(tb.node).len(), tb.all_peers().len());
        assert_eq!(g.providers(tb.node).len(), tb.all_transits().len());
        g.validate().unwrap();
    }

    #[test]
    fn experiment_lifecycle() {
        let mut tb = testbed();
        let id = tb.new_experiment("quickstart", "usc", &[0]).unwrap();
        let exp = &tb.experiments[&id];
        assert!(tb.allocator.in_pool(&exp.prefix));
        let client = tb.clients[&id].clone();
        assert_eq!(client.prefix, exp.prefix);
        // Announce everywhere from site 0.
        let spec = client.announce_everywhere();
        let reach = tb.announce(id, spec).unwrap();
        assert!(reach > 0, "someone must hear us");
        assert!(tb.routes_for(&client.prefix).is_some());
        // Withdraw and end.
        tb.withdraw(id, client.prefix).unwrap();
        assert!(tb.routes_for(&client.prefix).is_none());
        tb.end_experiment(id).unwrap();
        assert!(tb.experiments.is_empty());
        assert_eq!(tb.allocator.available(), 32);
    }

    #[test]
    fn announcements_reach_the_whole_internet_via_transit() {
        let mut tb = testbed();
        let id = tb.new_experiment("wide", "usc", &[0, 1]).unwrap();
        let spec = tb.clients[&id].announce_everywhere();
        let reach = tb.announce(id, spec).unwrap();
        // With transit providers announced to, everyone should hear it.
        assert_eq!(reach, tb.graph().len() - 1, "full propagation");
    }

    #[test]
    fn peers_only_announcement_reaches_fewer() {
        let mut tb = testbed();
        let id = tb.new_experiment("narrow", "usc", &[0, 1]).unwrap();
        let client = tb.clients[&id].clone();
        let wide = tb.announce(id, client.announce_everywhere()).unwrap();
        tb.withdraw(id, client.prefix).unwrap();
        // Advance past damping/rate interactions.
        tb.advance(SimDuration::from_secs(7200));
        let narrow_spec = client.announce_from(0, PeerSelector::PeersOnly);
        let narrow = tb.announce(id, narrow_spec).unwrap();
        assert!(narrow < wide, "peers-only ({narrow}) < everywhere ({wide})");
        assert!(narrow > 0);
    }

    #[test]
    fn hijack_is_blocked_by_safety() {
        let mut tb = testbed();
        let id = tb.new_experiment("evil", "mallory", &[0]).unwrap();
        let victim: Ipv4Net = "16.0.1.0/24".parse().unwrap(); // someone's space
        let spec = AnnouncementSpec::everywhere(victim, vec![0]);
        let err = tb.announce(id, spec).unwrap_err();
        assert!(matches!(err, TestbedError::Safety(Violation::Hijack(_))));
        assert_eq!(tb.monitor.blocked_count(id), 1);
    }

    #[test]
    fn experiments_are_isolated() {
        let mut tb = testbed();
        let a = tb.new_experiment("a", "x", &[0]).unwrap();
        let b = tb.new_experiment("b", "y", &[0]).unwrap();
        let pa = tb.experiments[&a].prefix;
        let pb = tb.experiments[&b].prefix;
        assert!(!pa.overlaps(&pb));
        // a cannot announce b's prefix.
        let spec = AnnouncementSpec::everywhere(pb, vec![0]);
        let err = tb.announce(a, spec).unwrap_err();
        assert!(matches!(
            err,
            TestbedError::Safety(Violation::NotYourPrefix(_))
        ));
    }

    #[test]
    fn ping_and_blackhole() {
        let mut tb = testbed();
        let id = tb.new_experiment("ping", "usc", &[0, 1]).unwrap();
        let client = tb.clients[&id].clone();
        tb.announce(id, client.announce_everywhere()).unwrap();
        // Pick some AS far away and ping.
        let from = AsIdx(50);
        let rtt = tb.ping(from, &client.prefix);
        assert!(rtt.is_some(), "reachable after full announcement");
        // Black-hole the first hop on its path and ping again.
        let path = match tb.traceroute(from, &client.prefix) {
            TraceOutcome::Delivered(p) => p,
            other => panic!("{other:?}"),
        };
        tb.set_blackhole(path[1], true);
        assert!(tb.ping(from, &client.prefix).is_none());
        tb.set_blackhole(path[1], false);
        assert!(tb.ping(from, &client.prefix).is_some());
        // Probes were recorded.
        assert_eq!(tb.monitor.probes().count(), 3);
    }

    #[test]
    fn anycast_catchments_cover_everyone() {
        let mut tb = testbed();
        let id = tb.new_experiment("anycast", "usc", &[0, 1]).unwrap();
        let client = tb.clients[&id].clone();
        tb.announce(id, client.announce_everywhere()).unwrap();
        let catch = tb.catchments(&client.prefix).unwrap();
        assert_eq!(catch.len(), 2);
        let total: usize = catch.iter().map(|(_, n)| n).sum();
        assert_eq!(total, tb.graph().len(), "every AS lands in a catchment");
        assert!(catch.iter().all(|(_, n)| *n > 0), "both sites attract");
    }

    #[test]
    fn schedule_executes() {
        let mut tb = testbed();
        let id = tb.new_experiment("sched", "usc", &[0]).unwrap();
        let client = tb.clients[&id].clone();
        let t_announce = tb.now() + SimDuration::from_secs(60);
        let t_withdraw = tb.now() + SimDuration::from_secs(600);
        tb.schedule.at(
            t_announce,
            id,
            ScheduledAction::Announce(client.announce_everywhere()),
        );
        tb.schedule
            .at(t_withdraw, id, ScheduledAction::Withdraw(client.prefix));
        tb.run_schedule(t_announce + SimDuration::from_secs(1));
        assert!(tb.routes_for(&client.prefix).is_some());
        tb.run_schedule(t_withdraw + SimDuration::from_secs(1));
        assert!(tb.routes_for(&client.prefix).is_none());
    }

    #[test]
    fn features_meet_all_goals_when_deployed() {
        let tb = testbed();
        let f = tb.features();
        // The small testbed has only ~25 peers: Limited rich connectivity.
        assert!(f.peer_count >= 20);
        assert!(f.concurrent_experiment_slots >= 32);
    }

    #[test]
    fn peer_reachability_is_a_fraction_of_the_internet() {
        let tb = testbed();
        let via_peers = tb.peer_reachable_prefixes();
        let total = tb.graph().total_prefixes();
        assert!(via_peers > 0);
        assert!(via_peers < total, "peers alone never cover everything");
    }

    #[test]
    fn paths_via_neighbors_gives_alternates() {
        let tb = testbed();
        // Pick a destination prefix from some AS in the graph.
        let dst = tb
            .graph()
            .infos()
            .find_map(|(_, i)| i.prefixes.first().cloned())
            .unwrap();
        let Prefix::V4(dst) = dst else { panic!() };
        let alts = tb.paths_via_neighbors(0, &dst).unwrap();
        assert!(alts.len() > 1, "multiple neighbors give multiple paths");
        for (_, path, lat) in &alts {
            assert_eq!(path[0], tb.node);
            assert!(*lat > SimDuration::ZERO);
        }
    }

    #[test]
    fn deterministic_build() {
        let a = Testbed::build(TestbedConfig::small(5));
        let b = Testbed::build(TestbedConfig::small(5));
        assert_eq!(a.all_peers(), b.all_peers());
        assert_eq!(a.all_transits(), b.all_transits());
    }

    #[test]
    fn bad_site_errors() {
        let mut tb = testbed();
        assert!(matches!(
            tb.new_experiment("x", "y", &[99]),
            Err(TestbedError::BadSite(99))
        ));
        let id = tb.new_experiment("x", "y", &[0]).unwrap();
        let p = tb.experiments[&id].prefix;
        let bad_spec = AnnouncementSpec::everywhere(p, vec![42]);
        assert!(matches!(
            tb.announce(id, bad_spec),
            Err(TestbedError::BadSite(42))
        ));
    }
}
