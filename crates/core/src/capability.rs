//! The Table 1 capability matrix.
//!
//! Table 1 scores eight platforms against the §2 goals. The seven prior
//! platforms are modeled from the paper's own assessment; PEERING's row
//! is *derived* from a running [`Testbed`](crate::testbed::Testbed) so
//! the claim "PEERING meets all goals" is checked against the system, not
//! asserted. The table's caption also claims no two other systems can be
//! combined to cover everything — the harness verifies that too.

use serde::{Deserialize, Serialize};

/// Level of support for a goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Support {
    /// ✗ — not supported.
    No,
    /// ≈ — limited support.
    Limited,
    /// ✓ — supported.
    Yes,
}

impl Support {
    /// Symbol used in the rendered table.
    pub fn symbol(self) -> &'static str {
        match self {
            Support::No => "X",
            Support::Limited => "~",
            Support::Yes => "Y",
        }
    }

    /// Combine for "can two systems together cover a goal".
    pub fn max(self, other: Support) -> Support {
        use Support::*;
        match (self, other) {
            (Yes, _) | (_, Yes) => Yes,
            (Limited, _) | (_, Limited) => Limited,
            _ => No,
        }
    }
}

/// The six §2 goals, in Table 1 row order.
pub const GOALS: [&str; 6] = [
    "Interdomain",
    "Rich conn.",
    "Traffic",
    "Real services",
    "Intradomain",
    "Open/Simult. experiments",
];

/// One platform's scores, in [`GOALS`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities(pub [Support; 6]);

impl Capabilities {
    /// Does this platform fully meet every goal?
    pub fn meets_all(&self) -> bool {
        self.0.iter().all(|s| *s == Support::Yes)
    }

    /// Goal-wise best of two platforms combined.
    pub fn combined(&self, other: &Capabilities) -> Capabilities {
        let mut out = [Support::No; 6];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = (*a).max(*b);
        }
        Capabilities(out)
    }
}

/// The seven prior platforms exactly as Table 1 scores them.
/// (PL=PlanetLab, VN=VINI, EM=Emulab, MN=Mininet, RC=Route Collectors,
/// BC=Beacons, TP=Transit Portal.)
pub fn prior_testbeds() -> Vec<(&'static str, Capabilities)> {
    use Support::*;
    vec![
        ("PL", Capabilities([No, Yes, Yes, Yes, No, Yes])),
        ("VN", Capabilities([No, No, Yes, Yes, Yes, Yes])),
        ("EM", Capabilities([No, No, Yes, No, Yes, Yes])),
        ("MN", Capabilities([No, No, Yes, No, Yes, Yes])),
        ("RC", Capabilities([No, Yes, No, No, No, Yes])),
        ("BC", Capabilities([Limited, No, No, No, No, No])),
        ("TP", Capabilities([Yes, No, Limited, Yes, No, No])),
    ]
}

/// Observable facts about a running testbed, from which PEERING's row is
/// derived.
#[derive(Debug, Clone, Copy)]
pub struct ObservedFeatures {
    /// Can clients control interdomain announcements (per-peer)?
    pub announcement_control: bool,
    /// Established peer count (route server + bilateral + transit).
    pub peer_count: usize,
    /// Can clients exchange data-plane traffic with the Internet?
    pub traffic_exchange: bool,
    /// Can services run persistently on real addresses (VMs on servers,
    /// anycast)?
    pub service_hosting: bool,
    /// Can clients bring their own intradomain network (emulation
    /// bridging)?
    pub intradomain_bridging: bool,
    /// Concurrent isolated experiments supported right now.
    pub concurrent_experiment_slots: usize,
}

/// Derive PEERING's Table 1 row from observed features.
pub fn peering_row(f: &ObservedFeatures) -> Capabilities {
    use Support::*;
    Capabilities([
        if f.announcement_control { Yes } else { No },
        // "hundreds of peers": call 100+ rich, a handful limited.
        if f.peer_count >= 100 {
            Yes
        } else if f.peer_count >= 5 {
            Limited
        } else {
            No
        },
        if f.traffic_exchange { Yes } else { No },
        if f.service_hosting { Yes } else { No },
        if f.intradomain_bridging { Yes } else { No },
        if f.concurrent_experiment_slots >= 2 {
            Yes
        } else {
            No
        },
    ])
}

/// The full matrix: prior platforms plus a derived PEERING row.
pub fn testbed_matrix(peering: Capabilities) -> Vec<(&'static str, Capabilities)> {
    let mut rows = prior_testbeds();
    rows.push(("PR", peering));
    rows
}

/// Verify the caption's claim: no pair of non-PEERING systems combines to
/// cover all six goals. Returns the offending pair if one exists.
pub fn no_pair_covers_all() -> Option<(&'static str, &'static str)> {
    let prior = prior_testbeds();
    for i in 0..prior.len() {
        for j in (i + 1)..prior.len() {
            if prior[i].1.combined(&prior[j].1).meets_all() {
                return Some((prior[i].0, prior[j].0));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_rows_match_table_one() {
        let rows = prior_testbeds();
        assert_eq!(rows.len(), 7);
        // Spot-check against the published table.
        let tp = rows.iter().find(|(n, _)| *n == "TP").unwrap().1;
        assert_eq!(tp.0[0], Support::Yes); // interdomain
        assert_eq!(tp.0[1], Support::No); // rich conn
        assert_eq!(tp.0[2], Support::Limited); // traffic
        let bc = rows.iter().find(|(n, _)| *n == "BC").unwrap().1;
        assert_eq!(bc.0[0], Support::Limited);
        let pl = rows.iter().find(|(n, _)| *n == "PL").unwrap().1;
        assert_eq!(pl.0[1], Support::Yes);
        assert!(!pl.meets_all());
    }

    #[test]
    fn no_prior_pair_covers_everything() {
        assert_eq!(no_pair_covers_all(), None, "Table 1's caption claim");
    }

    #[test]
    fn derived_peering_row_meets_all_when_deployed() {
        let f = ObservedFeatures {
            announcement_control: true,
            peer_count: 600,
            traffic_exchange: true,
            service_hosting: true,
            intradomain_bridging: true,
            concurrent_experiment_slots: 32,
        };
        assert!(peering_row(&f).meets_all());
    }

    #[test]
    fn undeployed_testbed_does_not_meet_all() {
        let f = ObservedFeatures {
            announcement_control: true,
            peer_count: 3, // barely any peers yet
            traffic_exchange: true,
            service_hosting: true,
            intradomain_bridging: true,
            concurrent_experiment_slots: 32,
        };
        let row = peering_row(&f);
        assert_eq!(row.0[1], Support::No);
        assert!(!row.meets_all());
        let few = ObservedFeatures {
            peer_count: 10,
            ..f
        };
        assert_eq!(peering_row(&few).0[1], Support::Limited);
    }

    #[test]
    fn combination_logic() {
        use Support::*;
        assert_eq!(No.max(Limited), Limited);
        assert_eq!(Limited.max(Yes), Yes);
        assert_eq!(No.max(No), No);
        assert_eq!(Yes.symbol(), "Y");
        assert_eq!(Limited.symbol(), "~");
    }

    #[test]
    fn matrix_includes_peering() {
        let f = ObservedFeatures {
            announcement_control: true,
            peer_count: 600,
            traffic_exchange: true,
            service_hosting: true,
            intradomain_bridging: true,
            concurrent_experiment_slots: 32,
        };
        let m = testbed_matrix(peering_row(&f));
        assert_eq!(m.len(), 8);
        assert_eq!(m.last().unwrap().0, "PR");
        assert!(m.last().unwrap().1.meets_all());
    }
}
