//! Property tests for the testbed core: the allocator never double-books
//! address space, and the safety filter never lets foreign space out.

use peering_core::{AllocError, PrefixAllocator, SafetyConfig, SafetyFilter, SafetyVerdict};
use peering_netsim::{Asn, Ipv4Net, SimTime};
use proptest::prelude::*;
use std::collections::HashSet;
use std::net::Ipv4Addr;

proptest! {
    /// Any interleaving of allocate/release keeps allocations disjoint
    /// and inside the pool, and capacity is conserved.
    #[test]
    fn allocator_never_double_books(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut alloc = PrefixAllocator::peering_default();
        let pool: Ipv4Net = "184.164.224.0/19".parse().unwrap();
        let mut held: Vec<Ipv4Net> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            if op {
                match alloc.allocate(i as u32) {
                    Ok(p) => {
                        prop_assert!(pool.covers(&p));
                        for h in &held {
                            prop_assert!(!h.overlaps(&p), "{h} overlaps {p}");
                        }
                        held.push(p);
                    }
                    Err(AllocError::Exhausted) => {
                        prop_assert_eq!(held.len(), 32);
                    }
                    Err(e) => prop_assert!(false, "unexpected {e}"),
                }
            } else if let Some(p) = held.pop() {
                alloc.release(p).unwrap();
            }
            prop_assert_eq!(alloc.available() + held.len(), 32);
        }
    }

    /// Ownership lookups agree with what was allocated.
    #[test]
    fn owner_of_is_accurate(n in 1usize..32) {
        let mut alloc = PrefixAllocator::peering_default();
        let mut mine = HashSet::new();
        for tag in 0..n as u32 {
            let p = alloc.allocate(tag).unwrap();
            prop_assert_eq!(alloc.owner_of(&p), Some(tag));
            mine.insert(p);
        }
        // Unallocated pool space has no owner.
        let mut probe = None;
        for cand in "184.164.224.0/19".parse::<Ipv4Net>().unwrap().subnets(24) {
            if !mine.contains(&cand) {
                probe = Some(cand);
                break;
            }
        }
        if let Some(p) = probe {
            prop_assert_eq!(alloc.owner_of(&p), None);
        }
    }

    /// The safety filter blocks every announcement outside PEERING space,
    /// for arbitrary prefixes.
    #[test]
    fn foreign_space_never_escapes(addr in any::<u32>(), len in 8u8..=28) {
        let pool: Ipv4Net = "184.164.224.0/19".parse().unwrap();
        let owned: Ipv4Net = "184.164.224.0/24".parse().unwrap();
        let mut filter = SafetyFilter::new(SafetyConfig::new(vec![pool], vec![Asn::PEERING]));
        let prefix = Ipv4Net::new(Ipv4Addr::from(addr), len);
        let verdict = filter.check_announcement(
            1, &owned, &prefix, Asn::PEERING, 0, 0, SimTime::ZERO,
        );
        if pool.covers(&prefix) && owned.covers(&prefix) {
            prop_assert!(verdict.is_allowed());
        } else {
            prop_assert!(matches!(verdict, SafetyVerdict::Blocked(_)), "{prefix} escaped");
        }
    }

    /// Spoof control: only sources inside the experiment prefix (or an
    /// explicit allowlist) pass.
    #[test]
    fn spoofed_sources_never_escape(src in any::<u32>()) {
        let pool: Ipv4Net = "184.164.224.0/19".parse().unwrap();
        let owned: Ipv4Net = "184.164.230.0/24".parse().unwrap();
        let mut filter = SafetyFilter::new(SafetyConfig::new(vec![pool], vec![Asn::PEERING]));
        let ip = Ipv4Addr::from(src);
        let verdict = filter.check_packet_source(1, &owned, ip);
        prop_assert_eq!(verdict.is_allowed(), owned.contains(ip));
    }
}
