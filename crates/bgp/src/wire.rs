//! RFC 4271 wire encoding and decoding.
//!
//! The simulation passes messages between speakers as structs for speed,
//! but the codec is complete and round-trip tested so the implementation
//! would interoperate at the byte level: header with marker, OPEN with
//! capabilities (RFC 5492), UPDATE with the full attribute set, 4-octet AS
//! paths (RFC 6793), ADD-PATH NLRI (RFC 7911), and IPv6 NLRI carried in
//! MP_REACH/MP_UNREACH attributes (RFC 4760).

use crate::attrs::{AsPath, AsPathSegment, Community, Origin, PathAttributes};
use crate::error::BgpError;
use crate::message::{
    BgpMessage, Capability, Nlri, NotifCode, NotificationMessage, OpenMessage, UpdateMessage,
};
use bytes::{Buf, BufMut, BytesMut};
use peering_netsim::{Asn, Ipv4Net, Ipv6Net, Prefix};
use std::net::{Ipv4Addr, Ipv6Addr};
use std::sync::Arc;

/// Maximum BGP message size (RFC 4271). The encoder never exceeds it;
/// use [`encode_update_chunked`] for large RIB transfers.
pub const MAX_MESSAGE: usize = 4096;
const HEADER_LEN: usize = 19;

const TYPE_OPEN: u8 = 1;
const TYPE_UPDATE: u8 = 2;
const TYPE_NOTIFICATION: u8 = 3;
const TYPE_KEEPALIVE: u8 = 4;
const TYPE_ROUTE_REFRESH: u8 = 5;

const ATTR_ORIGIN: u8 = 1;
const ATTR_AS_PATH: u8 = 2;
const ATTR_NEXT_HOP: u8 = 3;
const ATTR_MED: u8 = 4;
const ATTR_LOCAL_PREF: u8 = 5;
const ATTR_ATOMIC_AGGREGATE: u8 = 6;
const ATTR_AGGREGATOR: u8 = 7;
const ATTR_COMMUNITY: u8 = 8;
const ATTR_MP_REACH: u8 = 14;
const ATTR_MP_UNREACH: u8 = 15;

const FLAG_OPTIONAL: u8 = 0x80;
const FLAG_TRANSITIVE: u8 = 0x40;
const FLAG_EXT_LEN: u8 = 0x10;

/// Encoding options negotiated per session.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireConfig {
    /// ADD-PATH in effect for IPv4 unicast: NLRI carry 4-byte path IDs.
    pub add_path: bool,
}

// ---------------------------------------------------------------- encode

fn put_header(out: &mut BytesMut, msg_type: u8, body: &[u8]) {
    out.extend_from_slice(&[0xFF; 16]);
    out.put_u16((HEADER_LEN + body.len()) as u16);
    out.put_u8(msg_type);
    out.extend_from_slice(body);
}

fn put_v4_nlri(out: &mut BytesMut, net: &Ipv4Net, path_id: Option<u32>, cfg: WireConfig) {
    if cfg.add_path {
        out.put_u32(path_id.unwrap_or(0));
    }
    out.put_u8(net.len());
    let bytes = net.network_u32().to_be_bytes();
    let n = (net.len() as usize).div_ceil(8);
    out.extend_from_slice(&bytes[..n]);
}

fn put_v6_nlri(out: &mut BytesMut, net: &Ipv6Net, path_id: Option<u32>, cfg: WireConfig) {
    if cfg.add_path {
        out.put_u32(path_id.unwrap_or(0));
    }
    out.put_u8(net.len());
    let bytes = u128::from(net.network()).to_be_bytes();
    let n = (net.len() as usize).div_ceil(8);
    out.extend_from_slice(&bytes[..n]);
}

fn put_attr(out: &mut BytesMut, flags: u8, ty: u8, value: &[u8]) {
    if value.len() > 255 {
        out.put_u8(flags | FLAG_EXT_LEN);
        out.put_u8(ty);
        out.put_u16(value.len() as u16);
    } else {
        out.put_u8(flags);
        out.put_u8(ty);
        out.put_u8(value.len() as u8);
    }
    out.extend_from_slice(value);
}

fn encode_as_path(path: &AsPath) -> Vec<u8> {
    let mut v = Vec::new();
    for seg in &path.segments {
        let (ty, asns) = match seg {
            AsPathSegment::Set(a) => (1u8, a),
            AsPathSegment::Sequence(a) => (2u8, a),
        };
        // Long sequences are split into 255-AS chunks per RFC 4271.
        for chunk in asns.chunks(255) {
            v.push(ty);
            v.push(chunk.len() as u8);
            for asn in chunk {
                v.extend_from_slice(&asn.0.to_be_bytes());
            }
        }
    }
    v
}

fn encode_attrs(attrs: &PathAttributes, v6_reach: &[Nlri], cfg: WireConfig) -> BytesMut {
    let mut out = BytesMut::new();
    put_attr(
        &mut out,
        FLAG_TRANSITIVE,
        ATTR_ORIGIN,
        &[attrs.origin.code()],
    );
    put_attr(
        &mut out,
        FLAG_TRANSITIVE,
        ATTR_AS_PATH,
        &encode_as_path(&attrs.as_path),
    );
    put_attr(
        &mut out,
        FLAG_TRANSITIVE,
        ATTR_NEXT_HOP,
        &attrs.next_hop.octets(),
    );
    if let Some(med) = attrs.med {
        put_attr(&mut out, FLAG_OPTIONAL, ATTR_MED, &med.to_be_bytes());
    }
    if let Some(lp) = attrs.local_pref {
        put_attr(
            &mut out,
            FLAG_TRANSITIVE,
            ATTR_LOCAL_PREF,
            &lp.to_be_bytes(),
        );
    }
    if attrs.atomic_aggregate {
        put_attr(&mut out, FLAG_TRANSITIVE, ATTR_ATOMIC_AGGREGATE, &[]);
    }
    if let Some((asn, ip)) = attrs.aggregator {
        let mut v = Vec::with_capacity(8);
        v.extend_from_slice(&asn.0.to_be_bytes());
        v.extend_from_slice(&ip.octets());
        put_attr(
            &mut out,
            FLAG_OPTIONAL | FLAG_TRANSITIVE,
            ATTR_AGGREGATOR,
            &v,
        );
    }
    if !attrs.communities.is_empty() {
        let mut v = Vec::with_capacity(attrs.communities.len() * 4);
        for c in &attrs.communities {
            v.extend_from_slice(&c.0.to_be_bytes());
        }
        put_attr(
            &mut out,
            FLAG_OPTIONAL | FLAG_TRANSITIVE,
            ATTR_COMMUNITY,
            &v,
        );
    }
    if !v6_reach.is_empty() {
        // MP_REACH_NLRI: afi=2, safi=1, v4-mapped next hop, reserved, NLRI.
        let mut v = BytesMut::new();
        v.put_u16(2);
        v.put_u8(1);
        let nh = attrs.next_hop.to_ipv6_mapped();
        v.put_u8(16);
        v.extend_from_slice(&nh.octets());
        v.put_u8(0); // reserved
        for n in v6_reach {
            if let Prefix::V6(p) = &n.prefix {
                put_v6_nlri(&mut v, p, n.path_id, cfg);
            }
        }
        put_attr(&mut out, FLAG_OPTIONAL, ATTR_MP_REACH, &v);
    }
    out
}

/// Encode one message. UPDATEs must fit in [`MAX_MESSAGE`]; callers with
/// large route sets should use [`encode_update_chunked`].
pub fn encode_message(msg: &BgpMessage, cfg: WireConfig) -> Result<Vec<u8>, BgpError> {
    let mut out = BytesMut::new();
    match msg {
        BgpMessage::Open(o) => {
            let mut body = BytesMut::new();
            body.put_u8(o.version);
            body.put_u16(o.my_as2);
            body.put_u16(o.hold_time);
            body.extend_from_slice(&o.router_id.octets());
            let mut caps = BytesMut::new();
            for c in &o.capabilities {
                match c {
                    Capability::MpIpv4Unicast => {
                        caps.extend_from_slice(&[1, 4, 0, 1, 0, 1]);
                    }
                    Capability::MpIpv6Unicast => {
                        caps.extend_from_slice(&[1, 4, 0, 2, 0, 1]);
                    }
                    Capability::RouteRefresh => {
                        caps.extend_from_slice(&[2, 0]);
                    }
                    Capability::FourOctetAsn(a) => {
                        caps.extend_from_slice(&[65, 4]);
                        caps.extend_from_slice(&a.0.to_be_bytes());
                    }
                    Capability::AddPathIpv4 { send, receive } => {
                        let mode = (*receive as u8) | ((*send as u8) << 1);
                        caps.extend_from_slice(&[69, 4, 0, 1, 1, mode]);
                    }
                    Capability::GracefulRestart { restart_time_s } => {
                        // RFC 4724: 4 flag bits (we never set the
                        // restart-state bit on a fresh OPEN) + 12-bit
                        // restart time; no per-AFI forwarding entries.
                        let t = restart_time_s & 0x0FFF;
                        caps.extend_from_slice(&[64, 2, (t >> 8) as u8, (t & 0xFF) as u8]);
                    }
                }
            }
            // One optional parameter of type 2 (Capabilities).
            body.put_u8((caps.len() + 2) as u8);
            body.put_u8(2);
            body.put_u8(caps.len() as u8);
            body.extend_from_slice(&caps);
            put_header(&mut out, TYPE_OPEN, &body);
        }
        BgpMessage::Update(u) => {
            let body = encode_update_body(u, cfg)?;
            if HEADER_LEN + body.len() > MAX_MESSAGE {
                return Err(BgpError::BadUpdate(format!(
                    "update too large ({} bytes); chunk it",
                    HEADER_LEN + body.len()
                )));
            }
            put_header(&mut out, TYPE_UPDATE, &body);
        }
        BgpMessage::Notification(n) => {
            let mut body = BytesMut::new();
            body.put_u8(n.code.code());
            body.put_u8(n.subcode);
            body.extend_from_slice(&n.data);
            put_header(&mut out, TYPE_NOTIFICATION, &body);
        }
        BgpMessage::Keepalive => put_header(&mut out, TYPE_KEEPALIVE, &[]),
        BgpMessage::RouteRefresh => {
            put_header(&mut out, TYPE_ROUTE_REFRESH, &[0, 1, 0, 1]);
        }
    }
    Ok(out.to_vec())
}

fn encode_update_body(u: &UpdateMessage, cfg: WireConfig) -> Result<BytesMut, BgpError> {
    let mut body = BytesMut::new();
    // Withdrawn v4 routes in the classic field; v6 would go to MP_UNREACH.
    let (wd_v4, wd_v6): (Vec<&Nlri>, Vec<&Nlri>) =
        u.withdrawn.iter().partition(|n| n.prefix.is_v4());
    let (an_v4, an_v6): (Vec<&Nlri>, Vec<&Nlri>) =
        u.announced.iter().partition(|n| n.prefix.is_v4());

    let mut wd = BytesMut::new();
    for n in &wd_v4 {
        if let Prefix::V4(p) = &n.prefix {
            put_v4_nlri(&mut wd, p, n.path_id, cfg);
        }
    }
    body.put_u16(wd.len() as u16);
    body.extend_from_slice(&wd);

    let mut attrs_buf = BytesMut::new();
    if let Some(attrs) = &u.attrs {
        let v6_list: Vec<Nlri> = an_v6.iter().map(|n| **n).collect();
        attrs_buf = encode_attrs(attrs, &v6_list, cfg);
    } else if !an_v6.is_empty() || !an_v4.is_empty() {
        return Err(BgpError::BadUpdate(
            "announcement without attributes".into(),
        ));
    }
    if !wd_v6.is_empty() {
        let mut v = BytesMut::new();
        v.put_u16(2);
        v.put_u8(1);
        for n in &wd_v6 {
            if let Prefix::V6(p) = &n.prefix {
                put_v6_nlri(&mut v, p, n.path_id, cfg);
            }
        }
        put_attr(&mut attrs_buf, FLAG_OPTIONAL, ATTR_MP_UNREACH, &v);
    }
    body.put_u16(attrs_buf.len() as u16);
    body.extend_from_slice(&attrs_buf);
    for n in &an_v4 {
        if let Prefix::V4(p) = &n.prefix {
            put_v4_nlri(&mut body, p, n.path_id, cfg);
        }
    }
    Ok(body)
}

/// Encode an UPDATE, splitting the NLRI across as many messages as needed
/// to respect [`MAX_MESSAGE`]. Withdrawals and announcements are never
/// mixed with different attribute sets.
pub fn encode_update_chunked(u: &UpdateMessage, cfg: WireConfig) -> Result<Vec<Vec<u8>>, BgpError> {
    // Generous per-NLRI bound: path id + len byte + 16 bytes address.
    const NLRI_BOUND: usize = 21;
    let attr_overhead = u
        .attrs
        .as_ref()
        .map(|a| {
            64 + a.as_path.asns().count() * 4
                + a.communities.len() * 4
                + a.as_path.segments.len() * 2
        })
        .unwrap_or(0);
    let budget = MAX_MESSAGE - HEADER_LEN - 8 - attr_overhead;
    let per_msg = (budget / NLRI_BOUND).max(1);

    let mut msgs = Vec::new();
    if !u.withdrawn.is_empty() {
        for chunk in u.withdrawn.chunks(per_msg) {
            let m = UpdateMessage::withdraw(chunk.to_vec());
            msgs.push(encode_message(&BgpMessage::Update(m), cfg)?);
        }
    }
    if !u.announced.is_empty() {
        let attrs = u
            .attrs
            .clone()
            .ok_or_else(|| BgpError::BadUpdate("announcement without attributes".into()))?;
        for chunk in u.announced.chunks(per_msg) {
            let m = UpdateMessage::announce(attrs.clone(), chunk.to_vec());
            msgs.push(encode_message(&BgpMessage::Update(m), cfg)?);
        }
    }
    if msgs.is_empty() {
        msgs.push(encode_message(
            &BgpMessage::Update(UpdateMessage {
                withdrawn: vec![],
                attrs: None,
                announced: vec![],
                trace: None,
            }),
            cfg,
        )?);
    }
    Ok(msgs)
}

// ---------------------------------------------------------------- decode

fn need(buf: &[u8], n: usize, what: &str) -> Result<(), BgpError> {
    if buf.len() < n {
        Err(BgpError::BadUpdate(format!(
            "truncated {what}: need {n}, have {}",
            buf.len()
        )))
    } else {
        Ok(())
    }
}

fn get_v4_nlri(buf: &mut &[u8], cfg: WireConfig) -> Result<Nlri, BgpError> {
    let path_id = if cfg.add_path {
        need(buf, 4, "path id")?;
        Some(buf.get_u32())
    } else {
        None
    };
    need(buf, 1, "nlri length")?;
    let len = buf.get_u8();
    if len > 32 {
        return Err(BgpError::BadUpdate(format!("v4 prefix length {len}")));
    }
    let n = (len as usize).div_ceil(8);
    need(buf, n, "nlri body")?;
    let mut octets = [0u8; 4];
    octets[..n].copy_from_slice(&buf[..n]);
    buf.advance(n);
    Ok(Nlri {
        prefix: Prefix::V4(Ipv4Net::new(Ipv4Addr::from(octets), len)),
        path_id,
    })
}

fn get_v6_nlri(buf: &mut &[u8], cfg: WireConfig) -> Result<Nlri, BgpError> {
    let path_id = if cfg.add_path {
        need(buf, 4, "path id")?;
        Some(buf.get_u32())
    } else {
        None
    };
    need(buf, 1, "nlri length")?;
    let len = buf.get_u8();
    if len > 128 {
        return Err(BgpError::BadUpdate(format!("v6 prefix length {len}")));
    }
    let n = (len as usize).div_ceil(8);
    need(buf, n, "nlri body")?;
    let mut octets = [0u8; 16];
    octets[..n].copy_from_slice(&buf[..n]);
    buf.advance(n);
    Ok(Nlri {
        prefix: Prefix::V6(Ipv6Net::new(Ipv6Addr::from(octets), len)),
        path_id,
    })
}

fn decode_as_path(mut buf: &[u8]) -> Result<AsPath, BgpError> {
    let mut segments = Vec::new();
    while !buf.is_empty() {
        need(buf, 2, "as-path segment header")?;
        let ty = buf.get_u8();
        let count = buf.get_u8() as usize;
        need(buf, count * 4, "as-path segment body")?;
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            asns.push(Asn(buf.get_u32()));
        }
        match ty {
            1 => segments.push(AsPathSegment::Set(asns)),
            2 => segments.push(AsPathSegment::Sequence(asns)),
            t => return Err(BgpError::BadAttribute(format!("as-path segment type {t}"))),
        }
    }
    // Merge adjacent sequences produced by chunked encoding.
    let mut merged: Vec<AsPathSegment> = Vec::new();
    for seg in segments {
        match (merged.last_mut(), seg) {
            (Some(AsPathSegment::Sequence(a)), AsPathSegment::Sequence(b)) => a.extend(b),
            (_, s) => merged.push(s),
        }
    }
    Ok(AsPath { segments: merged })
}

/// Decode a single message from the front of `data`, returning the message
/// and the number of bytes consumed.
pub fn decode_message(data: &[u8], cfg: WireConfig) -> Result<(BgpMessage, usize), BgpError> {
    if data.len() < HEADER_LEN {
        return Err(BgpError::BadHeader(format!("{} bytes", data.len())));
    }
    if data[..16].iter().any(|&b| b != 0xFF) {
        return Err(BgpError::BadHeader("marker not all-ones".into()));
    }
    let total = u16::from_be_bytes([data[16], data[17]]) as usize;
    if !(HEADER_LEN..=MAX_MESSAGE).contains(&total) {
        return Err(BgpError::BadLength(total as u16));
    }
    if data.len() < total {
        return Err(BgpError::BadHeader(format!(
            "message claims {total} bytes, have {}",
            data.len()
        )));
    }
    let msg_type = data[18];
    let body = &data[HEADER_LEN..total];
    let msg = match msg_type {
        TYPE_OPEN => BgpMessage::Open(decode_open(body)?),
        TYPE_UPDATE => BgpMessage::Update(decode_update(body, cfg)?),
        TYPE_NOTIFICATION => {
            if body.len() < 2 {
                return Err(BgpError::BadNotification("too short".into()));
            }
            let code = NotifCode::from_code(body[0])
                .ok_or_else(|| BgpError::BadNotification(format!("code {}", body[0])))?;
            BgpMessage::Notification(NotificationMessage {
                code,
                subcode: body[1],
                data: body[2..].to_vec(),
            })
        }
        TYPE_KEEPALIVE => {
            if !body.is_empty() {
                return Err(BgpError::BadLength(total as u16));
            }
            BgpMessage::Keepalive
        }
        TYPE_ROUTE_REFRESH => BgpMessage::RouteRefresh,
        t => return Err(BgpError::BadType(t)),
    };
    Ok((msg, total))
}

fn decode_open(mut body: &[u8]) -> Result<OpenMessage, BgpError> {
    if body.len() < 10 {
        return Err(BgpError::BadOpen("too short".into()));
    }
    let version = body.get_u8();
    if version != 4 {
        return Err(BgpError::BadOpen(format!("version {version}")));
    }
    let my_as2 = body.get_u16();
    let hold_time = body.get_u16();
    if hold_time == 1 || hold_time == 2 {
        return Err(BgpError::BadOpen(format!("hold time {hold_time}")));
    }
    let router_id = Ipv4Addr::new(body[0], body[1], body[2], body[3]);
    body.advance(4);
    let opt_len = body.get_u8() as usize;
    if body.len() < opt_len {
        return Err(BgpError::BadOpen("optional params truncated".into()));
    }
    let mut params = &body[..opt_len];
    let mut capabilities = Vec::new();
    while params.len() >= 2 {
        let ptype = params.get_u8();
        let plen = params.get_u8() as usize;
        if params.len() < plen {
            return Err(BgpError::BadOpen("param truncated".into()));
        }
        let (pbody, rest) = params.split_at(plen);
        params = rest;
        if ptype != 2 {
            continue; // unknown parameter types are skipped
        }
        let mut caps = pbody;
        while caps.len() >= 2 {
            let code = caps.get_u8();
            let clen = caps.get_u8() as usize;
            if caps.len() < clen {
                return Err(BgpError::BadOpen("capability truncated".into()));
            }
            let (cval, rest) = caps.split_at(clen);
            caps = rest;
            match (code, clen) {
                (1, 4) => {
                    let afi = u16::from_be_bytes([cval[0], cval[1]]);
                    match afi {
                        1 => capabilities.push(Capability::MpIpv4Unicast),
                        2 => capabilities.push(Capability::MpIpv6Unicast),
                        _ => {}
                    }
                }
                (2, 0) => capabilities.push(Capability::RouteRefresh),
                (65, 4) => capabilities.push(Capability::FourOctetAsn(Asn(u32::from_be_bytes([
                    cval[0], cval[1], cval[2], cval[3],
                ])))),
                (69, 4) => {
                    let mode = cval[3];
                    capabilities.push(Capability::AddPathIpv4 {
                        send: mode & 2 != 0,
                        receive: mode & 1 != 0,
                    });
                }
                (64, n) if n >= 2 => {
                    // Graceful restart: mask off the 4 flag bits, keep the
                    // 12-bit restart time; ignore trailing AFI/SAFI tuples.
                    let restart_time_s = u16::from_be_bytes([cval[0] & 0x0F, cval[1]]);
                    capabilities.push(Capability::GracefulRestart { restart_time_s });
                }
                _ => {} // unknown capabilities are ignored
            }
        }
    }
    Ok(OpenMessage {
        version,
        my_as2,
        hold_time,
        router_id,
        capabilities,
    })
}

/// How a malformed path attribute is handled under RFC 7606.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorTreatment {
    /// The error poisons message framing (or an MP attribute carrying
    /// NLRI): the session must be reset (RFC 7606 §2 last resort).
    SessionReset,
    /// The NLRI parsed, so the routes in the UPDATE are handled as if
    /// they had been withdrawn; the session stays up (RFC 7606 §2).
    TreatAsWithdraw,
    /// The attribute cannot affect route selection: drop it, keep the
    /// route (RFC 7606 §2, e.g. ATOMIC_AGGREGATE / AGGREGATOR).
    AttributeDiscard,
}

/// The RFC 7606 classification for a malformed attribute of type `ty`.
///
/// ORIGIN, AS_PATH, NEXT_HOP, MED, LOCAL_PREF, and COMMUNITY errors are
/// treat-as-withdraw (§7.1–§7.5, RFC 7606-updated community handling);
/// ATOMIC_AGGREGATE and AGGREGATOR are attribute-discard (§7.6–§7.7);
/// MP_REACH/MP_UNREACH errors compromise the NLRI itself and stay
/// session-reset (§5.1). Unrecognized well-known attributes are demoted
/// to treat-as-withdraw: the NLRI is intact, only the attributes are
/// suspect.
pub fn treatment_for_attr(ty: u8) -> ErrorTreatment {
    match ty {
        ATTR_ATOMIC_AGGREGATE | ATTR_AGGREGATOR => ErrorTreatment::AttributeDiscard,
        ATTR_MP_REACH | ATTR_MP_UNREACH => ErrorTreatment::SessionReset,
        _ => ErrorTreatment::TreatAsWithdraw,
    }
}

/// An UPDATE decoded under RFC 7606 revised error handling.
#[derive(Debug, Clone)]
pub struct RevisedUpdate {
    /// The decoded message. When `treat_as_withdraw` is set the attrs
    /// are partial and must not be used for route selection.
    pub update: UpdateMessage,
    /// A treat-as-withdraw-class attribute was malformed: the caller
    /// must handle every announced route as withdrawn.
    pub treat_as_withdraw: bool,
    /// Attribute type codes dropped under attribute-discard.
    pub discarded: Vec<u8>,
}

/// Decode one attribute body into `attrs`/`withdrawn`/`v6_announced`.
/// Errors are attribute-scoped: the value slice is already framed, so a
/// failure here never desynchronizes the surrounding attribute stream.
#[allow(clippy::too_many_arguments)]
fn decode_one_attr(
    flags: u8,
    ty: u8,
    val: &[u8],
    cfg: WireConfig,
    attrs: &mut PathAttributes,
    withdrawn: &mut Vec<Nlri>,
    v6_announced: &mut Vec<Nlri>,
) -> Result<(), BgpError> {
    match ty {
        ATTR_ORIGIN => {
            if val.len() != 1 {
                return Err(BgpError::BadAttribute("origin length".into()));
            }
            attrs.origin = Origin::from_code(val[0])
                .ok_or_else(|| BgpError::BadAttribute(format!("origin {}", val[0])))?;
        }
        ATTR_AS_PATH => attrs.as_path = decode_as_path(val)?,
        ATTR_NEXT_HOP => {
            if val.len() != 4 {
                return Err(BgpError::BadAttribute("next-hop length".into()));
            }
            attrs.next_hop = Ipv4Addr::new(val[0], val[1], val[2], val[3]);
        }
        ATTR_MED => {
            if val.len() != 4 {
                return Err(BgpError::BadAttribute("med length".into()));
            }
            attrs.med = Some(u32::from_be_bytes([val[0], val[1], val[2], val[3]]));
        }
        ATTR_LOCAL_PREF => {
            if val.len() != 4 {
                return Err(BgpError::BadAttribute("local-pref length".into()));
            }
            attrs.local_pref = Some(u32::from_be_bytes([val[0], val[1], val[2], val[3]]));
        }
        ATTR_ATOMIC_AGGREGATE => {
            if !val.is_empty() {
                return Err(BgpError::BadAttribute("atomic-aggregate length".into()));
            }
            attrs.atomic_aggregate = true;
        }
        ATTR_AGGREGATOR => {
            if val.len() != 8 {
                return Err(BgpError::BadAttribute("aggregator length".into()));
            }
            attrs.aggregator = Some((
                Asn(u32::from_be_bytes([val[0], val[1], val[2], val[3]])),
                Ipv4Addr::new(val[4], val[5], val[6], val[7]),
            ));
        }
        ATTR_COMMUNITY => {
            if !val.len().is_multiple_of(4) {
                return Err(BgpError::BadAttribute("community length".into()));
            }
            for c in val.chunks(4) {
                attrs.add_community(Community(u32::from_be_bytes([c[0], c[1], c[2], c[3]])));
            }
        }
        ATTR_MP_REACH => {
            let mut v = val;
            need(v, 5, "mp-reach header")?;
            let afi = v.get_u16();
            let _safi = v.get_u8();
            let nh_len = v.get_u8() as usize;
            need(v, nh_len + 1, "mp-reach next hop")?;
            if afi == 2 && nh_len == 16 {
                let mut nh = [0u8; 16];
                nh.copy_from_slice(&v[..16]);
                if let Some(v4) = Ipv6Addr::from(nh).to_ipv4_mapped() {
                    attrs.next_hop = v4;
                }
            }
            v.advance(nh_len);
            v.advance(1); // reserved
            if afi == 2 {
                while !v.is_empty() {
                    v6_announced.push(get_v6_nlri(&mut v, cfg)?);
                }
            }
        }
        ATTR_MP_UNREACH => {
            let mut v = val;
            need(v, 3, "mp-unreach header")?;
            let afi = v.get_u16();
            let _safi = v.get_u8();
            if afi == 2 {
                while !v.is_empty() {
                    withdrawn.push(get_v6_nlri(&mut v, cfg)?);
                }
            }
        }
        _ => {
            // Unknown optional attributes are tolerated (and dropped);
            // unknown well-known attributes are an error.
            if flags & FLAG_OPTIONAL == 0 {
                return Err(BgpError::BadAttribute(format!("unknown well-known {ty}")));
            }
        }
    }
    Ok(())
}

fn decode_update(body: &[u8], cfg: WireConfig) -> Result<UpdateMessage, BgpError> {
    decode_update_impl(body, cfg, false).map(|r| r.update)
}

/// Decode an UPDATE body under RFC 7606 revised error handling.
///
/// Framing errors — truncated sections, attribute headers overrunning
/// the attribute block, unparsable NLRI, malformed MP attributes — still
/// return `Err` (session-reset): once framing is suspect nothing behind
/// it can be trusted. Attribute-scoped semantic errors are downgraded
/// per [`treatment_for_attr`] and reported in the [`RevisedUpdate`].
pub fn decode_update_revised(body: &[u8], cfg: WireConfig) -> Result<RevisedUpdate, BgpError> {
    decode_update_impl(body, cfg, true)
}

fn decode_update_impl(
    body: &[u8],
    cfg: WireConfig,
    revised: bool,
) -> Result<RevisedUpdate, BgpError> {
    let mut buf = body;
    need(buf, 2, "withdrawn length")?;
    let wd_len = buf.get_u16() as usize;
    need(buf, wd_len, "withdrawn routes")?;
    let (mut wd_buf, rest) = buf.split_at(wd_len);
    buf = rest;
    let mut withdrawn = Vec::new();
    while !wd_buf.is_empty() {
        withdrawn.push(get_v4_nlri(&mut wd_buf, cfg)?);
    }
    need(buf, 2, "attribute length")?;
    let attr_len = buf.get_u16() as usize;
    need(buf, attr_len, "attributes")?;
    let (mut attr_buf, mut nlri_buf) = buf.split_at(attr_len);

    let mut attrs = PathAttributes::default();
    let mut have_attrs = false;
    let mut v6_announced: Vec<Nlri> = Vec::new();
    let mut treat_as_withdraw = false;
    let mut discarded: Vec<u8> = Vec::new();
    while !attr_buf.is_empty() {
        need(attr_buf, 2, "attribute header")?;
        let flags = attr_buf.get_u8();
        let ty = attr_buf.get_u8();
        let vlen = if flags & FLAG_EXT_LEN != 0 {
            need(attr_buf, 2, "ext attr length")?;
            attr_buf.get_u16() as usize
        } else {
            need(attr_buf, 1, "attr length")?;
            attr_buf.get_u8() as usize
        };
        need(attr_buf, vlen, "attribute value")?;
        let (val, rest) = attr_buf.split_at(vlen);
        attr_buf = rest;
        have_attrs = true;
        if let Err(e) = decode_one_attr(
            flags,
            ty,
            val,
            cfg,
            &mut attrs,
            &mut withdrawn,
            &mut v6_announced,
        ) {
            if !revised {
                return Err(e);
            }
            match treatment_for_attr(ty) {
                ErrorTreatment::SessionReset => return Err(e),
                ErrorTreatment::TreatAsWithdraw => treat_as_withdraw = true,
                ErrorTreatment::AttributeDiscard => discarded.push(ty),
            }
        }
    }

    let mut announced = v6_announced;
    while !nlri_buf.is_empty() {
        announced.push(get_v4_nlri(&mut nlri_buf, cfg)?);
    }
    if !announced.is_empty() && !have_attrs {
        // RFC 7606 §5.3: NLRI with no attributes at all still parsed, so
        // the routes can be handled as withdrawn instead of resetting.
        if revised {
            treat_as_withdraw = true;
        } else {
            return Err(BgpError::BadUpdate("NLRI without attributes".into()));
        }
    }
    Ok(RevisedUpdate {
        update: UpdateMessage {
            trace: None,
            withdrawn,
            attrs: if have_attrs {
                Some(Arc::new(attrs))
            } else {
                None
            },
            announced,
        },
        treat_as_withdraw,
        discarded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &BgpMessage, cfg: WireConfig) -> BgpMessage {
        let bytes = encode_message(msg, cfg).expect("encode");
        let (decoded, used) = decode_message(&bytes, cfg).expect("decode");
        assert_eq!(used, bytes.len());
        decoded
    }

    #[test]
    fn keepalive_roundtrip() {
        let m = BgpMessage::Keepalive;
        assert_eq!(roundtrip(&m, WireConfig::default()), m);
        let bytes = encode_message(&m, WireConfig::default()).unwrap();
        assert_eq!(bytes.len(), 19);
    }

    #[test]
    fn open_roundtrip_with_capabilities() {
        let m = BgpMessage::Open(
            OpenMessage::new(Asn(4_200_000_042), 180, Ipv4Addr::new(192, 0, 2, 1))
                .with_add_path(true, true),
        );
        let got = roundtrip(&m, WireConfig::default());
        if let (BgpMessage::Open(a), BgpMessage::Open(b)) = (&m, &got) {
            assert_eq!(a.asn(), b.asn());
            assert_eq!(a.hold_time, b.hold_time);
            assert_eq!(a.router_id, b.router_id);
            assert_eq!(b.add_path(), (true, true));
            assert_eq!(b.my_as2, 23456);
        } else {
            panic!("wrong type");
        }
    }

    #[test]
    fn update_roundtrip_full_attributes() {
        let attrs = PathAttributes {
            origin: Origin::Egp,
            as_path: AsPath::from_asns(&[Asn(64512), Asn(3356), Asn(1299)]),
            next_hop: Ipv4Addr::new(10, 9, 8, 7),
            med: Some(50),
            local_pref: Some(120),
            atomic_aggregate: true,
            aggregator: Some((Asn(3356), Ipv4Addr::new(4, 4, 4, 4))),
            communities: vec![Community::new(3356, 100), Community::NO_EXPORT],
        };
        let m = BgpMessage::Update(UpdateMessage {
            trace: None,
            withdrawn: vec![Nlri::plain(Prefix::v4(198, 51, 100, 0, 24))],
            attrs: Some(Arc::new(attrs.clone())),
            announced: vec![
                Nlri::plain(Prefix::v4(192, 0, 2, 0, 24)),
                Nlri::plain(Prefix::v4(203, 0, 113, 0, 25)),
            ],
        });
        let got = roundtrip(&m, WireConfig::default());
        if let BgpMessage::Update(u) = got {
            assert_eq!(u.withdrawn.len(), 1);
            assert_eq!(u.announced.len(), 2);
            let a = u.attrs.unwrap();
            assert_eq!(*a, attrs);
        } else {
            panic!("wrong type");
        }
    }

    #[test]
    fn update_roundtrip_with_add_path() {
        let cfg = WireConfig { add_path: true };
        let attrs = Arc::new(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(1)]),
            next_hop: Ipv4Addr::new(1, 2, 3, 4),
            ..Default::default()
        });
        let m = BgpMessage::Update(UpdateMessage {
            trace: None,
            withdrawn: vec![Nlri::with_path_id(Prefix::v4(10, 0, 0, 0, 8), 3)],
            attrs: Some(attrs),
            announced: vec![Nlri::with_path_id(Prefix::v4(10, 1, 0, 0, 16), 7)],
        });
        let got = roundtrip(&m, cfg);
        if let BgpMessage::Update(u) = got {
            assert_eq!(u.withdrawn[0].path_id, Some(3));
            assert_eq!(u.announced[0].path_id, Some(7));
        } else {
            panic!("wrong type");
        }
    }

    #[test]
    fn update_roundtrip_ipv6_mp_reach() {
        let attrs = Arc::new(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(6939)]),
            next_hop: Ipv4Addr::new(80, 249, 208, 1),
            ..Default::default()
        });
        let m = BgpMessage::Update(UpdateMessage {
            trace: None,
            withdrawn: vec![Nlri::plain("2001:db8:dead::/48".parse().unwrap())],
            attrs: Some(attrs),
            announced: vec![
                Nlri::plain("2001:db8::/32".parse().unwrap()),
                Nlri::plain(Prefix::v4(5, 5, 5, 0, 24)),
            ],
        });
        let got = roundtrip(&m, WireConfig::default());
        if let BgpMessage::Update(u) = got {
            assert_eq!(u.announced.len(), 2);
            assert!(u.announced.iter().any(|n| !n.prefix.is_v4()));
            assert!(u.announced.iter().any(|n| n.prefix.is_v4()));
            assert_eq!(u.withdrawn.len(), 1);
            assert!(!u.withdrawn[0].prefix.is_v4());
            assert_eq!(u.attrs.unwrap().next_hop, Ipv4Addr::new(80, 249, 208, 1));
        } else {
            panic!("wrong type");
        }
    }

    #[test]
    fn notification_roundtrip() {
        let m = BgpMessage::Notification(NotificationMessage {
            code: NotifCode::Cease,
            subcode: 2,
            data: vec![1, 2, 3],
        });
        assert_eq!(roundtrip(&m, WireConfig::default()), m);
    }

    #[test]
    fn route_refresh_roundtrip() {
        let m = BgpMessage::RouteRefresh;
        assert_eq!(roundtrip(&m, WireConfig::default()), m);
    }

    #[test]
    fn long_as_path_chunks_and_merges() {
        // 600 ASes forces multiple 255-AS segments on the wire.
        let asns: Vec<Asn> = (1..=600).map(Asn).collect();
        let attrs = Arc::new(PathAttributes {
            as_path: AsPath::from_asns(&asns),
            next_hop: Ipv4Addr::new(1, 1, 1, 1),
            ..Default::default()
        });
        let m = BgpMessage::Update(UpdateMessage::announce(
            attrs,
            vec![Nlri::plain(Prefix::v4(10, 0, 0, 0, 8))],
        ));
        let got = roundtrip(&m, WireConfig::default());
        if let BgpMessage::Update(u) = got {
            let path = &u.attrs.unwrap().as_path;
            assert_eq!(path.hop_count(), 600);
            assert_eq!(path.segments.len(), 1, "chunks must merge back");
            assert_eq!(path.origin_as(), Some(Asn(600)));
        } else {
            panic!("wrong type");
        }
    }

    #[test]
    fn decode_rejects_bad_marker() {
        let mut bytes = encode_message(&BgpMessage::Keepalive, WireConfig::default()).unwrap();
        bytes[0] = 0;
        assert!(matches!(
            decode_message(&bytes, WireConfig::default()),
            Err(BgpError::BadHeader(_))
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = encode_message(&BgpMessage::Keepalive, WireConfig::default()).unwrap();
        assert!(decode_message(&bytes[..10], WireConfig::default()).is_err());
        // Length field claims more than present.
        let mut b = bytes.clone();
        b[17] = 200;
        assert!(decode_message(&b, WireConfig::default()).is_err());
    }

    #[test]
    fn decode_rejects_bad_type_and_length() {
        let mut bytes = encode_message(&BgpMessage::Keepalive, WireConfig::default()).unwrap();
        bytes[18] = 99;
        assert!(matches!(
            decode_message(&bytes, WireConfig::default()),
            Err(BgpError::BadType(99))
        ));
        let mut b2 = encode_message(&BgpMessage::Keepalive, WireConfig::default()).unwrap();
        b2[16] = 0;
        b2[17] = 10; // < 19
        assert!(matches!(
            decode_message(&b2, WireConfig::default()),
            Err(BgpError::BadLength(10))
        ));
    }

    #[test]
    fn decode_rejects_bad_open() {
        let mut m = OpenMessage::new(Asn(1), 90, Ipv4Addr::new(1, 1, 1, 1));
        m.hold_time = 2; // invalid per RFC
        let bytes = encode_message(&BgpMessage::Open(m), WireConfig::default()).unwrap();
        assert!(matches!(
            decode_message(&bytes, WireConfig::default()),
            Err(BgpError::BadOpen(_))
        ));
    }

    #[test]
    fn chunked_encoding_splits_large_updates() {
        let attrs = Arc::new(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(1)]),
            next_hop: Ipv4Addr::new(1, 1, 1, 1),
            ..Default::default()
        });
        let nlri: Vec<Nlri> = (0..2000u32)
            .map(|i| Nlri::plain(Prefix::v4(10, (i >> 8) as u8, (i & 0xFF) as u8, 0, 24)))
            .collect();
        let m = UpdateMessage::announce(attrs, nlri);
        let msgs = encode_update_chunked(&m, WireConfig::default()).unwrap();
        assert!(msgs.len() > 1);
        let mut total = 0;
        for bytes in &msgs {
            assert!(bytes.len() <= MAX_MESSAGE);
            let (dec, _) = decode_message(bytes, WireConfig::default()).unwrap();
            if let BgpMessage::Update(u) = dec {
                total += u.announced.len();
            }
        }
        assert_eq!(total, 2000);
    }

    #[test]
    fn oversized_single_update_is_an_error() {
        let attrs = Arc::new(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(1)]),
            next_hop: Ipv4Addr::new(1, 1, 1, 1),
            ..Default::default()
        });
        let nlri: Vec<Nlri> = (0..2000u32)
            .map(|i| Nlri::plain(Prefix::v4(10, (i >> 8) as u8, (i & 0xFF) as u8, 0, 24)))
            .collect();
        let m = BgpMessage::Update(UpdateMessage::announce(attrs, nlri));
        assert!(encode_message(&m, WireConfig::default()).is_err());
    }

    /// Assemble a raw UPDATE body from its three sections.
    fn update_body(withdrawn: &[u8], attrs: &[u8], nlri: &[u8]) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&(withdrawn.len() as u16).to_be_bytes());
        body.extend_from_slice(withdrawn);
        body.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
        body.extend_from_slice(attrs);
        body.extend_from_slice(nlri);
        body
    }

    #[test]
    fn revised_decode_treats_bad_origin_as_withdraw() {
        // ORIGIN with length 2 is malformed; the NLRI still parses.
        let attrs = [FLAG_TRANSITIVE, ATTR_ORIGIN, 2, 0, 0];
        let body = update_body(&[], &attrs, &[8, 10]);
        assert!(matches!(
            decode_update(&body, WireConfig::default()),
            Err(BgpError::BadAttribute(_))
        ));
        let r = decode_update_revised(&body, WireConfig::default()).unwrap();
        assert!(r.treat_as_withdraw);
        assert!(r.discarded.is_empty());
        assert_eq!(
            r.update.announced,
            vec![Nlri::plain(Prefix::v4(10, 0, 0, 0, 8))]
        );
    }

    #[test]
    fn revised_decode_discards_bad_aggregator() {
        let mut attrs = Vec::new();
        attrs.extend_from_slice(&[FLAG_TRANSITIVE, ATTR_ORIGIN, 1, 0]);
        attrs.extend_from_slice(&[FLAG_TRANSITIVE, ATTR_AS_PATH, 6, 2, 1, 0, 0, 0, 9]);
        attrs.extend_from_slice(&[FLAG_TRANSITIVE, ATTR_NEXT_HOP, 4, 192, 0, 2, 1]);
        // AGGREGATOR must be 8 bytes; 3 is attribute-discard territory.
        attrs.extend_from_slice(&[FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_AGGREGATOR, 3, 1, 2, 3]);
        let body = update_body(&[], &attrs, &[8, 10]);
        assert!(decode_update(&body, WireConfig::default()).is_err());
        let r = decode_update_revised(&body, WireConfig::default()).unwrap();
        assert!(!r.treat_as_withdraw);
        assert_eq!(r.discarded, vec![ATTR_AGGREGATOR]);
        // The route survives with the good attributes intact.
        assert_eq!(r.update.announced.len(), 1);
        let a = r.update.attrs.as_ref().unwrap();
        assert_eq!(a.next_hop, Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(a.aggregator, None);
    }

    #[test]
    fn revised_decode_discards_nonempty_atomic_aggregate() {
        let mut attrs = Vec::new();
        attrs.extend_from_slice(&[FLAG_TRANSITIVE, ATTR_ORIGIN, 1, 0]);
        attrs.extend_from_slice(&[FLAG_TRANSITIVE, ATTR_AS_PATH, 6, 2, 1, 0, 0, 0, 9]);
        attrs.extend_from_slice(&[FLAG_TRANSITIVE, ATTR_NEXT_HOP, 4, 192, 0, 2, 1]);
        attrs.extend_from_slice(&[FLAG_TRANSITIVE, ATTR_ATOMIC_AGGREGATE, 1, 0xAA]);
        let body = update_body(&[], &attrs, &[8, 10]);
        assert!(decode_update(&body, WireConfig::default()).is_err());
        let r = decode_update_revised(&body, WireConfig::default()).unwrap();
        assert!(!r.treat_as_withdraw);
        assert_eq!(r.discarded, vec![ATTR_ATOMIC_AGGREGATE]);
        assert!(!r.update.attrs.as_ref().unwrap().atomic_aggregate);
    }

    #[test]
    fn revised_decode_still_resets_on_bad_mp_reach() {
        // A truncated MP_REACH poisons NLRI framing: session reset even
        // under revised handling.
        let attrs = [FLAG_OPTIONAL, ATTR_MP_REACH, 2, 0, 2];
        let body = update_body(&[], &attrs, &[]);
        assert!(decode_update_revised(&body, WireConfig::default()).is_err());
        // So does a truncated attribute header.
        let body = update_body(&[], &[FLAG_TRANSITIVE], &[]);
        assert!(decode_update_revised(&body, WireConfig::default()).is_err());
    }

    #[test]
    fn revised_decode_handles_nlri_without_attributes() {
        let body = update_body(&[], &[], &[8, 10]);
        assert!(matches!(
            decode_update(&body, WireConfig::default()),
            Err(BgpError::BadUpdate(_))
        ));
        let r = decode_update_revised(&body, WireConfig::default()).unwrap();
        assert!(r.treat_as_withdraw);
        assert_eq!(r.update.announced.len(), 1);
    }

    #[test]
    fn revised_decode_of_well_formed_update_is_clean() {
        let attrs = Arc::new(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(9)]),
            next_hop: Ipv4Addr::new(192, 0, 2, 1),
            ..Default::default()
        });
        let m = UpdateMessage::announce(attrs, vec![Nlri::plain(Prefix::v4(10, 0, 0, 0, 8))]);
        let bytes = encode_message(&BgpMessage::Update(m.clone()), WireConfig::default()).unwrap();
        let r = decode_update_revised(&bytes[HEADER_LEN..], WireConfig::default()).unwrap();
        assert!(!r.treat_as_withdraw);
        assert!(r.discarded.is_empty());
        assert_eq!(r.update.announced, m.announced);
    }

    #[test]
    fn treatment_classification_matches_rfc7606() {
        use ErrorTreatment::*;
        for ty in [
            ATTR_ORIGIN,
            ATTR_AS_PATH,
            ATTR_NEXT_HOP,
            ATTR_MED,
            ATTR_LOCAL_PREF,
            ATTR_COMMUNITY,
        ] {
            assert_eq!(treatment_for_attr(ty), TreatAsWithdraw);
        }
        assert_eq!(treatment_for_attr(ATTR_ATOMIC_AGGREGATE), AttributeDiscard);
        assert_eq!(treatment_for_attr(ATTR_AGGREGATOR), AttributeDiscard);
        assert_eq!(treatment_for_attr(ATTR_MP_REACH), SessionReset);
        assert_eq!(treatment_for_attr(ATTR_MP_UNREACH), SessionReset);
    }

    #[test]
    fn empty_update_is_end_of_rib() {
        let m = BgpMessage::Update(UpdateMessage {
            withdrawn: vec![],
            attrs: None,
            announced: vec![],
            trace: None,
        });
        let got = roundtrip(&m, WireConfig::default());
        if let BgpMessage::Update(u) = got {
            assert!(u.is_end_of_rib());
        } else {
            panic!("wrong type");
        }
    }
}
