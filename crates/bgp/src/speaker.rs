//! The BGP speaker: a complete software router.
//!
//! A [`Speaker`] owns any number of peer sessions, per-peer Adj-RIB-In /
//! Adj-RIB-Out tables, a Loc-RIB, import/export policies, and optional
//! route-flap damping. Three operating modes cover everything in the
//! paper:
//!
//! * [`SpeakerMode::Normal`] — a conventional router (an AS in the
//!   simulated Internet, an emulated PoP router, a client router).
//! * [`SpeakerMode::RouteServer`] — RFC 7947 transparency: no self-ASN
//!   prepend, untouched next hop and MED. Used by the IXP route server.
//! * Per-peer [`AdvertiseMode::AllPaths`] — exports every path (with
//!   ADD-PATH ids derived from the learning peer) rather than only the
//!   best one. This is the BIRD-style multiplexing PEERING proposes for
//!   scaling client sessions at large IXPs: one session carries every
//!   upstream's routes, distinguishable by path id.

use crate::attrs::{Community, PathAttributes};
use crate::damping::{DampingConfig, DampingState};
use crate::decision::{best_route, compare_routes, DecisionConfig};
use crate::fsm::{ConnectRetryConfig, Session, SessionConfig, SessionEvent};
use crate::mem::rib_memory;
use crate::message::{BgpMessage, Nlri, UpdateMessage};
use crate::policy::Policy;
use crate::provenance::{ExportVerdict, ImportVerdict, ProvenanceEvent, ProvenanceLog};
use crate::rib::{AdjRibIn, AdjRibOut, AttrInterner, LocRib, PeerId, Route, RouteSource};
use peering_netsim::{Asn, Prefix, SimDuration, SimRng, SimTime, TraceId};
use peering_telemetry::Telemetry;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Global operating mode of a speaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeakerMode {
    /// Conventional BGP router.
    Normal,
    /// RFC 7947 route server: transparent AS path and next hop.
    RouteServer,
}

/// What a speaker advertises to a given peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvertiseMode {
    /// Only the Loc-RIB best route per prefix (normal BGP).
    BestOnly,
    /// Every usable path, tagged with ADD-PATH ids (mux sessions).
    AllPaths,
}

/// Speaker-wide configuration.
#[derive(Debug, Clone)]
pub struct SpeakerConfig {
    /// Our ASN.
    pub asn: Asn,
    /// Our router id (also used as next-hop-self address).
    pub router_id: Ipv4Addr,
    /// Operating mode.
    pub mode: SpeakerMode,
    /// Decision-process tunables.
    pub decision: DecisionConfig,
    /// Route-flap damping applied to routes learned from peers.
    pub damping: Option<DampingConfig>,
    /// Share identical attribute sets across RIB entries.
    pub intern_attrs: bool,
    /// Proposed hold time for sessions.
    pub hold_time: SimDuration,
    /// Automatic reconnection after session loss. Each peer session gets
    /// its own deterministic jitter stream forked from this seed.
    pub connect_retry: Option<ConnectRetryConfig>,
    /// MRAI-style update packing (RFC 4271 §9.2.1.1, simplified to a
    /// per-peer batch timer): export deltas are staged per peer and
    /// flushed as packed multi-NLRI UPDATEs when the interval expires.
    /// `None` (the default) emits every delta immediately, which is the
    /// historical behaviour every golden is pinned to.
    pub mrai: Option<SimDuration>,
}

impl SpeakerConfig {
    /// A normal router.
    pub fn new(asn: Asn, router_id: Ipv4Addr) -> Self {
        SpeakerConfig {
            asn,
            router_id,
            mode: SpeakerMode::Normal,
            decision: DecisionConfig::default(),
            damping: None,
            intern_attrs: true,
            hold_time: SimDuration::from_secs(90),
            connect_retry: None,
            mrai: None,
        }
    }

    /// Enable MRAI-style update packing with the given interval.
    pub fn with_mrai(mut self, interval: SimDuration) -> Self {
        self.mrai = Some(interval);
        self
    }

    /// Enable automatic reconnection with backed-off retries.
    pub fn with_connect_retry(mut self, retry: ConnectRetryConfig) -> Self {
        self.connect_retry = Some(retry);
        self
    }

    /// Switch to route-server mode.
    pub fn route_server(mut self) -> Self {
        self.mode = SpeakerMode::RouteServer;
        self
    }

    /// Enable flap damping.
    pub fn with_damping(mut self, cfg: DampingConfig) -> Self {
        self.damping = Some(cfg);
        self
    }

    /// Disable attribute interning (Figure 2 ablation).
    pub fn without_interning(mut self) -> Self {
        self.intern_attrs = false;
        self
    }
}

/// Per-session prefix-count limits (RFC 4486 §4 "maximum number of
/// prefixes reached").
///
/// Crossing `warn` raises a one-shot telemetry warning; exceeding
/// `limit` answers with a Cease NOTIFICATION, flushes the peer's
/// Adj-RIB-In (graceful restart is deliberately bypassed — retaining a
/// flooder's paths would preserve the very table pressure the limit
/// exists to shed), and serves an `idle_hold` penalty before the
/// session re-establishes on its own.
#[derive(Debug, Clone, Copy)]
pub struct MaxPrefixConfig {
    /// Soft threshold: warn (once per session) at this many prefixes.
    pub warn: usize,
    /// Hard limit: tear the session down above this many prefixes.
    pub limit: usize,
    /// Idle-hold penalty served before automatic re-establishment.
    pub idle_hold: SimDuration,
}

impl MaxPrefixConfig {
    /// Limits with a warning threshold at 80% of `limit` and a 60 s
    /// idle-hold penalty.
    pub fn new(limit: usize) -> Self {
        MaxPrefixConfig {
            warn: limit - limit / 5,
            limit,
            idle_hold: SimDuration::from_secs(60),
        }
    }

    /// Builder: override the warning threshold.
    pub fn warn_at(mut self, warn: usize) -> Self {
        self.warn = warn;
        self
    }

    /// Builder: override the idle-hold penalty.
    pub fn idle_hold(mut self, penalty: SimDuration) -> Self {
        self.idle_hold = penalty;
        self
    }
}

/// Per-peer configuration.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// Local identifier for this peer.
    pub id: PeerId,
    /// The peer's ASN.
    pub asn: Asn,
    /// Import policy (applied before Adj-RIB-In).
    pub import: Policy,
    /// Export policy (applied before Adj-RIB-Out).
    pub export: Policy,
    /// What to advertise.
    pub advertise: AdvertiseMode,
    /// Whether we wait for the peer to open the session.
    pub passive: bool,
    /// IGP cost to this peer's next hop (decision-process input).
    pub igp_cost: u32,
    /// This iBGP peer is a route-reflector client of ours (RFC 4456).
    /// The paper's Figure 2 discussion leans on exactly this: "route
    /// reflectors and MPLS backbones mean that many internal routers do
    /// not carry multiple copies of the full table."
    pub rr_client: bool,
    /// RFC 4724 graceful restart: on session loss, keep this peer's paths
    /// as stale (still forwarding) for this long, sweeping whatever was
    /// not re-announced once the peer signals End-of-RIB.
    pub graceful_restart: Option<SimDuration>,
    /// Per-session prefix-count limits; `None` disables enforcement.
    pub max_prefix: Option<MaxPrefixConfig>,
}

impl PeerConfig {
    /// A plain eBGP/iBGP peer with accept-all policies.
    pub fn new(id: PeerId, asn: Asn) -> Self {
        PeerConfig {
            id,
            asn,
            import: Policy::accept_all(),
            export: Policy::accept_all(),
            advertise: AdvertiseMode::BestOnly,
            passive: false,
            igp_cost: 0,
            rr_client: false,
            graceful_restart: None,
            max_prefix: None,
        }
    }

    /// Builder: import policy.
    pub fn import(mut self, p: Policy) -> Self {
        self.import = p;
        self
    }

    /// Builder: export policy.
    pub fn export(mut self, p: Policy) -> Self {
        self.export = p;
        self
    }

    /// Builder: passive endpoint.
    pub fn passive(mut self) -> Self {
        self.passive = true;
        self
    }

    /// Builder: advertise all paths (ADD-PATH mux session).
    pub fn all_paths(mut self) -> Self {
        self.advertise = AdvertiseMode::AllPaths;
        self
    }

    /// Builder: IGP cost toward this peer.
    pub fn igp_cost(mut self, cost: u32) -> Self {
        self.igp_cost = cost;
        self
    }

    /// Builder: mark this iBGP peer as a route-reflector client.
    pub fn rr_client(mut self) -> Self {
        self.rr_client = true;
        self
    }

    /// Builder: retain this peer's paths as stale across restarts.
    pub fn graceful_restart(mut self, restart_time: SimDuration) -> Self {
        self.graceful_restart = Some(restart_time);
        self
    }

    /// Builder: enforce per-session prefix-count limits.
    pub fn with_max_prefix(mut self, mp: MaxPrefixConfig) -> Self {
        self.max_prefix = Some(mp);
        self
    }
}

/// Events a speaker surfaces to its owner.
#[derive(Debug, Clone, PartialEq)]
pub enum SpeakerEvent {
    /// A session reached Established.
    PeerUp(PeerId),
    /// A session went down.
    PeerDown(PeerId, String),
    /// The best route for a prefix changed (None = no longer reachable).
    BestChanged {
        /// Affected prefix.
        prefix: Prefix,
        /// The new best route, if any.
        new: Option<Route>,
    },
    /// Damping suppressed a flapping route from a peer.
    Suppressed(PeerId, Prefix),
    /// A route was rejected on import (policy or loop).
    ImportRejected(PeerId, Prefix),
}

/// A speaker's outputs: messages to deliver and events for the owner.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Send a message to a peer.
    Send(PeerId, BgpMessage),
    /// Surface an event.
    Event(SpeakerEvent),
}

/// Graceful-restart bookkeeping: which Adj-RIB-In entries survive from
/// before the session loss, and when retention gives up.
struct StaleState {
    /// When the restart timer flushes whatever is still stale.
    deadline: SimTime,
    /// `(prefix, path_id)` entries retained from the old session.
    keys: BTreeSet<(Prefix, u32)>,
}

/// One staged export delta awaiting an MRAI flush. Keyed by [`Nlri`] in
/// `PeerState::pending`, so a later delta for the same NLRI supersedes an
/// earlier one — packing never changes the peer's final state, only how
/// many UPDATE messages carry it.
#[derive(Debug, Clone)]
enum PendingDelta {
    /// Withdraw the NLRI.
    Withdraw {
        /// Provenance cause of the withdrawal.
        trace: Option<TraceId>,
    },
    /// Announce the NLRI with these (already exported) attributes.
    Announce {
        /// Attributes as they will appear on the wire.
        attrs: Arc<PathAttributes>,
        /// Provenance id of the announcement.
        trace: Option<TraceId>,
    },
}

struct PeerState {
    cfg: PeerConfig,
    session: Session,
    adj_in: AdjRibIn,
    adj_out: AdjRibOut,
    damping: DampingState,
    /// Suppressed (damped) prefixes learned from this peer.
    suppressed: BTreeSet<Prefix>,
    /// Present while the peer is in a graceful-restart window.
    stale: Option<StaleState>,
    /// The max-prefix warning threshold already fired this session.
    max_prefix_warned: bool,
    /// Staged export deltas (MRAI packing); empty when `cfg.mrai` is off.
    pending: BTreeMap<Nlri, PendingDelta>,
    /// When the pending batch flushes; `None` when nothing is staged.
    mrai_deadline: Option<SimTime>,
}

/// A complete BGP router.
pub struct Speaker {
    cfg: SpeakerConfig,
    peers: BTreeMap<PeerId, PeerState>,
    loc_rib: LocRib,
    local_routes: BTreeMap<Prefix, Arc<PathAttributes>>,
    interner: AttrInterner,
    /// Count of UPDATE messages emitted.
    pub updates_sent: u64,
    /// Count of UPDATE messages processed.
    pub updates_received: u64,
    /// Telemetry sink (disabled unless attached; see
    /// [`set_telemetry`](Self::set_telemetry)).
    telemetry: Telemetry,
    /// Provenance sink (disabled unless attached; see
    /// [`set_provenance`](Self::set_provenance)).
    provenance: ProvenanceLog,
    /// Next per-origin sequence number for minted [`TraceId`]s. Minting is
    /// unconditional and deterministic so attaching a provenance log never
    /// changes the ids (or anything else) a run produces.
    origin_seq: u32,
    /// Trace id of the live origination for each locally originated prefix.
    local_traces: BTreeMap<Prefix, TraceId>,
    /// Sim-time each peer's session was last started, for convergence
    /// measurement (cleared once Established is observed).
    session_started: BTreeMap<PeerId, SimTime>,
}

impl Speaker {
    /// Create a speaker with no peers.
    pub fn new(cfg: SpeakerConfig) -> Self {
        let interner = if cfg.intern_attrs {
            AttrInterner::new()
        } else {
            AttrInterner::disabled()
        };
        Speaker {
            cfg,
            peers: BTreeMap::new(),
            loc_rib: LocRib::new(),
            local_routes: BTreeMap::new(),
            interner,
            updates_sent: 0,
            updates_received: 0,
            telemetry: Telemetry::disabled(),
            provenance: ProvenanceLog::disabled(),
            origin_seq: 0,
            local_traces: BTreeMap::new(),
            session_started: BTreeMap::new(),
        }
    }

    /// Attach a telemetry handle. All metrics land under `bgp.*`; the
    /// default handle is disabled, so un-instrumented use is free.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Attach a provenance log. Recording is observational only: trace
    /// ids are minted whether or not a log is attached, so behaviour is
    /// bit-identical either way.
    pub fn set_provenance(&mut self, provenance: ProvenanceLog) {
        self.provenance = provenance;
    }

    /// Record an FSM state change on `peer`'s session between two
    /// externally observable points.
    fn note_fsm_transition(&self, before: crate::fsm::FsmState, after: crate::fsm::FsmState) {
        use crate::fsm::FsmState;
        if before == after || !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.counter_inc("bgp.fsm.transitions");
        let to = match after {
            FsmState::Idle => "bgp.fsm.to_idle",
            FsmState::Connect => "bgp.fsm.to_connect",
            FsmState::OpenSent => "bgp.fsm.to_open_sent",
            FsmState::OpenConfirm => "bgp.fsm.to_open_confirm",
            FsmState::Established => "bgp.fsm.to_established",
        };
        self.telemetry.counter_inc(to);
    }

    /// Refresh the Loc-RIB size gauge after a decision run.
    fn note_rib_gauges(&self) {
        if self.telemetry.is_enabled() {
            self.telemetry
                .gauge_set("bgp.rib.loc_rib_routes", self.loc_rib.len() as i64);
        }
    }

    /// Our ASN.
    pub fn asn(&self) -> Asn {
        self.cfg.asn
    }

    /// The speaker configuration.
    pub fn config(&self) -> &SpeakerConfig {
        &self.cfg
    }

    /// The Loc-RIB.
    pub fn loc_rib(&self) -> &LocRib {
        &self.loc_rib
    }

    /// Peer ids currently configured.
    pub fn peer_ids(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.peers.keys().copied()
    }

    /// Number of configured peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// The configured ASN of a peer.
    pub fn peer_asn(&self, peer: PeerId) -> Option<Asn> {
        self.peers.get(&peer).map(|p| p.cfg.asn)
    }

    /// The Adj-RIB-In for a peer.
    pub fn adj_rib_in(&self, peer: PeerId) -> Option<&AdjRibIn> {
        self.peers.get(&peer).map(|p| &p.adj_in)
    }

    /// The Adj-RIB-Out for a peer.
    pub fn adj_rib_out(&self, peer: PeerId) -> Option<&AdjRibOut> {
        self.peers.get(&peer).map(|p| &p.adj_out)
    }

    /// Whether the session with a peer is established.
    pub fn peer_established(&self, peer: PeerId) -> bool {
        self.peers
            .get(&peer)
            .map(|p| p.session.is_established())
            .unwrap_or(false)
    }

    /// Total BGP table memory (all RIBs, attributes shared-once).
    pub fn table_memory(&self) -> usize {
        let ribs = self
            .peers
            .values()
            .flat_map(|p| [&p.adj_in, &p.adj_out].into_iter());
        rib_memory(ribs, Some(&self.loc_rib))
    }

    /// Register a peer. The session starts in Idle; call
    /// [`start_peer`](Self::start_peer) to bring it up.
    pub fn add_peer(&mut self, cfg: PeerConfig) {
        let add_path = cfg.advertise == AdvertiseMode::AllPaths;
        let mut scfg = SessionConfig::new(self.cfg.asn, self.cfg.router_id)
            .expect_peer(cfg.asn)
            .add_path(add_path, true);
        scfg.hold_time = self.cfg.hold_time;
        if cfg.passive {
            scfg = scfg.passive();
        }
        if let Some(retry) = self.cfg.connect_retry.clone() {
            // Fork the jitter stream per peer so concurrent retries from
            // one speaker do not synchronise.
            let seed = SimRng::new(retry.seed)
                .fork(&format!("connect-retry/{}", cfg.id.0))
                .seed();
            scfg = scfg.with_connect_retry(ConnectRetryConfig { seed, ..retry });
        }
        if let Some(rt) = cfg.graceful_restart {
            scfg = scfg.graceful_restart(rt.as_micros().div_euclid(1_000_000).min(4095) as u16);
        }
        let state = PeerState {
            session: Session::new(scfg),
            adj_in: AdjRibIn::new(),
            adj_out: AdjRibOut::new(),
            damping: DampingState::new(),
            suppressed: BTreeSet::new(),
            stale: None,
            max_prefix_warned: false,
            pending: BTreeMap::new(),
            mrai_deadline: None,
            cfg,
        };
        self.peers.insert(state.cfg.id, state);
    }

    /// Remove a peer entirely, rerunning decisions for its routes.
    pub fn remove_peer(&mut self, peer: PeerId, now: SimTime) -> Vec<Output> {
        let Some(mut state) = self.peers.remove(&peer) else {
            return Vec::new();
        };
        let (msgs, _) = state.session.stop(now);
        let mut out: Vec<Output> = msgs.into_iter().map(|m| Output::Send(peer, m)).collect();
        let affected = state.adj_in.clear();
        out.extend(self.reconsider(affected, now));
        out
    }

    /// Start (or restart) the session with a peer.
    pub fn start_peer(&mut self, peer: PeerId, now: SimTime) -> Vec<Output> {
        let Some(state) = self.peers.get_mut(&peer) else {
            return Vec::new();
        };
        let before = state.session.state();
        let out = state
            .session
            .start(now)
            .into_iter()
            .map(|m| Output::Send(peer, m))
            .collect();
        self.session_started.insert(peer, now);
        let after = self.peers[&peer].session.state();
        self.note_fsm_transition(before, after);
        out
    }

    /// Administratively stop the session with a peer.
    pub fn stop_peer(&mut self, peer: PeerId, now: SimTime) -> Vec<Output> {
        let Some(state) = self.peers.get_mut(&peer) else {
            return Vec::new();
        };
        let before = state.session.state();
        let (msgs, events) = state.session.stop(now);
        let mut out: Vec<Output> = msgs.into_iter().map(|m| Output::Send(peer, m)).collect();
        for ev in events {
            out.extend(self.handle_session_event(peer, ev, now));
        }
        let after = self.peers[&peer].session.state();
        self.note_fsm_transition(before, after);
        out
    }

    /// Originate a prefix with default attributes.
    pub fn originate(&mut self, prefix: Prefix, now: SimTime) -> Vec<Output> {
        self.originate_with(prefix, Vec::new(), now)
    }

    /// Originate a prefix carrying the given communities.
    pub fn originate_with(
        &mut self,
        prefix: Prefix,
        communities: Vec<Community>,
        now: SimTime,
    ) -> Vec<Output> {
        let mut attrs = PathAttributes::originate(self.cfg.router_id);
        for c in communities {
            attrs.add_community(c);
        }
        let attrs = self.interner.intern(attrs);
        self.local_routes.insert(prefix, attrs);
        let trace = self.mint_trace();
        self.local_traces.insert(prefix, trace);
        self.provenance.record(
            now,
            self.cfg.asn,
            ProvenanceEvent::Originated {
                prefix,
                trace,
                withdraw: false,
            },
        );
        self.reconsider_with(vec![prefix], now, Some(trace))
    }

    /// Withdraw a locally originated prefix.
    pub fn withdraw_origin(&mut self, prefix: Prefix, now: SimTime) -> Vec<Output> {
        if self.local_routes.remove(&prefix).is_some() {
            self.local_traces.remove(&prefix);
            let trace = self.mint_trace();
            self.provenance.record(
                now,
                self.cfg.asn,
                ProvenanceEvent::Originated {
                    prefix,
                    trace,
                    withdraw: true,
                },
            );
            self.reconsider_with(vec![prefix], now, Some(trace))
        } else {
            Vec::new()
        }
    }

    /// Mint the next deterministic trace id for a local routing change.
    fn mint_trace(&mut self) -> TraceId {
        let trace = TraceId::new(self.cfg.asn.0, self.origin_seq);
        self.origin_seq = self.origin_seq.wrapping_add(1);
        trace
    }

    /// Locally originated prefixes.
    pub fn originated(&self) -> impl Iterator<Item = &Prefix> {
        self.local_routes.keys()
    }

    /// Process a message from a peer.
    pub fn on_message(&mut self, from: PeerId, msg: BgpMessage, now: SimTime) -> Vec<Output> {
        let Some(state) = self.peers.get_mut(&from) else {
            return Vec::new();
        };
        let before = state.session.state();
        let (msgs, events) = state.session.on_message(msg, now);
        let mut out: Vec<Output> = msgs.into_iter().map(|m| Output::Send(from, m)).collect();
        for ev in events {
            out.extend(self.handle_session_event(from, ev, now));
        }
        let after = self.peers[&from].session.state();
        self.note_fsm_transition(before, after);
        debug_assert_eq!(
            self.check_invariants(),
            Ok(()),
            "speaker invariant violated after on_message"
        );
        out
    }

    /// Drive timers for every peer session.
    pub fn tick(&mut self, now: SimTime) -> Vec<Output> {
        let ids: Vec<PeerId> = self.peers.keys().copied().collect();
        let mut out = Vec::new();
        for id in ids {
            let state = self.peers.get_mut(&id).expect("peer exists");
            let before = state.session.state();
            let (msgs, events) = state.session.tick(now);
            out.extend(msgs.into_iter().map(|m| Output::Send(id, m)));
            for ev in events {
                out.extend(self.handle_session_event(id, ev, now));
            }
            let after = self.peers[&id].session.state();
            self.note_fsm_transition(before, after);
            // Damping release check: re-decide prefixes whose suppression
            // has decayed away.
            if let Some(dcfg) = self.cfg.damping {
                let state = self.peers.get_mut(&id).expect("peer exists");
                let candidates: Vec<Prefix> = state.suppressed.iter().copied().collect();
                let mut released = Vec::new();
                for p in candidates {
                    if !state.damping.is_suppressed(&p, now, &dcfg) {
                        state.suppressed.remove(&p);
                        released.push(p);
                    }
                }
                if !released.is_empty() {
                    out.extend(self.reconsider(released, now));
                }
            }
            // Graceful-restart timer: the peer never came back (or never
            // finished re-syncing) in time, so flush its stale paths.
            let state = self.peers.get_mut(&id).expect("peer exists");
            if state.stale.as_ref().is_some_and(|st| now >= st.deadline) {
                out.extend(self.finish_graceful_restart(id, now));
            }
            // MRAI timer: flush the staged batch once the interval is up.
            let state = self.peers.get_mut(&id).expect("peer exists");
            if state.mrai_deadline.is_some_and(|d| now >= d) {
                out.extend(self.flush_mrai(id, now));
            }
        }
        debug_assert_eq!(
            self.check_invariants(),
            Ok(()),
            "speaker invariant violated after tick"
        );
        out
    }

    /// The earliest time any session or graceful-restart timer needs
    /// service.
    pub fn next_deadline(&self) -> SimTime {
        self.peers
            .values()
            .map(|p| {
                let mut s = p.session.next_deadline();
                if let Some(st) = &p.stale {
                    s = s.min(st.deadline);
                }
                if let Some(d) = p.mrai_deadline {
                    s = s.min(d);
                }
                s
            })
            .min()
            .unwrap_or(SimTime::MAX)
    }

    fn handle_session_event(
        &mut self,
        peer: PeerId,
        ev: SessionEvent,
        now: SimTime,
    ) -> Vec<Output> {
        match ev {
            SessionEvent::Established(_) => {
                if let Some(started) = self.session_started.remove(&peer) {
                    self.telemetry
                        .observe_duration("bgp.session.convergence_us", now.since(started));
                }
                self.telemetry.counter_inc("bgp.session.established");
                let mut out = vec![Output::Event(SpeakerEvent::PeerUp(peer))];
                out.extend(self.full_table_to(peer, now));
                out
            }
            SessionEvent::Down { reason } => {
                self.telemetry.counter_inc("bgp.session.down");
                let state = self.peers.get_mut(&peer).expect("peer exists");
                state.adj_out.clear();
                state.suppressed.clear();
                state.max_prefix_warned = false;
                // Staged deltas are for the dead session; drop them.
                state.pending.clear();
                state.mrai_deadline = None;
                if let Some(restart_time) = state.cfg.graceful_restart {
                    // RFC 4724: mark the peer's paths stale but keep
                    // forwarding along them. A second loss inside the
                    // window keeps the original deadline so staleness
                    // stays bounded.
                    let deadline = match &state.stale {
                        Some(st) => st.deadline,
                        None => now + restart_time,
                    };
                    let mut keys = BTreeSet::new();
                    let prefixes: Vec<Prefix> = state.adj_in.prefixes().copied().collect();
                    for p in &prefixes {
                        for r in state.adj_in.paths(p) {
                            keys.insert((*p, r.path_id));
                        }
                    }
                    state.stale = Some(StaleState { deadline, keys });
                    vec![Output::Event(SpeakerEvent::PeerDown(peer, reason))]
                } else {
                    let affected = state.adj_in.clear();
                    let mut out = vec![Output::Event(SpeakerEvent::PeerDown(peer, reason))];
                    out.extend(self.reconsider(affected, now));
                    out
                }
            }
            SessionEvent::Update(update) => {
                self.updates_received += 1;
                self.telemetry.counter_inc("bgp.speaker.updates_in");
                self.process_update(peer, update, now)
            }
            SessionEvent::RefreshRequested => {
                // RFC 2918: re-advertise the whole Adj-RIB-Out. Forget
                // what was already sent so the diffing export resends it.
                if let Some(state) = self.peers.get_mut(&peer) {
                    state.adj_out.clear();
                }
                self.full_table_to(peer, now)
            }
        }
    }

    fn process_update(&mut self, from: PeerId, update: UpdateMessage, now: SimTime) -> Vec<Output> {
        // End-of-RIB after a graceful restart: the peer has re-sent its
        // whole table, so whatever is still stale was genuinely lost.
        if update.is_end_of_rib() {
            return self.finish_graceful_restart(from, now);
        }
        // The provenance id carried by this update is the *cause* of every
        // RIB change (and downstream export) it triggers here.
        let cause = update.trace;
        let prov = self.provenance.clone();
        let mut affected: BTreeSet<Prefix> = BTreeSet::new();
        let mut events = Vec::new();
        let local_asn = self.cfg.asn;
        let damping_cfg = self.cfg.damping;
        {
            let state = self.peers.get_mut(&from).expect("peer exists");
            let peer_is_ibgp = state.cfg.asn == local_asn;
            let peer_asn = state.cfg.asn;
            if prov.is_enabled() {
                // The vantage-point feed record: the update exactly as
                // received, stamped with its delivery time.
                prov.record(
                    now,
                    local_asn,
                    ProvenanceEvent::Feed {
                        from_peer: from,
                        from_asn: peer_asn,
                        update: update.clone(),
                    },
                );
                for nlri in &update.withdrawn {
                    prov.record(
                        now,
                        local_asn,
                        ProvenanceEvent::WithdrawReceived {
                            from_peer: from,
                            from_asn: peer_asn,
                            prefix: nlri.prefix,
                            trace: cause,
                        },
                    );
                }
            }

            for nlri in &update.withdrawn {
                let removed = match nlri.path_id {
                    Some(id) => state.adj_in.remove(&nlri.prefix, id).into_iter().collect(),
                    None => state.adj_in.remove_prefix(&nlri.prefix),
                };
                if let Some(st) = &mut state.stale {
                    match nlri.path_id {
                        Some(id) => {
                            st.keys.remove(&(nlri.prefix, id));
                        }
                        None => st.keys.retain(|(p, _)| p != &nlri.prefix),
                    }
                }
                if !removed.is_empty() {
                    affected.insert(nlri.prefix);
                }
                if let Some(dcfg) = damping_cfg {
                    if state.damping.on_withdraw(nlri.prefix, now, &dcfg) {
                        state.suppressed.insert(nlri.prefix);
                        events.push(SpeakerEvent::Suppressed(from, nlri.prefix));
                    }
                }
            }

            if let Some(attrs) = &update.attrs {
                let heard_path: Vec<Asn> = if prov.is_enabled() {
                    attrs.as_path.asns().collect()
                } else {
                    Vec::new()
                };
                let import_verdict = |prov: &ProvenanceLog, prefix: Prefix, v: ImportVerdict| {
                    if prov.is_enabled() {
                        prov.record(
                            now,
                            local_asn,
                            ProvenanceEvent::Imported {
                                from_peer: from,
                                from_asn: peer_asn,
                                prefix,
                                trace: cause,
                                as_path: heard_path.clone(),
                                verdict: v,
                            },
                        );
                    }
                };
                for nlri in &update.announced {
                    // Receiver-side loop detection: our ASN in the path
                    // means the route already passed through us (this is
                    // also what makes AS-path poisoning work).
                    if self.cfg.mode == SpeakerMode::Normal
                        && attrs.as_path.contains(local_asn)
                        && !peer_is_ibgp
                    {
                        events.push(SpeakerEvent::ImportRejected(from, nlri.prefix));
                        import_verdict(&prov, nlri.prefix, ImportVerdict::AsPathLoop);
                        continue;
                    }
                    let mut imported = (**attrs).clone();
                    if !state.cfg.import.apply(&nlri.prefix, &mut imported) {
                        events.push(SpeakerEvent::ImportRejected(from, nlri.prefix));
                        import_verdict(&prov, nlri.prefix, ImportVerdict::PolicyRejected);
                        // An implicit withdraw of any previous path.
                        let removed = match nlri.path_id {
                            Some(id) => state.adj_in.remove(&nlri.prefix, id).into_iter().collect(),
                            None => state.adj_in.remove_prefix(&nlri.prefix),
                        };
                        if let Some(st) = &mut state.stale {
                            match nlri.path_id {
                                Some(id) => {
                                    st.keys.remove(&(nlri.prefix, id));
                                }
                                None => st.keys.retain(|(p, _)| p != &nlri.prefix),
                            }
                        }
                        if !removed.is_empty() {
                            affected.insert(nlri.prefix);
                        }
                        continue;
                    }
                    let mut damped = false;
                    if let Some(dcfg) = damping_cfg {
                        if state.damping.on_announce(nlri.prefix, now, &dcfg) {
                            state.suppressed.insert(nlri.prefix);
                            events.push(SpeakerEvent::Suppressed(from, nlri.prefix));
                            damped = true;
                        }
                    }
                    import_verdict(
                        &prov,
                        nlri.prefix,
                        if damped {
                            ImportVerdict::Damped
                        } else {
                            ImportVerdict::Accepted
                        },
                    );
                    let interned = self.interner.intern(imported);
                    let route = Route {
                        prefix: nlri.prefix,
                        attrs: interned,
                        peer: from,
                        path_id: nlri.path_id.unwrap_or(0),
                        source: if peer_is_ibgp {
                            RouteSource::Ibgp
                        } else {
                            RouteSource::Ebgp
                        },
                        igp_cost: state.cfg.igp_cost,
                        learned_at: now,
                        trace: cause,
                    };
                    state.adj_in.insert(route);
                    if let Some(st) = &mut state.stale {
                        st.keys.remove(&(nlri.prefix, nlri.path_id.unwrap_or(0)));
                    }
                    affected.insert(nlri.prefix);
                }
            }
        }
        // Max-prefix enforcement (RFC 4486 §4): count what the peer now
        // occupies in Adj-RIB-In, warn once per session at the soft
        // threshold, Cease above the hard limit. The Cease path bypasses
        // graceful restart — retaining a flooder's paths would preserve
        // the very table pressure the limit exists to shed.
        let mut cease: Vec<Output> = Vec::new();
        {
            let state = self.peers.get_mut(&from).expect("peer exists");
            if let Some(mp) = state.cfg.max_prefix {
                let count = state.adj_in.prefixes().count();
                if count >= mp.warn && count <= mp.limit && !state.max_prefix_warned {
                    state.max_prefix_warned = true;
                    self.telemetry.counter_inc("bgp.session.max_prefix_warn");
                }
                if count > mp.limit {
                    let (msgs, sess_events) = state.session.max_prefix_cease(now, mp.idle_hold);
                    cease.extend(msgs.into_iter().map(|m| Output::Send(from, m)));
                    affected.extend(state.adj_in.clear());
                    state.adj_out.clear();
                    state.suppressed.clear();
                    state.stale = None;
                    state.max_prefix_warned = false;
                    self.telemetry.counter_inc("bgp.session.down");
                    for ev in sess_events {
                        if let SessionEvent::Down { reason } = ev {
                            cease.push(Output::Event(SpeakerEvent::PeerDown(from, reason)));
                        }
                    }
                }
            }
        }
        if self.telemetry.is_enabled() {
            for ev in &events {
                match ev {
                    SpeakerEvent::Suppressed(..) => {
                        self.telemetry.counter_inc("bgp.damping.suppressed");
                    }
                    SpeakerEvent::ImportRejected(..) => {
                        self.telemetry.counter_inc("bgp.policy.import_rejected");
                    }
                    _ => {}
                }
            }
        }
        let mut out: Vec<Output> = events.into_iter().map(Output::Event).collect();
        out.extend(cease);
        out.extend(self.reconsider_with(affected.into_iter().collect(), now, cause));
        out
    }

    /// End the graceful-restart window for a peer: sweep every retained
    /// path the peer did not re-announce and re-decide those prefixes.
    fn finish_graceful_restart(&mut self, peer: PeerId, now: SimTime) -> Vec<Output> {
        let Some(state) = self.peers.get_mut(&peer) else {
            return Vec::new();
        };
        let Some(stale) = state.stale.take() else {
            return Vec::new();
        };
        let mut affected = BTreeSet::new();
        for (prefix, path_id) in stale.keys {
            if state.adj_in.remove(&prefix, path_id).is_some() {
                affected.insert(prefix);
            }
        }
        self.reconsider(affected.into_iter().collect(), now)
    }

    /// Tear down the transport with a peer (chaos: TCP reset, link cut
    /// under the session). With retry configured the session reconnects
    /// by itself; with graceful restart the peer's paths go stale rather
    /// than vanishing.
    pub fn reset_peer(&mut self, peer: PeerId, now: SimTime) -> Vec<Output> {
        let Some(state) = self.peers.get_mut(&peer) else {
            return Vec::new();
        };
        let events = state.session.drop_connection(now);
        let mut out = Vec::new();
        for ev in events {
            out.extend(self.handle_session_event(peer, ev, now));
        }
        debug_assert_eq!(
            self.check_invariants(),
            Ok(()),
            "speaker invariant violated after reset_peer"
        );
        out
    }

    /// React to an unparseable message from a peer (chaos: corruption in
    /// flight): NOTIFICATION out, session down.
    pub fn on_corrupt_message(&mut self, from: PeerId, now: SimTime) -> Vec<Output> {
        let Some(state) = self.peers.get_mut(&from) else {
            return Vec::new();
        };
        let (msgs, events) = state.session.on_corrupt(now);
        let mut out: Vec<Output> = msgs.into_iter().map(|m| Output::Send(from, m)).collect();
        for ev in events {
            out.extend(self.handle_session_event(from, ev, now));
        }
        debug_assert_eq!(
            self.check_invariants(),
            Ok(()),
            "speaker invariant violated after on_corrupt_message"
        );
        out
    }

    /// React to an UPDATE whose attributes are malformed in a way RFC
    /// 7606 classifies as recoverable: the session stays Established and
    /// the announced routes are handled as withdrawn (treat-as-withdraw)
    /// instead of answering with a NOTIFICATION. Contrast with
    /// [`on_corrupt_message`](Self::on_corrupt_message), which remains
    /// the path for unrecoverable (framing-level) corruption.
    pub fn on_malformed_update(
        &mut self,
        from: PeerId,
        update: UpdateMessage,
        now: SimTime,
    ) -> Vec<Output> {
        let Some(state) = self.peers.get_mut(&from) else {
            return Vec::new();
        };
        if state.session.is_established() {
            self.telemetry.counter_inc("bgp.session.treat_as_withdraw");
        }
        let (msgs, events) = state.session.on_malformed_update(update, now);
        let mut out: Vec<Output> = msgs.into_iter().map(|m| Output::Send(from, m)).collect();
        for ev in events {
            out.extend(self.handle_session_event(from, ev, now));
        }
        debug_assert_eq!(
            self.check_invariants(),
            Ok(()),
            "speaker invariant violated after on_malformed_update"
        );
        out
    }

    /// Replace a peer's import policy at runtime and re-filter the
    /// peer's Adj-RIB-In under it, withdrawing anything the new policy
    /// rejects. This is the quarantine lever: the containment engine
    /// swaps in a reject-all policy and every route the peer had placed
    /// is withdrawn from downstream peers.
    pub fn set_peer_import(&mut self, peer: PeerId, policy: Policy, now: SimTime) -> Vec<Output> {
        let Some(state) = self.peers.get_mut(&peer) else {
            return Vec::new();
        };
        state.cfg.import = policy;
        let mut affected: Vec<Prefix> = Vec::new();
        let prefixes: Vec<Prefix> = state.adj_in.prefixes().copied().collect();
        for p in prefixes {
            let paths: Vec<(u32, Arc<PathAttributes>)> = state
                .adj_in
                .paths(&p)
                .map(|r| (r.path_id, r.attrs.clone()))
                .collect();
            for (path_id, attrs) in paths {
                let mut candidate = (*attrs).clone();
                if !state.cfg.import.apply(&p, &mut candidate)
                    && state.adj_in.remove(&p, path_id).is_some()
                {
                    if let Some(st) = &mut state.stale {
                        st.keys.remove(&(p, path_id));
                    }
                    affected.push(p);
                }
            }
        }
        let out = self.reconsider(affected, now);
        debug_assert_eq!(
            self.check_invariants(),
            Ok(()),
            "speaker invariant violated after set_peer_import"
        );
        out
    }

    /// Ask an established peer to re-send its table (ROUTE-REFRESH, RFC
    /// 2918). Used when lifting a quarantine: the re-filtered routes were
    /// dropped from Adj-RIB-In, so the peer must offer them again.
    pub fn request_refresh(&mut self, peer: PeerId) -> Vec<Output> {
        match self.peers.get(&peer) {
            Some(state) if state.session.is_established() => {
                vec![Output::Send(peer, BgpMessage::RouteRefresh)]
            }
            _ => Vec::new(),
        }
    }

    /// Cold restart after a crash: every session drops to Idle, all
    /// learned state is gone, only local originations survive (they live
    /// in configuration). Callers restart sessions via
    /// [`start_peer`](Self::start_peer) afterwards.
    pub fn restart(&mut self, now: SimTime) -> Vec<Output> {
        let mut out = Vec::new();
        for (id, state) in self.peers.iter_mut() {
            if state.session.is_established() {
                out.push(Output::Event(SpeakerEvent::PeerDown(
                    *id,
                    "local restart".to_string(),
                )));
            }
            state.session = Session::new(state.session.config().clone());
            let _ = state.adj_in.clear();
            state.adj_out.clear();
            state.suppressed.clear();
            state.damping = DampingState::new();
            state.stale = None;
            state.max_prefix_warned = false;
        }
        self.loc_rib = LocRib::new();
        let locals: Vec<Prefix> = self.local_routes.keys().copied().collect();
        out.extend(self.reconsider(locals, now));
        debug_assert_eq!(
            self.check_invariants(),
            Ok(()),
            "speaker invariant violated after restart"
        );
        out
    }

    /// Candidate routes for a prefix: local + unsuppressed Adj-RIB-In.
    fn candidates(&self, prefix: &Prefix) -> Vec<&Route> {
        let mut c: Vec<&Route> = Vec::new();
        for state in self.peers.values() {
            if state.suppressed.contains(prefix) {
                continue;
            }
            c.extend(state.adj_in.paths(prefix));
        }
        c
    }

    /// Re-run the decision process for `prefixes` and propagate changes.
    fn reconsider(&mut self, prefixes: Vec<Prefix>, now: SimTime) -> Vec<Output> {
        self.reconsider_with(prefixes, now, None)
    }

    /// Like [`reconsider`](Self::reconsider), threading the provenance id
    /// of the routing change that triggered the re-decision (used to tag
    /// propagated withdrawals, which carry no route of their own).
    fn reconsider_with(
        &mut self,
        prefixes: Vec<Prefix>,
        now: SimTime,
        cause: Option<TraceId>,
    ) -> Vec<Output> {
        if !prefixes.is_empty() {
            self.telemetry.counter_inc("bgp.decision.runs");
            self.telemetry
                .counter_add("bgp.decision.prefixes", prefixes.len() as u64);
        }
        let mut out = Vec::new();
        for prefix in prefixes {
            let local = self.local_routes.get(&prefix).map(|attrs| {
                Route::local(prefix, Arc::clone(attrs), now)
                    .with_trace(self.local_traces.get(&prefix).copied())
            });
            let new_best: Option<Route> = {
                let cands = self.candidates(&prefix);
                let all = cands.into_iter().chain(local.as_ref());
                best_route(all, &self.cfg.decision).cloned()
            };
            let old_best = self.loc_rib.get(&prefix).cloned();
            let changed = match (&old_best, &new_best) {
                (None, None) => false,
                (Some(a), Some(b)) => {
                    !(Arc::ptr_eq(&a.attrs, &b.attrs) && a.peer == b.peer && a.path_id == b.path_id)
                }
                _ => true,
            };
            match &new_best {
                Some(r) => {
                    self.loc_rib.set_best(r.clone());
                }
                None => {
                    self.loc_rib.remove(&prefix);
                }
            }
            if changed {
                out.push(Output::Event(SpeakerEvent::BestChanged {
                    prefix,
                    new: new_best,
                }));
            }
            // Export state can change even when the best didn't (an
            // AllPaths peer cares about every path), so always re-export.
            out.extend(self.export_prefix(prefix, now, cause));
        }
        self.note_rib_gauges();
        out
    }

    /// Compute the desired Adj-RIB-Out entries for `prefix` toward `peer`.
    fn desired_exports(&self, peer: &PeerState, prefix: &Prefix, now: SimTime) -> Vec<Route> {
        let mut desired = Vec::new();
        let sources: Vec<Route> = match peer.cfg.advertise {
            AdvertiseMode::BestOnly => self.loc_rib.get(prefix).cloned().into_iter().collect(),
            AdvertiseMode::AllPaths => {
                let local = self.local_routes.get(prefix).map(|attrs| {
                    Route::local(*prefix, Arc::clone(attrs), now)
                        .with_trace(self.local_traces.get(prefix).copied())
                });
                let mut v: Vec<Route> = self.candidates(prefix).into_iter().cloned().collect();
                v.extend(local);
                // Deterministic order: best first.
                v.sort_by(|a, b| compare_routes(b, a, &self.cfg.decision).then(Ordering::Equal));
                v
            }
        };
        for route in sources {
            match self.export_route(peer, &route) {
                Ok(exported) => desired.push(exported),
                Err(verdict) => {
                    if self.provenance.is_enabled() {
                        self.provenance.record(
                            now,
                            self.cfg.asn,
                            ProvenanceEvent::Exported {
                                to_peer: peer.cfg.id,
                                to_asn: peer.cfg.asn,
                                prefix: route.prefix,
                                trace: route.trace,
                                as_path: route.attrs.as_path.asns().collect(),
                                verdict,
                            },
                        );
                    }
                }
            }
        }
        desired
    }

    /// Apply export semantics for one route toward one peer. `Err` carries
    /// the reason the route was filtered.
    fn export_route(&self, peer: &PeerState, route: &Route) -> Result<Route, ExportVerdict> {
        // Split horizon: never back to the peer it came from.
        if route.peer == peer.cfg.id {
            return Err(ExportVerdict::SplitHorizon);
        }
        let peer_is_ibgp = peer.cfg.asn == self.cfg.asn;
        // iBGP-learned routes are not re-advertised to iBGP peers unless
        // route reflection applies (RFC 4456): a route from a client is
        // reflected to every iBGP peer; a route from a non-client is
        // reflected to clients only.
        if route.source == RouteSource::Ibgp && peer_is_ibgp {
            let from_client = self
                .peers
                .get(&route.peer)
                .map(|p| p.cfg.rr_client)
                .unwrap_or(false);
            let reflect = from_client || peer.cfg.rr_client;
            if !reflect {
                return Err(ExportVerdict::IbgpNoReflect);
            }
        }
        // Well-known communities.
        if route.attrs.has_community(Community::NO_ADVERTISE) {
            return Err(ExportVerdict::NoAdvertise);
        }
        // NO_EXPORT binds the *receiving* AS: routes we learned must not
        // leave our AS, but a route we originate ourselves is still sent
        // to the neighbor (who then keeps it inside their AS).
        if !peer_is_ibgp
            && route.source != RouteSource::Local
            && route.attrs.has_community(Community::NO_EXPORT)
        {
            return Err(ExportVerdict::NoExport);
        }
        // Sender-side loop check.
        if route.attrs.as_path.contains(peer.cfg.asn) {
            return Err(ExportVerdict::AsPathLoop);
        }
        let mut attrs = (*route.attrs).clone();
        if !peer.cfg.export.apply(&route.prefix, &mut attrs) {
            return Err(ExportVerdict::PolicyRejected);
        }
        match self.cfg.mode {
            SpeakerMode::RouteServer => {
                // RFC 7947: transparent. Leave AS_PATH, NEXT_HOP, MED.
            }
            SpeakerMode::Normal => {
                if peer_is_ibgp {
                    // iBGP: keep next hop and path; ensure LOCAL_PREF set.
                    if attrs.local_pref.is_none() {
                        attrs.local_pref = Some(100);
                    }
                } else {
                    attrs.as_path.prepend(self.cfg.asn, 1);
                    attrs.next_hop = self.cfg.router_id;
                    attrs.local_pref = None;
                }
            }
        }
        let path_id = match peer.cfg.advertise {
            AdvertiseMode::BestOnly => 0,
            // Stable, collision-free id: the learning peer's id + 1
            // (0 is reserved for the local/best path).
            AdvertiseMode::AllPaths => {
                if route.peer == PeerId::LOCAL {
                    0
                } else {
                    route.peer.0.wrapping_add(1)
                }
            }
        };
        Ok(Route {
            prefix: route.prefix,
            attrs: Arc::new(attrs),
            peer: route.peer,
            path_id,
            source: route.source,
            igp_cost: route.igp_cost,
            learned_at: route.learned_at,
            trace: route.trace,
        })
    }

    /// Diff desired vs advertised state for one prefix, all peers.
    fn export_prefix(
        &mut self,
        prefix: Prefix,
        now: SimTime,
        cause: Option<TraceId>,
    ) -> Vec<Output> {
        let ids: Vec<PeerId> = self.peers.keys().copied().collect();
        let mut out = Vec::new();
        for id in ids {
            let state = self.peers.get(&id).expect("peer exists");
            if !state.session.is_established() {
                continue;
            }
            let add_path = state
                .session
                .negotiated()
                .map(|n| n.add_path_tx)
                .unwrap_or(false);
            let desired = self.desired_exports(state, &prefix, now);
            let desired = self.intern_exports(desired);
            let state = self.peers.get_mut(&id).expect("peer exists");

            let current_ids: Vec<u32> = state.adj_out.paths(&prefix).map(|r| r.path_id).collect();
            let desired_ids: BTreeSet<u32> = desired.iter().map(|r| r.path_id).collect();

            // Withdraw paths no longer desired.
            let mut withdrawals = Vec::new();
            for pid in current_ids {
                if !desired_ids.contains(&pid) {
                    state.adj_out.remove(&prefix, pid);
                    withdrawals.push(if add_path {
                        Nlri::with_path_id(prefix, pid)
                    } else {
                        Nlri::plain(prefix)
                    });
                }
            }
            // `WithdrawSent` means the withdrawal hit the wire. Unpacked,
            // that is right here; with MRAI packing the delta is only
            // *staged* (and may be superseded by a later announce or
            // dropped by a session reset before the flush), so the
            // record is made in `flush_mrai` at actual emission time.
            if !withdrawals.is_empty() && self.cfg.mrai.is_none() && self.provenance.is_enabled() {
                self.provenance.record(
                    now,
                    self.cfg.asn,
                    ProvenanceEvent::WithdrawSent {
                        to_peer: id,
                        to_asn: state.cfg.asn,
                        prefix,
                        trace: cause,
                    },
                );
            }
            // Announce new or changed paths.
            let mut announces = Vec::new();
            for route in desired {
                let unchanged = state
                    .adj_out
                    .get(&prefix, route.path_id)
                    .map(|r| *r.attrs == *route.attrs)
                    .unwrap_or(false);
                if unchanged {
                    continue;
                }
                let nlri = if add_path {
                    Nlri::with_path_id(prefix, route.path_id)
                } else {
                    Nlri::plain(prefix)
                };
                if self.provenance.is_enabled() {
                    self.provenance.record(
                        now,
                        self.cfg.asn,
                        ProvenanceEvent::Exported {
                            to_peer: id,
                            to_asn: state.cfg.asn,
                            prefix,
                            trace: route.trace,
                            as_path: route.attrs.as_path.asns().collect(),
                            verdict: ExportVerdict::Exported,
                        },
                    );
                }
                announces.push((nlri, Arc::clone(&route.attrs), route.trace));
                state.adj_out.insert(route);
            }
            out.extend(self.emit_or_stage(id, withdrawals, cause, announces, now));
        }
        out
    }

    /// Canonicalize exported attribute allocations through the interner:
    /// identical attribute sets across Adj-RIB-Out entries (and the
    /// receiving speakers' Adj-RIB-Ins, which hold the same `Arc`s) share
    /// one allocation. Values are untouched, so behaviour and digests are
    /// bit-identical with interning on or off.
    fn intern_exports(&mut self, mut desired: Vec<Route>) -> Vec<Route> {
        for route in &mut desired {
            route.attrs = self.interner.intern_arc(Arc::clone(&route.attrs));
        }
        desired
    }

    /// Emit export deltas toward `id` immediately, or stage them for the
    /// peer's MRAI flush when packing is configured. Counters track
    /// emitted UPDATE messages, so they move to the flush in packed mode.
    fn emit_or_stage(
        &mut self,
        id: PeerId,
        withdrawals: Vec<Nlri>,
        withdraw_trace: Option<TraceId>,
        announces: Vec<(Nlri, Arc<PathAttributes>, Option<TraceId>)>,
        now: SimTime,
    ) -> Vec<Output> {
        if withdrawals.is_empty() && announces.is_empty() {
            return Vec::new();
        }
        match self.cfg.mrai {
            None => {
                let state = self.peers.get_mut(&id).expect("peer exists");
                let mut out = Vec::new();
                if !withdrawals.is_empty() {
                    state.session.note_update_sent();
                    self.updates_sent += 1;
                    self.telemetry.counter_inc("bgp.speaker.updates_out");
                    out.push(Output::Send(
                        id,
                        BgpMessage::Update(
                            UpdateMessage::withdraw(withdrawals).with_trace(withdraw_trace),
                        ),
                    ));
                }
                for (nlri, attrs, trace) in announces {
                    state.session.note_update_sent();
                    self.updates_sent += 1;
                    self.telemetry.counter_inc("bgp.speaker.updates_out");
                    out.push(Output::Send(
                        id,
                        BgpMessage::Update(
                            UpdateMessage::announce(attrs, vec![nlri]).with_trace(trace),
                        ),
                    ));
                }
                out
            }
            Some(interval) => {
                let state = self.peers.get_mut(&id).expect("peer exists");
                for nlri in withdrawals {
                    state.pending.insert(
                        nlri,
                        PendingDelta::Withdraw {
                            trace: withdraw_trace,
                        },
                    );
                }
                for (nlri, attrs, trace) in announces {
                    state
                        .pending
                        .insert(nlri, PendingDelta::Announce { attrs, trace });
                }
                // First staged delta arms the timer; later ones ride the
                // existing deadline so a busy peer still flushes.
                if state.mrai_deadline.is_none() {
                    state.mrai_deadline = Some(now + interval);
                }
                Vec::new()
            }
        }
    }

    /// Flush `id`'s staged export deltas as packed UPDATEs: withdrawals
    /// grouped by provenance trace, announcements grouped by (attribute
    /// allocation, trace), each group one multi-NLRI message. Iteration
    /// is over a `BTreeMap` keyed by [`Nlri`] and group order is
    /// first-seen, so the packing is deterministic. Send-side provenance
    /// ([`ProvenanceEvent::WithdrawSent`]) is recorded here, at `now`,
    /// because this is when the packed UPDATEs actually hit the wire —
    /// a staged withdraw superseded before the flush is never recorded.
    fn flush_mrai(&mut self, id: PeerId, now: SimTime) -> Vec<Output> {
        let Some(state) = self.peers.get_mut(&id) else {
            return Vec::new();
        };
        state.mrai_deadline = None;
        if state.pending.is_empty() {
            return Vec::new();
        }
        let pending = std::mem::take(&mut state.pending);
        let mut withdraw_groups: Vec<(Option<TraceId>, Vec<Nlri>)> = Vec::new();
        let mut announce_groups: Vec<(Arc<PathAttributes>, Option<TraceId>, Vec<Nlri>)> =
            Vec::new();
        // Indexes are lookup-only (never iterated), so the HashMap does
        // not enter any ordered output; group order comes from the Vecs.
        let mut wd_index: std::collections::HashMap<Option<u64>, usize> =
            std::collections::HashMap::new();
        let mut ann_index: std::collections::HashMap<(usize, Option<u64>), usize> =
            std::collections::HashMap::new();
        for (nlri, delta) in pending {
            match delta {
                PendingDelta::Withdraw { trace } => {
                    let slot = *wd_index.entry(trace.map(|t| t.0)).or_insert_with(|| {
                        withdraw_groups.push((trace, Vec::new()));
                        withdraw_groups.len() - 1
                    });
                    withdraw_groups[slot].1.push(nlri);
                }
                PendingDelta::Announce { attrs, trace } => {
                    let key = (Arc::as_ptr(&attrs) as usize, trace.map(|t| t.0));
                    let slot = *ann_index.entry(key).or_insert_with(|| {
                        announce_groups.push((attrs, trace, Vec::new()));
                        announce_groups.len() - 1
                    });
                    announce_groups[slot].2.push(nlri);
                }
            }
        }
        let mut out = Vec::new();
        for (trace, nlris) in withdraw_groups {
            state.session.note_update_sent();
            self.updates_sent += 1;
            self.telemetry.counter_inc("bgp.speaker.updates_out");
            if self.provenance.is_enabled() {
                // One record per distinct prefix, mirroring the unpacked
                // path's per-prefix granularity (ADD-PATH can put several
                // NLRIs of one prefix in a group).
                let mut last: Option<Prefix> = None;
                for nlri in &nlris {
                    if last == Some(nlri.prefix) {
                        continue;
                    }
                    last = Some(nlri.prefix);
                    self.provenance.record(
                        now,
                        self.cfg.asn,
                        ProvenanceEvent::WithdrawSent {
                            to_peer: id,
                            to_asn: state.cfg.asn,
                            prefix: nlri.prefix,
                            trace,
                        },
                    );
                }
            }
            out.push(Output::Send(
                id,
                BgpMessage::Update(UpdateMessage::withdraw(nlris).with_trace(trace)),
            ));
        }
        for (attrs, trace, nlris) in announce_groups {
            state.session.note_update_sent();
            self.updates_sent += 1;
            self.telemetry.counter_inc("bgp.speaker.updates_out");
            out.push(Output::Send(
                id,
                BgpMessage::Update(UpdateMessage::announce(attrs, nlris).with_trace(trace)),
            ));
        }
        out
    }

    /// Send the full table to a peer (initial sync or route refresh).
    fn full_table_to(&mut self, peer: PeerId, now: SimTime) -> Vec<Output> {
        let mut prefixes: BTreeSet<Prefix> = self.local_routes.keys().copied().collect();
        for state in self.peers.values() {
            prefixes.extend(state.adj_in.prefixes().copied());
        }
        let mut out = Vec::new();
        for prefix in prefixes {
            out.extend(self.export_one_peer(prefix, peer, now));
        }
        // Initial sync is not rate-limited: flush anything the per-prefix
        // exports staged so the full table precedes the End-of-RIB marker.
        out.extend(self.flush_mrai(peer, now));
        // End-of-RIB marker.
        out.push(Output::Send(
            peer,
            BgpMessage::Update(UpdateMessage {
                withdrawn: vec![],
                attrs: None,
                announced: vec![],
                trace: None,
            }),
        ));
        out
    }

    /// Like `export_prefix` but restricted to a single peer.
    fn export_one_peer(&mut self, prefix: Prefix, id: PeerId, now: SimTime) -> Vec<Output> {
        let Some(state) = self.peers.get(&id) else {
            return Vec::new();
        };
        if !state.session.is_established() {
            return Vec::new();
        }
        let add_path = state
            .session
            .negotiated()
            .map(|n| n.add_path_tx)
            .unwrap_or(false);
        let desired = self.desired_exports(state, &prefix, now);
        let desired = self.intern_exports(desired);
        let state = self.peers.get_mut(&id).expect("peer exists");
        let mut announces = Vec::new();
        for route in desired {
            let unchanged = state
                .adj_out
                .get(&prefix, route.path_id)
                .map(|r| *r.attrs == *route.attrs)
                .unwrap_or(false);
            if unchanged {
                continue;
            }
            let nlri = if add_path {
                Nlri::with_path_id(prefix, route.path_id)
            } else {
                Nlri::plain(prefix)
            };
            if self.provenance.is_enabled() {
                self.provenance.record(
                    now,
                    self.cfg.asn,
                    ProvenanceEvent::Exported {
                        to_peer: id,
                        to_asn: state.cfg.asn,
                        prefix,
                        trace: route.trace,
                        as_path: route.attrs.as_path.asns().collect(),
                        verdict: ExportVerdict::Exported,
                    },
                );
            }
            announces.push((nlri, Arc::clone(&route.attrs), route.trace));
            state.adj_out.insert(route);
        }
        self.emit_or_stage(id, Vec::new(), None, announces, now)
    }

    /// Check cross-structure consistency: every per-peer session, RIB and
    /// damping table, plus the Loc-RIB, must agree with each other. Cheap
    /// enough for `debug_assert!` after every message and tick; returns a
    /// description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (id, state) in &self.peers {
            if state.cfg.id != *id {
                return Err(format!(
                    "peer {id:?} keyed under wrong id {:?}",
                    state.cfg.id
                ));
            }
            state
                .session
                .check_invariants()
                .map_err(|e| format!("peer {id:?} session: {e}"))?;
            state
                .adj_in
                .check_invariants()
                .map_err(|e| format!("peer {id:?} adj-rib-in: {e}"))?;
            state
                .adj_out
                .check_invariants()
                .map_err(|e| format!("peer {id:?} adj-rib-out: {e}"))?;
            if !state.session.is_established() && !state.adj_in.is_empty() && state.stale.is_none()
            {
                return Err(format!(
                    "peer {id:?} holds {} adj-rib-in routes while not established",
                    state.adj_in.len()
                ));
            }
            if state.stale.is_some() && state.cfg.graceful_restart.is_none() {
                return Err(format!(
                    "peer {id:?} is in a graceful-restart window but never negotiated one"
                ));
            }
            if self.cfg.damping.is_none() && !state.suppressed.is_empty() {
                return Err(format!(
                    "peer {id:?} has suppressed prefixes but damping is disabled"
                ));
            }
        }
        self.loc_rib.check_invariants()?;
        // Every Loc-RIB best must trace back to a live candidate: either a
        // locally originated route or a path still present in the learning
        // peer's Adj-RIB-In.
        for best in self.loc_rib.iter() {
            let prefix = best.prefix;
            if best.peer == PeerId::LOCAL {
                if !self.local_routes.contains_key(&prefix) {
                    return Err(format!(
                        "loc-rib best for {prefix} claims local origin but no local route exists"
                    ));
                }
            } else {
                let backing = self
                    .peers
                    .get(&best.peer)
                    .and_then(|p| p.adj_in.get(&prefix, best.path_id));
                if backing.is_none() {
                    return Err(format!(
                        "loc-rib best for {prefix} references missing adj-rib-in path \
                         (peer {:?}, path id {})",
                        best.peer, best.path_id
                    ));
                }
            }
        }
        Ok(())
    }

    /// Interner statistics `(distinct, hits, misses)`.
    pub fn interner_stats(&self) -> (usize, u64, u64) {
        (
            self.interner.len(),
            self.interner.hits,
            self.interner.misses,
        )
    }

    /// Drop interned attributes no longer referenced by any RIB.
    pub fn gc(&mut self) -> usize {
        self.interner.gc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;
    use crate::message::NotifCode;

    /// Deliver all queued outputs between two speakers until quiescent.
    fn settle(a: &mut Speaker, b: &mut Speaker, a_peer: PeerId, b_peer: PeerId, now: SimTime) {
        // a_peer: b's id in a; b_peer: a's id in b.
        let mut to_b: Vec<BgpMessage> = Vec::new();
        let mut to_a: Vec<BgpMessage> = Vec::new();
        let drain = |outs: Vec<Output>, target: PeerId, sink: &mut Vec<BgpMessage>| {
            for o in outs {
                if let Output::Send(p, m) = o {
                    assert_eq!(p, target, "single-peer harness");
                    sink.push(m);
                }
            }
        };
        drain(a.start_peer(a_peer, now), a_peer, &mut to_b);
        drain(b.start_peer(b_peer, now), b_peer, &mut to_a);
        // Fire any due ConnectRetry timers (reconnecting sessions sit in
        // Connect, where `start` is a no-op).
        drain(a.tick(now), a_peer, &mut to_b);
        drain(b.tick(now), b_peer, &mut to_a);
        for _ in 0..64 {
            if to_a.is_empty() && to_b.is_empty() {
                break;
            }
            let mut next_to_a = Vec::new();
            let mut next_to_b = Vec::new();
            for m in to_b.drain(..) {
                drain(b.on_message(b_peer, m, now), b_peer, &mut next_to_a);
            }
            for m in to_a.drain(..) {
                drain(a.on_message(a_peer, m, now), a_peer, &mut next_to_b);
            }
            to_a = next_to_a;
            to_b = next_to_b;
        }
        assert!(to_a.is_empty() && to_b.is_empty(), "did not converge");
    }

    fn speaker(asn: u32) -> Speaker {
        Speaker::new(SpeakerConfig::new(
            Asn(asn),
            Ipv4Addr::new(10, 0, 0, asn as u8),
        ))
    }

    #[test]
    fn originated_route_propagates() {
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        let best = b.loc_rib().get(&p).expect("b learned the route");
        assert_eq!(best.attrs.as_path.to_string(), "1");
        assert_eq!(best.source, RouteSource::Ebgp);
        assert_eq!(b.adj_rib_in(PeerId(0)).unwrap().len(), 1);
    }

    #[test]
    fn telemetry_tracks_session_and_updates() {
        use peering_telemetry::Telemetry;
        let telemetry = Telemetry::new();
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.set_telemetry(telemetry.clone());
        b.set_telemetry(telemetry.clone());
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        let snap = telemetry.snapshot();
        // Both sessions reached Established, and the UPDATE counters
        // mirror the speakers' own totals.
        assert_eq!(snap.counter("bgp.session.established"), 2);
        assert_eq!(snap.counter("bgp.fsm.to_established"), 2);
        assert_eq!(
            snap.counter("bgp.speaker.updates_out"),
            a.updates_sent + b.updates_sent
        );
        assert_eq!(
            snap.counter("bgp.speaker.updates_in"),
            a.updates_received + b.updates_received
        );
        assert!(snap.counter("bgp.decision.runs") > 0);
        assert_eq!(snap.gauge("bgp.rib.loc_rib_routes"), Some(1));
        let conv = snap
            .histogram("bgp.session.convergence_us")
            .expect("convergence histogram");
        assert_eq!(conv.count, 2);
    }

    #[test]
    fn announce_after_established_also_propagates() {
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        let p = Prefix::v4(10, 20, 0, 0, 16);
        let outs = a.originate(p, SimTime::from_secs(1));
        let mut delivered = false;
        for o in outs {
            if let Output::Send(_, m) = o {
                b.on_message(PeerId(0), m, SimTime::from_secs(1));
                delivered = true;
            }
        }
        assert!(delivered);
        assert!(b.loc_rib().get(&p).is_some());
    }

    #[test]
    fn withdraw_removes_route_downstream() {
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert!(b.loc_rib().get(&p).is_some());
        for o in a.withdraw_origin(p, SimTime::from_secs(2)) {
            if let Output::Send(_, m) = o {
                b.on_message(PeerId(0), m, SimTime::from_secs(2));
            }
        }
        assert!(b.loc_rib().get(&p).is_none());
        assert!(b.adj_rib_in(PeerId(0)).unwrap().is_empty());
    }

    #[test]
    fn ebgp_export_prepends_and_sets_next_hop() {
        let mut a = speaker(1);
        let mut b = speaker(2);
        let mut c = speaker(3);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        b.add_peer(PeerConfig::new(PeerId(1), Asn(3)));
        c.add_peer(PeerConfig::new(PeerId(0), Asn(2)).passive());
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        // Now connect b<->c; b should pass the route along with its ASN.
        let mut to_c: Vec<BgpMessage> = Vec::new();
        let mut to_b: Vec<BgpMessage> = Vec::new();
        for o in b.start_peer(PeerId(1), SimTime::ZERO) {
            if let Output::Send(_, m) = o {
                to_c.push(m);
            }
        }
        for o in c.start_peer(PeerId(0), SimTime::ZERO) {
            if let Output::Send(_, m) = o {
                to_b.push(m);
            }
        }
        for _ in 0..64 {
            if to_b.is_empty() && to_c.is_empty() {
                break;
            }
            let mut nb = Vec::new();
            let mut nc = Vec::new();
            for m in to_c.drain(..) {
                for o in c.on_message(PeerId(0), m, SimTime::ZERO) {
                    if let Output::Send(_, m) = o {
                        nb.push(m);
                    }
                }
            }
            for m in to_b.drain(..) {
                for o in b.on_message(PeerId(1), m, SimTime::ZERO) {
                    if let Output::Send(p, m) = o {
                        assert_eq!(p, PeerId(1));
                        nc.push(m);
                    }
                }
            }
            to_b = nb;
            to_c = nc;
        }
        let best = c.loc_rib().get(&p).expect("c learned the route");
        assert_eq!(best.attrs.as_path.to_string(), "2 1");
        assert_eq!(best.attrs.next_hop, Ipv4Addr::new(10, 0, 0, 2));
    }

    #[test]
    fn loop_detection_rejects_own_asn() {
        let mut b = speaker(2);
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        // Fake an established session then inject a poisoned update.
        let mut a = speaker(1);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        let poisoned = Arc::new(PathAttributes {
            as_path: crate::attrs::AsPath::from_asns(&[Asn(1), Asn(2), Asn(7)]),
            next_hop: Ipv4Addr::new(10, 0, 0, 1),
            ..Default::default()
        });
        let p = Prefix::v4(10, 66, 0, 0, 16);
        let outs = b.on_message(
            PeerId(0),
            BgpMessage::Update(UpdateMessage::announce(poisoned, vec![Nlri::plain(p)])),
            SimTime::from_secs(1),
        );
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Event(SpeakerEvent::ImportRejected(_, _)))));
        assert!(b.loc_rib().get(&p).is_none());
    }

    #[test]
    fn import_policy_rejection_is_implicit_withdraw() {
        use crate::policy::{Action, Match};
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        // b rejects announcements carrying community 1:666 on import.
        b.add_peer(
            PeerConfig::new(PeerId(0), Asn(1))
                .passive()
                .import(Policy::accept_all().rule(
                    Match::HasCommunity(Community::new(1, 666)),
                    vec![Action::Reject],
                )),
        );
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert!(b.loc_rib().get(&p).is_some());
        // Re-announce with the bad community: b must drop the route.
        for o in a.withdraw_origin(p, SimTime::from_secs(1)) {
            if let Output::Send(_, m) = o {
                b.on_message(PeerId(0), m, SimTime::from_secs(1));
            }
        }
        for o in a.originate_with(p, vec![Community::new(1, 666)], SimTime::from_secs(2)) {
            if let Output::Send(_, m) = o {
                b.on_message(PeerId(0), m, SimTime::from_secs(2));
            }
        }
        assert!(b.loc_rib().get(&p).is_none());
    }

    #[test]
    fn no_export_community_stops_at_ebgp() {
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        b.add_peer(PeerConfig::new(PeerId(1), Asn(3)));
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate_with(p, vec![Community::NO_EXPORT], SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert!(b.loc_rib().get(&p).is_some(), "b itself uses the route");
        // b must not have queued it for AS3 even once the session is up.
        assert!(b.adj_rib_out(PeerId(1)).unwrap().is_empty());
    }

    #[test]
    fn best_path_switches_on_shorter_path() {
        let mut c = speaker(3);
        c.add_peer(PeerConfig::new(PeerId(10), Asn(1)).passive());
        c.add_peer(PeerConfig::new(PeerId(20), Asn(2)).passive());
        let mut a = speaker(1);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(3)));
        let mut b = speaker(2);
        b.add_peer(PeerConfig::new(PeerId(0), Asn(3)));
        settle(&mut a, &mut c, PeerId(0), PeerId(10), SimTime::ZERO);
        settle(&mut b, &mut c, PeerId(0), PeerId(20), SimTime::ZERO);
        let p = Prefix::v4(10, 10, 0, 0, 16);
        // AS1 announces with a long path; AS2 with a short one.
        let long = Arc::new(PathAttributes {
            as_path: crate::attrs::AsPath::from_asns(&[Asn(1), Asn(9), Asn(8), Asn(7)]),
            next_hop: Ipv4Addr::new(10, 0, 0, 1),
            ..Default::default()
        });
        c.on_message(
            PeerId(10),
            BgpMessage::Update(UpdateMessage::announce(long, vec![Nlri::plain(p)])),
            SimTime::from_secs(1),
        );
        assert_eq!(c.loc_rib().get(&p).unwrap().attrs.as_path.hop_count(), 4);
        let short = Arc::new(PathAttributes {
            as_path: crate::attrs::AsPath::from_asns(&[Asn(2), Asn(7)]),
            next_hop: Ipv4Addr::new(10, 0, 0, 2),
            ..Default::default()
        });
        let outs = c.on_message(
            PeerId(20),
            BgpMessage::Update(UpdateMessage::announce(short, vec![Nlri::plain(p)])),
            SimTime::from_secs(2),
        );
        assert_eq!(c.loc_rib().get(&p).unwrap().peer, PeerId(20));
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Event(SpeakerEvent::BestChanged { .. }))));
    }

    #[test]
    fn peer_down_clears_routes() {
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert!(b.loc_rib().get(&p).is_some());
        let outs = b.stop_peer(PeerId(0), SimTime::from_secs(5));
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Event(SpeakerEvent::PeerDown(_, _)))));
        assert!(b.loc_rib().get(&p).is_none());
        assert!(!b.peer_established(PeerId(0)));
    }

    #[test]
    fn route_server_mode_is_transparent() {
        let mut rs = Speaker::new(
            SpeakerConfig::new(Asn(100), Ipv4Addr::new(80, 249, 208, 255)).route_server(),
        );
        rs.add_peer(PeerConfig::new(PeerId(1), Asn(1)).passive());
        rs.add_peer(PeerConfig::new(PeerId(2), Asn(2)).passive());
        let mut m1 = speaker(1);
        m1.add_peer(PeerConfig::new(PeerId(0), Asn(100)));
        let mut m2 = speaker(2);
        m2.add_peer(PeerConfig::new(PeerId(0), Asn(100)));
        settle(&mut m1, &mut rs, PeerId(0), PeerId(1), SimTime::ZERO);
        settle(&mut m2, &mut rs, PeerId(0), PeerId(2), SimTime::ZERO);
        let p = Prefix::v4(10, 10, 0, 0, 16);
        for o in m1.originate(p, SimTime::from_secs(1)) {
            if let Output::Send(_, m) = o {
                for o2 in rs.on_message(PeerId(1), m, SimTime::from_secs(1)) {
                    if let Output::Send(to, msg) = o2 {
                        assert_eq!(to, PeerId(2), "split horizon: only the other member");
                        m2.on_message(PeerId(0), msg, SimTime::from_secs(1));
                    }
                }
            }
        }
        let best = m2.loc_rib().get(&p).expect("member 2 learned via RS");
        // The RS did NOT prepend AS100 and did NOT rewrite the next hop.
        assert_eq!(best.attrs.as_path.to_string(), "1");
        assert!(!best.attrs.as_path.contains(Asn(100)));
        assert_eq!(best.attrs.next_hop, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn all_paths_peer_receives_every_route_with_path_ids() {
        // Server hears the same prefix from two upstreams, exports ALL
        // paths to an AllPaths (mux) client.
        let mut server = Speaker::new(
            SpeakerConfig::new(Asn(47065), Ipv4Addr::new(100, 64, 0, 1)).route_server(),
        );
        server.add_peer(PeerConfig::new(PeerId(1), Asn(1)).passive());
        server.add_peer(PeerConfig::new(PeerId(2), Asn(2)).passive());
        server.add_peer(PeerConfig::new(PeerId(9), Asn(65001)).all_paths().passive());
        let mut u1 = speaker(1);
        u1.add_peer(PeerConfig::new(PeerId(0), Asn(47065)));
        let mut u2 = speaker(2);
        u2.add_peer(PeerConfig::new(PeerId(0), Asn(47065)));
        let mut client = Speaker::new(SpeakerConfig::new(Asn(65001), Ipv4Addr::new(100, 64, 0, 9)));
        client.add_peer(PeerConfig::new(PeerId(0), Asn(47065)));
        settle(&mut u1, &mut server, PeerId(0), PeerId(1), SimTime::ZERO);
        settle(&mut u2, &mut server, PeerId(0), PeerId(2), SimTime::ZERO);
        settle(
            &mut client,
            &mut server,
            PeerId(0),
            PeerId(9),
            SimTime::ZERO,
        );
        let p = Prefix::v4(10, 10, 0, 0, 16);
        let mut to_server: Vec<BgpMessage> = Vec::new();
        for o in u1.originate(p, SimTime::from_secs(1)) {
            if let Output::Send(_, m) = o {
                to_server.push(m);
            }
        }
        for m in to_server.drain(..) {
            for o in server.on_message(PeerId(1), m, SimTime::from_secs(1)) {
                if let Output::Send(PeerId(9), msg) = o {
                    client.on_message(PeerId(0), msg, SimTime::from_secs(1));
                }
            }
        }
        for o in u2.originate(p, SimTime::from_secs(2)) {
            if let Output::Send(_, m) = o {
                for o2 in server.on_message(PeerId(2), m, SimTime::from_secs(2)) {
                    if let Output::Send(PeerId(9), msg) = o2 {
                        client.on_message(PeerId(0), msg, SimTime::from_secs(2));
                    }
                }
            }
        }
        // The client holds BOTH paths, distinguished by path id.
        let rib = client.adj_rib_in(PeerId(0)).unwrap();
        assert_eq!(rib.paths(&p).count(), 2);
        let ids: Vec<u32> = rib.paths(&p).map(|r| r.path_id).collect();
        assert_eq!(ids, vec![2, 3]); // learning-peer ids 1 and 2, plus 1
        let firsts: BTreeSet<String> = rib.paths(&p).map(|r| r.attrs.as_path.to_string()).collect();
        assert!(firsts.contains("1") && firsts.contains("2"));
    }

    #[test]
    fn damping_suppresses_flapping_route() {
        // Hold times long enough that the session outlives the damping
        // decay window without keepalive exchanges in this harness.
        let week = SimDuration::from_secs(7 * 24 * 3600);
        let mut acfg = SpeakerConfig::new(Asn(1), Ipv4Addr::new(10, 0, 0, 1));
        acfg.hold_time = week;
        let mut a = Speaker::new(acfg);
        let mut bcfg = SpeakerConfig::new(Asn(2), Ipv4Addr::new(10, 0, 0, 2))
            .with_damping(DampingConfig::default());
        bcfg.hold_time = week;
        let mut b = Speaker::new(bcfg);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        let p = Prefix::v4(10, 10, 0, 0, 16);
        let mut now = SimTime::ZERO;
        let mut suppressed_seen = false;
        for _ in 0..4 {
            now += SimDuration::from_secs(10);
            for o in a.originate(p, now) {
                if let Output::Send(_, m) = o {
                    for o2 in b.on_message(PeerId(0), m, now) {
                        if matches!(o2, Output::Event(SpeakerEvent::Suppressed(_, _))) {
                            suppressed_seen = true;
                        }
                    }
                }
            }
            now += SimDuration::from_secs(10);
            for o in a.withdraw_origin(p, now) {
                if let Output::Send(_, m) = o {
                    for o2 in b.on_message(PeerId(0), m, now) {
                        if matches!(o2, Output::Event(SpeakerEvent::Suppressed(_, _))) {
                            suppressed_seen = true;
                        }
                    }
                }
            }
        }
        assert!(suppressed_seen, "flapping must trigger suppression");
        // Announce once more: route installs to adj-in but is suppressed
        // from the decision process.
        now += SimDuration::from_secs(10);
        for o in a.originate(p, now) {
            if let Output::Send(_, m) = o {
                b.on_message(PeerId(0), m, now);
            }
        }
        assert!(b.loc_rib().get(&p).is_none(), "suppressed from Loc-RIB");
        // After the penalty decays, a tick releases the route.
        let much_later = now + SimDuration::from_secs(3 * 3600);
        b.tick(much_later);
        assert!(
            b.loc_rib().get(&p).is_some(),
            "released after damping decay"
        );
    }

    #[test]
    fn table_memory_grows_with_routes_and_shares_attrs() {
        let mut b = speaker(2);
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        let mut a = speaker(1);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        let empty = b.table_memory();
        for i in 0..100u32 {
            let p = Prefix::v4(10, (i >> 8) as u8, (i & 0xff) as u8, 0, 24);
            for o in a.originate(p, SimTime::from_secs(1)) {
                if let Output::Send(_, m) = o {
                    b.on_message(PeerId(0), m, SimTime::from_secs(1));
                }
            }
        }
        let full = b.table_memory();
        assert!(full > empty, "memory must grow: {empty} -> {full}");
        // All 100 routes share one attribute set via the interner.
        let (distinct, hits, _misses) = b.interner_stats();
        assert!(hits >= 99, "hits={hits}");
        assert!(distinct <= 4, "distinct={distinct}");
    }

    #[test]
    fn route_refresh_resends_table() {
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        let outs = a.on_message(PeerId(0), BgpMessage::RouteRefresh, SimTime::from_secs(1));
        // Adj-RIB-Out is unchanged so the diff suppresses re-sending; the
        // refresh still produces the End-of-RIB marker.
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Send(_, BgpMessage::Update(u)) if u.is_end_of_rib())));
    }

    #[test]
    fn remove_peer_withdraws_its_routes() {
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert!(b.loc_rib().get(&p).is_some());
        b.remove_peer(PeerId(0), SimTime::from_secs(1));
        assert!(b.loc_rib().get(&p).is_none());
        assert_eq!(b.peer_count(), 0);
    }

    /// Establish a session between two multi-peer speakers by shuttling
    /// messages directly (no single-peer assertion like `settle`).
    fn establish_pair(
        a: &mut Speaker,
        a_peer: PeerId,
        b: &mut Speaker,
        b_peer: PeerId,
        now: SimTime,
    ) {
        let filter = |outs: Vec<Output>, want: PeerId| -> Vec<BgpMessage> {
            outs.into_iter()
                .filter_map(|o| match o {
                    Output::Send(p, m) if p == want => Some(m),
                    _ => None,
                })
                .collect()
        };
        let mut to_b = filter(a.start_peer(a_peer, now), a_peer);
        let mut to_a = filter(b.start_peer(b_peer, now), b_peer);
        for _ in 0..32 {
            if to_a.is_empty() && to_b.is_empty() {
                break;
            }
            let mut na = Vec::new();
            let mut nb = Vec::new();
            for m in to_b.drain(..) {
                na.extend(filter(b.on_message(b_peer, m, now), b_peer));
            }
            for m in to_a.drain(..) {
                nb.extend(filter(a.on_message(a_peer, m, now), a_peer));
            }
            to_a = na;
            to_b = nb;
        }
        assert!(a.peer_established(a_peer) && b.peer_established(b_peer));
    }

    /// Hub-and-spoke iBGP: two spokes connected only to a hub router in
    /// the same AS.
    fn ibgp_hub_and_spokes(reflect: bool) -> (Speaker, Speaker, Speaker) {
        let asn = Asn(64620);
        let mut hub = Speaker::new(SpeakerConfig::new(asn, Ipv4Addr::new(10, 9, 0, 1)));
        let mk_client_cfg = |id: u32, reflect: bool| {
            let cfg = PeerConfig::new(PeerId(id), asn).passive();
            if reflect {
                cfg.rr_client()
            } else {
                cfg
            }
        };
        hub.add_peer(mk_client_cfg(1, reflect));
        hub.add_peer(mk_client_cfg(2, reflect));
        let mut s1 = Speaker::new(SpeakerConfig::new(asn, Ipv4Addr::new(10, 9, 0, 2)));
        s1.add_peer(PeerConfig::new(PeerId(0), asn));
        let mut s2 = Speaker::new(SpeakerConfig::new(asn, Ipv4Addr::new(10, 9, 0, 3)));
        s2.add_peer(PeerConfig::new(PeerId(0), asn));
        establish_pair(&mut s1, PeerId(0), &mut hub, PeerId(1), SimTime::ZERO);
        establish_pair(&mut s2, PeerId(0), &mut hub, PeerId(2), SimTime::ZERO);
        (hub, s1, s2)
    }

    #[test]
    fn without_route_reflection_ibgp_does_not_transit_the_hub() {
        let (mut hub, mut s1, mut s2) = ibgp_hub_and_spokes(false);
        let p = Prefix::v4(10, 80, 0, 0, 16);
        for o in s1.originate(p, SimTime::from_secs(1)) {
            if let Output::Send(_, m) = o {
                for o2 in hub.on_message(PeerId(1), m, SimTime::from_secs(1)) {
                    if let Output::Send(PeerId(2), msg) = o2 {
                        s2.on_message(PeerId(0), msg, SimTime::from_secs(1));
                    }
                }
            }
        }
        assert!(hub.loc_rib().get(&p).is_some(), "hub itself learns it");
        assert!(
            s2.loc_rib().get(&p).is_none(),
            "classic iBGP split horizon: s2 must NOT learn it via the hub"
        );
    }

    #[test]
    fn route_reflection_lets_spokes_see_each_other() {
        let (mut hub, mut s1, mut s2) = ibgp_hub_and_spokes(true);
        let p = Prefix::v4(10, 81, 0, 0, 16);
        for o in s1.originate(p, SimTime::from_secs(1)) {
            if let Output::Send(_, m) = o {
                for o2 in hub.on_message(PeerId(1), m, SimTime::from_secs(1)) {
                    if let Output::Send(PeerId(2), msg) = o2 {
                        s2.on_message(PeerId(0), msg, SimTime::from_secs(1));
                    }
                }
            }
        }
        let r = s2.loc_rib().get(&p).expect("reflected to the other client");
        // iBGP preserves the path: no ASN was prepended inside the AS.
        assert_eq!(r.attrs.as_path.hop_count(), 0);
        assert_eq!(r.source, RouteSource::Ibgp);
        // The spokes hold ONE copy each — the Figure 2 discussion's
        // point about route reflectors and table copies.
        assert_eq!(s2.loc_rib().len(), 1);
    }

    #[test]
    fn invariants_hold_through_session_lifecycle() {
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        assert_eq!(a.check_invariants(), Ok(()));
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert_eq!(a.check_invariants(), Ok(()));
        assert_eq!(b.check_invariants(), Ok(()));
        for o in a.withdraw_origin(p, SimTime::from_secs(1)) {
            if let Output::Send(_, m) = o {
                b.on_message(PeerId(0), m, SimTime::from_secs(1));
            }
        }
        b.stop_peer(PeerId(0), SimTime::from_secs(2));
        assert_eq!(b.check_invariants(), Ok(()));
        // Corrupt the Loc-RIB directly: a best route pointing at a peer
        // path that does not exist must be reported.
        let phantom = Route {
            prefix: p,
            attrs: Arc::new(PathAttributes::originate(Ipv4Addr::new(9, 9, 9, 9))),
            peer: PeerId(77),
            path_id: 3,
            source: RouteSource::Ebgp,
            igp_cost: 0,
            learned_at: SimTime::ZERO,
            trace: None,
        };
        b.loc_rib.set_best(phantom);
        let err = b.check_invariants().unwrap_err();
        assert!(err.contains("missing adj-rib-in path"), "{err}");
    }

    /// A pair where `b` retains `a`'s routes across restarts and both
    /// ends reconnect automatically.
    fn resilient_pair() -> (Speaker, Speaker) {
        let mut a = Speaker::new(
            SpeakerConfig::new(Asn(1), Ipv4Addr::new(10, 0, 0, 1))
                .with_connect_retry(crate::fsm::ConnectRetryConfig::new(11)),
        );
        let mut b = Speaker::new(
            SpeakerConfig::new(Asn(2), Ipv4Addr::new(10, 0, 0, 2))
                .with_connect_retry(crate::fsm::ConnectRetryConfig::new(22)),
        );
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(
            PeerConfig::new(PeerId(0), Asn(1))
                .passive()
                .graceful_restart(SimDuration::from_secs(120)),
        );
        (a, b)
    }

    #[test]
    fn graceful_restart_retains_stale_paths_until_end_of_rib() {
        let (mut a, mut b) = resilient_pair();
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert!(b.loc_rib().get(&p).is_some());

        // Transport loss at t=5s: no forwarding gap — the route stays in
        // b's Loc-RIB even though the session is down.
        let t1 = SimTime::from_secs(5);
        let outs = b.reset_peer(PeerId(0), t1);
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Event(SpeakerEvent::PeerDown(_, _)))));
        assert!(!b.peer_established(PeerId(0)));
        assert!(
            b.loc_rib().get(&p).is_some(),
            "stale path keeps forwarding through the restart window"
        );

        // The far end also saw the loss and retries; re-establish and
        // resync at t=20s.
        a.reset_peer(PeerId(0), t1);
        let t2 = SimTime::from_secs(20);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), t2);
        assert!(b.peer_established(PeerId(0)));
        // The route was re-announced and the End-of-RIB swept nothing.
        assert!(b.loc_rib().get(&p).is_some());
        assert_eq!(b.adj_rib_in(PeerId(0)).unwrap().len(), 1);
        assert_eq!(b.check_invariants(), Ok(()));
    }

    #[test]
    fn end_of_rib_sweeps_paths_not_reannounced() {
        let (mut a, mut b) = resilient_pair();
        let p1 = Prefix::v4(10, 10, 0, 0, 16);
        let p2 = Prefix::v4(10, 20, 0, 0, 16);
        a.originate(p1, SimTime::ZERO);
        a.originate(p2, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert_eq!(b.loc_rib().len(), 2);

        let t1 = SimTime::from_secs(5);
        b.reset_peer(PeerId(0), t1);
        a.reset_peer(PeerId(0), t1);
        // While down, the far end loses one origination: after resync the
        // stale copy of p2 must be swept by the End-of-RIB.
        a.withdraw_origin(p2, SimTime::from_secs(6));
        assert!(b.loc_rib().get(&p2).is_some(), "still stale before resync");
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::from_secs(20));
        assert!(b.loc_rib().get(&p1).is_some());
        assert!(
            b.loc_rib().get(&p2).is_none(),
            "End-of-RIB sweeps what was not re-announced"
        );
        assert_eq!(b.check_invariants(), Ok(()));
    }

    #[test]
    fn restart_timer_expiry_flushes_stale_paths() {
        let (mut a, mut b) = resilient_pair();
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        let t1 = SimTime::from_secs(5);
        b.reset_peer(PeerId(0), t1);
        assert!(b.loc_rib().get(&p).is_some());
        // The peer never comes back: at the 120 s restart deadline the
        // stale paths are flushed.
        let outs = b.tick(SimTime::from_secs(126));
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Event(SpeakerEvent::BestChanged { new: None, .. })
        )));
        assert!(b.loc_rib().get(&p).is_none());
        assert!(b.adj_rib_in(PeerId(0)).unwrap().is_empty());
        assert_eq!(b.check_invariants(), Ok(()));
    }

    #[test]
    fn speaker_restart_loses_learned_state_but_keeps_originations() {
        let (mut a, mut b) = resilient_pair();
        let pa = Prefix::v4(10, 10, 0, 0, 16);
        let pb = Prefix::v4(10, 30, 0, 0, 16);
        a.originate(pa, SimTime::ZERO);
        b.originate(pb, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert_eq!(b.loc_rib().len(), 2);

        let t1 = SimTime::from_secs(5);
        let outs = b.restart(t1);
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Event(SpeakerEvent::PeerDown(_, _)))));
        assert!(!b.peer_established(PeerId(0)));
        assert!(b.loc_rib().get(&pa).is_none(), "learned state is gone");
        assert!(b.loc_rib().get(&pb).is_some(), "origination survives");
        assert_eq!(b.check_invariants(), Ok(()));

        // The far end noticed (transport died with the process), both
        // sides reconverge.
        a.reset_peer(PeerId(0), t1);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::from_secs(30));
        assert!(b.loc_rib().get(&pa).is_some());
        assert!(a.loc_rib().get(&pb).is_some());
    }

    #[test]
    fn recoverable_corruption_is_treated_as_withdraw_not_reset() {
        // RFC 7606: a malformed attribute on an otherwise-parsable UPDATE
        // must NOT be answered with a NOTIFICATION — the session stays
        // Established and the affected routes are withdrawn.
        let (mut a, mut b) = resilient_pair();
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert!(b.loc_rib().get(&p).is_some());
        let t1 = SimTime::from_secs(5);
        // The re-announcement arrives with attributes mangled in a
        // treat-as-withdraw-recoverable way.
        let attrs = Arc::new(PathAttributes {
            as_path: AsPath::from_asns(&[Asn(1)]),
            ..Default::default()
        });
        let mangled = UpdateMessage::announce(attrs, vec![Nlri::plain(p)]);
        let outs = b.on_malformed_update(PeerId(0), mangled, t1);
        assert!(
            !outs
                .iter()
                .any(|o| matches!(o, Output::Send(_, BgpMessage::Notification(_)))),
            "recoverable corruption must not trigger a NOTIFICATION"
        );
        assert!(
            b.peer_established(PeerId(0)),
            "treat-as-withdraw keeps the session up"
        );
        // The announced route was handled as withdrawn.
        assert!(b.loc_rib().get(&p).is_none());
        assert!(b.adj_rib_in(PeerId(0)).unwrap().is_empty());
        assert_eq!(b.check_invariants(), Ok(()));
        // The peer can simply re-announce — no session recycling needed.
        let t2 = SimTime::from_secs(6);
        let mut msgs: Vec<BgpMessage> = Vec::new();
        msgs.extend(
            a.withdraw_origin(p, t1)
                .into_iter()
                .filter_map(|o| match o {
                    Output::Send(_, m) => Some(m),
                    _ => None,
                }),
        );
        msgs.extend(a.originate(p, t2).into_iter().filter_map(|o| match o {
            Output::Send(_, m) => Some(m),
            _ => None,
        }));
        for m in msgs {
            b.on_message(PeerId(0), m, t2);
        }
        assert!(b.loc_rib().get(&p).is_some());
    }

    #[test]
    fn unrecoverable_corruption_still_notifies_and_drops() {
        // Framing-level corruption has no recoverable interpretation:
        // the blanket NOTIFICATION-and-drop path remains.
        let (mut a, mut b) = resilient_pair();
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        let t1 = SimTime::from_secs(5);
        let outs = b.on_corrupt_message(PeerId(0), t1);
        assert!(
            outs.iter()
                .any(|o| matches!(o, Output::Send(_, BgpMessage::Notification(_)))),
            "unrecoverable corruption must be answered with a NOTIFICATION"
        );
        assert!(!b.peer_established(PeerId(0)));
        // GR keeps the path while the session recycles.
        assert!(b.loc_rib().get(&p).is_some());
        a.reset_peer(PeerId(0), t1);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::from_secs(20));
        assert!(b.peer_established(PeerId(0)));
        assert!(b.loc_rib().get(&p).is_some());
    }

    #[test]
    fn max_prefix_limit_ceases_session_and_flushes_routes() {
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(
            PeerConfig::new(PeerId(0), Asn(1))
                .passive()
                .with_max_prefix(MaxPrefixConfig::new(4).warn_at(3)),
        );
        for i in 0..3u8 {
            a.originate(Prefix::v4(10, i, 0, 0, 16), SimTime::ZERO);
        }
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert!(b.peer_established(PeerId(0)), "at the warn threshold");
        assert_eq!(b.loc_rib().len(), 3);
        // Two more prefixes push the count past the hard limit.
        let t1 = SimTime::from_secs(5);
        let mut pending: Vec<BgpMessage> = Vec::new();
        for pfx in [Prefix::v4(10, 10, 0, 0, 16), Prefix::v4(10, 11, 0, 0, 16)] {
            pending.extend(a.originate(pfx, t1).into_iter().filter_map(|o| match o {
                Output::Send(_, m) => Some(m),
                _ => None,
            }));
        }
        let mut ceased = Vec::new();
        for m in pending {
            ceased.extend(b.on_message(PeerId(0), m, t1));
        }
        assert!(
            ceased.iter().any(|o| matches!(
                o,
                Output::Send(_, BgpMessage::Notification(n)) if n.code == NotifCode::Cease && n.subcode == 1
            )),
            "hard limit must be answered with Cease subcode 1"
        );
        assert!(!b.peer_established(PeerId(0)));
        assert!(b.loc_rib().is_empty(), "the flooder's routes are flushed");
        assert!(b.adj_rib_in(PeerId(0)).unwrap().is_empty());
        assert_eq!(b.check_invariants(), Ok(()));
    }

    #[test]
    fn set_peer_import_refilters_adj_rib_in() {
        let (mut a, mut b) = resilient_pair();
        let p1 = Prefix::v4(10, 10, 0, 0, 16);
        let p2 = Prefix::v4(10, 20, 0, 0, 16);
        a.originate(p1, SimTime::ZERO);
        a.originate(p2, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        assert_eq!(b.loc_rib().len(), 2);
        // Quarantine: reject everything the peer offers.
        let t1 = SimTime::from_secs(5);
        let outs = b.set_peer_import(PeerId(0), Policy::reject_all(), t1);
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Event(SpeakerEvent::BestChanged { new: None, .. })
        )));
        assert!(b.loc_rib().is_empty());
        assert!(
            b.peer_established(PeerId(0)),
            "quarantine keeps the session"
        );
        // Lift the quarantine: restore the policy and ask for a refresh.
        let t2 = SimTime::from_secs(10);
        b.set_peer_import(PeerId(0), Policy::accept_all(), t2);
        let refresh = b.request_refresh(PeerId(0));
        assert_eq!(
            refresh,
            vec![Output::Send(PeerId(0), BgpMessage::RouteRefresh)]
        );
        let mut pending: Vec<BgpMessage> = vec![BgpMessage::RouteRefresh];
        for _ in 0..8 {
            if pending.is_empty() {
                break;
            }
            let mut back: Vec<BgpMessage> = Vec::new();
            for m in pending.drain(..) {
                back.extend(
                    a.on_message(PeerId(0), m, t2)
                        .into_iter()
                        .filter_map(|o| match o {
                            Output::Send(_, m) => Some(m),
                            _ => None,
                        }),
                );
            }
            for m in back {
                b.on_message(PeerId(0), m, t2);
            }
        }
        assert_eq!(b.loc_rib().len(), 2, "refresh restores the routes");
        assert_eq!(b.check_invariants(), Ok(()));
    }

    #[test]
    fn hold_timer_expiry_clears_peer_routes() {
        let mut a = speaker(1);
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);
        // No keepalives flow; push time past the hold deadline.
        let outs = b.tick(SimTime::from_secs(300));
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Event(SpeakerEvent::PeerDown(_, _)))));
        assert!(b.loc_rib().get(&p).is_none());
    }

    /// Under MRAI packing, `WithdrawSent` must be recorded when the
    /// packed UPDATE actually hits the wire (at the flush), not when the
    /// delta is staged — and never for a staged withdraw that a later
    /// announce supersedes before the flush.
    #[test]
    fn mrai_records_withdraw_sent_at_flush_only() {
        let mrai = SimDuration::from_secs(10);
        let mut a =
            Speaker::new(SpeakerConfig::new(Asn(1), Ipv4Addr::new(10, 0, 0, 1)).with_mrai(mrai));
        let mut b = speaker(2);
        a.add_peer(PeerConfig::new(PeerId(0), Asn(2)));
        b.add_peer(PeerConfig::new(PeerId(0), Asn(1)).passive());
        let p = Prefix::v4(10, 10, 0, 0, 16);
        a.originate(p, SimTime::ZERO);
        settle(&mut a, &mut b, PeerId(0), PeerId(0), SimTime::ZERO);

        let log = ProvenanceLog::new();
        a.set_provenance(log.clone());
        let withdraw_sent = |log: &ProvenanceLog| {
            log.records()
                .into_iter()
                .filter(|r| matches!(r.event, ProvenanceEvent::WithdrawSent { .. }))
                .collect::<Vec<_>>()
        };

        // Staging records nothing: the withdrawal has not been sent.
        // (All times stay well inside the 90 s hold timer.)
        let t1 = SimTime::from_secs(1);
        let outs = a.withdraw_origin(p, t1);
        assert!(
            !outs.iter().any(|o| matches!(o, Output::Send(_, _))),
            "packed withdraw must stage, not send"
        );
        assert!(withdraw_sent(&log).is_empty());

        // Flushing records it, stamped with the flush time.
        let t2 = t1 + mrai;
        let outs = a.tick(t2);
        assert!(outs.iter().any(
            |o| matches!(o, Output::Send(_, BgpMessage::Update(u)) if !u.withdrawn.is_empty())
        ));
        let sent = withdraw_sent(&log);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].time, t2);
        assert!(matches!(
            sent[0].event,
            ProvenanceEvent::WithdrawSent { prefix, .. } if prefix == p
        ));

        // A withdraw superseded by a re-announce before the deadline
        // never hits the wire, so it is never recorded as sent.
        let t3 = SimTime::from_secs(20);
        a.originate(p, t3);
        a.tick(t3 + mrai);
        let t4 = SimTime::from_secs(40);
        a.withdraw_origin(p, t4);
        a.originate(p, t4 + SimDuration::from_secs(1));
        let outs = a.tick(t4 + mrai + SimDuration::from_secs(1));
        assert!(
            outs.iter().any(
                |o| matches!(o, Output::Send(_, BgpMessage::Update(u)) if !u.announced.is_empty())
            ),
            "the superseding announce flushes"
        );
        assert_eq!(
            withdraw_sent(&log).len(),
            1,
            "no WithdrawSent for the superseded staged withdraw"
        );
    }
}
