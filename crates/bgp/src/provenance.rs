//! Causal update provenance: the side-channel record of *why* routes moved.
//!
//! Every originated announcement or withdrawal is minted a
//! [`TraceId`](peering_netsim::TraceId) at its origin speaker. The id rides
//! along — out of band of the wire encoding — through Adj-RIB-In, the
//! decision process, and Adj-RIB-Out at every hop, so a collector can later
//! reconstruct the full propagation DAG of one routing change: which AS
//! heard it from which neighbor at what sim-time, with what AS path, and
//! whether each hop re-exported or filtered it (and why).
//!
//! Recording is strictly observational. A [`ProvenanceLog`] is a cheap
//! cloneable handle (like `peering_telemetry::Telemetry`): disabled by
//! default, attached per speaker with `Speaker::set_provenance`. Trace ids
//! themselves are minted deterministically whether or not a log is
//! attached, so instrumented and bare runs make bit-identical decisions —
//! the chaos digests prove it.

use crate::message::UpdateMessage;
use crate::rib::PeerId;
use peering_netsim::{Asn, Prefix, SimTime, TraceId};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// What happened to an announced NLRI on import at one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImportVerdict {
    /// Installed in the Adj-RIB-In.
    Accepted,
    /// Receiver-side loop detection: our ASN already in the path.
    AsPathLoop,
    /// Import policy rejected it (implicit withdraw of prior paths).
    PolicyRejected,
    /// Installed, but flap damping suppressed it from candidacy.
    Damped,
}

/// What happened to a route on export toward one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExportVerdict {
    /// Announced to the peer.
    Exported,
    /// Split horizon: never back to the peer it came from.
    SplitHorizon,
    /// iBGP-learned route toward iBGP peer without route reflection.
    IbgpNoReflect,
    /// NO_ADVERTISE community.
    NoAdvertise,
    /// NO_EXPORT community at an eBGP boundary.
    NoExport,
    /// Sender-side loop check: the peer's ASN already in the path.
    AsPathLoop,
    /// Export policy rejected it.
    PolicyRejected,
}

impl fmt::Display for ExportVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExportVerdict::Exported => "exported",
            ExportVerdict::SplitHorizon => "split-horizon",
            ExportVerdict::IbgpNoReflect => "ibgp-no-reflect",
            ExportVerdict::NoAdvertise => "no-advertise",
            ExportVerdict::NoExport => "no-export",
            ExportVerdict::AsPathLoop => "as-path-loop",
            ExportVerdict::PolicyRejected => "policy-reject",
        };
        f.write_str(s)
    }
}

impl fmt::Display for ImportVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ImportVerdict::Accepted => "accepted",
            ImportVerdict::AsPathLoop => "as-path-loop",
            ImportVerdict::PolicyRejected => "policy-reject",
            ImportVerdict::Damped => "damped",
        };
        f.write_str(s)
    }
}

/// One observed moment in a routing change's life at one speaker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProvenanceEvent {
    /// A local origination (announcement or withdrawal) minted `trace`.
    Originated {
        /// The originated prefix.
        prefix: Prefix,
        /// The freshly minted id.
        trace: TraceId,
        /// True for a withdrawal of a previously originated prefix.
        withdraw: bool,
    },
    /// A full UPDATE arrived from a peer (the vantage-point feed record).
    Feed {
        /// Sending peer's local id.
        from_peer: PeerId,
        /// Sending peer's ASN.
        from_asn: Asn,
        /// The message as received.
        update: UpdateMessage,
    },
    /// One announced NLRI passed through import processing.
    Imported {
        /// Sending peer's local id.
        from_peer: PeerId,
        /// Sending peer's ASN.
        from_asn: Asn,
        /// The announced prefix.
        prefix: Prefix,
        /// Provenance id carried by the update, if any.
        trace: Option<TraceId>,
        /// AS path as heard at this hop.
        as_path: Vec<Asn>,
        /// What import did with it.
        verdict: ImportVerdict,
    },
    /// A withdrawal for `prefix` arrived from a peer.
    WithdrawReceived {
        /// Sending peer's local id.
        from_peer: PeerId,
        /// Sending peer's ASN.
        from_asn: Asn,
        /// The withdrawn prefix.
        prefix: Prefix,
        /// Provenance id carried by the update, if any.
        trace: Option<TraceId>,
    },
    /// A route was evaluated for export toward a peer.
    Exported {
        /// Receiving peer's local id.
        to_peer: PeerId,
        /// Receiving peer's ASN.
        to_asn: Asn,
        /// The exported prefix.
        prefix: Prefix,
        /// Provenance id of the route being exported, if any.
        trace: Option<TraceId>,
        /// AS path as sent (post export rewrite) or as evaluated when
        /// filtered.
        as_path: Vec<Asn>,
        /// Exported, or why not.
        verdict: ExportVerdict,
    },
    /// A withdrawal for `prefix` was sent to a peer.
    WithdrawSent {
        /// Receiving peer's local id.
        to_peer: PeerId,
        /// Receiving peer's ASN.
        to_asn: Asn,
        /// The withdrawn prefix.
        prefix: Prefix,
        /// Provenance id of the change that removed the paths, if known.
        trace: Option<TraceId>,
    },
}

/// A [`ProvenanceEvent`] stamped with where and when it was observed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Sim-time at the observing speaker (delivery time for imports).
    pub time: SimTime,
    /// ASN of the observing speaker.
    pub node_asn: Asn,
    /// What was observed.
    pub event: ProvenanceEvent,
}

/// Default bound on retained records; beyond it new records are dropped
/// (and counted), keeping instrumented chaos runs memory-safe.
pub const DEFAULT_MAX_RECORDS: usize = 1 << 18;

struct LogInner {
    records: Vec<ProvenanceRecord>,
    capacity: usize,
    dropped: u64,
}

/// A cheap cloneable handle onto a shared provenance record stream.
///
/// The default handle is disabled and records nothing, so library code can
/// call [`record`](Self::record) unconditionally at near-zero cost. Clones
/// share one underlying stream: attach one handle to every speaker in an
/// emulation and the collector reads a single merged, delivery-ordered
/// record sequence.
#[derive(Clone, Default)]
pub struct ProvenanceLog {
    inner: Option<Rc<RefCell<LogInner>>>,
}

impl ProvenanceLog {
    /// An enabled log with the default record bound.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MAX_RECORDS)
    }

    /// An enabled log retaining at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        ProvenanceLog {
            inner: Some(Rc::new(RefCell::new(LogInner {
                records: Vec::new(),
                capacity,
                dropped: 0,
            }))),
        }
    }

    /// The disabled handle (records nothing).
    pub fn disabled() -> Self {
        ProvenanceLog { inner: None }
    }

    /// True if records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Append one record (no-op when disabled; counted-drop at capacity).
    pub fn record(&self, time: SimTime, node_asn: Asn, event: ProvenanceEvent) {
        if let Some(inner) = &self.inner {
            let mut l = inner.borrow_mut();
            if l.records.len() >= l.capacity {
                l.dropped = l.dropped.saturating_add(1);
                return;
            }
            l.records.push(ProvenanceRecord {
                time,
                node_asn,
                event,
            });
        }
    }

    /// Clone out every retained record, in recording order.
    pub fn records(&self) -> Vec<ProvenanceRecord> {
        match &self.inner {
            Some(inner) => inner.borrow().records.clone(),
            None => Vec::new(),
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.borrow().records.len())
    }

    /// True if nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped at the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().dropped)
    }
}

impl fmt::Debug for ProvenanceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProvenanceLog")
            .field("enabled", &self.is_enabled())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(prefix: Prefix, trace: TraceId) -> ProvenanceEvent {
        ProvenanceEvent::Originated {
            prefix,
            trace,
            withdraw: false,
        }
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let log = ProvenanceLog::disabled();
        assert!(!log.is_enabled());
        log.record(
            SimTime::ZERO,
            Asn(65001),
            rec(Prefix::v4(10, 0, 0, 0, 24), TraceId::new(65001, 0)),
        );
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn clones_share_one_stream() {
        let a = ProvenanceLog::new();
        let b = a.clone();
        a.record(
            SimTime::ZERO,
            Asn(65001),
            rec(Prefix::v4(10, 0, 0, 0, 24), TraceId::new(65001, 0)),
        );
        b.record(
            SimTime::from_secs(1),
            Asn(65002),
            rec(Prefix::v4(10, 1, 0, 0, 24), TraceId::new(65002, 0)),
        );
        assert_eq!(a.len(), 2);
        let recs = b.records();
        assert_eq!(recs[0].node_asn, Asn(65001));
        assert_eq!(recs[1].time, SimTime::from_secs(1));
    }

    #[test]
    fn capacity_bound_drops_and_counts() {
        let log = ProvenanceLog::with_capacity(2);
        for i in 0..5u32 {
            log.record(
                SimTime::ZERO,
                Asn(65001),
                rec(Prefix::v4(10, 0, 0, 0, 24), TraceId::new(65001, i)),
            );
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn verdicts_render() {
        assert_eq!(ExportVerdict::SplitHorizon.to_string(), "split-horizon");
        assert_eq!(ExportVerdict::Exported.to_string(), "exported");
        assert_eq!(ImportVerdict::Damped.to_string(), "damped");
        assert_eq!(ImportVerdict::Accepted.to_string(), "accepted");
    }
}
